// A2 — ablation of augmentation placement, quantifying the paper's
// profiling claim (§6.3.2): "Before matching a preference against a policy,
// the APPEL engine first augments every data element in the policy with the
// corresponding categories ... this augmentation accounts for most of the
// difference in performance."
//
// Three native-engine configurations over the same corpus:
//   per-match  — the JRC behavior: naive augmentation on every match;
//   at-install — augmentation once while storing (the server-centric
//                placement); matching runs on pre-augmented evidence;
//   none       — no augmentation anywhere (lower bound; category rules
//                would misfire, so only non-category preferences are used).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "p3p/augment.h"
#include "p3p/policy_xml.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using server::Augmentation;
using server::EngineKind;
using server::PolicyServer;
using workload::JrcPreference;
using workload::PreferenceLevel;

Result<TimingStats> MeasureNative(Augmentation augmentation) {
  PolicyServer::Options options;
  options.engine = EngineKind::kNativeAppel;
  options.augmentation = augmentation;
  options.enable_match_cache = false;  // price the engine, not the memo
  P3PDB_ASSIGN_OR_RETURN(auto server, PolicyServer::Create(options));
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : workload::FortuneCorpus()) {
    P3PDB_ASSIGN_OR_RETURN(int64_t id, server->InstallPolicy(policy));
    ids.push_back(id);
  }
  // High has no category rules, so all three placements agree on outcomes.
  P3PDB_ASSIGN_OR_RETURN(
      server::CompiledPreference pref,
      server->CompilePreference(JrcPreference(PreferenceLevel::kHigh)));

  for (int64_t id : ids) {  // warm-up
    auto r = server->MatchPolicyId(pref, id);
    if (!r.ok()) return r.status();
  }
  TimingStats stats;
  for (int rep = 0; rep < 3; ++rep) {
    for (int64_t id : ids) {
      Stopwatch sw;
      auto r = server->MatchPolicyId(pref, id);
      double us = sw.ElapsedMicros();
      if (!r.ok()) return r.status();
      stats.Add(us);
    }
  }
  return stats;
}

void PrintAblation() {
  std::printf(
      "Ablation A2: category-augmentation placement in the native APPEL "
      "engine\n");
  auto per_match = MeasureNative(Augmentation::kPerMatch);
  auto at_install = MeasureNative(Augmentation::kAtInstall);
  auto none = MeasureNative(Augmentation::kNone);
  if (!per_match.ok() || !at_install.ok() || !none.ok()) {
    std::printf("error running ablation\n");
    return;
  }
  std::vector<int> widths = {28, 14, 14, 14};
  PrintTableRule(widths);
  PrintTableRow({"Configuration", "Avg / match", "Max", "Min"}, widths);
  PrintTableRule(widths);
  auto row = [&](const char* label, const TimingStats& s) {
    PrintTableRow({label, FormatMicros(s.Average()), FormatMicros(s.Max()),
                   FormatMicros(s.Min())},
                  widths);
  };
  row("per-match (JRC behavior)", per_match.value());
  row("at-install (server-centric)", at_install.value());
  row("none (lower bound)", none.value());
  PrintTableRule(widths);
  double share = (per_match.value().Average() - at_install.value().Average()) /
                 per_match.value().Average() * 100.0;
  std::printf(
      "Per-match augmentation accounts for %.0f%% of the client engine's "
      "match time — the paper's explanation for most of the 15-30x gap to "
      "the SQL path, which pays this cost once at shredding time.\n\n",
      share);
}

void BM_NaiveAugmentation(benchmark::State& state) {
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::FortuneCorpus()[0]);
  const p3p::DataSchema& schema = p3p::DataSchema::Base();
  for (auto _ : state) {
    auto augmented = p3p::AugmentPolicyXmlNaive(*dom, schema);
    benchmark::DoNotOptimize(augmented);
  }
}
BENCHMARK(BM_NaiveAugmentation);

void BM_IndexedAugmentation(benchmark::State& state) {
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::FortuneCorpus()[0]);
  const p3p::DataSchema& schema = p3p::DataSchema::Base();
  for (auto _ : state) {
    auto augmented = p3p::AugmentPolicyXml(*dom, schema);
    benchmark::DoNotOptimize(augmented);
  }
}
BENCHMARK(BM_IndexedAugmentation);

void BM_PolicyDomClone(benchmark::State& state) {
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::FortuneCorpus()[0]);
  for (auto _ : state) {
    auto copy = dom->Clone();
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_PolicyDomClone);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::PrintAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
