// A1 — ablation of the §5.4 schema optimizations: the same preferences
// matched over the optimized (Figure 14) schema vs. the pedagogical
// one-table-per-element (Figure 8) schema.
//
// The optimized translator merges per-value subqueries (Figure 15), so its
// queries carry far fewer EXISTS evaluations; the executor statistics
// printed alongside the timings show exactly where the time goes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;
using workload::JrcPreference;
using workload::PreferenceLevel;
using workload::PreferenceLevelName;

struct SchemaRun {
  TimingStats per_match;
  sqldb::ExecStats stats;
  size_t sql_bytes = 0;
};

Result<SchemaRun> Measure(EngineKind kind, PreferenceLevel level) {
  SchemaRun out;
  P3PDB_ASSIGN_OR_RETURN(auto server, MakeBenchServer(kind));
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : workload::FortuneCorpus()) {
    P3PDB_ASSIGN_OR_RETURN(int64_t id, server->InstallPolicy(policy));
    ids.push_back(id);
  }
  P3PDB_ASSIGN_OR_RETURN(server::CompiledPreference pref,
                         server->CompilePreference(JrcPreference(level)));
  for (const std::string& q : pref.sql.rule_queries) out.sql_bytes += q.size();

  // Warm-up.
  for (int64_t id : ids) {
    auto r = server->MatchPolicyId(pref, id);
    if (!r.ok()) return r.status();
  }
  server->database()->ResetStats();
  for (int rep = 0; rep < 3; ++rep) {
    for (int64_t id : ids) {
      Stopwatch sw;
      auto r = server->MatchPolicyId(pref, id);
      double us = sw.ElapsedMicros();
      if (!r.ok()) return r.status();
      out.per_match.Add(us);
    }
  }
  out.stats = server->database()->stats();
  return out;
}

void PrintPreparedStatementAblation();

void PrintAblation() {
  std::printf(
      "Ablation A1: optimized (Figure 14) vs simple (Figure 8) schema\n");
  std::vector<int> widths = {11, 10, 12, 13, 13, 13, 10};
  PrintTableRule(widths);
  PrintTableRow({"Preference", "Schema", "Query (avg)", "SQL size",
                 "Subqueries", "Rows scanned", "Speedup"},
                widths);
  PrintTableRule(widths);
  for (PreferenceLevel level : workload::AllPreferenceLevels()) {
    auto optimized = Measure(EngineKind::kSql, level);
    auto simple = Measure(EngineKind::kSqlSimple, level);
    if (!optimized.ok() || !simple.ok()) {
      std::printf("error: %s %s\n",
                  optimized.ok() ? "" : optimized.status().ToString().c_str(),
                  simple.ok() ? "" : simple.status().ToString().c_str());
      return;
    }
    double speedup = simple.value().per_match.Average() /
                     optimized.value().per_match.Average();
    PrintTableRow(
        {PreferenceLevelName(level), "optimized",
         FormatMicros(optimized.value().per_match.Average()),
         std::to_string(optimized.value().sql_bytes) + " B",
         std::to_string(optimized.value().stats.subquery_evals),
         std::to_string(optimized.value().stats.rows_scanned), ""},
        widths);
    PrintTableRow(
        {"", "simple", FormatMicros(simple.value().per_match.Average()),
         std::to_string(simple.value().sql_bytes) + " B",
         std::to_string(simple.value().stats.subquery_evals),
         std::to_string(simple.value().stats.rows_scanned),
         FormatDouble(speedup, 2) + "x"},
        widths);
  }
  PrintTableRule(widths);
  std::printf(
      "(the §5.4 merging collapses per-value tables into value columns: "
      "fewer, flatter subqueries and less SQL text per preference)\n\n");
  PrintPreparedStatementAblation();
}

/// Extra ablation beyond the paper: submitting SQL text per match (the DB2
/// methodology of §6) vs binding the rule queries once per preference.
void PrintPreparedStatementAblation() {
  std::printf("Ablation A1b: per-match SQL submission vs prepared "
              "statements (High preference, optimized schema)\n");
  auto measure = [](bool prepared) -> Result<double> {
    server::PolicyServer::Options options;
    options.engine = EngineKind::kSql;
    options.use_prepared_statements = prepared;
    options.enable_match_cache = false;  // price the engine, not the memo
    P3PDB_ASSIGN_OR_RETURN(auto server,
                           server::PolicyServer::Create(options));
    std::vector<int64_t> ids;
    for (const p3p::Policy& policy : workload::FortuneCorpus()) {
      P3PDB_ASSIGN_OR_RETURN(int64_t id, server->InstallPolicy(policy));
      ids.push_back(id);
    }
    P3PDB_ASSIGN_OR_RETURN(
        server::CompiledPreference pref,
        server->CompilePreference(JrcPreference(PreferenceLevel::kHigh)));
    for (int64_t id : ids) {  // warm-up
      auto r = server->MatchPolicyId(pref, id);
      if (!r.ok()) return r.status();
    }
    TimingStats stats;
    for (int rep = 0; rep < 3; ++rep) {
      for (int64_t id : ids) {
        Stopwatch sw;
        auto r = server->MatchPolicyId(pref, id);
        double us = sw.ElapsedMicros();
        if (!r.ok()) return r.status();
        stats.Add(us);
      }
    }
    return stats.Average();
  };
  auto text_mode = measure(false);
  auto prepared_mode = measure(true);
  if (!text_mode.ok() || !prepared_mode.ok()) {
    std::printf("error running A1b\n");
    return;
  }
  std::printf(
      "  per-match text submission: %s   prepared once: %s   (%.1fx)\n\n",
      FormatMicros(text_mode.value()).c_str(),
      FormatMicros(prepared_mode.value()).c_str(),
      text_mode.value() / prepared_mode.value());
}

void BM_HighPreferenceOptimizedSchema(benchmark::State& state) {
  auto server = MakeBenchServer(EngineKind::kSql);
  if (!server.ok()) {
    state.SkipWithError("server");
    return;
  }
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : workload::FortuneCorpus()) {
    auto id = server.value()->InstallPolicy(policy);
    if (!id.ok()) {
      state.SkipWithError("install");
      return;
    }
    ids.push_back(id.value());
  }
  auto pref = server.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kHigh));
  if (!pref.ok()) {
    state.SkipWithError("compile");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto r = server.value()->MatchPolicyId(pref.value(),
                                           ids[i++ % ids.size()]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HighPreferenceOptimizedSchema);

void BM_HighPreferenceSimpleSchema(benchmark::State& state) {
  auto server = MakeBenchServer(EngineKind::kSqlSimple);
  if (!server.ok()) {
    state.SkipWithError("server");
    return;
  }
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : workload::FortuneCorpus()) {
    auto id = server.value()->InstallPolicy(policy);
    if (!id.ok()) {
      state.SkipWithError("install");
      return;
    }
    ids.push_back(id.value());
  }
  auto pref = server.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kHigh));
  if (!pref.ok()) {
    state.SkipWithError("compile");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto r = server.value()->MatchPolicyId(pref.value(),
                                           ids[i++ % ids.size()]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HighPreferenceSimpleSchema);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::PrintAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
