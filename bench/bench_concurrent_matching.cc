// E7 (beyond the paper) — concurrent matching throughput.
//
// The paper reports single-stream match latency; a deployed server-centric
// checker answers many page requests at once. With parameterized rule
// queries (the policy id arrives as a bind parameter instead of a
// materialized ApplicablePolicy row), MatchUri is read-only and runs under
// a shared lock, so throughput should scale with threads. The legacy
// materialized mode — every match writes the one-row table and takes the
// exclusive lock — is the serialized baseline.
//
// Usage: bench_concurrent_matching [--json <path>]
// The JSON report carries (name, iters, ns/op, matches/sec) per
// (mode, thread-count) point.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;
using server::PolicyServer;
using workload::JrcPreference;
using workload::PreferenceLevel;

constexpr int kMatchesPerThread = 400;

/// Thread counts sized to the machine instead of a hard-coded {1,2,4,8}:
/// powers of two up to the hardware thread count, plus one 2x
/// oversubscription point (lock-convoy behavior only shows past the core
/// count), capped at 16 so CI runners with many cores stay fast. A
/// single-core machine still measures {1, 2} — the cross-thread contention
/// point is the whole reason this bench exists.
std::vector<int> ThreadCounts() {
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> counts;
  for (int t = 1; t <= std::min(hw, 16); t *= 2) counts.push_back(t);
  const int oversubscribed = std::min(16, 2 * hw);
  if (oversubscribed > counts.back()) counts.push_back(oversubscribed);
  return counts;
}

struct ThroughputPoint {
  std::string mode;
  int threads = 0;
  uint64_t matches = 0;
  double elapsed_us = 0.0;
  TimingStats latency_us;  // per-match wall time, merged across threads
  // Memo-cache counters over the measured region; hit_rate < 0 = uncached.
  double hit_rate = -1.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  double MatchesPerSec() const {
    return elapsed_us <= 0.0 ? 0.0 : matches / (elapsed_us / 1e6);
  }
  double NsPerOp() const {
    return matches == 0 ? 0.0 : elapsed_us * 1000.0 / matches;
  }
};

Result<std::unique_ptr<PolicyServer>> MakeServer(
    bool materialize, bool cached, const std::vector<p3p::Policy>& corpus) {
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.materialize_applicable_policy = materialize;
  // Figure-reproduction modes price the engine, so the memo cache is off;
  // the "cached" mode turns it on to price the full deployment.
  options.enable_match_cache = cached;
  P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<PolicyServer> server,
                         PolicyServer::Create(options));
  for (const p3p::Policy& policy : corpus) {
    P3PDB_RETURN_IF_ERROR(server->InstallPolicy(policy).status());
  }
  P3PDB_RETURN_IF_ERROR(
      server->InstallReferenceFile(workload::CorpusReferenceFile(corpus)));
  return server;
}

Result<ThroughputPoint> Measure(PolicyServer* server, const char* mode,
                                const std::vector<std::string>& paths,
                                int threads) {
  P3PDB_ASSIGN_OR_RETURN(
      server::CompiledPreference pref,
      server->CompilePreference(JrcPreference(PreferenceLevel::kHigh)));

  // Warm-up (indexes touched, behaviors resolved once; on a cached server
  // this is the fill pass, so the measured region is the steady state).
  for (const std::string& path : paths) {
    P3PDB_RETURN_IF_ERROR(server->MatchUri(pref, path).status());
  }
  server::MatchCache::Stats cache_before;
  if (server->match_cache() != nullptr) {
    cache_before = server->match_cache()->TotalStats();
  }

  std::vector<std::thread> workers;
  std::vector<Status> outcomes(threads, Status::OK());
  // Per-thread sample vectors; merged after the join so the sampling adds
  // no cross-thread synchronization to the measured region.
  std::vector<TimingStats> latencies(threads);
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kMatchesPerThread; ++i) {
        Stopwatch match_sw;
        auto r = server->MatchUri(pref, paths[(t + i) % paths.size()]);
        double us = match_sw.ElapsedMicros();
        if (!r.ok()) {
          outcomes[t] = r.status();
          return;
        }
        latencies[t].Add(us);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ThroughputPoint point;
  point.elapsed_us = sw.ElapsedMicros();
  for (const Status& s : outcomes) {
    if (!s.ok()) return s;
  }
  for (const TimingStats& per_thread : latencies) {
    for (double us : per_thread.samples()) point.latency_us.Add(us);
  }
  point.mode = mode;
  point.threads = threads;
  point.matches = static_cast<uint64_t>(threads) * kMatchesPerThread;
  if (server->match_cache() != nullptr) {
    server::MatchCache::Stats after = server->match_cache()->TotalStats();
    point.cache_hits = after.hits - cache_before.hits;
    point.cache_misses = after.misses - cache_before.misses;
    uint64_t lookups = point.cache_hits + point.cache_misses;
    point.hit_rate =
        lookups == 0 ? 0.0 : static_cast<double>(point.cache_hits) / lookups;
  }
  return point;
}

struct ExperimentOutput {
  std::vector<ThroughputPoint> points;
  std::string metrics_text;  // parameterized server's registry, end of run
};

Result<ExperimentOutput> RunExperiment() {
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  std::vector<std::string> paths;
  for (const p3p::Policy& policy : corpus) {
    paths.push_back("/" + policy.name + "/index.html");
  }

  ExperimentOutput out;
  P3PDB_ASSIGN_OR_RETURN(
      auto parameterized,
      MakeServer(/*materialize=*/false, /*cached=*/false, corpus));
  P3PDB_ASSIGN_OR_RETURN(
      auto legacy, MakeServer(/*materialize=*/true, /*cached=*/false, corpus));
  P3PDB_ASSIGN_OR_RETURN(
      auto cached, MakeServer(/*materialize=*/false, /*cached=*/true, corpus));
  for (int threads : ThreadCounts()) {
    P3PDB_ASSIGN_OR_RETURN(
        ThroughputPoint p,
        Measure(parameterized.get(), "parameterized", paths, threads));
    out.points.push_back(std::move(p));
    P3PDB_ASSIGN_OR_RETURN(
        ThroughputPoint m,
        Measure(legacy.get(), "materialized", paths, threads));
    out.points.push_back(std::move(m));
    P3PDB_ASSIGN_OR_RETURN(ThroughputPoint c,
                           Measure(cached.get(), "cached", paths, threads));
    out.points.push_back(std::move(c));
  }
  // The server kept its own histograms while the harness timed externally —
  // the two views should agree. Emit the registry for eyeballing that.
  out.metrics_text = parameterized->RenderMetricsText();
  return out;
}

void PrintReport(const std::vector<ThroughputPoint>& points) {
  const unsigned cores = std::thread::hardware_concurrency();
  int widest = 1;
  for (const ThroughputPoint& p : points) widest = std::max(widest, p.threads);
  std::printf(
      "E7: concurrent MatchUri throughput (SQL engine, High preference, "
      "29 policies, %u core%s)\n",
      cores, cores == 1 ? "" : "s");
  if (static_cast<int>(cores) < widest) {
    std::printf(
        "note: fewer cores than the widest thread count — speedups are "
        "bounded by the\nhardware, not the locking; the parameterized/"
        "materialized gap is still meaningful.\n");
  }
  std::vector<int> widths = {14, 8, 12, 14, 10, 10, 10, 10, 10};
  PrintTableRule(widths);
  PrintTableRow({"Mode", "Threads", "ns/match", "Matches/sec", "Speedup",
                 "p50", "p90", "p99", "Hit rate"},
                widths);
  PrintTableRule(widths);
  double parameterized_1t = 0.0;
  double parameterized_widest = 0.0;
  for (const ThroughputPoint& p : points) {
    double base = 0.0;
    for (const ThroughputPoint& q : points) {
      if (q.mode == p.mode && q.threads == 1) base = q.MatchesPerSec();
    }
    if (p.mode == "parameterized") {
      if (p.threads == 1) parameterized_1t = p.MatchesPerSec();
      if (p.threads == widest) parameterized_widest = p.MatchesPerSec();
    }
    PrintTableRow({p.mode, std::to_string(p.threads),
                   FormatDouble(p.NsPerOp(), 0),
                   FormatDouble(p.MatchesPerSec(), 0),
                   base <= 0.0 ? std::string("-")
                               : FormatDouble(p.MatchesPerSec() / base, 2) +
                                     "x",
                   FormatMicros(p.latency_us.Percentile(50.0)),
                   FormatMicros(p.latency_us.Percentile(90.0)),
                   FormatMicros(p.latency_us.Percentile(99.0)),
                   p.hit_rate < 0.0 ? std::string("-")
                                    : FormatDouble(p.hit_rate, 3)},
                  widths);
  }
  PrintTableRule(widths);
  if (parameterized_1t > 0.0) {
    std::printf(
        "(parameterized %d-thread speedup over 1 thread: %sx; the "
        "materialized baseline\nserializes every match behind the exclusive "
        "lock, so added threads cannot help it)\n\n",
        widest,
        FormatDouble(parameterized_widest / parameterized_1t, 2).c_str());
  }
}

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  using p3pdb::bench::BenchJsonRecord;
  auto output = p3pdb::bench::RunExperiment();
  if (!output.ok()) {
    std::printf("error: %s\n", output.status().ToString().c_str());
    return 1;
  }
  p3pdb::bench::PrintReport(output.value().points);
  std::printf("Parameterized server metrics (Prometheus exposition):\n%s\n",
              output.value().metrics_text.c_str());

  std::string json_path = p3pdb::bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    std::vector<BenchJsonRecord> records;
    for (const auto& p : output.value().points) {
      BenchJsonRecord record = p3pdb::bench::RecordFromTimings(
          "concurrent_match/" + p.mode +
              "/threads:" + std::to_string(p.threads),
          p.latency_us);
      // Throughput numbers come from the wall clock over the whole run,
      // not the per-match samples (threads overlap).
      record.iters = p.matches;
      record.ns_per_op = p.NsPerOp();
      record.matches_per_sec = p.MatchesPerSec();
      record.hit_rate = p.hit_rate;
      record.cache_hits = p.cache_hits;
      record.cache_misses = p.cache_misses;
      // Thread counts now scale with the machine, so a record is only
      // comparable to records produced on the same core count.
      record.hardware_concurrency = std::thread::hardware_concurrency();
      records.push_back(std::move(record));
    }
    auto written = p3pdb::bench::WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::printf("error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}
