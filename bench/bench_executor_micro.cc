// Executor microbenchmarks: the vectorized batch executor against the
// scalar row-at-a-time path on the three shapes the match path exercises —
// a filtered sequential scan, a kernel-heavy predicate (LIKE / IN / OR),
// and batched hash semi-join probes — plus a chunk-size sweep over the
// filtered scan. Each workload runs twice against identically loaded
// databases (vectorized on / off), so the printed speedup isolates the
// executor change from everything else.
//
// `--json <path>` writes one record per run. Samples are per-query
// microseconds (so p50/p99 describe query latency); `matches_per_sec`
// carries the rows-per-second throughput (rows visited by the scan, or
// probes answered, divided by query time).

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/stopwatch.h"
#include "sqldb/database.h"

namespace p3pdb::bench {
namespace {

constexpr size_t kEventRows = 100000;
constexpr size_t kOuterRows = 10000;
constexpr int kWarmups = 2;
constexpr int kRepetitions = 20;

/// Builds the workload tables: `events` (the scanned fact table) and
/// `outer_t` (the probe side of the semi-join bench).
std::unique_ptr<sqldb::Database> MakeDatabase(bool vectorized,
                                              uint32_t chunk_size) {
  sqldb::Database::Options options;
  options.enable_planner = true;
  options.enable_plan_cache = true;
  options.enable_vectorized_executor = vectorized;
  options.vector_chunk_size = chunk_size;
  auto db = std::make_unique<sqldb::Database>(options);

  auto check = [](const Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "setup error: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };
  check(db->ExecuteScript(
      "CREATE TABLE events (id INTEGER, k INTEGER, v INTEGER, s TEXT);"
      "CREATE TABLE outer_t (id INTEGER, k INTEGER)"));
  for (size_t i = 0; i < kEventRows; ++i) {
    sqldb::Row row;
    row.push_back(sqldb::Value::Integer(static_cast<int64_t>(i)));
    row.push_back(sqldb::Value::Integer(static_cast<int64_t>(i % 100)));
    // Every 97th v is NULL so the kernels see three-valued inputs.
    if (i % 97 == 0) {
      row.push_back(sqldb::Value::Null());
    } else {
      row.push_back(sqldb::Value::Integer(static_cast<int64_t>(i % 1000)));
    }
    row.push_back(sqldb::Value::Text((i % 7 == 0 ? "ab" : "zz") +
                                     std::to_string(i)));
    check(db->InsertRow("events", std::move(row)));
  }
  for (size_t i = 0; i < kOuterRows; ++i) {
    sqldb::Row row;
    row.push_back(sqldb::Value::Integer(static_cast<int64_t>(i)));
    row.push_back(sqldb::Value::Integer(static_cast<int64_t>(i % 128)));
    check(db->InsertRow("outer_t", std::move(row)));
  }
  return db;
}

struct MicroResult {
  TimingStats timings;   // per-query micros
  double rows_per_sec = 0.0;
};

/// Times `sql` against `db`: warm-ups (plan-cache fill, hash-join builds),
/// then kRepetitions timed executions. `rows_per_query` is the work notion
/// the throughput is reported in (rows scanned or probes answered).
MicroResult RunQuery(sqldb::Database* db, const std::string& sql,
                     size_t rows_per_query) {
  MicroResult out;
  for (int i = 0; i < kWarmups; ++i) {
    auto r = db->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
  }
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Stopwatch sw;
    auto r = db->Execute(sql);
    double us = sw.ElapsedMicros();
    if (!r.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    out.timings.Add(us);
  }
  out.rows_per_sec =
      static_cast<double>(rows_per_query) * 1e6 / out.timings.Average();
  return out;
}

BenchJsonRecord Record(std::string name, const MicroResult& r) {
  BenchJsonRecord rec = RecordFromTimings(std::move(name), r.timings);
  rec.matches_per_sec = r.rows_per_sec;  // rows/sec for the micro benches
  return rec;
}

std::string FormatRowsPerSec(double v) {
  char buf[64];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM rows/s", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fk rows/s", v / 1e3);
  }
  return buf;
}

}  // namespace

int Main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  std::vector<BenchJsonRecord> records;

  struct Workload {
    const char* name;
    std::string sql;
    size_t rows_per_query;
  };
  const Workload workloads[] = {
      {"scan_filter",
       "SELECT id FROM events WHERE k = 7 AND v < 200", kEventRows},
      {"expr_eval",
       "SELECT id FROM events WHERE (v < 100 OR s LIKE 'ab%') "
       "AND k IN (1, 2, 3, 5, 8, 13)",
       kEventRows},
      {"hash_probe",
       "SELECT o.id FROM outer_t o WHERE EXISTS (SELECT * FROM events e "
       "WHERE e.k = o.k AND e.v < 50)",
       kOuterRows},
  };

  std::printf("Executor microbenchmarks (%zu-row events table, "
              "%d reps per cell)\n\n",
              kEventRows, kRepetitions);
  std::vector<int> widths = {12, 16, 16, 9};
  PrintTableRule(widths);
  PrintTableRow({"workload", "vectorized", "scalar", "speedup"}, widths);
  PrintTableRule(widths);

  for (const Workload& w : workloads) {
    auto vec_db = MakeDatabase(/*vectorized=*/true, /*chunk_size=*/1024);
    auto scalar_db = MakeDatabase(/*vectorized=*/false, /*chunk_size=*/1024);
    MicroResult vec = RunQuery(vec_db.get(), w.sql, w.rows_per_query);
    MicroResult scalar = RunQuery(scalar_db.get(), w.sql, w.rows_per_query);
    PrintTableRow({w.name, FormatRowsPerSec(vec.rows_per_sec),
                   FormatRowsPerSec(scalar.rows_per_sec),
                   [&] {
                     char buf[32];
                     std::snprintf(buf, sizeof(buf), "%.2fx",
                                   scalar.timings.Average() /
                                       vec.timings.Average());
                     return std::string(buf);
                   }()},
                  widths);
    records.push_back(Record(std::string("micro/") + w.name, vec));
    records.push_back(Record(std::string("micro/") + w.name + "_novec",
                             scalar));
  }
  PrintTableRule(widths);

  // Chunk-size sweep over the filtered scan: 1 approximates the scalar
  // path's per-row regime (kernel dispatch per row), the upper sizes show
  // where the gather/kernel costs amortize flat.
  std::printf("\nChunk-size sweep (scan_filter):\n");
  for (uint32_t chunk : {1u, 64u, 256u, 1024u, 4096u}) {
    auto db = MakeDatabase(/*vectorized=*/true, chunk);
    MicroResult r = RunQuery(db.get(), workloads[0].sql,
                             workloads[0].rows_per_query);
    std::printf("  chunk %4u: %s (%.1fus/query)\n", chunk,
                FormatRowsPerSec(r.rows_per_sec).c_str(),
                r.timings.Average());
    records.push_back(
        Record("micro/scan_filter_chunk" + std::to_string(chunk), r));
  }

  if (!json_path.empty()) {
    auto written = WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}

}  // namespace p3pdb::bench

int main(int argc, char** argv) { return p3pdb::bench::Main(argc, argv); }
