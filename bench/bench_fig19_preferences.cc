// E1 — Figure 19: the JRC preference suite (size in KB, number of rules).
//
// Prints the reconstructed Figure 19 table, then runs micro-benchmarks for
// parsing each preference from APPEL XML.

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using workload::AllPreferenceLevels;
using workload::JrcPreference;
using workload::PreferenceLevel;
using workload::PreferenceLevelName;
using workload::PreferenceSizeKb;

void PrintFigure19() {
  std::printf("Figure 19: JRC APPEL Preferences (reconstruction)\n");
  std::vector<int> widths = {12, 10, 7};
  PrintTableRule(widths);
  PrintTableRow({"Preference", "Size (KB)", "#Rules"}, widths);
  PrintTableRule(widths);
  double total_kb = 0;
  double total_rules = 0;
  for (PreferenceLevel level : AllPreferenceLevels()) {
    appel::AppelRuleset rs = JrcPreference(level);
    double kb = PreferenceSizeKb(rs);
    total_kb += kb;
    total_rules += static_cast<double>(rs.RuleCount());
    PrintTableRow({PreferenceLevelName(level), FormatDouble(kb, 1),
                   std::to_string(rs.RuleCount())},
                  widths);
  }
  PrintTableRule(widths);
  PrintTableRow({"Average", FormatDouble(total_kb / 5.0, 1),
                 FormatDouble(total_rules / 5.0, 1)},
                widths);
  PrintTableRule(widths);
  std::printf(
      "(paper: 3.1/2.8/2.1/0.9/0.3 KB and 10/7/4/2/1 rules, avg 1.9 KB, "
      "4.8 rules)\n\n");
}

/// Figure 19 is a static table, so the machine-readable report times what
/// the suite actually costs the engine: parsing each preference from APPEL
/// XML (the per-match conversion entry point) and serializing it back.
void WriteFigure19Json(const std::string& json_path) {
  constexpr int kIterations = 200;
  // "Very High" -> "very_high": record names should be shell-friendly.
  auto slug = [](const char* name) {
    std::string out;
    for (const char* p = name; *p != '\0'; ++p) {
      out += *p == ' ' ? '_' : static_cast<char>(std::tolower(*p));
    }
    return out;
  };
  std::vector<BenchJsonRecord> records;
  for (PreferenceLevel level : AllPreferenceLevels()) {
    const std::string text = appel::RulesetToText(JrcPreference(level));
    TimingStats parse;
    for (int i = 0; i < kIterations; ++i) {
      Stopwatch sw;
      auto parsed = appel::RulesetFromText(text);
      double us = sw.ElapsedMicros();
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().ToString().c_str());
        return;
      }
      parse.Add(us);
    }
    records.push_back(RecordFromTimings(
        "fig19/parse_" + slug(PreferenceLevelName(level)), parse));

    appel::AppelRuleset rs = JrcPreference(level);
    TimingStats serialize;
    for (int i = 0; i < kIterations; ++i) {
      Stopwatch sw;
      std::string out = appel::RulesetToText(rs);
      serialize.Add(sw.ElapsedMicros());
      if (out.empty()) return;  // unreachable; keeps `out` observed
    }
    records.push_back(RecordFromTimings(
        "fig19/serialize_" + slug(PreferenceLevelName(level)), serialize));
  }
  auto written = WriteBenchJson(json_path, records);
  if (!written.ok()) {
    std::printf("error: %s\n", written.ToString().c_str());
    return;
  }
  std::printf("wrote %zu records to %s\n\n", records.size(),
              json_path.c_str());
}

void BM_ParsePreference(benchmark::State& state) {
  PreferenceLevel level = AllPreferenceLevels()[state.range(0)];
  std::string text = appel::RulesetToText(JrcPreference(level));
  for (auto _ : state) {
    auto parsed = appel::RulesetFromText(text);
    if (!parsed.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(parsed);
  }
  state.SetLabel(PreferenceLevelName(level));
}
BENCHMARK(BM_ParsePreference)->DenseRange(0, 4);

void BM_SerializePreference(benchmark::State& state) {
  PreferenceLevel level = AllPreferenceLevels()[state.range(0)];
  appel::AppelRuleset rs = JrcPreference(level);
  for (auto _ : state) {
    std::string text = appel::RulesetToText(rs);
    benchmark::DoNotOptimize(text);
  }
  state.SetLabel(PreferenceLevelName(level));
}
BENCHMARK(BM_SerializePreference)->DenseRange(0, 4);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::PrintFigure19();
  const std::string json_path = p3pdb::bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) p3pdb::bench::WriteFigure19Json(json_path);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
