// E3 — Figure 20: execution time for matching a preference against a
// policy (average/max/min over all preference x policy pairs).
//
// Three implementations, as in the paper:
//   APPEL Engine — the client-centric native engine with per-match
//                  category augmentation (the JRC baseline);
//   SQL          — conversion (APPEL -> Figure 15 SQL) and query time,
//                  reported separately and as a total;
//   XQuery       — APPEL -> XQuery -> XTABLE SQL over the Figure 8 schema
//                  (conversion + execution). The Medium preference does not
//                  prepare under the XTABLE complexity budget and is
//                  excluded from the XQuery column, as in the paper.
//
// The headline *shape* under reproduction: SQL total << APPEL engine (the
// paper saw 15x; 30x query-only), XQuery in between.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/paper_examples.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;
using workload::JanePreference;
using workload::VolgaPolicy;

/// Executor ablations at scale: the per-match SQL query path against a
/// 10k-policy corpus, one compiled (Medium) preference, matches sampled
/// across the corpus. The server runs the steady-state matcher
/// configuration (rule queries prepared at compile time, metrics off — see
/// MakeBenchServer) so the record isolates engine execution cost. With the
/// planner on, every sampled match probes cached hash-join key sets; with
/// `--no-planner` each match runs correlated EXISTS subqueries (PR 5's
/// >=2x bar). With `P3PDB_NO_VECTORIZE=1` the same build falls back to the
/// scalar row-at-a-time executor (this PR's vectorization ablation,
/// recorded as `bench_fig20_novec.json` in CI).
void RunSqlScale10k(bool enable_planner, const BenchObservability& obs,
                    int linger_seconds, const std::string& storage_path,
                    std::vector<BenchJsonRecord>* records) {
  constexpr size_t kPolicyCount = 10000;
  constexpr size_t kSampleStride = 97;  // ~103 sampled policies
  constexpr int kRepetitions = 3;

  std::vector<p3p::Policy> corpus = workload::FortuneCorpus(
      {.seed = 2003, .policy_count = kPolicyCount});
  auto server = MakeBenchServer(server::EngineKind::kSql, 32, enable_planner,
                                /*steady_state=*/true, obs, storage_path);
  if (!server.ok()) {
    std::printf("error: %s\n", server.status().ToString().c_str());
    return;
  }
  if (server.value()->admin_endpoint_running()) {
    std::printf(
        "admin endpoint live on http://127.0.0.1:%u — try "
        "/statements?top=5, /slow, /traces, /metrics while this runs\n\n",
        server.value()->admin_port());
    std::fflush(stdout);
  }
  std::vector<int64_t> ids;
  ids.reserve(corpus.size());
  for (const p3p::Policy& policy : corpus) {
    auto id = server.value()->InstallPolicy(policy);
    if (!id.ok()) {
      std::printf("error: %s\n", id.status().ToString().c_str());
      return;
    }
    ids.push_back(id.value());
  }
  auto pref = server.value()->CompilePreference(
      workload::JrcPreference(workload::PreferenceLevel::kMedium));
  if (!pref.ok()) {
    std::printf("error: %s\n", pref.status().ToString().c_str());
    return;
  }

  std::vector<int64_t> sample;
  for (size_t i = 0; i < ids.size(); i += kSampleStride) {
    sample.push_back(ids[i]);
  }
  // Warm-up pass (hash-join key-set builds and plan-cache fills land here).
  for (int64_t id : sample) {
    auto r = server.value()->MatchPolicyId(pref.value(), id);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
  }
  TimingStats query;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (int64_t id : sample) {
      Stopwatch sw;
      auto r = server.value()->MatchPolicyId(pref.value(), id);
      double us = sw.ElapsedMicros();
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
        return;
      }
      query.Add(us);
    }
  }

  const sqldb::ExecStats stats = server.value()->database()->stats();
  std::printf(
      "SQL match at 10k-policy scale (Medium preference, %zu sampled "
      "policies, planner %s):\n  avg %s  p50 %s  p99 %s per match\n"
      "  plans built %llu, plan-cache hits %llu, semi-join rewrites %llu, "
      "anti-join rewrites %llu, hash-join builds %llu, probes %llu\n"
      "  batches %llu, batch rows %llu, vectorized filters %llu, "
      "fallback rows %llu\n\n",
      sample.size(),
      storage_path.empty()
          ? (enable_planner ? "ON" : "OFF (--no-planner)")
          : (enable_planner ? "ON, disk-backed storage (--disk)"
                            : "OFF (--no-planner), disk-backed (--disk)"),
      FormatMicros(query.Average()).c_str(),
      FormatMicros(query.Percentile(50.0)).c_str(),
      FormatMicros(query.Percentile(99.0)).c_str(),
      static_cast<unsigned long long>(stats.plans_built),
      static_cast<unsigned long long>(stats.plan_cache_hits),
      static_cast<unsigned long long>(stats.semi_join_rewrites),
      static_cast<unsigned long long>(stats.anti_join_rewrites),
      static_cast<unsigned long long>(stats.hash_join_builds),
      static_cast<unsigned long long>(stats.hash_join_probes),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.batch_rows),
      static_cast<unsigned long long>(stats.vectorized_filters),
      static_cast<unsigned long long>(stats.vectorized_fallback_rows));
  records->push_back(RecordFromTimings(
      storage_path.empty() ? "fig20/sql_query_10k" : "fig20/sql_query_10k_disk",
      query));
  if (!storage_path.empty()) {
    const sqldb::StorageStats storage =
        server.value()->database()->storage_stats();
    std::printf(
        "  storage: %llu WAL records (%llu commits, %llu syncs), "
        "%llu checkpoints, pool %llu hits / %llu misses\n\n",
        static_cast<unsigned long long>(storage.wal_records),
        static_cast<unsigned long long>(storage.wal_commits),
        static_cast<unsigned long long>(storage.wal_syncs),
        static_cast<unsigned long long>(storage.checkpoints),
        static_cast<unsigned long long>(storage.pool.hits),
        static_cast<unsigned long long>(storage.pool.misses));
  }

  if (server.value()->admin_endpoint_running()) {
    std::printf("hottest statements (also at /statements?top=5):\n%s\n",
                server.value()->RenderStatementStatsText(5).c_str());
    if (linger_seconds > 0) {
      std::printf(
          "lingering %d s with the admin endpoint up "
          "(http://127.0.0.1:%u)...\n\n",
          linger_seconds, server.value()->admin_port());
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::seconds(linger_seconds));
    }
  }
}

void PrintFigure20(const std::string& json_path, bool enable_planner,
                   const BenchObservability& obs, int linger_seconds,
                   bool with_disk) {
  MatchingExperiment::Options exp_options;
  exp_options.enable_planner = enable_planner;
  auto experiment = MatchingExperiment::Create(exp_options);
  if (!experiment.ok()) {
    std::printf("error: %s\n", experiment.status().ToString().c_str());
    return;
  }
  auto results = experiment.value()->Run();
  if (!results.ok()) {
    std::printf("error: %s\n", results.status().ToString().c_str());
    return;
  }

  // Aggregate the per-level raw samples into the Figure 20 triple.
  TimingStats appel, convert, query, total, xquery;
  auto fold = [](const std::vector<LevelTimings>& levels,
                 TimingStats LevelTimings::*member, bool xquery_only) {
    TimingStats out;
    for (const LevelTimings& lt : levels) {
      if (xquery_only && !lt.xquery_supported) continue;
      const TimingStats& s = lt.*member;
      // Merge via the triple-preserving trick: we kept raw samples.
      for (double v : s.samples()) out.Add(v);
    }
    return out;
  };
  appel = fold(results.value(), &LevelTimings::appel_engine, false);
  convert = fold(results.value(), &LevelTimings::sql_convert, false);
  query = fold(results.value(), &LevelTimings::sql_query, false);
  total = fold(results.value(), &LevelTimings::sql_total, false);
  xquery = fold(results.value(), &LevelTimings::xquery_total, true);

  std::printf(
      "Figure 20: execution time for matching a preference against a "
      "policy\n");
  std::vector<int> widths = {8, 13, 12, 12, 12, 12};
  PrintTableRule(widths);
  PrintTableRow({"", "APPEL Engine", "SQL Convert", "SQL Query", "SQL Total",
                 "XQuery"},
                widths);
  PrintTableRule(widths);
  auto row = [&](const char* label, double a, double c, double q, double t,
                 double x) {
    PrintTableRow({label, FormatMicros(a), FormatMicros(c), FormatMicros(q),
                   FormatMicros(t), FormatMicros(x)},
                  widths);
  };
  row("Average", appel.Average(), convert.Average(), query.Average(),
      total.Average(), xquery.Average());
  row("Max", appel.Max(), convert.Max(), query.Max(), total.Max(),
      xquery.Max());
  row("Min", appel.Min(), convert.Min(), query.Min(), total.Min(),
      xquery.Min());
  auto prow = [&](const char* label, double p) {
    row(label, appel.Percentile(p), convert.Percentile(p),
        query.Percentile(p), total.Percentile(p), xquery.Percentile(p));
  };
  prow("p50", 50.0);
  prow("p90", 90.0);
  prow("p99", 99.0);
  PrintTableRule(widths);
  std::printf(
      "Speedups: APPEL/SQL-total = %.1fx (paper: >15x), "
      "APPEL/SQL-query = %.1fx (paper: ~30x), APPEL/XQuery = %.1fx "
      "(paper: ~1.6x)\n",
      appel.Average() / total.Average(),
      appel.Average() / query.Average(),
      appel.Average() / xquery.Average());
  std::printf(
      "(XQuery column excludes the Medium preference, whose XTABLE "
      "translation exceeds the complexity budget — see Figure 21)\n\n");

  std::vector<BenchJsonRecord> records;
  records.push_back(RecordFromTimings("fig20/appel_engine", appel));
  records.push_back(RecordFromTimings("fig20/sql_convert", convert));
  records.push_back(RecordFromTimings("fig20/sql_query", query));
  records.push_back(RecordFromTimings("fig20/sql_total", total));
  records.push_back(RecordFromTimings("fig20/xquery_total", xquery));
  RunSqlScale10k(enable_planner, obs, linger_seconds, /*storage_path=*/"",
                 &records);
  if (with_disk) {
    // Informational disk-backed repeat (`--disk`): same 10k-scale match
    // workload with the WAL + buffer-pool storage engine underneath,
    // recorded as fig20/sql_query_10k_disk. Matches are read-only, so this
    // measures the read-path overhead of running on the storage engine;
    // CI reports it without gating.
    const std::string disk_dir = "bench_fig20_disk.tmp";
    std::filesystem::remove_all(disk_dir);
    RunSqlScale10k(enable_planner, obs, /*linger_seconds=*/0, disk_dir,
                   &records);
    std::filesystem::remove_all(disk_dir);
  }

  if (!json_path.empty()) {
    auto written = WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::printf("error: %s\n", written.ToString().c_str());
      return;
    }
    std::printf("wrote %zu records to %s\n\n", records.size(),
                json_path.c_str());
  }
}

void BM_MatchNativeAppel(benchmark::State& state) {
  auto server = MakeBenchServer(EngineKind::kNativeAppel);
  if (!server.ok()) {
    state.SkipWithError("server");
    return;
  }
  auto id = server.value()->InstallPolicy(VolgaPolicy());
  auto pref = server.value()->CompilePreference(JanePreference());
  if (!id.ok() || !pref.ok()) {
    state.SkipWithError("setup");
    return;
  }
  for (auto _ : state) {
    auto r = server.value()->MatchPolicyId(pref.value(), id.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MatchNativeAppel);

void BM_MatchSqlQuery(benchmark::State& state) {
  auto server = MakeBenchServer(EngineKind::kSql);
  if (!server.ok()) {
    state.SkipWithError("server");
    return;
  }
  auto id = server.value()->InstallPolicy(VolgaPolicy());
  auto pref = server.value()->CompilePreference(JanePreference());
  if (!id.ok() || !pref.ok()) {
    state.SkipWithError("setup");
    return;
  }
  for (auto _ : state) {
    auto r = server.value()->MatchPolicyId(pref.value(), id.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MatchSqlQuery);

void BM_SqlConvert(benchmark::State& state) {
  auto server = MakeBenchServer(EngineKind::kSql);
  if (!server.ok()) {
    state.SkipWithError("server");
    return;
  }
  appel::AppelRuleset jane = JanePreference();
  for (auto _ : state) {
    auto pref = server.value()->CompilePreference(jane);
    benchmark::DoNotOptimize(pref);
  }
}
BENCHMARK(BM_SqlConvert);

void BM_MatchXQueryXTable(benchmark::State& state) {
  auto server =
      MakeBenchServer(EngineKind::kXQueryXTable, kXTableDepthBudget);
  if (!server.ok()) {
    state.SkipWithError("server");
    return;
  }
  auto id = server.value()->InstallPolicy(VolgaPolicy());
  auto pref = server.value()->CompilePreference(JanePreference());
  if (!id.ok() || !pref.ok()) {
    state.SkipWithError("setup");
    return;
  }
  for (auto _ : state) {
    auto r = server.value()->MatchPolicyId(pref.value(), id.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MatchXQueryXTable);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  const bool enable_planner =
      !p3pdb::bench::FlagInArgs(argc, argv, "--no-planner");
  // `--admin [port]` attaches the embedded HTTP admin endpoint to the
  // 10k-scale SQL server so the run can be scraped live; `--slow-us N`
  // tightens the slow-query threshold, `--trace-every N` samples every Nth
  // execution, and `--linger S` keeps the server (and endpoint) up for S
  // seconds after the run.
  p3pdb::bench::BenchObservability obs;
  if (p3pdb::bench::FlagInArgs(argc, argv, "--admin") ||
      !p3pdb::bench::FlagValueFromArgs(argc, argv, "--admin").empty()) {
    obs.enable_admin = true;
    const std::string port =
        p3pdb::bench::FlagValueFromArgs(argc, argv, "--admin");
    // A following flag (e.g. `--admin --slow-us 50`) is not a port.
    obs.admin_port = port.empty() || port[0] == '-'
                         ? 0
                         : static_cast<uint16_t>(std::atoi(port.c_str()));
  }
  const std::string slow_us =
      p3pdb::bench::FlagValueFromArgs(argc, argv, "--slow-us");
  if (!slow_us.empty()) {
    obs.slow_query_threshold_us =
        static_cast<uint64_t>(std::atoll(slow_us.c_str()));
  }
  const std::string trace_every =
      p3pdb::bench::FlagValueFromArgs(argc, argv, "--trace-every");
  if (!trace_every.empty()) {
    obs.trace_sample_every =
        static_cast<uint32_t>(std::atoi(trace_every.c_str()));
  }
  const std::string linger =
      p3pdb::bench::FlagValueFromArgs(argc, argv, "--linger");
  p3pdb::bench::PrintFigure20(
      p3pdb::bench::JsonPathFromArgs(argc, argv), enable_planner, obs,
      linger.empty() ? 0 : std::atoi(linger.c_str()),
      p3pdb::bench::FlagInArgs(argc, argv, "--disk"));
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
