// E4 — Figure 21: per-preference-type execution times for matching a
// preference against a policy.
//
// One row per JRC sensitivity level. The XQuery cell for Medium is empty:
// its XTABLE translation (deep STATEMENT > DATA-GROUP > DATA > CATEGORIES
// pattern over the one-table-per-element schema) exceeds the statement
// complexity budget, reproducing "the XTABLE translation of the XQuery into
// SQL was too complex for DB2 to execute".
//
// Shapes under reproduction: the APPEL engine's time is roughly flat across
// levels (augmentation dominates, independent of the rules); the SQL time
// grows with rule count and is cheapest for Very Low.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using workload::JrcPreference;
using workload::PreferenceLevelName;

void PrintFigure21() {
  auto experiment = MatchingExperiment::Create();
  if (!experiment.ok()) {
    std::printf("error: %s\n", experiment.status().ToString().c_str());
    return;
  }
  auto results = experiment.value()->Run();
  if (!results.ok()) {
    std::printf("error: %s\n", results.status().ToString().c_str());
    return;
  }

  std::printf(
      "Figure 21: per-preference-type execution times (average per "
      "match)\n");
  std::vector<int> widths = {11, 13, 12, 12, 12, 12};
  PrintTableRule(widths);
  PrintTableRow({"Preference", "APPEL Engine", "SQL Convert", "SQL Query",
                 "SQL Total", "XQuery"},
                widths);
  PrintTableRule(widths);
  for (const LevelTimings& lt : results.value()) {
    PrintTableRow(
        {PreferenceLevelName(lt.level),
         FormatMicros(lt.appel_engine.Average()),
         FormatMicros(lt.sql_convert.Average()),
         FormatMicros(lt.sql_query.Average()),
         FormatMicros(lt.sql_total.Average()),
         lt.xquery_supported ? FormatMicros(lt.xquery_total.Average())
                             : std::string("- (too complex)")},
        widths);
  }
  PrintTableRule(widths);
  std::printf(
      "(paper, seconds: APPEL ~2.6 across levels; SQL total "
      "0.17/0.24/0.27/0.09/0.05; XQuery 2.63/2.33/-/1.51/0.31)\n\n");
}

void BM_MatchPerLevelSql(benchmark::State& state) {
  auto experiment = MatchingExperiment::Create({.repetitions = 1});
  if (!experiment.ok()) {
    state.SkipWithError("setup");
    return;
  }
  auto level = workload::AllPreferenceLevels()[state.range(0)];
  auto pref = experiment.value()->sql_server()->CompilePreference(
      JrcPreference(level));
  if (!pref.ok()) {
    state.SkipWithError("compile");
    return;
  }
  const auto& ids = experiment.value()->sql_policy_ids();
  size_t i = 0;
  for (auto _ : state) {
    auto r = experiment.value()->sql_server()->MatchPolicyId(
        pref.value(), ids[i++ % ids.size()]);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(PreferenceLevelName(level));
}
BENCHMARK(BM_MatchPerLevelSql)->DenseRange(0, 4);

void BM_MatchPerLevelNative(benchmark::State& state) {
  auto experiment = MatchingExperiment::Create({.repetitions = 1});
  if (!experiment.ok()) {
    state.SkipWithError("setup");
    return;
  }
  auto level = workload::AllPreferenceLevels()[state.range(0)];
  auto pref = experiment.value()->native_server()->CompilePreference(
      JrcPreference(level));
  if (!pref.ok()) {
    state.SkipWithError("compile");
    return;
  }
  const auto& ids = experiment.value()->native_policy_ids();
  size_t i = 0;
  for (auto _ : state) {
    auto r = experiment.value()->native_server()->MatchPolicyId(
        pref.value(), ids[i++ % ids.size()]);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(PreferenceLevelName(level));
}
BENCHMARK(BM_MatchPerLevelNative)->DenseRange(0, 4);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::PrintFigure21();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
