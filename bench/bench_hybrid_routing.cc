// A3 — the §4.2 hybrid-architecture claim: "By caching a reference file,
// the client may avoid some checks ... it is possible to design a hybrid
// architecture in which the reference file processing is done at the client
// while the preference checking is done at the server."
//
// Three request paths over the same site (29 policies, one reference file):
//   full server  — MatchUri: applicablePolicy() SQL over the Figure 16
//                  tables + preference evaluation;
//   hybrid       — HybridClient: URI resolved against the client's cached
//                  reference file, only the evaluation hits the server;
//   direct       — MatchPolicyId: evaluation only (lower bound).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "server/hybrid_client.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;
using server::HybridClient;
using workload::JrcPreference;
using workload::PreferenceLevel;

struct Setup {
  std::unique_ptr<server::PolicyServer> server;
  std::unique_ptr<HybridClient> client;
  server::CompiledPreference pref;
  std::vector<std::string> paths;
  std::vector<int64_t> ids;
};

Result<std::unique_ptr<Setup>> MakeSetup() {
  auto setup = std::make_unique<Setup>();
  P3PDB_ASSIGN_OR_RETURN(setup->server, MakeBenchServer(EngineKind::kSql));
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  for (const p3p::Policy& policy : corpus) {
    P3PDB_ASSIGN_OR_RETURN(int64_t id, setup->server->InstallPolicy(policy));
    setup->ids.push_back(id);
    setup->paths.push_back("/" + policy.name + "/item/page.html");
  }
  p3p::ReferenceFile rf = workload::CorpusReferenceFile(corpus);
  P3PDB_RETURN_IF_ERROR(setup->server->InstallReferenceFile(rf));
  setup->client = std::make_unique<HybridClient>(setup->server.get());
  P3PDB_RETURN_IF_ERROR(setup->client->FetchReferenceFile(rf));
  P3PDB_ASSIGN_OR_RETURN(
      setup->pref,
      setup->server->CompilePreference(JrcPreference(PreferenceLevel::kHigh)));
  return setup;
}

void PrintRoutingTable() {
  auto setup = MakeSetup();
  if (!setup.ok()) {
    std::printf("error: %s\n", setup.status().ToString().c_str());
    return;
  }
  Setup& s = *setup.value();

  auto measure = [&](auto&& fn) -> Result<double> {
    // Warm-up.
    for (size_t i = 0; i < s.paths.size(); ++i) {
      P3PDB_RETURN_IF_ERROR(fn(i));
    }
    TimingStats stats;
    for (int rep = 0; rep < 3; ++rep) {
      for (size_t i = 0; i < s.paths.size(); ++i) {
        Stopwatch sw;
        P3PDB_RETURN_IF_ERROR(fn(i));
        stats.Add(sw.ElapsedMicros());
      }
    }
    return stats.Average();
  };

  auto full = measure([&](size_t i) -> Status {
    auto r = s.server->MatchUri(s.pref, s.paths[i]);
    return r.ok() ? Status::OK() : r.status();
  });
  auto hybrid = measure([&](size_t i) -> Status {
    auto r = s.client->Check(s.pref, s.paths[i]);
    return r.ok() ? Status::OK() : r.status();
  });
  auto direct = measure([&](size_t i) -> Status {
    auto r = s.server->MatchPolicyId(s.pref, s.ids[i]);
    return r.ok() ? Status::OK() : r.status();
  });
  if (!full.ok() || !hybrid.ok() || !direct.ok()) {
    std::printf("error running routing ablation\n");
    return;
  }

  std::printf("Ablation A3: request routing (High preference, avg/request)\n");
  std::vector<int> widths = {38, 12};
  PrintTableRule(widths);
  PrintTableRow({"Path", "Avg"}, widths);
  PrintTableRule(widths);
  PrintTableRow({"full server (SQL applicablePolicy + eval)",
                 FormatMicros(full.value())},
                widths);
  PrintTableRow({"hybrid (client rf cache + server eval)",
                 FormatMicros(hybrid.value())},
                widths);
  PrintTableRow({"direct policy-id eval (lower bound)",
                 FormatMicros(direct.value())},
                widths);
  PrintTableRule(widths);
  double routing_overhead = full.value() - direct.value();
  double saved = routing_overhead > 0
                     ? 100.0 * (full.value() - hybrid.value()) /
                           routing_overhead
                     : 0.0;
  saved = std::min(100.0, std::max(0.0, saved));
  std::printf(
      "Hybrid saves ~%.0f%% of the URI-routing overhead while keeping "
      "preference checking\non the server — the §4.2 sketch, quantified.\n\n",
      saved);
}

void BM_FullServerMatchUri(benchmark::State& state) {
  auto setup = MakeSetup();
  if (!setup.ok()) {
    state.SkipWithError("setup");
    return;
  }
  Setup& s = *setup.value();
  size_t i = 0;
  for (auto _ : state) {
    auto r = s.server->MatchUri(s.pref, s.paths[i++ % s.paths.size()]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullServerMatchUri);

void BM_HybridCheck(benchmark::State& state) {
  auto setup = MakeSetup();
  if (!setup.ok()) {
    state.SkipWithError("setup");
    return;
  }
  Setup& s = *setup.value();
  size_t i = 0;
  for (auto _ : state) {
    auto r = s.client->Check(s.pref, s.paths[i++ % s.paths.size()]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HybridCheck);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::PrintRoutingTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
