// E6 (beyond the paper) — scaling with corpus size.
//
// The paper evaluated 29 policies because that is what the Fortune-1000
// crawl yielded; a production reference-file host (or a proxy hosting many
// sites) would carry far more. This bench sweeps the policy count and
// reports install (shredding) cost and steady-state match cost on the SQL
// engine. The expected shape: shredding grows linearly with the corpus,
// while a match stays flat — every join in the generated queries is an
// index point lookup keyed by the applicable policy's id, so the other
// policies' rows are never touched.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;
using workload::JrcPreference;
using workload::PreferenceLevel;

struct ScalePoint {
  size_t policies;
  double install_total_ms;
  double match_avg_us;
  uint64_t rows_scanned_per_match;
  TimingStats match_stats;  // raw per-match samples, for the JSON report
};

Result<ScalePoint> Measure(size_t policy_count, bool enable_planner) {
  ScalePoint point;
  point.policies = policy_count;
  P3PDB_ASSIGN_OR_RETURN(auto server,
                         MakeBenchServer(EngineKind::kSql, 32, enable_planner));
  std::vector<p3p::Policy> corpus =
      workload::FortuneCorpus({.seed = 2003, .policy_count = policy_count});
  Stopwatch install;
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : corpus) {
    P3PDB_ASSIGN_OR_RETURN(int64_t id, server->InstallPolicy(policy));
    ids.push_back(id);
  }
  point.install_total_ms = install.ElapsedMillis();

  P3PDB_ASSIGN_OR_RETURN(
      server::CompiledPreference pref,
      server->CompilePreference(JrcPreference(PreferenceLevel::kHigh)));
  for (size_t i = 0; i < ids.size(); i += 7) {  // warm-up sample
    auto r = server->MatchPolicyId(pref, ids[i]);
    if (!r.ok()) return r.status();
  }
  server->database()->ResetStats();
  TimingStats stats;
  size_t matches = 0;
  for (int rep = 0; rep < 2; ++rep) {
    for (size_t i = 0; i < ids.size(); i += 3) {
      Stopwatch sw;
      auto r = server->MatchPolicyId(pref, ids[i]);
      double us = sw.ElapsedMicros();
      if (!r.ok()) return r.status();
      stats.Add(us);
      ++matches;
    }
  }
  point.match_avg_us = stats.Average();
  point.rows_scanned_per_match =
      matches == 0 ? 0 : server->database()->stats().rows_scanned / matches;
  point.match_stats = stats;
  return point;
}

void PrintScalingTable(const std::string& json_path, bool enable_planner) {
  std::printf(
      "E6: scaling with corpus size (SQL engine, High preference)%s\n",
      enable_planner ? "" : " [--no-planner]");
  std::vector<int> widths = {10, 14, 14, 18};
  PrintTableRule(widths);
  PrintTableRow({"Policies", "Install total", "Match avg",
                 "Rows scanned/match"},
                widths);
  PrintTableRule(widths);
  (void)Measure(10, enable_planner);  // discard static-initialization costs
  std::vector<BenchJsonRecord> records;
  for (size_t n : {29u, 100u, 250u, 500u}) {
    auto point = Measure(n, enable_planner);
    if (!point.ok()) {
      std::printf("error: %s\n", point.status().ToString().c_str());
      return;
    }
    PrintTableRow({std::to_string(point.value().policies),
                   FormatDouble(point.value().install_total_ms, 1) + " ms",
                   FormatMicros(point.value().match_avg_us),
                   std::to_string(point.value().rows_scanned_per_match)},
                  widths);
    records.push_back(RecordFromTimings(
        "scaling/match_" + std::to_string(n), point.value().match_stats));
    // Install is one aggregate wall-clock measurement per corpus size, not
    // per-op samples; record it as a single-sample entry.
    TimingStats install;
    install.Add(point.value().install_total_ms * 1000.0);
    records.push_back(RecordFromTimings(
        "scaling/install_" + std::to_string(n), install));
  }
  PrintTableRule(widths);
  std::printf(
      "(install grows ~linearly; match time and rows touched per match stay "
      "flat thanks to\nthe policy-id index joins — the server-centric "
      "design scales with traffic, not with\nhow many policies the site "
      "hosts)\n\n");

  if (!json_path.empty()) {
    auto written = WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::printf("error: %s\n", written.ToString().c_str());
      return;
    }
    std::printf("wrote %zu records to %s\n\n", records.size(),
                json_path.c_str());
  }
}

void BM_MatchAt500Policies(benchmark::State& state) {
  auto server = MakeBenchServer(EngineKind::kSql);
  if (!server.ok()) {
    state.SkipWithError("server");
    return;
  }
  std::vector<p3p::Policy> corpus =
      workload::FortuneCorpus({.seed = 2003, .policy_count = 500});
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : corpus) {
    auto id = server.value()->InstallPolicy(policy);
    if (!id.ok()) {
      state.SkipWithError("install");
      return;
    }
    ids.push_back(id.value());
  }
  auto pref = server.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kHigh));
  if (!pref.ok()) {
    state.SkipWithError("compile");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto r = server.value()->MatchPolicyId(pref.value(),
                                           ids[i++ % ids.size()]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MatchAt500Policies);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::PrintScalingTable(
      p3pdb::bench::JsonPathFromArgs(argc, argv),
      !p3pdb::bench::FlagInArgs(argc, argv, "--no-planner"));
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
