// Sustained-throughput benchmark for the sharded serving tier.
//
// The other benches are closed-loop: each thread fires its next match the
// moment the previous one returns, so a slow server quietly slows the
// *offered* load and the latency numbers hide the stall (coordinated
// omission). A serving tier is sized against an arrival rate it does not
// control, so this bench is open-loop: requests are scheduled on a fixed
// grid (request i is due at start + i/qps, regardless of how request i-1
// fared), a worker pool drains the grid, and each sample measures
// completion minus *scheduled* arrival — queueing delay from falling
// behind is part of the number, exactly as a client would see it.
//
// Traffic mix: ~80% MatchPolicyId / 20% MatchUri, each request carrying
// one of 2^20 distinct preference fingerprints (a tier serves many users,
// each with their own compiled preference identity; the match caches see a
// key space far larger than their capacity, so this prices the real match
// path, not a memo hit). Two measured phases plus the install-side view:
//
//   serving/match_baseline   match traffic only, quiescent catalog
//   serving/match_churn      same grid while an installer reinstalls
//                            policies at --install-qps (epoch churn: what
//                            publication costs the match tail)
//   serving/install          per-install service latency during the churn
//                            phase (durable commit + catch-up + publish)
//
// Usage: bench_serving [--duration-s N] [--qps N] [--install-qps N]
//                      [--shards N] [--threads N] [--json <path>]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "server/sharded_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using server::CompiledPreference;
using server::ShardedPolicyServer;
using workload::JrcPreference;
using workload::PreferenceLevel;

using Clock = std::chrono::steady_clock;

constexpr uint64_t kFingerprintSpace = 1ull << 20;
constexpr size_t kCorpusPolicies = 64;

struct ServingConfig {
  double duration_s = 3.0;
  double qps = 2000.0;
  double install_qps = 50.0;
  size_t shards = 4;
  int threads = 0;  // 0 = autodetect
};

/// Cheap per-ticket deterministic randomness (splitmix64): the op mix and
/// fingerprint of request i depend only on i, so runs are reproducible and
/// workers need no shared RNG state.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct OpenLoopResult {
  TimingStats latency_us;  // completion - scheduled arrival, per request
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t not_found = 0;  // matches that resolved no policy (should be 0)
  double elapsed_us = 0.0;

  double AchievedQps() const {
    return elapsed_us <= 0.0 ? 0.0 : ops / (elapsed_us / 1e6);
  }
};

/// Drains the arrival grid with `threads` workers until `duration` of
/// scheduled arrivals have been issued. Each worker owns one pre-compiled
/// preference (CompiledPreference is move-only: the XQuery ASTs don't
/// copy) and rewrites only its fingerprint per request — 2^20 distinct
/// cache identities without a per-request compile.
OpenLoopResult RunOpenLoop(ShardedPolicyServer* tier,
                           std::vector<CompiledPreference>& worker_prefs,
                           const std::vector<int64_t>& ids,
                           const std::vector<std::string>& paths,
                           const ServingConfig& config) {
  OpenLoopResult result;
  const uint64_t total =
      static_cast<uint64_t>(config.duration_s * config.qps);
  if (total == 0 || ids.empty() || paths.empty()) return result;

  std::atomic<uint64_t> next_ticket{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> not_found{0};
  std::vector<TimingStats> latencies(config.threads);
  std::vector<std::thread> workers;
  const Clock::time_point start = Clock::now();
  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      CompiledPreference& pref = worker_prefs[t];
      for (;;) {
        const uint64_t i = next_ticket.fetch_add(1);
        if (i >= total) return;
        const Clock::time_point scheduled =
            start + std::chrono::nanoseconds(
                        static_cast<uint64_t>(i * 1e9 / config.qps));
        std::this_thread::sleep_until(scheduled);
        const uint64_t r = Mix(i);
        pref.fingerprint = 1 + (r % kFingerprintSpace);
        Result<server::MatchResult> match =
            (r >> 32) % 10 < 8
                ? tier->MatchPolicyId(pref,
                                      ids[(r >> 40) % ids.size()])
                : tier->MatchUri(pref, paths[(r >> 40) % paths.size()]);
        const Clock::time_point done = Clock::now();
        if (!match.ok()) {
          errors.fetch_add(1);
          continue;
        }
        if (!match.value().policy_found) not_found.fetch_add(1);
        latencies[t].Add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(done -
                                                                 scheduled)
                .count() /
            1000.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  result.elapsed_us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count() /
      1000.0;
  for (const TimingStats& per_worker : latencies) {
    for (double us : per_worker.samples()) result.latency_us.Add(us);
  }
  result.ops = result.latency_us.samples().size();
  result.errors = errors.load();
  result.not_found = not_found.load();
  return result;
}

void PrintPhase(const char* name, const OpenLoopResult& r, double offered) {
  std::printf(
      "%-22s %8llu ops  offered %7.0f qps  achieved %7.0f qps  "
      "p50 %s  p99 %s  max %s\n",
      name, static_cast<unsigned long long>(r.ops), offered, r.AchievedQps(),
      FormatMicros(r.latency_us.Percentile(50.0)).c_str(),
      FormatMicros(r.latency_us.Percentile(99.0)).c_str(),
      FormatMicros(r.latency_us.Max()).c_str());
}

BenchJsonRecord PhaseRecord(const char* name, const OpenLoopResult& r) {
  BenchJsonRecord record = RecordFromTimings(name, r.latency_us);
  record.iters = r.ops;
  record.matches_per_sec = r.AchievedQps();
  record.hardware_concurrency = std::thread::hardware_concurrency();
  return record;
}

int RunServing(const ServingConfig& config, const std::string& json_path) {
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus(
      {.seed = 2003, .policy_count = kCorpusPolicies});

  ShardedPolicyServer::Options options;
  options.shards = config.shards;
  auto tier = ShardedPolicyServer::Create(options);
  if (!tier.ok()) {
    std::printf("error: %s\n", tier.status().ToString().c_str());
    return 1;
  }
  std::vector<int64_t> ids;
  std::vector<std::string> paths;
  for (const p3p::Policy& policy : corpus) {
    auto id = tier.value()->InstallPolicy(policy);
    if (!id.ok()) {
      std::printf("error: %s\n", id.status().ToString().c_str());
      return 1;
    }
    ids.push_back(id.value());
    paths.push_back("/" + policy.name + "/index.html");
  }
  Status rf = tier.value()->InstallReferenceFile(
      workload::CorpusReferenceFile(corpus));
  if (!rf.ok()) {
    std::printf("error: %s\n", rf.ToString().c_str());
    return 1;
  }
  std::vector<CompiledPreference> worker_prefs;
  for (int t = 0; t < config.threads; ++t) {
    auto pref = tier.value()->CompilePreference(
        JrcPreference(PreferenceLevel::kHigh));
    if (!pref.ok()) {
      std::printf("error: %s\n", pref.status().ToString().c_str());
      return 1;
    }
    worker_prefs.push_back(std::move(pref).value());
  }
  // Warm-up outside the grid: every shard touched, behaviors resolved once.
  for (const std::string& path : paths) {
    auto warm = tier.value()->MatchUri(worker_prefs[0], path);
    if (!warm.ok()) {
      std::printf("error: %s\n", warm.status().ToString().c_str());
      return 1;
    }
  }

  std::printf(
      "Serving tier: %zu shards, %d workers, %zu policies, "
      "%.0fs @ %.0f qps (install churn %.0f qps)\n\n",
      config.shards, config.threads, corpus.size(), config.duration_s,
      config.qps, config.install_qps);

  OpenLoopResult baseline =
      RunOpenLoop(tier.value().get(), worker_prefs, ids, paths, config);
  PrintPhase("serving/match_baseline", baseline, config.qps);

  // Churn phase: the same match grid while an installer reinstalls
  // policies (same names — each reinstall is a full durable commit plus an
  // epoch publication on that name's shard).
  std::atomic<bool> stop_installer{false};
  TimingStats install_latency_us;
  std::atomic<uint64_t> install_errors{0};
  std::thread installer([&] {
    const Clock::time_point start = Clock::now();
    for (uint64_t i = 0; !stop_installer.load(); ++i) {
      const Clock::time_point scheduled =
          start + std::chrono::nanoseconds(
                      static_cast<uint64_t>(i * 1e9 / config.install_qps));
      std::this_thread::sleep_until(scheduled);
      if (stop_installer.load()) return;
      Stopwatch sw;
      auto id = tier.value()->InstallPolicy(corpus[i % corpus.size()]);
      if (!id.ok()) {
        install_errors.fetch_add(1);
        return;
      }
      install_latency_us.Add(sw.ElapsedMicros());
    }
  });
  OpenLoopResult churn =
      RunOpenLoop(tier.value().get(), worker_prefs, ids, paths, config);
  stop_installer.store(true);
  installer.join();
  PrintPhase("serving/match_churn", churn, config.qps);
  std::printf(
      "%-22s %8zu ops  avg %s  p99 %s  (catalog epoch now %llu)\n\n",
      "serving/install", install_latency_us.samples().size(),
      FormatMicros(install_latency_us.Average()).c_str(),
      FormatMicros(install_latency_us.Percentile(99.0)).c_str(),
      static_cast<unsigned long long>(tier.value()->catalog_epoch()));

  const uint64_t errors = baseline.errors + churn.errors +
                          install_errors.load() + baseline.not_found +
                          churn.not_found;
  if (errors > 0) {
    std::printf("error: %llu failed or policy-less requests\n",
                static_cast<unsigned long long>(errors));
    return 1;
  }

  if (!json_path.empty()) {
    std::vector<BenchJsonRecord> records;
    records.push_back(PhaseRecord("serving/match_baseline", baseline));
    records.push_back(PhaseRecord("serving/match_churn", churn));
    BenchJsonRecord install =
        RecordFromTimings("serving/install", install_latency_us);
    install.iters = install_latency_us.samples().size();
    install.hardware_concurrency = std::thread::hardware_concurrency();
    records.push_back(install);
    auto written = WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::printf("error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}

double FlagOr(int argc, char** argv, std::string_view flag, double fallback) {
  const std::string value = FlagValueFromArgs(argc, argv, flag);
  return value.empty() ? fallback : std::atof(value.c_str());
}

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::ServingConfig config;
  config.duration_s =
      p3pdb::bench::FlagOr(argc, argv, "--duration-s", config.duration_s);
  config.qps = p3pdb::bench::FlagOr(argc, argv, "--qps", config.qps);
  config.install_qps =
      p3pdb::bench::FlagOr(argc, argv, "--install-qps", config.install_qps);
  config.shards = static_cast<size_t>(p3pdb::bench::FlagOr(
      argc, argv, "--shards", static_cast<double>(config.shards)));
  config.threads = static_cast<int>(
      p3pdb::bench::FlagOr(argc, argv, "--threads", 0.0));
  if (config.threads <= 0) {
    // Enough workers that one stalled request does not starve the grid,
    // even on a single-core runner.
    const unsigned hw = std::thread::hardware_concurrency();
    config.threads = std::max(4, static_cast<int>(hw == 0 ? 1 : hw));
    if (config.threads > 16) config.threads = 16;
  }
  if (config.duration_s <= 0.0 || config.qps <= 0.0 || config.shards == 0) {
    std::printf("error: --duration-s, --qps, and --shards must be > 0\n");
    return 1;
  }
  return p3pdb::bench::RunServing(
      config, p3pdb::bench::JsonPathFromArgs(argc, argv));
}
