// E2 — §6.3.1: shredding the policy corpus into the privacy tables.
//
// The paper shredded 30 policies (29 crawled + 1 example) into DB2 and
// reports average/max/min shredding time, concluding the amortized cost is
// negligible because policies change rarely. This binary reproduces the
// measurement on the optimized (Figure 14) schema and, for comparison, the
// pedagogical Figure 8 schema, then runs per-policy micro-benchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/paper_examples.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;

struct ShredStats {
  TimingStats per_policy;
  double total_us = 0;
};

Result<ShredStats> MeasureShredding(EngineKind kind,
                                    const std::vector<p3p::Policy>& policies) {
  ShredStats stats;
  P3PDB_ASSIGN_OR_RETURN(auto server, MakeBenchServer(kind));
  for (const p3p::Policy& policy : policies) {
    Stopwatch sw;
    P3PDB_ASSIGN_OR_RETURN(int64_t id, server->InstallPolicy(policy));
    double us = sw.ElapsedMicros();
    (void)id;
    stats.per_policy.Add(us);
    stats.total_us += us;
  }
  return stats;
}

void PrintShreddingTable(const std::string& json_path) {
  // 29 corpus policies + Volga = the paper's 30.
  std::vector<p3p::Policy> policies = workload::FortuneCorpus();
  policies.push_back(workload::VolgaPolicy());

  std::printf("Section 6.3.1: shredding time for %zu policies\n",
              policies.size());
  std::vector<int> widths = {26, 12, 12, 12, 12};
  PrintTableRule(widths);
  PrintTableRow({"Schema", "Average", "Max", "Min", "Total"}, widths);
  PrintTableRule(widths);
  struct Config {
    const char* label;
    const char* record;
    EngineKind kind;
  };
  std::vector<BenchJsonRecord> records;
  for (const Config& config :
       {Config{"Optimized (Figure 14)", "shredding/optimized_per_policy",
               EngineKind::kSql},
        Config{"Simple (Figure 8)", "shredding/simple_per_policy",
               EngineKind::kSqlSimple}}) {
    auto stats = MeasureShredding(config.kind, policies);
    if (!stats.ok()) {
      std::printf("error: %s\n", stats.status().ToString().c_str());
      return;
    }
    PrintTableRow({config.label,
                   FormatMicros(stats.value().per_policy.Average()),
                   FormatMicros(stats.value().per_policy.Max()),
                   FormatMicros(stats.value().per_policy.Min()),
                   FormatMicros(stats.value().total_us)},
                  widths);
    records.push_back(
        RecordFromTimings(config.record, stats.value().per_policy));
  }
  PrintTableRule(widths);
  std::printf(
      "(paper, DB2 on 2002 hardware: avg 3.19 s, max 11.94 s, min 1.17 s; "
      "the conclusion is the shape: shredding amortizes to negligible "
      "because a policy changes rarely while matches are frequent)\n\n");

  if (!json_path.empty()) {
    auto written = WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::printf("error: %s\n", written.ToString().c_str());
      return;
    }
    std::printf("wrote %zu records to %s\n\n", records.size(),
                json_path.c_str());
  }
}

void BM_ShredPolicyOptimized(benchmark::State& state) {
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  const p3p::Policy& policy = corpus[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto server = MakeBenchServer(EngineKind::kSql);
    if (!server.ok()) {
      state.SkipWithError("server");
      break;
    }
    auto id = server.value()->InstallPolicy(policy);
    if (!id.ok()) {
      state.SkipWithError("install");
      break;
    }
    benchmark::DoNotOptimize(id);
  }
  state.SetLabel(policy.name);
}
BENCHMARK(BM_ShredPolicyOptimized)->Arg(0)->Arg(15)->Arg(28);

void BM_ShredPolicySimple(benchmark::State& state) {
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  const p3p::Policy& policy = corpus[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto server = MakeBenchServer(EngineKind::kSqlSimple);
    if (!server.ok()) {
      state.SkipWithError("server");
      break;
    }
    auto id = server.value()->InstallPolicy(policy);
    if (!id.ok()) {
      state.SkipWithError("install");
      break;
    }
    benchmark::DoNotOptimize(id);
  }
  state.SetLabel(policy.name);
}
BENCHMARK(BM_ShredPolicySimple)->Arg(0)->Arg(15)->Arg(28);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::PrintShreddingTable(
      p3pdb::bench::JsonPathFromArgs(argc, argv));
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
