// Storage-engine benchmark: what durability costs, and what recovery costs.
//
// Three questions, each a record in the --json report:
//
//   storage/install_memory     baseline install cost, in-memory engine
//   storage/install_memory_nostats
//                              the same installs with statistics-catalog
//                              maintenance disabled (what incremental
//                              NDV/min-max upkeep costs; absent under
//                              --no-stats, which disables stats everywhere)
//   storage/install_disk       the same installs with WAL append + fsync
//                              per install transaction
//   storage/open_checkpoint    cold open of a checkpointed directory
//                              (pages through the buffer pool, no replay)
//   storage/open_wal_replay    cold open of the same corpus left entirely
//                              in the WAL (two-pass scan + redo)
//
// The checkpoint-vs-replay pair is the recovery-cost tradeoff the
// checkpoint threshold (`storage_checkpoint_wal_bytes`) tunes: a
// checkpoint is sequential page reads, replay re-executes every committed
// record. Buffer-pool hit rates for the checkpointed open are printed
// alongside.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "workload/corpus.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;
using server::PolicyServer;

constexpr size_t kPolicyCount = 500;
constexpr int kOpenRepetitions = 10;

Result<std::unique_ptr<PolicyServer>> MakeServer(const std::string& dir,
                                                 bool checkpoint_on_close,
                                                 bool enable_stats) {
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.collect_metrics = false;
  options.enable_statement_stats = false;
  options.enable_cost_model = enable_stats;
  options.storage_path = dir;
  options.storage_checkpoint_on_close = checkpoint_on_close;
  // Never checkpoint mid-run: the "wal_replay" directory must keep its
  // whole history in the log, and the "checkpoint" one gets exactly one
  // checkpoint, at close.
  options.storage_checkpoint_wal_bytes = 1ull << 40;
  return PolicyServer::Create(options);
}

/// Installs the corpus, timing each install; empty dir = in-memory.
/// `enable_stats` toggles statistics-catalog maintenance on the write path
/// (the --no-stats ablation: what incremental NDV/min-max upkeep costs per
/// shredded install).
TimingStats InstallCorpus(const std::vector<p3p::Policy>& corpus,
                          const std::string& dir, bool checkpoint_on_close,
                          bool enable_stats) {
  TimingStats per_install;
  auto server =
      dir.empty()
          ? PolicyServer::Create({.engine = EngineKind::kSql,
                                  .enable_cost_model = enable_stats})
          : MakeServer(dir, checkpoint_on_close, enable_stats);
  if (!server.ok()) {
    std::printf("error: %s\n", server.status().ToString().c_str());
    return per_install;
  }
  for (const p3p::Policy& policy : corpus) {
    Stopwatch sw;
    auto id = server.value()->InstallPolicy(policy);
    double us = sw.ElapsedMicros();
    if (!id.ok()) {
      std::printf("error: %s\n", id.status().ToString().c_str());
      return per_install;
    }
    per_install.Add(us);
  }
  return per_install;
}

/// Times cold opens of an existing directory (destroying the server again
/// between repetitions). Returns per-open stats; reports the last open's
/// storage counters through *stats_out.
TimingStats TimeColdOpens(const std::string& dir,
                          sqldb::StorageStats* stats_out, bool enable_stats) {
  TimingStats per_open;
  for (int rep = 0; rep < kOpenRepetitions; ++rep) {
    Stopwatch sw;
    // Opening must not re-checkpoint, or the replay directory would
    // silently convert itself to a checkpointed one after the first rep.
    auto server = MakeServer(dir, /*checkpoint_on_close=*/false, enable_stats);
    double us = sw.ElapsedMicros();
    if (!server.ok()) {
      std::printf("error: %s\n", server.status().ToString().c_str());
      return per_open;
    }
    per_open.Add(us);
    *stats_out = server.value()->database()->storage_stats();
  }
  return per_open;
}

void Run(const std::string& json_path, bool no_stats) {
  std::vector<p3p::Policy> corpus =
      workload::FortuneCorpus({.seed = 2003, .policy_count = kPolicyCount});

  // --no-stats flips statistics maintenance off for the whole run (the
  // ablation JSON); the default run additionally measures the in-memory
  // install both ways so one report shows what stats upkeep costs.
  const bool stats_on = !no_stats;
  std::printf("Storage engine: %zu-policy corpus%s\n\n", kPolicyCount,
              no_stats ? " (stats maintenance off)" : "");
  TimingStats install_memory = InstallCorpus(corpus, "", false, stats_on);
  TimingStats install_memory_nostats;
  if (stats_on) {
    install_memory_nostats =
        InstallCorpus(corpus, "", false, /*enable_stats=*/false);
  }

  const std::string ckpt_dir = "bench_storage_ckpt.tmp";
  const std::string wal_dir = "bench_storage_wal.tmp";
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::remove_all(wal_dir);
  TimingStats install_disk = InstallCorpus(corpus, ckpt_dir, true, stats_on);
  InstallCorpus(corpus, wal_dir, /*checkpoint_on_close=*/false, stats_on);

  std::printf(
      "install per policy:  memory avg %s p99 %s   disk avg %s p99 %s "
      "(WAL fsync per install)\n",
      FormatMicros(install_memory.Average()).c_str(),
      FormatMicros(install_memory.Percentile(99.0)).c_str(),
      FormatMicros(install_disk.Average()).c_str(),
      FormatMicros(install_disk.Percentile(99.0)).c_str());
  if (stats_on) {
    std::printf(
        "install per policy (stats maintenance off): memory avg %s p99 %s\n",
        FormatMicros(install_memory_nostats.Average()).c_str(),
        FormatMicros(install_memory_nostats.Percentile(99.0)).c_str());
  }

  sqldb::StorageStats ckpt_stats, wal_stats;
  TimingStats open_ckpt = TimeColdOpens(ckpt_dir, &ckpt_stats, stats_on);
  TimingStats open_wal = TimeColdOpens(wal_dir, &wal_stats, stats_on);
  std::printf(
      "cold open:  checkpoint avg %s   wal-replay avg %s "
      "(%llu records, %llu txns redone)\n",
      FormatMicros(open_ckpt.Average()).c_str(),
      FormatMicros(open_wal.Average()).c_str(),
      static_cast<unsigned long long>(wal_stats.recovered_records),
      static_cast<unsigned long long>(wal_stats.recovered_txns));
  const uint64_t fetches = ckpt_stats.pool.hits + ckpt_stats.pool.misses;
  std::printf(
      "checkpoint open pool: %llu fetches, %.1f%% hits, %llu evictions\n\n",
      static_cast<unsigned long long>(fetches),
      fetches == 0 ? 0.0 : 100.0 * ckpt_stats.pool.hits / fetches,
      static_cast<unsigned long long>(ckpt_stats.pool.evictions));

  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::remove_all(wal_dir);

  if (!json_path.empty()) {
    std::vector<BenchJsonRecord> records;
    records.push_back(
        RecordFromTimings("storage/install_memory", install_memory));
    if (stats_on) {
      records.push_back(RecordFromTimings("storage/install_memory_nostats",
                                          install_memory_nostats));
    }
    records.push_back(RecordFromTimings("storage/install_disk", install_disk));
    records.push_back(
        RecordFromTimings("storage/open_checkpoint", open_ckpt));
    records.push_back(RecordFromTimings("storage/open_wal_replay", open_wal));
    auto written = WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::printf("error: %s\n", written.ToString().c_str());
      return;
    }
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
}

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::Run(p3pdb::bench::JsonPathFromArgs(argc, argv),
                    p3pdb::bench::FlagInArgs(argc, argv, "--no-stats"));
  return 0;
}
