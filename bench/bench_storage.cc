// Storage-engine benchmark: what durability costs, and what recovery costs.
//
// Three questions, each a record in the --json report:
//
//   storage/install_memory     baseline install cost, in-memory engine
//   storage/install_memory_nostats
//                              the same installs with statistics-catalog
//                              maintenance disabled (what incremental
//                              NDV/min-max upkeep costs; absent under
//                              --no-stats, which disables stats everywhere)
//   storage/install_disk       the same installs with WAL append + fsync
//                              per install transaction
//   storage/open_checkpoint    cold open of a checkpointed directory
//                              (pages through the buffer pool, no replay)
//   storage/open_wal_replay    cold open of the same corpus left entirely
//                              in the WAL (two-pass scan + redo)
//
// The checkpoint-vs-replay pair is the recovery-cost tradeoff the
// checkpoint threshold (`storage_checkpoint_wal_bytes`) tunes: a
// checkpoint is sequential page reads, replay re-executes every committed
// record. Buffer-pool hit rates for the checkpointed open are printed
// alongside.
//
// `--group-commit` runs a different experiment: what fsync coalescing buys
// concurrent installers. Eight threads (enough in-flight committers that a
// leader sync has real followers to absorb) install disjoint slices of the
// corpus into one disk-backed server, once with group commit (staged
// commits, lock released before the fsync, leader/follower coalescing) and
// once without (each install fsyncs under the exclusive lock). Two
// records:
//
//   storage/install_disk_concurrent_group
//   storage/install_disk_concurrent_nogroup

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/corpus.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;
using server::PolicyServer;

constexpr size_t kPolicyCount = 500;
constexpr int kOpenRepetitions = 10;

Result<std::unique_ptr<PolicyServer>> MakeServer(const std::string& dir,
                                                 bool checkpoint_on_close,
                                                 bool enable_stats) {
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.collect_metrics = false;
  options.enable_statement_stats = false;
  options.enable_cost_model = enable_stats;
  options.storage_path = dir;
  options.storage_checkpoint_on_close = checkpoint_on_close;
  // Never checkpoint mid-run: the "wal_replay" directory must keep its
  // whole history in the log, and the "checkpoint" one gets exactly one
  // checkpoint, at close.
  options.storage_checkpoint_wal_bytes = 1ull << 40;
  return PolicyServer::Create(options);
}

/// Installs the corpus, timing each install; empty dir = in-memory.
/// `enable_stats` toggles statistics-catalog maintenance on the write path
/// (the --no-stats ablation: what incremental NDV/min-max upkeep costs per
/// shredded install).
TimingStats InstallCorpus(const std::vector<p3p::Policy>& corpus,
                          const std::string& dir, bool checkpoint_on_close,
                          bool enable_stats) {
  TimingStats per_install;
  auto server =
      dir.empty()
          ? PolicyServer::Create({.engine = EngineKind::kSql,
                                  .enable_cost_model = enable_stats})
          : MakeServer(dir, checkpoint_on_close, enable_stats);
  if (!server.ok()) {
    std::printf("error: %s\n", server.status().ToString().c_str());
    return per_install;
  }
  for (const p3p::Policy& policy : corpus) {
    Stopwatch sw;
    auto id = server.value()->InstallPolicy(policy);
    double us = sw.ElapsedMicros();
    if (!id.ok()) {
      std::printf("error: %s\n", id.status().ToString().c_str());
      return per_install;
    }
    per_install.Add(us);
  }
  return per_install;
}

/// Times cold opens of an existing directory (destroying the server again
/// between repetitions). Returns per-open stats; reports the last open's
/// storage counters through *stats_out.
TimingStats TimeColdOpens(const std::string& dir,
                          sqldb::StorageStats* stats_out, bool enable_stats) {
  TimingStats per_open;
  for (int rep = 0; rep < kOpenRepetitions; ++rep) {
    Stopwatch sw;
    // Opening must not re-checkpoint, or the replay directory would
    // silently convert itself to a checkpointed one after the first rep.
    auto server = MakeServer(dir, /*checkpoint_on_close=*/false, enable_stats);
    double us = sw.ElapsedMicros();
    if (!server.ok()) {
      std::printf("error: %s\n", server.status().ToString().c_str());
      return per_open;
    }
    per_open.Add(us);
    *stats_out = server.value()->database()->storage_stats();
  }
  return per_open;
}

constexpr int kInstallerThreads = 8;

struct ConcurrentInstallResult {
  TimingStats per_install;   // per-install wall time, merged across threads
  double elapsed_us = 0.0;   // whole run, wall clock
  uint64_t installs = 0;
  uint64_t group_syncs = 0;  // wal_group_syncs over the run (0 = no grouping)

  double InstallsPerSec() const {
    return elapsed_us <= 0.0 ? 0.0 : installs / (elapsed_us / 1e6);
  }
};

/// kInstallerThreads threads race disjoint corpus slices into one disk-backed
/// server. With `group_commit` the exclusive lock is released before the
/// fsync and concurrent committers coalesce onto one leader sync; without
/// it every install serializes its own fsync under the lock.
///
/// The server is the serving tier's durable-store shape — kNativeAppel,
/// catalog rows only — so the install cost is the durability tail itself,
/// not the kSql shred (which is CPU-bound, serialized under the exclusive
/// lock either way, and already priced by storage/install_disk).
ConcurrentInstallResult InstallCorpusConcurrently(
    const std::vector<p3p::Policy>& corpus, const std::string& dir,
    bool group_commit) {
  ConcurrentInstallResult result;
  std::filesystem::remove_all(dir);
  PolicyServer::Options options;
  options.engine = EngineKind::kNativeAppel;
  options.collect_metrics = false;
  options.enable_statement_stats = false;
  // Stats upkeep is serial CPU under the install lock, priced by the
  // install_memory/_nostats pair; here it would only dilute the fsync tail
  // this experiment isolates.
  options.enable_cost_model = false;
  options.storage_path = dir;
  options.storage_checkpoint_on_close = false;
  options.storage_checkpoint_wal_bytes = 1ull << 40;
  options.storage_group_commit = group_commit;
  auto server = PolicyServer::Create(options);
  if (!server.ok()) {
    std::printf("error: %s\n", server.status().ToString().c_str());
    return result;
  }

  std::vector<TimingStats> per_thread(kInstallerThreads);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  Stopwatch sw;
  for (int t = 0; t < kInstallerThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < corpus.size(); i += kInstallerThreads) {
        Stopwatch install_sw;
        auto id = server.value()->InstallPolicy(corpus[i]);
        double us = install_sw.ElapsedMicros();
        if (!id.ok()) {
          ++errors;
          return;
        }
        per_thread[t].Add(us);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.elapsed_us = sw.ElapsedMicros();
  if (errors.load() > 0) {
    std::printf("error: %d concurrent installs failed\n", errors.load());
    return result;
  }
  for (const TimingStats& stats : per_thread) {
    for (double us : stats.samples()) result.per_install.Add(us);
  }
  result.installs = corpus.size();
  result.group_syncs =
      server.value()->database()->storage_stats().wal_group_syncs;
  server.value().reset();  // close before removing the directory
  std::filesystem::remove_all(dir);
  return result;
}

void RunGroupCommit(const std::string& json_path) {
  std::vector<p3p::Policy> corpus =
      workload::FortuneCorpus({.seed = 2003, .policy_count = kPolicyCount});
  std::printf(
      "Storage engine, group commit: %zu-policy corpus, %d installer "
      "threads\n\n",
      kPolicyCount, kInstallerThreads);

  ConcurrentInstallResult nogroup = InstallCorpusConcurrently(
      corpus, "bench_storage_nogroup.tmp", /*group_commit=*/false);
  ConcurrentInstallResult group = InstallCorpusConcurrently(
      corpus, "bench_storage_group.tmp", /*group_commit=*/true);
  if (group.installs == 0 || nogroup.installs == 0) return;

  std::printf(
      "fsync-per-install: %s installs/sec  avg %s p99 %s\n"
      "group commit:      %s installs/sec  avg %s p99 %s  "
      "(%llu leader syncs for %llu installs)\n"
      "speedup: %sx\n\n",
      FormatDouble(nogroup.InstallsPerSec(), 0).c_str(),
      FormatMicros(nogroup.per_install.Average()).c_str(),
      FormatMicros(nogroup.per_install.Percentile(99.0)).c_str(),
      FormatDouble(group.InstallsPerSec(), 0).c_str(),
      FormatMicros(group.per_install.Average()).c_str(),
      FormatMicros(group.per_install.Percentile(99.0)).c_str(),
      static_cast<unsigned long long>(group.group_syncs),
      static_cast<unsigned long long>(group.installs),
      FormatDouble(group.InstallsPerSec() / nogroup.InstallsPerSec(), 2)
          .c_str());

  if (!json_path.empty()) {
    std::vector<BenchJsonRecord> records;
    auto make_record = [](const char* name,
                          const ConcurrentInstallResult& run) {
      BenchJsonRecord record =
          RecordFromTimings(name, run.per_install);
      record.iters = run.installs;
      record.matches_per_sec = run.InstallsPerSec();  // installs/sec here
      record.hardware_concurrency = std::thread::hardware_concurrency();
      return record;
    };
    records.push_back(
        make_record("storage/install_disk_concurrent_group", group));
    records.push_back(
        make_record("storage/install_disk_concurrent_nogroup", nogroup));
    auto written = WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::printf("error: %s\n", written.ToString().c_str());
      return;
    }
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
}

void Run(const std::string& json_path, bool no_stats) {
  std::vector<p3p::Policy> corpus =
      workload::FortuneCorpus({.seed = 2003, .policy_count = kPolicyCount});

  // --no-stats flips statistics maintenance off for the whole run (the
  // ablation JSON); the default run additionally measures the in-memory
  // install both ways so one report shows what stats upkeep costs.
  const bool stats_on = !no_stats;
  std::printf("Storage engine: %zu-policy corpus%s\n\n", kPolicyCount,
              no_stats ? " (stats maintenance off)" : "");
  TimingStats install_memory = InstallCorpus(corpus, "", false, stats_on);
  TimingStats install_memory_nostats;
  if (stats_on) {
    install_memory_nostats =
        InstallCorpus(corpus, "", false, /*enable_stats=*/false);
  }

  const std::string ckpt_dir = "bench_storage_ckpt.tmp";
  const std::string wal_dir = "bench_storage_wal.tmp";
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::remove_all(wal_dir);
  TimingStats install_disk = InstallCorpus(corpus, ckpt_dir, true, stats_on);
  InstallCorpus(corpus, wal_dir, /*checkpoint_on_close=*/false, stats_on);

  std::printf(
      "install per policy:  memory avg %s p99 %s   disk avg %s p99 %s "
      "(WAL fsync per install)\n",
      FormatMicros(install_memory.Average()).c_str(),
      FormatMicros(install_memory.Percentile(99.0)).c_str(),
      FormatMicros(install_disk.Average()).c_str(),
      FormatMicros(install_disk.Percentile(99.0)).c_str());
  if (stats_on) {
    std::printf(
        "install per policy (stats maintenance off): memory avg %s p99 %s\n",
        FormatMicros(install_memory_nostats.Average()).c_str(),
        FormatMicros(install_memory_nostats.Percentile(99.0)).c_str());
  }

  sqldb::StorageStats ckpt_stats, wal_stats;
  TimingStats open_ckpt = TimeColdOpens(ckpt_dir, &ckpt_stats, stats_on);
  TimingStats open_wal = TimeColdOpens(wal_dir, &wal_stats, stats_on);
  std::printf(
      "cold open:  checkpoint avg %s   wal-replay avg %s "
      "(%llu records, %llu txns redone)\n",
      FormatMicros(open_ckpt.Average()).c_str(),
      FormatMicros(open_wal.Average()).c_str(),
      static_cast<unsigned long long>(wal_stats.recovered_records),
      static_cast<unsigned long long>(wal_stats.recovered_txns));
  const uint64_t fetches = ckpt_stats.pool.hits + ckpt_stats.pool.misses;
  std::printf(
      "checkpoint open pool: %llu fetches, %.1f%% hits, %llu evictions\n\n",
      static_cast<unsigned long long>(fetches),
      fetches == 0 ? 0.0 : 100.0 * ckpt_stats.pool.hits / fetches,
      static_cast<unsigned long long>(ckpt_stats.pool.evictions));

  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::remove_all(wal_dir);

  if (!json_path.empty()) {
    std::vector<BenchJsonRecord> records;
    records.push_back(
        RecordFromTimings("storage/install_memory", install_memory));
    if (stats_on) {
      records.push_back(RecordFromTimings("storage/install_memory_nostats",
                                          install_memory_nostats));
    }
    records.push_back(RecordFromTimings("storage/install_disk", install_disk));
    records.push_back(
        RecordFromTimings("storage/open_checkpoint", open_ckpt));
    records.push_back(RecordFromTimings("storage/open_wal_replay", open_wal));
    auto written = WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::printf("error: %s\n", written.ToString().c_str());
      return;
    }
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
}

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  if (p3pdb::bench::FlagInArgs(argc, argv, "--group-commit")) {
    p3pdb::bench::RunGroupCommit(p3pdb::bench::JsonPathFromArgs(argc, argv));
    return 0;
  }
  p3pdb::bench::Run(p3pdb::bench::JsonPathFromArgs(argc, argv),
                    p3pdb::bench::FlagInArgs(argc, argv, "--no-stats"));
  return 0;
}
