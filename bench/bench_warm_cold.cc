// E5 — §6.3.2 warm vs. cold: the paper reports "warm" numbers after
// discarding a first match that pays one-time costs (JVM class loading for
// the APPEL engine; DB2 was even restarted between preferences to defeat
// its query cache). Here "cold" is the first match on a freshly created
// server (schema installation + policy shredding + preference compilation
// all just happened, caches untouched), "warm" the steady state.
//
// The second half measures the match-result cache explicitly: the Figure 20
// workload (5 JRC levels x 29 corpus policies) run against an uncached
// server and against a cached one, split into a fill phase (every lookup
// misses and pays the engine) and a repeat phase (every lookup is a warm
// hit: shared lock, one shard lookup, zero SQL). `--json <path>` emits the
// records; cached-phase records carry hit_rate/cache_hits/cache_misses.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;
using workload::JrcPreference;
using workload::PreferenceLevel;

struct WarmCold {
  double cold_us = 0;
  TimingStats warm;
};

Result<WarmCold> Measure(EngineKind kind, int depth, bool enable_planner) {
  WarmCold out;
  P3PDB_ASSIGN_OR_RETURN(auto server,
                         MakeBenchServer(kind, depth, enable_planner));
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : workload::FortuneCorpus()) {
    P3PDB_ASSIGN_OR_RETURN(int64_t id, server->InstallPolicy(policy));
    ids.push_back(id);
  }
  appel::AppelRuleset ruleset = JrcPreference(PreferenceLevel::kHigh);

  // Cold: compile + first match.
  Stopwatch cold;
  P3PDB_ASSIGN_OR_RETURN(server::CompiledPreference pref,
                         server->CompilePreference(ruleset));
  auto first = server->MatchPolicyId(pref, ids[0]);
  if (!first.ok()) return first.status();
  out.cold_us = cold.ElapsedMicros();

  // Warm: steady-state matches across the corpus.
  for (int rep = 0; rep < 3; ++rep) {
    for (int64_t id : ids) {
      Stopwatch sw;
      auto r = server->MatchPolicyId(pref, id);
      double us = sw.ElapsedMicros();
      if (!r.ok()) return r.status();
      out.warm.Add(us);
    }
  }
  return out;
}

void PrintWarmCold(bool enable_planner) {
  std::printf(
      "Warm vs cold matching (High preference, first match vs steady "
      "state)%s\n",
      enable_planner ? "" : " [--no-planner]");
  std::vector<int> widths = {14, 14, 14, 10};
  PrintTableRule(widths);
  PrintTableRow({"Engine", "Cold (first)", "Warm (avg)", "Cold/Warm"},
                widths);
  PrintTableRule(widths);
  struct Config {
    const char* label;
    EngineKind kind;
    int depth;
  };
  for (const Config& config :
       {Config{"native-appel", EngineKind::kNativeAppel, 32},
        Config{"sql", EngineKind::kSql, 32},
        Config{"sql-simple", EngineKind::kSqlSimple, 32},
        Config{"xquery-xtable", EngineKind::kXQueryXTable,
               kXTableDepthBudget}}) {
    auto wc = Measure(config.kind, config.depth, enable_planner);
    if (!wc.ok()) {
      std::printf("%s: error: %s\n", config.label,
                  wc.status().ToString().c_str());
      continue;
    }
    PrintTableRow({config.label, FormatMicros(wc.value().cold_us),
                   FormatMicros(wc.value().warm.Average()),
                   FormatDouble(wc.value().cold_us /
                                    wc.value().warm.Average(),
                                1) +
                       "x"},
                  widths);
  }
  PrintTableRule(widths);
  std::printf(
      "(paper: cold-warm delta ~1.4 s native APPEL, ~1 s SQL, ~3 s "
      "XQuery; shape: the first match pays one-time compilation costs)\n\n");
}

// -- match-result cache: fill vs repeat --------------------------------------

constexpr int kCacheRepeatPasses = 3;

struct CachePhases {
  std::string engine_label;
  TimingStats uncached_repeat;  // steady state, cache disabled
  TimingStats cached_fill;      // first pass on the cached server (misses)
  TimingStats cached_repeat;    // subsequent passes (warm hits)
  server::MatchCache::Stats fill_stats;    // cache counters after the fill
  server::MatchCache::Stats repeat_stats;  // delta over the repeat phase
};

Result<CachePhases> MeasureCachePhases(const char* label, EngineKind kind,
                                       bool enable_planner) {
  CachePhases out;
  out.engine_label = label;
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();

  // Uncached baseline: MakeBenchServer keeps the paper methodology (memo
  // cache off), so its repeat passes price the engine itself.
  P3PDB_ASSIGN_OR_RETURN(auto uncached,
                         MakeBenchServer(kind, 32, enable_planner));
  // Cached server: identical configuration plus the memo cache.
  server::PolicyServer::Options cached_options;
  cached_options.engine = kind;
  cached_options.augmentation = kind == EngineKind::kNativeAppel
                                    ? server::Augmentation::kPerMatch
                                    : server::Augmentation::kAtInstall;
  cached_options.enable_match_cache = true;
  cached_options.enable_planner = enable_planner;
  P3PDB_ASSIGN_OR_RETURN(auto cached,
                         server::PolicyServer::Create(cached_options));

  std::vector<int64_t> uncached_ids;
  std::vector<int64_t> cached_ids;
  for (const p3p::Policy& policy : corpus) {
    P3PDB_ASSIGN_OR_RETURN(int64_t uid, uncached->InstallPolicy(policy));
    uncached_ids.push_back(uid);
    P3PDB_ASSIGN_OR_RETURN(int64_t cid, cached->InstallPolicy(policy));
    cached_ids.push_back(cid);
  }

  for (workload::PreferenceLevel level : workload::AllPreferenceLevels()) {
    appel::AppelRuleset ruleset = JrcPreference(level);
    P3PDB_ASSIGN_OR_RETURN(server::CompiledPreference uncached_pref,
                           uncached->CompilePreference(ruleset));
    P3PDB_ASSIGN_OR_RETURN(server::CompiledPreference cached_pref,
                           cached->CompilePreference(ruleset));

    // Uncached: one discarded warm-up pass, then timed repeats.
    for (int64_t id : uncached_ids) {
      P3PDB_RETURN_IF_ERROR(uncached->MatchPolicyId(uncached_pref, id).status());
    }
    for (int rep = 0; rep < kCacheRepeatPasses; ++rep) {
      for (int64_t id : uncached_ids) {
        Stopwatch sw;
        auto r = uncached->MatchPolicyId(uncached_pref, id);
        double us = sw.ElapsedMicros();
        if (!r.ok()) return r.status();
        out.uncached_repeat.Add(us);
      }
    }

    // Cached: the fill pass computes and memoizes every pair...
    for (int64_t id : cached_ids) {
      Stopwatch sw;
      auto r = cached->MatchPolicyId(cached_pref, id);
      double us = sw.ElapsedMicros();
      if (!r.ok()) return r.status();
      out.cached_fill.Add(us);
    }
    // ...and the repeat passes should be pure warm hits.
    for (int rep = 0; rep < kCacheRepeatPasses; ++rep) {
      for (int64_t id : cached_ids) {
        Stopwatch sw;
        auto r = cached->MatchPolicyId(cached_pref, id);
        double us = sw.ElapsedMicros();
        if (!r.ok()) return r.status();
        out.cached_repeat.Add(us);
      }
    }
  }

  // Per-phase counter deltas are not separable after the fact, so rebuild
  // them from the phase structure: fills all miss, repeats all hit. Verify
  // against the real totals rather than trusting the arithmetic.
  server::MatchCache::Stats totals = cached->match_cache()->TotalStats();
  out.fill_stats.misses = out.cached_fill.count();
  out.fill_stats.entries = totals.entries;
  out.repeat_stats.hits = totals.hits;
  out.repeat_stats.misses = totals.misses - out.cached_fill.count();
  out.repeat_stats.entries = totals.entries;
  return out;
}

void PrintCachePhases(const std::vector<CachePhases>& results) {
  std::printf(
      "Match-result cache: Figure 20 workload (5 levels x 29 policies), "
      "fill vs repeat\n");
  std::vector<int> widths = {14, 16, 14, 14, 10, 10};
  PrintTableRule(widths);
  PrintTableRow({"Engine", "Uncached (avg)", "Fill (avg)", "Repeat (avg)",
                 "Speedup", "Hit rate"},
                widths);
  PrintTableRule(widths);
  for (const CachePhases& r : results) {
    double speedup = r.cached_repeat.Average() <= 0.0
                         ? 0.0
                         : r.uncached_repeat.Average() /
                               r.cached_repeat.Average();
    PrintTableRow({r.engine_label, FormatMicros(r.uncached_repeat.Average()),
                   FormatMicros(r.cached_fill.Average()),
                   FormatMicros(r.cached_repeat.Average()),
                   FormatDouble(speedup, 1) + "x",
                   FormatDouble(r.repeat_stats.HitRate(), 3)},
                  widths);
  }
  PrintTableRule(widths);
  std::printf(
      "(repeat-phase matches are memo hits: shared lock + one shard lookup, "
      "zero SQL;\nthe uncached column is what every repeat pays without the "
      "cache)\n\n");
}

void BM_ColdSqlSetupAndFirstMatch(benchmark::State& state) {
  appel::AppelRuleset ruleset = JrcPreference(PreferenceLevel::kHigh);
  p3p::Policy volga = workload::FortuneCorpus()[0];
  for (auto _ : state) {
    auto server = MakeBenchServer(server::EngineKind::kSql);
    if (!server.ok()) {
      state.SkipWithError("server");
      break;
    }
    auto id = server.value()->InstallPolicy(volga);
    auto pref = server.value()->CompilePreference(ruleset);
    if (!id.ok() || !pref.ok()) {
      state.SkipWithError("setup");
      break;
    }
    auto r = server.value()->MatchPolicyId(pref.value(), id.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ColdSqlSetupAndFirstMatch);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  using p3pdb::bench::BenchJsonRecord;
  using p3pdb::bench::CachePhases;
  using p3pdb::server::EngineKind;

  const bool enable_planner =
      !p3pdb::bench::FlagInArgs(argc, argv, "--no-planner");
  p3pdb::bench::PrintWarmCold(enable_planner);

  std::vector<CachePhases> cache_results;
  for (auto [label, kind] :
       {std::pair{"sql", EngineKind::kSql},
        std::pair{"native-appel", EngineKind::kNativeAppel}}) {
    auto phases =
        p3pdb::bench::MeasureCachePhases(label, kind, enable_planner);
    if (!phases.ok()) {
      std::printf("%s: error: %s\n", label,
                  phases.status().ToString().c_str());
      continue;
    }
    cache_results.push_back(std::move(phases.value()));
  }
  p3pdb::bench::PrintCachePhases(cache_results);

  std::string json_path = p3pdb::bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    std::vector<BenchJsonRecord> records;
    for (const CachePhases& r : cache_results) {
      records.push_back(p3pdb::bench::RecordFromTimings(
          "warm_cold/" + r.engine_label + "/uncached_repeat",
          r.uncached_repeat));
      BenchJsonRecord fill = p3pdb::bench::RecordFromTimings(
          "warm_cold/" + r.engine_label + "/cached_fill", r.cached_fill);
      fill.hit_rate = r.fill_stats.HitRate();
      fill.cache_hits = r.fill_stats.hits;
      fill.cache_misses = r.fill_stats.misses;
      records.push_back(std::move(fill));
      BenchJsonRecord repeat = p3pdb::bench::RecordFromTimings(
          "warm_cold/" + r.engine_label + "/cached_repeat", r.cached_repeat);
      repeat.hit_rate = r.repeat_stats.HitRate();
      repeat.cache_hits = r.repeat_stats.hits;
      repeat.cache_misses = r.repeat_stats.misses;
      records.push_back(std::move(repeat));
    }
    auto written = p3pdb::bench::WriteBenchJson(json_path, records);
    if (!written.ok()) {
      std::printf("error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
