// E5 — §6.3.2 warm vs. cold: the paper reports "warm" numbers after
// discarding a first match that pays one-time costs (JVM class loading for
// the APPEL engine; DB2 was even restarted between preferences to defeat
// its query cache). Here "cold" is the first match on a freshly created
// server (schema installation + policy shredding + preference compilation
// all just happened, caches untouched), "warm" the steady state.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {
namespace {

using server::EngineKind;
using workload::JrcPreference;
using workload::PreferenceLevel;

struct WarmCold {
  double cold_us = 0;
  TimingStats warm;
};

Result<WarmCold> Measure(EngineKind kind, int depth) {
  WarmCold out;
  P3PDB_ASSIGN_OR_RETURN(auto server, MakeBenchServer(kind, depth));
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : workload::FortuneCorpus()) {
    P3PDB_ASSIGN_OR_RETURN(int64_t id, server->InstallPolicy(policy));
    ids.push_back(id);
  }
  appel::AppelRuleset ruleset = JrcPreference(PreferenceLevel::kHigh);

  // Cold: compile + first match.
  Stopwatch cold;
  P3PDB_ASSIGN_OR_RETURN(server::CompiledPreference pref,
                         server->CompilePreference(ruleset));
  auto first = server->MatchPolicyId(pref, ids[0]);
  if (!first.ok()) return first.status();
  out.cold_us = cold.ElapsedMicros();

  // Warm: steady-state matches across the corpus.
  for (int rep = 0; rep < 3; ++rep) {
    for (int64_t id : ids) {
      Stopwatch sw;
      auto r = server->MatchPolicyId(pref, id);
      double us = sw.ElapsedMicros();
      if (!r.ok()) return r.status();
      out.warm.Add(us);
    }
  }
  return out;
}

void PrintWarmCold() {
  std::printf(
      "Warm vs cold matching (High preference, first match vs steady "
      "state)\n");
  std::vector<int> widths = {14, 14, 14, 10};
  PrintTableRule(widths);
  PrintTableRow({"Engine", "Cold (first)", "Warm (avg)", "Cold/Warm"},
                widths);
  PrintTableRule(widths);
  struct Config {
    const char* label;
    EngineKind kind;
    int depth;
  };
  for (const Config& config :
       {Config{"native-appel", EngineKind::kNativeAppel, 32},
        Config{"sql", EngineKind::kSql, 32},
        Config{"sql-simple", EngineKind::kSqlSimple, 32},
        Config{"xquery-xtable", EngineKind::kXQueryXTable,
               kXTableDepthBudget}}) {
    auto wc = Measure(config.kind, config.depth);
    if (!wc.ok()) {
      std::printf("%s: error: %s\n", config.label,
                  wc.status().ToString().c_str());
      continue;
    }
    PrintTableRow({config.label, FormatMicros(wc.value().cold_us),
                   FormatMicros(wc.value().warm.Average()),
                   FormatDouble(wc.value().cold_us /
                                    wc.value().warm.Average(),
                                1) +
                       "x"},
                  widths);
  }
  PrintTableRule(widths);
  std::printf(
      "(paper: cold-warm delta ~1.4 s native APPEL, ~1 s SQL, ~3 s "
      "XQuery; shape: the first match pays one-time compilation costs)\n\n");
}

void BM_ColdSqlSetupAndFirstMatch(benchmark::State& state) {
  appel::AppelRuleset ruleset = JrcPreference(PreferenceLevel::kHigh);
  p3p::Policy volga = workload::FortuneCorpus()[0];
  for (auto _ : state) {
    auto server = MakeBenchServer(server::EngineKind::kSql);
    if (!server.ok()) {
      state.SkipWithError("server");
      break;
    }
    auto id = server.value()->InstallPolicy(volga);
    auto pref = server.value()->CompilePreference(ruleset);
    if (!id.ok() || !pref.ok()) {
      state.SkipWithError("setup");
      break;
    }
    auto r = server.value()->MatchPolicyId(pref.value(), id.value());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ColdSqlSetupAndFirstMatch);

}  // namespace
}  // namespace p3pdb::bench

int main(int argc, char** argv) {
  p3pdb::bench::PrintWarmCold();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
