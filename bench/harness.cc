#include "bench/harness.h"

#include <cstdio>
#include <string_view>

#include "common/string_util.h"

namespace p3pdb::bench {

using server::Augmentation;
using server::EngineKind;
using server::PolicyServer;
using workload::JrcPreference;
using workload::PreferenceLevel;

Result<std::unique_ptr<PolicyServer>> MakeBenchServer(
    EngineKind kind, int max_subquery_depth, bool enable_planner,
    bool steady_state, const BenchObservability& obs,
    const std::string& storage_path) {
  PolicyServer::Options options;
  options.engine = kind;
  options.storage_path = storage_path;  // empty = in-memory (the default)
  options.augmentation = kind == EngineKind::kNativeAppel
                             ? Augmentation::kPerMatch
                             : Augmentation::kAtInstall;
  options.max_subquery_depth = max_subquery_depth;
  options.enable_planner = enable_planner;
  if (steady_state) {
    // Deployed-matcher configuration: preferences compile to prepared rule
    // queries (per-match cost is execution only) and the metrics registry
    // and statement telemetry are off so timings don't include counter
    // upkeep. fig20's 10k-scale record uses this; the small-scale figures
    // keep the paper's text-per-match methodology.
    options.use_prepared_statements = true;
    options.collect_metrics = false;
    options.enable_statement_stats = false;
  }
  if (obs.enable_admin || obs.slow_query_threshold_us > 0 ||
      obs.trace_sample_every > 0) {
    // A flag asked for live introspection: turn telemetry back on (the
    // run's timings then include it, which the flags' users accept).
    options.enable_statement_stats = true;
    options.slow_query_threshold_us = obs.slow_query_threshold_us;
    options.trace_sample_every = obs.trace_sample_every;
    options.enable_admin_endpoint = obs.enable_admin;
    options.admin_port = obs.admin_port;
  }
  // The paper's figures measure engine cost per match; its methodology even
  // restarted DB2 between preferences to defeat database caching. Memoizing
  // repeated matches would report the cache, not the engine, so the figure
  // benches run uncached. bench_warm_cold builds its own cached servers to
  // measure the memo layer explicitly.
  options.enable_match_cache = false;
  return PolicyServer::Create(options);
}

Result<std::unique_ptr<MatchingExperiment>> MatchingExperiment::Create() {
  return Create(Options{});
}

Result<std::unique_ptr<MatchingExperiment>> MatchingExperiment::Create(
    Options options) {
  std::unique_ptr<MatchingExperiment> exp(new MatchingExperiment());
  exp->options_ = options;
  exp->corpus_ = workload::FortuneCorpus(
      {.seed = options.corpus_seed, .policy_count = options.policy_count});

  P3PDB_ASSIGN_OR_RETURN(exp->native_server_,
                         MakeBenchServer(EngineKind::kNativeAppel));
  P3PDB_ASSIGN_OR_RETURN(
      exp->sql_server_,
      MakeBenchServer(EngineKind::kSql, 32, options.enable_planner));
  P3PDB_ASSIGN_OR_RETURN(exp->xtable_server_,
                         MakeBenchServer(EngineKind::kXQueryXTable,
                                         kXTableDepthBudget,
                                         options.enable_planner));

  for (const p3p::Policy& policy : exp->corpus_) {
    P3PDB_ASSIGN_OR_RETURN(int64_t nid,
                           exp->native_server_->InstallPolicy(policy));
    exp->native_policy_ids_.push_back(nid);
    P3PDB_ASSIGN_OR_RETURN(int64_t sid,
                           exp->sql_server_->InstallPolicy(policy));
    exp->sql_policy_ids_.push_back(sid);
    P3PDB_ASSIGN_OR_RETURN(int64_t xid,
                           exp->xtable_server_->InstallPolicy(policy));
    exp->xtable_policy_ids_.push_back(xid);
  }
  return exp;
}

Result<std::vector<LevelTimings>> MatchingExperiment::Run() {
  std::vector<LevelTimings> results;
  for (PreferenceLevel level : workload::AllPreferenceLevels()) {
    LevelTimings timings;
    timings.level = level;
    appel::AppelRuleset ruleset = JrcPreference(level);

    // Compiled forms reused for the per-match query timings.
    P3PDB_ASSIGN_OR_RETURN(server::CompiledPreference native_pref,
                           native_server_->CompilePreference(ruleset));
    P3PDB_ASSIGN_OR_RETURN(server::CompiledPreference sql_pref,
                           sql_server_->CompilePreference(ruleset));
    auto xtable_pref = xtable_server_->CompilePreference(ruleset);
    timings.xquery_supported = xtable_pref.ok();

    // Warm-up pass (the paper reports warm numbers).
    for (size_t p = 0; p < corpus_.size(); ++p) {
      auto r1 = native_server_->MatchPolicyId(native_pref,
                                              native_policy_ids_[p]);
      if (!r1.ok()) return r1.status();
      auto r2 = sql_server_->MatchPolicyId(sql_pref, sql_policy_ids_[p]);
      if (!r2.ok()) return r2.status();
      if (timings.xquery_supported) {
        auto r3 = xtable_server_->MatchPolicyId(xtable_pref.value(),
                                                xtable_policy_ids_[p]);
        if (!r3.ok()) return r3.status();
      }
    }

    for (int rep = 0; rep < options_.repetitions; ++rep) {
      for (size_t p = 0; p < corpus_.size(); ++p) {
        // Native APPEL engine (includes per-match naive augmentation).
        {
          Stopwatch sw;
          auto r = native_server_->MatchPolicyId(native_pref,
                                                 native_policy_ids_[p]);
          double us = sw.ElapsedMicros();
          if (!r.ok()) return r.status();
          timings.appel_engine.Add(us);
        }
        // SQL: conversion measured as a fresh translation per match (the
        // paper's conversion column), query with the compiled form.
        {
          Stopwatch sw;
          auto compiled = sql_server_->CompilePreference(ruleset);
          double convert_us = sw.ElapsedMicros();
          if (!compiled.ok()) return compiled.status();
          Stopwatch sw2;
          auto r = sql_server_->MatchPolicyId(compiled.value(),
                                              sql_policy_ids_[p]);
          double query_us = sw2.ElapsedMicros();
          if (!r.ok()) return r.status();
          timings.sql_convert.Add(convert_us);
          timings.sql_query.Add(query_us);
          timings.sql_total.Add(convert_us + query_us);
        }
        // XQuery: conversion chain plus execution, per match.
        if (timings.xquery_supported) {
          Stopwatch sw;
          auto compiled = xtable_server_->CompilePreference(ruleset);
          if (!compiled.ok()) return compiled.status();
          auto r = xtable_server_->MatchPolicyId(compiled.value(),
                                                 xtable_policy_ids_[p]);
          double us = sw.ElapsedMicros();
          if (!r.ok()) return r.status();
          timings.xquery_total.Add(us);
        }
      }
    }
    results.push_back(std::move(timings));
  }
  return results;
}

std::string FormatMicros(double micros) {
  if (micros >= 1000.0) {
    return FormatDouble(micros / 1000.0, 2) + " ms";
  }
  return FormatDouble(micros, 1) + " us";
}

void PrintTableRule(const std::vector<int>& widths) {
  std::fputc('+', stdout);
  for (int w : widths) {
    for (int i = 0; i < w + 2; ++i) std::fputc('-', stdout);
    std::fputc('+', stdout);
  }
  std::fputc('\n', stdout);
}

void PrintTableRow(const std::vector<std::string>& cells,
                   const std::vector<int>& widths) {
  std::fputc('|', stdout);
  for (size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < cells.size() ? cells[i] : std::string();
    std::printf(" %-*s |", widths[i], cell.c_str());
  }
  std::fputc('\n', stdout);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

BenchJsonRecord RecordFromTimings(std::string name,
                                  const TimingStats& micros) {
  BenchJsonRecord record;
  record.name = std::move(name);
  record.iters = micros.count();
  record.ns_per_op = micros.Average() * 1000.0;
  record.matches_per_sec =
      micros.Average() <= 0.0 ? 0.0 : 1e6 / micros.Average();
  record.min_ns = micros.Min() * 1000.0;
  record.max_ns = micros.Max() * 1000.0;
  record.p50_ns = micros.Percentile(50.0) * 1000.0;
  record.p90_ns = micros.Percentile(90.0) * 1000.0;
  record.p99_ns = micros.Percentile(99.0) * 1000.0;
  return record;
}

std::string BenchRecordsToJson(const std::vector<BenchJsonRecord>& records) {
  std::string out = "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchJsonRecord& r = records[i];
    out += "  {\"name\": \"" + JsonEscape(r.name) + "\", ";
    out += "\"iters\": " + std::to_string(r.iters) + ", ";
    out += "\"ns_per_op\": " + FormatDouble(r.ns_per_op, 1) + ", ";
    out += "\"matches_per_sec\": " + FormatDouble(r.matches_per_sec, 1) + ", ";
    out += "\"min_ns\": " + FormatDouble(r.min_ns, 1) + ", ";
    out += "\"max_ns\": " + FormatDouble(r.max_ns, 1) + ", ";
    out += "\"p50_ns\": " + FormatDouble(r.p50_ns, 1) + ", ";
    out += "\"p90_ns\": " + FormatDouble(r.p90_ns, 1) + ", ";
    out += "\"p99_ns\": " + FormatDouble(r.p99_ns, 1);
    if (r.hit_rate >= 0.0) {
      out += ", \"hit_rate\": " + FormatDouble(r.hit_rate, 4) + ", ";
      out += "\"cache_hits\": " + std::to_string(r.cache_hits) + ", ";
      out += "\"cache_misses\": " + std::to_string(r.cache_misses);
    }
    if (r.hardware_concurrency > 0) {
      out += ", \"hardware_concurrency\": " +
             std::to_string(r.hardware_concurrency);
    }
    out += "}";
    if (i + 1 < records.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

bool FlagInArgs(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == flag) return true;
  }
  return false;
}

std::string FlagValueFromArgs(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      return std::string(arg.substr(flag.size() + 1));
    }
  }
  return std::string();
}

std::string JsonPathFromArgs(int argc, char** argv) {
  return FlagValueFromArgs(argc, argv, "--json");
}

Status WriteBenchJson(const std::string& path,
                      const std::vector<BenchJsonRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const std::string json = BenchRecordsToJson(records);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace p3pdb::bench
