#include "bench/harness.h"

#include <cstdio>

#include "common/string_util.h"

namespace p3pdb::bench {

using server::Augmentation;
using server::EngineKind;
using server::PolicyServer;
using workload::JrcPreference;
using workload::PreferenceLevel;

Result<std::unique_ptr<PolicyServer>> MakeBenchServer(EngineKind kind,
                                                      int max_subquery_depth) {
  PolicyServer::Options options;
  options.engine = kind;
  options.augmentation = kind == EngineKind::kNativeAppel
                             ? Augmentation::kPerMatch
                             : Augmentation::kAtInstall;
  options.max_subquery_depth = max_subquery_depth;
  return PolicyServer::Create(options);
}

Result<std::unique_ptr<MatchingExperiment>> MatchingExperiment::Create() {
  return Create(Options{});
}

Result<std::unique_ptr<MatchingExperiment>> MatchingExperiment::Create(
    Options options) {
  std::unique_ptr<MatchingExperiment> exp(new MatchingExperiment());
  exp->options_ = options;
  exp->corpus_ = workload::FortuneCorpus(
      {.seed = options.corpus_seed, .policy_count = options.policy_count});

  P3PDB_ASSIGN_OR_RETURN(exp->native_server_,
                         MakeBenchServer(EngineKind::kNativeAppel));
  P3PDB_ASSIGN_OR_RETURN(exp->sql_server_,
                         MakeBenchServer(EngineKind::kSql));
  P3PDB_ASSIGN_OR_RETURN(
      exp->xtable_server_,
      MakeBenchServer(EngineKind::kXQueryXTable, kXTableDepthBudget));

  for (const p3p::Policy& policy : exp->corpus_) {
    P3PDB_ASSIGN_OR_RETURN(int64_t nid,
                           exp->native_server_->InstallPolicy(policy));
    exp->native_policy_ids_.push_back(nid);
    P3PDB_ASSIGN_OR_RETURN(int64_t sid,
                           exp->sql_server_->InstallPolicy(policy));
    exp->sql_policy_ids_.push_back(sid);
    P3PDB_ASSIGN_OR_RETURN(int64_t xid,
                           exp->xtable_server_->InstallPolicy(policy));
    exp->xtable_policy_ids_.push_back(xid);
  }
  return exp;
}

Result<std::vector<LevelTimings>> MatchingExperiment::Run() {
  std::vector<LevelTimings> results;
  for (PreferenceLevel level : workload::AllPreferenceLevels()) {
    LevelTimings timings;
    timings.level = level;
    appel::AppelRuleset ruleset = JrcPreference(level);

    // Compiled forms reused for the per-match query timings.
    P3PDB_ASSIGN_OR_RETURN(server::CompiledPreference native_pref,
                           native_server_->CompilePreference(ruleset));
    P3PDB_ASSIGN_OR_RETURN(server::CompiledPreference sql_pref,
                           sql_server_->CompilePreference(ruleset));
    auto xtable_pref = xtable_server_->CompilePreference(ruleset);
    timings.xquery_supported = xtable_pref.ok();

    // Warm-up pass (the paper reports warm numbers).
    for (size_t p = 0; p < corpus_.size(); ++p) {
      auto r1 = native_server_->MatchPolicyId(native_pref,
                                              native_policy_ids_[p]);
      if (!r1.ok()) return r1.status();
      auto r2 = sql_server_->MatchPolicyId(sql_pref, sql_policy_ids_[p]);
      if (!r2.ok()) return r2.status();
      if (timings.xquery_supported) {
        auto r3 = xtable_server_->MatchPolicyId(xtable_pref.value(),
                                                xtable_policy_ids_[p]);
        if (!r3.ok()) return r3.status();
      }
    }

    for (int rep = 0; rep < options_.repetitions; ++rep) {
      for (size_t p = 0; p < corpus_.size(); ++p) {
        // Native APPEL engine (includes per-match naive augmentation).
        {
          Stopwatch sw;
          auto r = native_server_->MatchPolicyId(native_pref,
                                                 native_policy_ids_[p]);
          double us = sw.ElapsedMicros();
          if (!r.ok()) return r.status();
          timings.appel_engine.Add(us);
        }
        // SQL: conversion measured as a fresh translation per match (the
        // paper's conversion column), query with the compiled form.
        {
          Stopwatch sw;
          auto compiled = sql_server_->CompilePreference(ruleset);
          double convert_us = sw.ElapsedMicros();
          if (!compiled.ok()) return compiled.status();
          Stopwatch sw2;
          auto r = sql_server_->MatchPolicyId(compiled.value(),
                                              sql_policy_ids_[p]);
          double query_us = sw2.ElapsedMicros();
          if (!r.ok()) return r.status();
          timings.sql_convert.Add(convert_us);
          timings.sql_query.Add(query_us);
          timings.sql_total.Add(convert_us + query_us);
        }
        // XQuery: conversion chain plus execution, per match.
        if (timings.xquery_supported) {
          Stopwatch sw;
          auto compiled = xtable_server_->CompilePreference(ruleset);
          if (!compiled.ok()) return compiled.status();
          auto r = xtable_server_->MatchPolicyId(compiled.value(),
                                                 xtable_policy_ids_[p]);
          double us = sw.ElapsedMicros();
          if (!r.ok()) return r.status();
          timings.xquery_total.Add(us);
        }
      }
    }
    results.push_back(std::move(timings));
  }
  return results;
}

std::string FormatMicros(double micros) {
  if (micros >= 1000.0) {
    return FormatDouble(micros / 1000.0, 2) + " ms";
  }
  return FormatDouble(micros, 1) + " us";
}

void PrintTableRule(const std::vector<int>& widths) {
  std::fputc('+', stdout);
  for (int w : widths) {
    for (int i = 0; i < w + 2; ++i) std::fputc('-', stdout);
    std::fputc('+', stdout);
  }
  std::fputc('\n', stdout);
}

void PrintTableRow(const std::vector<std::string>& cells,
                   const std::vector<int>& widths) {
  std::fputc('|', stdout);
  for (size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < cells.size() ? cells[i] : std::string();
    std::printf(" %-*s |", widths[i], cell.c_str());
  }
  std::fputc('\n', stdout);
}

}  // namespace p3pdb::bench
