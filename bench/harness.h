// Shared harness for the paper-reproduction benchmarks.
//
// The experiments of §6 measure the time to match a preference against a
// policy on three implementations: the native APPEL engine (client-centric
// baseline), the SQL implementation (conversion + query, Figure 15
// translator over the Figure 14 schema), and the XQuery path (APPEL ->
// XQuery -> XTABLE SQL over the Figure 8 schema). This harness installs the
// synthetic Fortune-1000 corpus in one server per engine, compiles the five
// JRC preference levels, and times matches the way the paper reports them
// (warm numbers; avg/max/min per match).

#ifndef P3PDB_BENCH_HARNESS_H_
#define P3PDB_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"
#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::bench {

/// The statement complexity budget of the XTABLE path's database, chosen so
/// that the Medium preference's deep DATA/CATEGORIES pattern exceeds it
/// (the paper: "the XTABLE translation ... was too complex for DB2").
inline constexpr int kXTableDepthBudget = 6;

/// Per-(level, policy) timings across the three implementations, in
/// microseconds per match.
struct LevelTimings {
  workload::PreferenceLevel level;
  TimingStats appel_engine;   // native APPEL engine, per-match augmentation
  TimingStats sql_convert;    // APPEL -> SQL translation
  TimingStats sql_query;      // query execution against shredded tables
  TimingStats sql_total;      // convert + query
  TimingStats xquery_total;   // APPEL -> XQuery -> XTABLE SQL -> execute
  bool xquery_supported = true;  // false when the translation fails to prepare
};

/// The full §6 matching experiment.
class MatchingExperiment {
 public:
  struct Options {
    uint64_t corpus_seed = 2003;
    size_t policy_count = 29;
    /// Matches per (level, policy) pair after one discarded warm-up pass.
    int repetitions = 3;
    /// Run the SQL servers with the rule-based planner + plan cache
    /// (`--no-planner` ablation flips this to false).
    bool enable_planner = sqldb::PlannerEnabledFromEnv();
  };

  static Result<std::unique_ptr<MatchingExperiment>> Create(Options options);
  static Result<std::unique_ptr<MatchingExperiment>> Create();

  /// Runs the experiment; one LevelTimings per JRC level, Figure 19 order.
  Result<std::vector<LevelTimings>> Run();

  const std::vector<p3p::Policy>& corpus() const { return corpus_; }
  server::PolicyServer* sql_server() { return sql_server_.get(); }
  server::PolicyServer* native_server() { return native_server_.get(); }
  server::PolicyServer* xtable_server() { return xtable_server_.get(); }

  const std::vector<int64_t>& sql_policy_ids() const {
    return sql_policy_ids_;
  }
  const std::vector<int64_t>& native_policy_ids() const {
    return native_policy_ids_;
  }
  const std::vector<int64_t>& xtable_policy_ids() const {
    return xtable_policy_ids_;
  }

 private:
  MatchingExperiment() = default;

  Options options_;
  std::vector<p3p::Policy> corpus_;
  std::unique_ptr<server::PolicyServer> native_server_;
  std::unique_ptr<server::PolicyServer> sql_server_;
  std::unique_ptr<server::PolicyServer> xtable_server_;
  std::vector<int64_t> native_policy_ids_;
  std::vector<int64_t> sql_policy_ids_;
  std::vector<int64_t> xtable_policy_ids_;
};

/// Creates a server of the given kind with the §6 defaults for it.
/// `enable_planner` toggles the database's EXISTS-decorrelation planner and
/// plan cache (the `--no-planner` ablation); the default honors
/// P3PDB_NO_PLANNER like every other server.
///
/// `steady_state` configures the server the way a deployed matcher runs
/// between policy updates: rule queries are prepared once at preference
/// compile time (conversion cost, reported separately by fig20) and the
/// server's own metrics registry is off, so per-match timings measure the
/// engine rather than text re-submission and counter upkeep. The default
/// keeps the paper methodology (SQL text submitted per match).
/// Observability add-ons for a bench server, driven by the `--admin`,
/// `--slow-us`, and `--trace-every` flags: statement telemetry plus the
/// embedded HTTP admin endpoint, so a run can be scraped live
/// (`curl :PORT/statements?top=5`) while it matches. All off by default —
/// the timed records stay free of telemetry unless a flag asks for it.
struct BenchObservability {
  bool enable_admin = false;
  uint16_t admin_port = 0;  // 0 = ephemeral (the chosen port is printed)
  uint64_t slow_query_threshold_us = 0;
  uint32_t trace_sample_every = 0;
};

Result<std::unique_ptr<server::PolicyServer>> MakeBenchServer(
    server::EngineKind kind, int max_subquery_depth = 32,
    bool enable_planner = sqldb::PlannerEnabledFromEnv(),
    bool steady_state = false, const BenchObservability& obs = {},
    const std::string& storage_path = {});

/// True when `flag` appears verbatim among the arguments (e.g.
/// `--no-planner`).
bool FlagInArgs(int argc, char** argv, std::string_view flag);

/// Returns the value following `flag` (`--flag <value>` or
/// `--flag=<value>`); empty string when absent.
std::string FlagValueFromArgs(int argc, char** argv, std::string_view flag);

/// seconds/milliseconds pretty-printing for the report tables.
std::string FormatMicros(double micros);

// -- machine-readable reports -----------------------------------------------

/// One benchmark result for the machine-readable report emitted with
/// `--json <path>` (tracking runs across commits; the tables above remain
/// the human report).
struct BenchJsonRecord {
  std::string name;
  uint64_t iters = 0;
  double ns_per_op = 0.0;
  double matches_per_sec = 0.0;  // 0 when the bench has no match notion
  // Latency distribution (nanoseconds). All zero when the bench only
  // measured an aggregate throughput, not per-op samples.
  double min_ns = 0.0;
  double max_ns = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  // Match-cache effectiveness, for benches run against a cached server.
  // hit_rate < 0 means "not a cached run"; the three fields are then left
  // out of the JSON so existing tooling sees unchanged records.
  double hit_rate = -1.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // std::thread::hardware_concurrency() of the machine that produced the
  // record, for benches whose numbers only compare across runs on the same
  // core count. 0 (the default) leaves the field out of the JSON.
  unsigned hardware_concurrency = 0;
};

/// Builds a record from per-op samples held in microseconds (the unit
/// TimingStats accumulates): avg/min/max plus p50/p90/p99, all in ns.
BenchJsonRecord RecordFromTimings(std::string name, const TimingStats& micros);

/// Renders the records as a JSON array, keys in declaration order.
std::string BenchRecordsToJson(const std::vector<BenchJsonRecord>& records);

/// Returns the path following a `--json` flag (`--json <path>` or
/// `--json=<path>`); empty string when the flag is absent.
std::string JsonPathFromArgs(int argc, char** argv);

/// Writes the records to `path` (overwriting) as a JSON array.
Status WriteBenchJson(const std::string& path,
                      const std::vector<BenchJsonRecord>& records);

/// Prints a Markdown-ish table row.
void PrintTableRule(const std::vector<int>& widths);
void PrintTableRow(const std::vector<std::string>& cells,
                   const std::vector<int>& widths);

}  // namespace p3pdb::bench

#endif  // P3PDB_BENCH_HARNESS_H_
