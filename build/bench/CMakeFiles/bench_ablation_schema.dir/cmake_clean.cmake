file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_schema.dir/bench_ablation_schema.cc.o"
  "CMakeFiles/bench_ablation_schema.dir/bench_ablation_schema.cc.o.d"
  "bench_ablation_schema"
  "bench_ablation_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
