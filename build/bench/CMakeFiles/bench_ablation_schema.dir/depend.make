# Empty dependencies file for bench_ablation_schema.
# This may be replaced when dependencies are built.
