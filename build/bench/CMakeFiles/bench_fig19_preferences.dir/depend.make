# Empty dependencies file for bench_fig19_preferences.
# This may be replaced when dependencies are built.
