file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_matching.dir/bench_fig20_matching.cc.o"
  "CMakeFiles/bench_fig20_matching.dir/bench_fig20_matching.cc.o.d"
  "bench_fig20_matching"
  "bench_fig20_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
