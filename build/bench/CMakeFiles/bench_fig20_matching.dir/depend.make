# Empty dependencies file for bench_fig20_matching.
# This may be replaced when dependencies are built.
