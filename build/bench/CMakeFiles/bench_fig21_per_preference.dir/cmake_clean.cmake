file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_per_preference.dir/bench_fig21_per_preference.cc.o"
  "CMakeFiles/bench_fig21_per_preference.dir/bench_fig21_per_preference.cc.o.d"
  "bench_fig21_per_preference"
  "bench_fig21_per_preference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_per_preference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
