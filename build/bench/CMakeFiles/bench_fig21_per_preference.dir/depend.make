# Empty dependencies file for bench_fig21_per_preference.
# This may be replaced when dependencies are built.
