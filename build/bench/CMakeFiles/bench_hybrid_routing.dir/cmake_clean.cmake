file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_routing.dir/bench_hybrid_routing.cc.o"
  "CMakeFiles/bench_hybrid_routing.dir/bench_hybrid_routing.cc.o.d"
  "bench_hybrid_routing"
  "bench_hybrid_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
