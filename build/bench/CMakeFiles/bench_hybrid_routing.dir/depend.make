# Empty dependencies file for bench_hybrid_routing.
# This may be replaced when dependencies are built.
