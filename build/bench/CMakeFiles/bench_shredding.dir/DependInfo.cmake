
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_shredding.cc" "bench/CMakeFiles/bench_shredding.dir/bench_shredding.cc.o" "gcc" "bench/CMakeFiles/bench_shredding.dir/bench_shredding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/p3pdb_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/p3pdb_server.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/p3pdb_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/translator/CMakeFiles/p3pdb_translator.dir/DependInfo.cmake"
  "/root/repo/build/src/shredder/CMakeFiles/p3pdb_shredder.dir/DependInfo.cmake"
  "/root/repo/build/src/sqldb/CMakeFiles/p3pdb_sqldb.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/p3pdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/appel/CMakeFiles/p3pdb_appel.dir/DependInfo.cmake"
  "/root/repo/build/src/p3p/CMakeFiles/p3pdb_p3p.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/p3pdb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p3pdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
