file(REMOVE_RECURSE
  "CMakeFiles/bench_shredding.dir/bench_shredding.cc.o"
  "CMakeFiles/bench_shredding.dir/bench_shredding.cc.o.d"
  "bench_shredding"
  "bench_shredding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shredding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
