# Empty dependencies file for bench_shredding.
# This may be replaced when dependencies are built.
