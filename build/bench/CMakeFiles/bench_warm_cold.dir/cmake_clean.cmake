file(REMOVE_RECURSE
  "CMakeFiles/bench_warm_cold.dir/bench_warm_cold.cc.o"
  "CMakeFiles/bench_warm_cold.dir/bench_warm_cold.cc.o.d"
  "bench_warm_cold"
  "bench_warm_cold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_warm_cold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
