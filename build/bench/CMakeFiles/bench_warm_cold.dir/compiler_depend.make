# Empty compiler generated dependencies file for bench_warm_cold.
# This may be replaced when dependencies are built.
