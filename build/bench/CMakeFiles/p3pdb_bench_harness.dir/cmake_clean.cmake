file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_bench_harness.dir/harness.cc.o"
  "CMakeFiles/p3pdb_bench_harness.dir/harness.cc.o.d"
  "libp3pdb_bench_harness.a"
  "libp3pdb_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
