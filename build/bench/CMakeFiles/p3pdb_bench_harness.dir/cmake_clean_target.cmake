file(REMOVE_RECURSE
  "libp3pdb_bench_harness.a"
)
