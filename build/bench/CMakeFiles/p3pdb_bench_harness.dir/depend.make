# Empty dependencies file for p3pdb_bench_harness.
# This may be replaced when dependencies are built.
