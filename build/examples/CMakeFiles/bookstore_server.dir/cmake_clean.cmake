file(REMOVE_RECURSE
  "CMakeFiles/bookstore_server.dir/bookstore_server.cpp.o"
  "CMakeFiles/bookstore_server.dir/bookstore_server.cpp.o.d"
  "bookstore_server"
  "bookstore_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
