# Empty compiler generated dependencies file for bookstore_server.
# This may be replaced when dependencies are built.
