file(REMOVE_RECURSE
  "CMakeFiles/cookie_gateway.dir/cookie_gateway.cpp.o"
  "CMakeFiles/cookie_gateway.dir/cookie_gateway.cpp.o.d"
  "cookie_gateway"
  "cookie_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cookie_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
