# Empty compiler generated dependencies file for cookie_gateway.
# This may be replaced when dependencies are built.
