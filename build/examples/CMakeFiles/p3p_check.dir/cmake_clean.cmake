file(REMOVE_RECURSE
  "CMakeFiles/p3p_check.dir/p3p_check.cpp.o"
  "CMakeFiles/p3p_check.dir/p3p_check.cpp.o.d"
  "p3p_check"
  "p3p_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3p_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
