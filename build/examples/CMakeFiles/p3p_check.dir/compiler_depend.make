# Empty compiler generated dependencies file for p3p_check.
# This may be replaced when dependencies are built.
