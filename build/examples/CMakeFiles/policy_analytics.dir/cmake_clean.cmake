file(REMOVE_RECURSE
  "CMakeFiles/policy_analytics.dir/policy_analytics.cpp.o"
  "CMakeFiles/policy_analytics.dir/policy_analytics.cpp.o.d"
  "policy_analytics"
  "policy_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
