# Empty dependencies file for policy_analytics.
# This may be replaced when dependencies are built.
