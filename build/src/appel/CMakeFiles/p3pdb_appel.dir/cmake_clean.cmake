file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_appel.dir/engine.cc.o"
  "CMakeFiles/p3pdb_appel.dir/engine.cc.o.d"
  "CMakeFiles/p3pdb_appel.dir/model.cc.o"
  "CMakeFiles/p3pdb_appel.dir/model.cc.o.d"
  "libp3pdb_appel.a"
  "libp3pdb_appel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_appel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
