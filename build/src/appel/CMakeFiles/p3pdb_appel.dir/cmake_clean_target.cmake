file(REMOVE_RECURSE
  "libp3pdb_appel.a"
)
