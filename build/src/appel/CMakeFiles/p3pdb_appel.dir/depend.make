# Empty dependencies file for p3pdb_appel.
# This may be replaced when dependencies are built.
