file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_common.dir/status.cc.o"
  "CMakeFiles/p3pdb_common.dir/status.cc.o.d"
  "CMakeFiles/p3pdb_common.dir/string_util.cc.o"
  "CMakeFiles/p3pdb_common.dir/string_util.cc.o.d"
  "libp3pdb_common.a"
  "libp3pdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
