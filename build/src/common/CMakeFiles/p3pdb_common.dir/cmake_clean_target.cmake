file(REMOVE_RECURSE
  "libp3pdb_common.a"
)
