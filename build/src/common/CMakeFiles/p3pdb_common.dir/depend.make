# Empty dependencies file for p3pdb_common.
# This may be replaced when dependencies are built.
