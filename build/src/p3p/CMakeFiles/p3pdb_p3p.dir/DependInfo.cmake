
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p3p/augment.cc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/augment.cc.o" "gcc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/augment.cc.o.d"
  "/root/repo/src/p3p/compact.cc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/compact.cc.o" "gcc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/compact.cc.o.d"
  "/root/repo/src/p3p/data_schema.cc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/data_schema.cc.o" "gcc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/data_schema.cc.o.d"
  "/root/repo/src/p3p/policy.cc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/policy.cc.o" "gcc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/policy.cc.o.d"
  "/root/repo/src/p3p/policy_xml.cc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/policy_xml.cc.o" "gcc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/policy_xml.cc.o.d"
  "/root/repo/src/p3p/reference_file.cc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/reference_file.cc.o" "gcc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/reference_file.cc.o.d"
  "/root/repo/src/p3p/vocab.cc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/vocab.cc.o" "gcc" "src/p3p/CMakeFiles/p3pdb_p3p.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p3pdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/p3pdb_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
