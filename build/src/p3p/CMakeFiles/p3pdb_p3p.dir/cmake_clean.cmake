file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_p3p.dir/augment.cc.o"
  "CMakeFiles/p3pdb_p3p.dir/augment.cc.o.d"
  "CMakeFiles/p3pdb_p3p.dir/compact.cc.o"
  "CMakeFiles/p3pdb_p3p.dir/compact.cc.o.d"
  "CMakeFiles/p3pdb_p3p.dir/data_schema.cc.o"
  "CMakeFiles/p3pdb_p3p.dir/data_schema.cc.o.d"
  "CMakeFiles/p3pdb_p3p.dir/policy.cc.o"
  "CMakeFiles/p3pdb_p3p.dir/policy.cc.o.d"
  "CMakeFiles/p3pdb_p3p.dir/policy_xml.cc.o"
  "CMakeFiles/p3pdb_p3p.dir/policy_xml.cc.o.d"
  "CMakeFiles/p3pdb_p3p.dir/reference_file.cc.o"
  "CMakeFiles/p3pdb_p3p.dir/reference_file.cc.o.d"
  "CMakeFiles/p3pdb_p3p.dir/vocab.cc.o"
  "CMakeFiles/p3pdb_p3p.dir/vocab.cc.o.d"
  "libp3pdb_p3p.a"
  "libp3pdb_p3p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_p3p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
