file(REMOVE_RECURSE
  "libp3pdb_p3p.a"
)
