# Empty dependencies file for p3pdb_p3p.
# This may be replaced when dependencies are built.
