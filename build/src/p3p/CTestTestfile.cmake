# CMake generated Testfile for 
# Source directory: /root/repo/src/p3p
# Build directory: /root/repo/build/src/p3p
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
