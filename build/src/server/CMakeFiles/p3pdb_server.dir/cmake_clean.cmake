file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_server.dir/hybrid_client.cc.o"
  "CMakeFiles/p3pdb_server.dir/hybrid_client.cc.o.d"
  "CMakeFiles/p3pdb_server.dir/policy_server.cc.o"
  "CMakeFiles/p3pdb_server.dir/policy_server.cc.o.d"
  "CMakeFiles/p3pdb_server.dir/proxy_service.cc.o"
  "CMakeFiles/p3pdb_server.dir/proxy_service.cc.o.d"
  "libp3pdb_server.a"
  "libp3pdb_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
