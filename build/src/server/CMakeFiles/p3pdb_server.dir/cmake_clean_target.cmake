file(REMOVE_RECURSE
  "libp3pdb_server.a"
)
