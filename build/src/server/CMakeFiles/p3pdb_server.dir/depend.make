# Empty dependencies file for p3pdb_server.
# This may be replaced when dependencies are built.
