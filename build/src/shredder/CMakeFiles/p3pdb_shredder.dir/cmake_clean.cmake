file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_shredder.dir/element_spec.cc.o"
  "CMakeFiles/p3pdb_shredder.dir/element_spec.cc.o.d"
  "CMakeFiles/p3pdb_shredder.dir/optimized_schema.cc.o"
  "CMakeFiles/p3pdb_shredder.dir/optimized_schema.cc.o.d"
  "CMakeFiles/p3pdb_shredder.dir/reference_schema.cc.o"
  "CMakeFiles/p3pdb_shredder.dir/reference_schema.cc.o.d"
  "CMakeFiles/p3pdb_shredder.dir/simple_schema.cc.o"
  "CMakeFiles/p3pdb_shredder.dir/simple_schema.cc.o.d"
  "libp3pdb_shredder.a"
  "libp3pdb_shredder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_shredder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
