file(REMOVE_RECURSE
  "libp3pdb_shredder.a"
)
