# Empty compiler generated dependencies file for p3pdb_shredder.
# This may be replaced when dependencies are built.
