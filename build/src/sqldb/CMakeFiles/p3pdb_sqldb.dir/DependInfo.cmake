
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqldb/ast.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/ast.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/ast.cc.o.d"
  "/root/repo/src/sqldb/binder.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/binder.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/binder.cc.o.d"
  "/root/repo/src/sqldb/database.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/database.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/database.cc.o.d"
  "/root/repo/src/sqldb/executor.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/executor.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/executor.cc.o.d"
  "/root/repo/src/sqldb/explain.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/explain.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/explain.cc.o.d"
  "/root/repo/src/sqldb/lexer.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/lexer.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/lexer.cc.o.d"
  "/root/repo/src/sqldb/parser.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/parser.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/parser.cc.o.d"
  "/root/repo/src/sqldb/query_result.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/query_result.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/query_result.cc.o.d"
  "/root/repo/src/sqldb/schema.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/schema.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/schema.cc.o.d"
  "/root/repo/src/sqldb/table.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/table.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/table.cc.o.d"
  "/root/repo/src/sqldb/value.cc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/value.cc.o" "gcc" "src/sqldb/CMakeFiles/p3pdb_sqldb.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p3pdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
