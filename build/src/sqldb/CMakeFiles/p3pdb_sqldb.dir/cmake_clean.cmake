file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_sqldb.dir/ast.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/ast.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/binder.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/binder.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/database.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/database.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/executor.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/executor.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/explain.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/explain.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/lexer.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/lexer.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/parser.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/parser.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/query_result.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/query_result.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/schema.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/schema.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/table.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/table.cc.o.d"
  "CMakeFiles/p3pdb_sqldb.dir/value.cc.o"
  "CMakeFiles/p3pdb_sqldb.dir/value.cc.o.d"
  "libp3pdb_sqldb.a"
  "libp3pdb_sqldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_sqldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
