file(REMOVE_RECURSE
  "libp3pdb_sqldb.a"
)
