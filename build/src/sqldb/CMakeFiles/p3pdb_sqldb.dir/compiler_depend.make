# Empty compiler generated dependencies file for p3pdb_sqldb.
# This may be replaced when dependencies are built.
