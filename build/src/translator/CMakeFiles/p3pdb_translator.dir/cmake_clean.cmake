file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_translator.dir/applicable_policy.cc.o"
  "CMakeFiles/p3pdb_translator.dir/applicable_policy.cc.o.d"
  "CMakeFiles/p3pdb_translator.dir/sql_optimized.cc.o"
  "CMakeFiles/p3pdb_translator.dir/sql_optimized.cc.o.d"
  "CMakeFiles/p3pdb_translator.dir/sql_simple.cc.o"
  "CMakeFiles/p3pdb_translator.dir/sql_simple.cc.o.d"
  "libp3pdb_translator.a"
  "libp3pdb_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
