file(REMOVE_RECURSE
  "libp3pdb_translator.a"
)
