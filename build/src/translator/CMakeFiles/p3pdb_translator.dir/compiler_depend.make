# Empty compiler generated dependencies file for p3pdb_translator.
# This may be replaced when dependencies are built.
