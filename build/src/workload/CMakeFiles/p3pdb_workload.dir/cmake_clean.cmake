file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_workload.dir/corpus.cc.o"
  "CMakeFiles/p3pdb_workload.dir/corpus.cc.o.d"
  "CMakeFiles/p3pdb_workload.dir/jrc_preferences.cc.o"
  "CMakeFiles/p3pdb_workload.dir/jrc_preferences.cc.o.d"
  "CMakeFiles/p3pdb_workload.dir/paper_examples.cc.o"
  "CMakeFiles/p3pdb_workload.dir/paper_examples.cc.o.d"
  "CMakeFiles/p3pdb_workload.dir/random_preferences.cc.o"
  "CMakeFiles/p3pdb_workload.dir/random_preferences.cc.o.d"
  "libp3pdb_workload.a"
  "libp3pdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
