file(REMOVE_RECURSE
  "libp3pdb_workload.a"
)
