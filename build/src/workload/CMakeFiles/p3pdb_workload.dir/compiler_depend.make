# Empty compiler generated dependencies file for p3pdb_workload.
# This may be replaced when dependencies are built.
