file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_xml.dir/node.cc.o"
  "CMakeFiles/p3pdb_xml.dir/node.cc.o.d"
  "CMakeFiles/p3pdb_xml.dir/parser.cc.o"
  "CMakeFiles/p3pdb_xml.dir/parser.cc.o.d"
  "CMakeFiles/p3pdb_xml.dir/writer.cc.o"
  "CMakeFiles/p3pdb_xml.dir/writer.cc.o.d"
  "libp3pdb_xml.a"
  "libp3pdb_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
