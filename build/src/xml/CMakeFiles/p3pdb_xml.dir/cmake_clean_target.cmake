file(REMOVE_RECURSE
  "libp3pdb_xml.a"
)
