# Empty compiler generated dependencies file for p3pdb_xml.
# This may be replaced when dependencies are built.
