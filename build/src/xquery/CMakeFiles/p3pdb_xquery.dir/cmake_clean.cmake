file(REMOVE_RECURSE
  "CMakeFiles/p3pdb_xquery.dir/ast.cc.o"
  "CMakeFiles/p3pdb_xquery.dir/ast.cc.o.d"
  "CMakeFiles/p3pdb_xquery.dir/eval.cc.o"
  "CMakeFiles/p3pdb_xquery.dir/eval.cc.o.d"
  "CMakeFiles/p3pdb_xquery.dir/parser.cc.o"
  "CMakeFiles/p3pdb_xquery.dir/parser.cc.o.d"
  "CMakeFiles/p3pdb_xquery.dir/translate_appel.cc.o"
  "CMakeFiles/p3pdb_xquery.dir/translate_appel.cc.o.d"
  "CMakeFiles/p3pdb_xquery.dir/xtable.cc.o"
  "CMakeFiles/p3pdb_xquery.dir/xtable.cc.o.d"
  "libp3pdb_xquery.a"
  "libp3pdb_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3pdb_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
