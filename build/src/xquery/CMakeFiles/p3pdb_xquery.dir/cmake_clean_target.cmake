file(REMOVE_RECURSE
  "libp3pdb_xquery.a"
)
