# Empty compiler generated dependencies file for p3pdb_xquery.
# This may be replaced when dependencies are built.
