file(REMOVE_RECURSE
  "CMakeFiles/appel_test.dir/appel_test.cc.o"
  "CMakeFiles/appel_test.dir/appel_test.cc.o.d"
  "appel_test"
  "appel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
