# Empty dependencies file for appel_test.
# This may be replaced when dependencies are built.
