file(REMOVE_RECURSE
  "CMakeFiles/golden_translation_test.dir/golden_translation_test.cc.o"
  "CMakeFiles/golden_translation_test.dir/golden_translation_test.cc.o.d"
  "golden_translation_test"
  "golden_translation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_translation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
