# Empty dependencies file for golden_translation_test.
# This may be replaced when dependencies are built.
