file(REMOVE_RECURSE
  "CMakeFiles/p3p_test.dir/p3p_test.cc.o"
  "CMakeFiles/p3p_test.dir/p3p_test.cc.o.d"
  "p3p_test"
  "p3p_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
