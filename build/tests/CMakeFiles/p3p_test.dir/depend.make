# Empty dependencies file for p3p_test.
# This may be replaced when dependencies are built.
