file(REMOVE_RECURSE
  "CMakeFiles/shredder_test.dir/shredder_test.cc.o"
  "CMakeFiles/shredder_test.dir/shredder_test.cc.o.d"
  "shredder_test"
  "shredder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shredder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
