# Empty compiler generated dependencies file for shredder_test.
# This may be replaced when dependencies are built.
