file(REMOVE_RECURSE
  "CMakeFiles/sqldb_binder_test.dir/sqldb_binder_test.cc.o"
  "CMakeFiles/sqldb_binder_test.dir/sqldb_binder_test.cc.o.d"
  "sqldb_binder_test"
  "sqldb_binder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_binder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
