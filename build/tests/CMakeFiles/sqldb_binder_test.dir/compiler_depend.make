# Empty compiler generated dependencies file for sqldb_binder_test.
# This may be replaced when dependencies are built.
