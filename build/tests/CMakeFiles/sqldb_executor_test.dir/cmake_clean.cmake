file(REMOVE_RECURSE
  "CMakeFiles/sqldb_executor_test.dir/sqldb_executor_test.cc.o"
  "CMakeFiles/sqldb_executor_test.dir/sqldb_executor_test.cc.o.d"
  "sqldb_executor_test"
  "sqldb_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
