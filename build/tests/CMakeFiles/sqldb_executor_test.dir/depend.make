# Empty dependencies file for sqldb_executor_test.
# This may be replaced when dependencies are built.
