file(REMOVE_RECURSE
  "CMakeFiles/sqldb_explain_test.dir/sqldb_explain_test.cc.o"
  "CMakeFiles/sqldb_explain_test.dir/sqldb_explain_test.cc.o.d"
  "sqldb_explain_test"
  "sqldb_explain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
