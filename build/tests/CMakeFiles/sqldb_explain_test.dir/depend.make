# Empty dependencies file for sqldb_explain_test.
# This may be replaced when dependencies are built.
