file(REMOVE_RECURSE
  "CMakeFiles/sqldb_lexer_parser_test.dir/sqldb_lexer_parser_test.cc.o"
  "CMakeFiles/sqldb_lexer_parser_test.dir/sqldb_lexer_parser_test.cc.o.d"
  "sqldb_lexer_parser_test"
  "sqldb_lexer_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_lexer_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
