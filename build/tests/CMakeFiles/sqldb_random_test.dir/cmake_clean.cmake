file(REMOVE_RECURSE
  "CMakeFiles/sqldb_random_test.dir/sqldb_random_test.cc.o"
  "CMakeFiles/sqldb_random_test.dir/sqldb_random_test.cc.o.d"
  "sqldb_random_test"
  "sqldb_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
