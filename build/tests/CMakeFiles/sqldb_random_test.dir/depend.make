# Empty dependencies file for sqldb_random_test.
# This may be replaced when dependencies are built.
