file(REMOVE_RECURSE
  "CMakeFiles/sqldb_update_test.dir/sqldb_update_test.cc.o"
  "CMakeFiles/sqldb_update_test.dir/sqldb_update_test.cc.o.d"
  "sqldb_update_test"
  "sqldb_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
