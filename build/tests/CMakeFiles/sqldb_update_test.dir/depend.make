# Empty dependencies file for sqldb_update_test.
# This may be replaced when dependencies are built.
