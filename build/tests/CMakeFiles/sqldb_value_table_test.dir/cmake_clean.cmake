file(REMOVE_RECURSE
  "CMakeFiles/sqldb_value_table_test.dir/sqldb_value_table_test.cc.o"
  "CMakeFiles/sqldb_value_table_test.dir/sqldb_value_table_test.cc.o.d"
  "sqldb_value_table_test"
  "sqldb_value_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_value_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
