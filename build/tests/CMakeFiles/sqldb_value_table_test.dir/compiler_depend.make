# Empty compiler generated dependencies file for sqldb_value_table_test.
# This may be replaced when dependencies are built.
