#!/usr/bin/env python3
"""Perf smoke gate: compare a fresh bench JSON report against a baseline.

Usage:
    perf_smoke.py BASELINE.json CURRENT.json --record NAME [--record NAME...]
                  [--max-ratio 3.0]

Both files are arrays of records as written by WriteBenchJson (harness.cc):
each record has at least {"name", "ns_per_op", "p50_ns"}. The gate fails
(exit 1) only when a named record's latency regressed by more than
--max-ratio versus the baseline. Every other record is reported but never
gates: CI runners are noisy, so the bar is deliberately "order of
magnitude went wrong", not "3% slower than last Tuesday".

The gated metric is p50_ns (median — robust against one slow sample on a
shared runner), falling back to ns_per_op for records that carry no
distribution.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise SystemExit(f"{path}: expected a JSON array of records")
    return {r["name"]: r for r in data if isinstance(r, dict) and "name" in r}


def latency_ns(record):
    p50 = record.get("p50_ns", 0.0)
    return p50 if p50 > 0.0 else record.get("ns_per_op", 0.0)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--record",
        action="append",
        default=[],
        help="record name that gates the build (repeatable)",
    )
    parser.add_argument("--max-ratio", type=float, default=3.0)
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = load_records(args.current)

    shared = sorted(set(baseline) & set(current))
    if not shared:
        raise SystemExit("no record names shared between baseline and current")

    print(f"{'record':<40} {'baseline':>12} {'current':>12} {'ratio':>8}")
    ratios = {}
    for name in shared:
        base_ns = latency_ns(baseline[name])
        cur_ns = latency_ns(current[name])
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        ratios[name] = ratio
        gate_mark = " *" if name in args.record else ""
        print(
            f"{name:<40} {base_ns:>10.0f}ns {cur_ns:>10.0f}ns "
            f"{ratio:>7.2f}x{gate_mark}"
        )

    failed = []
    for name in args.record:
        if name not in current:
            failed.append(f"gated record '{name}' missing from {args.current}")
        elif name not in baseline:
            failed.append(f"gated record '{name}' missing from {args.baseline}")
        elif ratios[name] > args.max_ratio:
            failed.append(
                f"'{name}' regressed {ratios[name]:.2f}x "
                f"(limit {args.max_ratio:.1f}x)"
            )
    if failed:
        for msg in failed:
            print(f"PERF GATE FAILED: {msg}", file=sys.stderr)
        return 1
    gated = ", ".join(args.record) if args.record else "(none)"
    print(f"perf gate OK (gated: {gated}, limit {args.max_ratio:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
