#!/usr/bin/env python3
"""Serving-tier smoke gate: sanity-check a bench_serving JSON report.

Usage:
    serving_smoke.py BENCH_SERVING.json [--min-qps N] [--max-p99-ms N]

The report is the array bench_serving writes with --json: one record each
for serving/match_baseline, serving/match_churn, and serving/install. The
gate fails (exit 1) when:

  - a phase record is missing or measured zero requests,
  - achieved throughput fell below --min-qps (the tier fell hopelessly
    behind its arrival grid; pass a fraction of the offered rate), or
  - a match phase's p99 exceeds --max-p99-ms.

Latency samples are open-loop (completion minus *scheduled* arrival), so
p99 already includes queueing from falling behind — a tier that can't hold
the rate fails the p99 bar before it fails the throughput bar. Thresholds
are deliberately loose: shared CI runners are noisy, so the gate catches
"the serving tier stopped serving", not single-digit regressions.
"""

import argparse
import json
import sys

MATCH_PHASES = ("serving/match_baseline", "serving/match_churn")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument(
        "--min-qps",
        type=float,
        default=1.0,
        help="minimum achieved match throughput per phase (default: >0)",
    )
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=500.0,
        help="maximum open-loop p99 per match phase, in ms",
    )
    args = parser.parse_args()

    with open(args.report) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise SystemExit(f"{args.report}: expected a JSON array of records")
    records = {r["name"]: r for r in data if isinstance(r, dict) and "name" in r}

    failed = []
    print(f"{'record':<26} {'ops':>8} {'qps':>10} {'p99':>12}")
    for name in MATCH_PHASES + ("serving/install",):
        record = records.get(name)
        if record is None:
            failed.append(f"record '{name}' missing from {args.report}")
            continue
        ops = record.get("iters", 0)
        qps = record.get("matches_per_sec", 0.0)
        p99_ms = record.get("p99_ns", 0.0) / 1e6
        print(f"{name:<26} {ops:>8} {qps:>10.1f} {p99_ms:>10.2f}ms")
        if ops <= 0:
            failed.append(f"'{name}' measured zero requests")
        if name in MATCH_PHASES:
            if qps < args.min_qps:
                failed.append(
                    f"'{name}' achieved {qps:.1f} qps "
                    f"(minimum {args.min_qps:.1f})"
                )
            if p99_ms > args.max_p99_ms:
                failed.append(
                    f"'{name}' p99 {p99_ms:.1f}ms "
                    f"(limit {args.max_p99_ms:.1f}ms)"
                )

    if failed:
        for msg in failed:
            print(f"SERVING SMOKE FAILED: {msg}", file=sys.stderr)
        return 1
    print(
        f"serving smoke OK (min qps {args.min_qps:.1f}, "
        f"p99 limit {args.max_p99_ms:.1f}ms)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
