// A multi-policy site, the scenario the reference file exists for
// (paper §2.3, §5.5).
//
// Volga's site has three areas with different data practices:
//   /catalog  — browsing: clickstream only, anonymous              (lenient)
//   /shop     — checkout: name, address, payment data              (Figure 1)
//   /community— forum: email + content, shared with other readers  (leaky)
// A reference file maps each URI subtree to its policy. Three users with
// different APPEL sensitivity levels browse the site; the server routes
// each request to the governing policy and evaluates the user's rules.
// Mid-session the site softens the community policy (a new version), and
// the decisions change — the versioning the paper argues databases manage
// better than files.
//
//   $ ./bookstore_server

#include <cstdio>

#include "server/policy_server.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

using p3pdb::appel::AppelRuleset;
using p3pdb::p3p::DataGroup;
using p3pdb::p3p::DataItem;
using p3pdb::p3p::Policy;
using p3pdb::p3p::PolicyRef;
using p3pdb::p3p::PolicyStatement;
using p3pdb::p3p::PurposeItem;
using p3pdb::p3p::RecipientItem;
using p3pdb::p3p::ReferenceFile;
using p3pdb::p3p::Required;
using p3pdb::Status;
using p3pdb::server::EngineKind;
using p3pdb::server::PolicyServer;
using p3pdb::workload::JrcPreference;
using p3pdb::workload::PreferenceLevel;
using p3pdb::workload::PreferenceLevelName;

namespace {

Policy CatalogPolicy() {
  Policy policy;
  policy.name = "catalog";
  policy.discuri = "http://volga.example.com/privacy/catalog.html";
  policy.access = "nonident";
  PolicyStatement stmt;
  stmt.consequence = "We keep anonymous clickstream logs to run the site.";
  stmt.purposes.push_back(PurposeItem{"current", Required::kAlways});
  stmt.purposes.push_back(PurposeItem{"admin", Required::kAlways});
  stmt.recipients.push_back(RecipientItem{"ours", Required::kAlways});
  stmt.retention = "stated-purpose";
  DataGroup group;
  group.items.push_back(DataItem{"dynamic.clickstream", false, {}});
  group.items.push_back(DataItem{"dynamic.http.useragent", false, {}});
  stmt.data_groups.push_back(std::move(group));
  policy.statements.push_back(std::move(stmt));
  return policy;
}

Policy CommunityPolicy(bool softened) {
  Policy policy;
  policy.name = "community";
  policy.discuri = "http://volga.example.com/privacy/community.html";
  policy.access = "contact-and-other";
  PolicyStatement stmt;
  stmt.consequence =
      "Your posts and email are visible to other community members; we may "
      "contact you about replies.";
  stmt.purposes.push_back(PurposeItem{"current", Required::kAlways});
  stmt.purposes.push_back(PurposeItem{
      "contact", softened ? Required::kOptIn : Required::kAlways});
  stmt.recipients.push_back(RecipientItem{"ours", Required::kAlways});
  stmt.recipients.push_back(RecipientItem{
      "public", softened ? Required::kOptOut : Required::kAlways});
  stmt.retention = "indefinitely";
  DataGroup group;
  group.items.push_back(
      DataItem{"user.home-info.online.email", false, {}});
  group.items.push_back(DataItem{"dynamic.interactionrecord", false, {}});
  stmt.data_groups.push_back(std::move(group));
  policy.statements.push_back(std::move(stmt));
  return policy;
}

ReferenceFile SiteReferenceFile() {
  ReferenceFile rf;
  rf.expiry_max_age = 86400;
  PolicyRef catalog;
  catalog.about = "/P3P/policies.xml#catalog";
  catalog.includes.push_back("/catalog/*");
  catalog.includes.push_back("/index.html");
  rf.refs.push_back(std::move(catalog));
  PolicyRef shop;
  shop.about = "/P3P/policies.xml#volga";
  shop.includes.push_back("/shop/*");
  rf.refs.push_back(std::move(shop));
  PolicyRef community;
  community.about = "/P3P/policies.xml#community";
  community.includes.push_back("/community/*");
  community.excludes.push_back("/community/help/*");
  rf.refs.push_back(std::move(community));
  return rf;
}

}  // namespace

int main() {
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  for (const Policy& policy :
       {CatalogPolicy(), p3pdb::workload::VolgaPolicy(),
        CommunityPolicy(/*softened=*/false)}) {
    auto id = server.value()->InstallPolicy(policy);
    if (!id.ok()) {
      std::fprintf(stderr, "install %s: %s\n", policy.name.c_str(),
                   id.status().ToString().c_str());
      return 1;
    }
    std::printf("installed policy '%s' (id %lld, version %lld)\n",
                policy.name.c_str(),
                static_cast<long long>(id.value()),
                static_cast<long long>(
                    server.value()->PolicyVersion(policy.name)));
  }
  if (Status st = server.value()->InstallReferenceFile(SiteReferenceFile());
      !st.ok()) {
    std::fprintf(stderr, "reference file: %s\n", st.ToString().c_str());
    return 1;
  }

  struct User {
    const char* name;
    PreferenceLevel level;
  };
  const User users[] = {{"Alice", PreferenceLevel::kHigh},
                        {"Bob", PreferenceLevel::kMedium},
                        {"Carol", PreferenceLevel::kVeryLow}};
  const char* paths[] = {"/index.html", "/catalog/scifi",
                         "/shop/checkout", "/community/thread/42",
                         "/community/help/faq", "/press/releases.html"};

  auto run_session = [&](const char* banner) {
    std::printf("\n=== %s ===\n", banner);
    std::printf("%-24s", "request");
    for (const User& user : users) {
      std::string header =
          std::string(user.name) + " (" + PreferenceLevelName(user.level) +
          ")";
      std::printf(" | %-22s", header.c_str());
    }
    std::printf("\n");
    for (const char* path : paths) {
      std::printf("%-24s", path);
      for (const User& user : users) {
        auto pref =
            server.value()->CompilePreference(JrcPreference(user.level));
        if (!pref.ok()) {
          std::printf(" | %-22s", pref.status().ToString().c_str());
          continue;
        }
        auto result = server.value()->MatchUri(pref.value(), path);
        std::printf(" | %-22s",
                    result.ok() ? result.value().behavior.c_str()
                                : result.status().ToString().c_str());
      }
      std::printf("\n");
    }
  };

  run_session("initial policies");

  // The community team reacts to blocked users: contact becomes opt-in and
  // public sharing opt-out. Installing the new version re-points the
  // reference resolution automatically.
  auto v2 = server.value()->InstallPolicy(CommunityPolicy(/*softened=*/true));
  if (!v2.ok()) {
    std::fprintf(stderr, "reinstall: %s\n", v2.status().ToString().c_str());
    return 1;
  }
  if (Status st = server.value()->InstallReferenceFile(SiteReferenceFile());
      !st.ok()) {
    std::fprintf(stderr, "reference file: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\ncommunity policy softened -> version %lld\n",
              static_cast<long long>(
                  server.value()->PolicyVersion("community")));
  run_session("after the community policy update");

  std::printf(
      "\nNote how /community/* flips from block to request for Bob (Medium) "
      "once choice is\noffered — Alice's High preference still rejects any "
      "public recipient — while\n/press (no policy) and /community/help "
      "(EXCLUDEd) report '%s'.\n",
      p3pdb::server::kNoPolicyBehavior);
  return 0;
}
