// Cookie admission with compact policies — the IE6 mechanism the paper
// describes in §3.2 ("IE6 allows the website to place a cookie only if the
// site provides a compact version of the applicable P3P privacy policy,
// and that policy is compatible with the user's preference").
//
// The server side derives each cookie's compact policy from the full policy
// the reference file assigns to the cookie's path (COOKIE-INCLUDE); the
// client side evaluates the token string at the user's privacy level.
//
//   $ ./cookie_gateway

#include <cstdio>

#include "p3p/augment.h"
#include "p3p/compact.h"
#include "server/policy_server.h"
#include "workload/paper_examples.h"

using p3pdb::p3p::BuildCompactPolicy;
using p3pdb::p3p::CompactPolicy;
using p3pdb::p3p::CompactPolicyToString;
using p3pdb::p3p::CookiePrivacyLevel;
using p3pdb::p3p::CookieVerdict;
using p3pdb::p3p::CookieVerdictName;
using p3pdb::p3p::EvaluateCookiePolicy;
using p3pdb::p3p::ParseCompactPolicy;

namespace {

struct SiteCookie {
  const char* site;
  const char* cookie;
  const char* compact;  // nullptr = site serves no compact policy
};

}  // namespace

int main() {
  // The bookseller derives its own compact policy from the full policy —
  // the P3P deployment step a policy generator would perform.
  p3pdb::p3p::Policy volga = p3pdb::workload::VolgaPolicy();
  p3pdb::p3p::AugmentPolicy(&volga);
  std::string volga_cp = CompactPolicyToString(BuildCompactPolicy(volga));
  std::printf("volga.example.com publishes:\n  P3P: CP=\"%s\"\n\n",
              volga_cp.c_str());

  const SiteCookie cookies[] = {
      {"volga.example.com", "session", volga_cp.c_str()},
      {"cdn.example.net", "cache-affinity", "NID CUR OUR STP NAV COM"},
      {"ads.example.org", "tracker", "CUR TELa IVAa UNR IND PHY ONL UNI"},
      {"survey.example.org", "panel", "CUR IVAo CONo OUR BUS DEM PRE ONL"},
      {"legacy.example.com", "no-p3p", nullptr},
  };

  const CookiePrivacyLevel levels[] = {
      CookiePrivacyLevel::kLow, CookiePrivacyLevel::kMedium,
      CookiePrivacyLevel::kHigh, CookiePrivacyLevel::kBlockAll};
  const char* level_names[] = {"low", "medium", "high", "block-all"};

  std::printf("%-22s %-16s | %-8s %-8s %-8s %-9s\n", "site", "cookie",
              level_names[0], level_names[1], level_names[2],
              level_names[3]);
  for (const SiteCookie& sc : cookies) {
    CompactPolicy compact;
    bool has_policy = sc.compact != nullptr;
    if (has_policy) {
      auto parsed = ParseCompactPolicy(sc.compact);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", sc.site,
                     parsed.status().ToString().c_str());
        return 1;
      }
      compact = std::move(parsed).value();
    }
    std::printf("%-22s %-16s |", sc.site, sc.cookie);
    for (CookiePrivacyLevel level : levels) {
      CookieVerdict verdict =
          EvaluateCookiePolicy(has_policy ? &compact : nullptr, level);
      std::printf(" %-8s", CookieVerdictName(verdict));
    }
    std::printf("\n");
  }

  std::printf(
      "\nAt the default medium level, the anonymous CDN cookie passes, the "
      "shop's\nsession cookie is leashed (identifiable but primary-use "
      "only), and the ad\ntracker and the policy-less cookie are blocked. "
      "The survey panel's opt-out\nchoice satisfies medium, but moving the "
      "slider to high demands opt-in and\nblocks it.\n");
  return 0;
}
