// The architecture matrix of the paper's Figure 7, live.
//
// Runs the same preference checks on all five engines — the client-centric
// native APPEL engine, the proposed SQL implementation (both schemas), and
// the two XQuery variations — verifying they agree on every outcome and
// showing where the time goes.
//
//   $ ./engine_comparison

#include <cstdio>
#include <map>

#include "common/stopwatch.h"
#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"

using p3pdb::Stopwatch;
using p3pdb::TimingStats;
using p3pdb::server::Augmentation;
using p3pdb::server::EngineKind;
using p3pdb::server::EngineKindName;
using p3pdb::server::PolicyServer;
using p3pdb::workload::JrcPreference;
using p3pdb::workload::PreferenceLevel;

int main() {
  const EngineKind engines[] = {
      EngineKind::kNativeAppel, EngineKind::kSql, EngineKind::kSqlSimple,
      EngineKind::kXQueryNative, EngineKind::kXQueryXTable};

  std::vector<p3pdb::p3p::Policy> corpus = p3pdb::workload::FortuneCorpus();

  std::printf("%-15s %-10s %-12s %-12s %-10s\n", "engine", "install",
              "compile", "match avg", "outcomes");
  std::map<std::string, std::string> outcome_digest;
  std::string reference_digest;
  for (EngineKind kind : engines) {
    PolicyServer::Options options;
    options.engine = kind;
    options.augmentation = kind == EngineKind::kNativeAppel
                               ? Augmentation::kPerMatch
                               : Augmentation::kAtInstall;
    auto server = PolicyServer::Create(options);
    if (!server.ok()) {
      std::fprintf(stderr, "%s: %s\n", EngineKindName(kind),
                   server.status().ToString().c_str());
      return 1;
    }

    Stopwatch install_sw;
    std::vector<long long> ids;
    for (const auto& policy : corpus) {
      auto id = server.value()->InstallPolicy(policy);
      if (!id.ok()) {
        std::fprintf(stderr, "install: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(id.value());
    }
    double install_ms = install_sw.ElapsedMillis();

    Stopwatch compile_sw;
    auto pref = server.value()->CompilePreference(
        JrcPreference(PreferenceLevel::kHigh));
    double compile_us = compile_sw.ElapsedMicros();
    if (!pref.ok()) {
      std::fprintf(stderr, "compile: %s\n",
                   pref.status().ToString().c_str());
      return 1;
    }

    TimingStats match_stats;
    std::string digest;
    for (long long id : ids) {
      Stopwatch sw;
      auto result = server.value()->MatchPolicyId(pref.value(), id);
      double us = sw.ElapsedMicros();
      if (!result.ok()) {
        std::fprintf(stderr, "match: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      match_stats.Add(us);
      digest += result.value().behavior[0];  // 'b' / 'r'
    }
    if (reference_digest.empty()) reference_digest = digest;
    const bool agrees = digest == reference_digest;
    std::printf("%-15s %7.1f ms %9.1f us %9.1f us  %s\n",
                EngineKindName(kind), install_ms, compile_us,
                match_stats.Average(),
                agrees ? "agree" : "DISAGREE!");
    if (!agrees) {
      std::fprintf(stderr, "engines disagree: %s vs %s\n",
                   reference_digest.c_str(), digest.c_str());
      return 1;
    }
  }
  std::printf(
      "\nAll five engines computed identical outcomes for the High "
      "preference across %zu\npolicies. The specialized client engine and "
      "the general-purpose database engine\nare interchangeable in "
      "semantics — the difference is where the work happens and\nhow fast "
      "it is (the paper's Figure 7 decision matrix).\n",
      corpus.size());
  return 0;
}
