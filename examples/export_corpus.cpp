// export_corpus: writes the benchmark workload to disk as real files —
// the 29 synthetic Fortune-1000 policies, the site reference file, and the
// five JRC preference levels — so they can be inspected, diffed, or fed to
// p3p_check.
//
//   $ ./export_corpus out_dir
//   $ ./p3p_check out_dir/policies/pinnacle-books.xml \
//                 out_dir/preferences/high.xml sql

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "appel/model.h"
#include "p3p/policy_xml.h"
#include "p3p/reference_file.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace fs = std::filesystem;

namespace {

bool WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

std::string SlugFor(const char* level_name) {
  std::string slug;
  for (const char* p = level_name; *p; ++p) {
    slug.push_back(*p == ' ' ? '-' : static_cast<char>(std::tolower(*p)));
  }
  return slug;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = argc > 1 ? argv[1] : "p3p-corpus";
  std::error_code ec;
  fs::create_directories(root / "policies", ec);
  fs::create_directories(root / "preferences", ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", root.c_str(),
                 ec.message().c_str());
    return 1;
  }

  std::vector<p3pdb::p3p::Policy> corpus = p3pdb::workload::FortuneCorpus();
  for (const p3pdb::p3p::Policy& policy : corpus) {
    if (!WriteFile(root / "policies" / (policy.name + ".xml"),
                   p3pdb::p3p::PolicyToText(policy))) {
      return 1;
    }
  }
  if (!WriteFile(root / "policies" / "volga.xml",
                 p3pdb::workload::VolgaPolicyXml())) {
    return 1;
  }
  if (!WriteFile(root / "reference-file.xml",
                 p3pdb::p3p::ReferenceFileToText(
                     p3pdb::workload::CorpusReferenceFile(corpus)))) {
    return 1;
  }
  for (auto level : p3pdb::workload::AllPreferenceLevels()) {
    std::string slug =
        SlugFor(p3pdb::workload::PreferenceLevelName(level));
    if (!WriteFile(root / "preferences" / (slug + ".xml"),
                   p3pdb::appel::RulesetToText(
                       p3pdb::workload::JrcPreference(level)))) {
      return 1;
    }
  }
  if (!WriteFile(root / "preferences" / "jane.xml",
                 p3pdb::workload::JanePreferenceXml())) {
    return 1;
  }

  std::printf("wrote %zu policies, 6 preferences, 1 reference file to %s\n",
              corpus.size() + 1, root.c_str());
  return 0;
}
