// Observability demo: trace a match end to end, read the server's
// Prometheus metrics, and EXPLAIN ANALYZE a generated rule query.
//
// Three views onto the same request:
//   1. A per-request trace — the span tree from ref-file lookup through the
//      generated SQL's parse/bind/execute (or, on the native engine, the §6
//      breakdown: category augmentation and connective evaluation).
//   2. The server's metrics registry — counters and latency histograms in
//      Prometheus exposition text and JSON.
//   3. EXPLAIN ANALYZE — the Figure 15 rule query's plan annotated with
//      actual rows/loops/time per node and the bound parameter values.
//
//   $ ./observability_demo

#include <cstdio>

#include "obs/trace.h"
#include "server/policy_server.h"
#include "sqldb/value.h"
#include "workload/paper_examples.h"

using p3pdb::server::Augmentation;
using p3pdb::server::EngineKind;
using p3pdb::server::PolicyServer;

namespace {

int Fail(const char* what, const p3pdb::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // -- 1. SQL engine, tracing enabled --------------------------------------
  auto server = PolicyServer::Create(
      {.engine = EngineKind::kSql, .enable_tracing = true});
  if (!server.ok()) return Fail("server", server.status());
  auto policy_id =
      server.value()->InstallPolicy(p3pdb::workload::VolgaPolicy());
  if (!policy_id.ok()) return Fail("install", policy_id.status());
  auto rf = server.value()->InstallReferenceFile(
      p3pdb::workload::VolgaReferenceFile());
  if (!rf.ok()) return Fail("reference file", rf);
  auto pref =
      server.value()->CompilePreference(p3pdb::workload::JanePreference());
  if (!pref.ok()) return Fail("compile", pref.status());

  p3pdb::obs::TraceContext trace;
  auto result = server.value()->MatchUri(pref.value(),
                                         "/catalog/books/1984", &trace);
  if (!result.ok()) return Fail("match", result.status());
  std::printf("=== SQL engine: traced MatchUri ===\n%s\n",
              trace.RenderText().c_str());

  // -- 2. Native APPEL engine: the §6 breakdown ----------------------------
  auto native = PolicyServer::Create({.engine = EngineKind::kNativeAppel,
                                      .augmentation = Augmentation::kPerMatch,
                                      .enable_tracing = true});
  if (!native.ok()) return Fail("native server", native.status());
  auto native_id =
      native.value()->InstallPolicy(p3pdb::workload::VolgaPolicy());
  if (!native_id.ok()) return Fail("native install", native_id.status());
  auto native_pref =
      native.value()->CompilePreference(p3pdb::workload::JanePreference());
  if (!native_pref.ok()) return Fail("native compile", native_pref.status());

  p3pdb::obs::TraceContext native_trace;
  auto native_result = native.value()->MatchPolicyId(
      native_pref.value(), native_id.value(), &native_trace);
  if (!native_result.ok()) return Fail("native match", native_result.status());
  std::printf(
      "=== Native APPEL engine: traced MatchPolicyId ===\n"
      "(category-augmentation dominates by work counter — the §6.3.2 "
      "finding)\n%s\n",
      native_trace.RenderText().c_str());

  // -- 3. Server metrics ---------------------------------------------------
  std::printf("=== SQL server metrics (Prometheus exposition) ===\n%s\n",
              server.value()->RenderMetricsText().c_str());
  std::printf("=== Same registry as JSON ===\n%s\n\n",
              server.value()->RenderMetricsJson().c_str());

  // -- 4. EXPLAIN ANALYZE on a generated rule query ------------------------
  // Pick the first parameterized rule query and profile it against the
  // installed policy, with the bound value annotated into the plan.
  const p3pdb::translator::SqlRuleset& sql = pref.value().sql;
  for (size_t i = 0; i < sql.rule_queries.size(); ++i) {
    if (sql.param_counts[i] == 0) continue;
    std::vector<p3pdb::sqldb::Value> params(
        sql.param_counts[i],
        p3pdb::sqldb::Value::Integer(policy_id.value()));
    auto plan = server.value()->database()->Execute(
        "EXPLAIN ANALYZE " + sql.rule_queries[i], params);
    if (!plan.ok()) return Fail("explain analyze", plan.status());
    std::printf(
        "=== EXPLAIN ANALYZE, rule %zu (behavior '%s') ===\n", i + 1,
        sql.behaviors[i].c_str());
    for (const auto& row : plan.value().rows) {
      std::printf("%s\n", row[0].AsText().c_str());
    }
    break;
  }
  return 0;
}
