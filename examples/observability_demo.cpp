// Observability demo: trace a match end to end, read the server's
// Prometheus metrics, EXPLAIN ANALYZE a generated rule query, and scrape
// the live telemetry surfaces.
//
// Views onto the same request:
//   1. A per-request trace — the span tree from ref-file lookup through the
//      generated SQL's parse/bind/execute (or, on the native engine, the §6
//      breakdown: category augmentation and connective evaluation).
//   2. The server's metrics registry — counters and latency histograms in
//      Prometheus exposition text and JSON.
//   3. EXPLAIN ANALYZE — the Figure 15 rule query's plan annotated with
//      actual rows/loops/time per node and the bound parameter values.
//   4. Statement-level telemetry — per-fingerprint aggregates for every
//      rule query the match executed, plus the slow-query ring with
//      captured plans.
//   5. The embedded HTTP admin endpoint, scraped over a real socket.
//
//   $ ./observability_demo

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "obs/slow_log.h"
#include "obs/trace.h"
#include "server/policy_server.h"
#include "sqldb/value.h"
#include "workload/paper_examples.h"

using p3pdb::server::Augmentation;
using p3pdb::server::EngineKind;
using p3pdb::server::PolicyServer;

namespace {

int Fail(const char* what, const p3pdb::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

// One-shot HTTP GET against 127.0.0.1:port — just enough client to scrape
// the admin endpoint from inside the demo.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? response : response.substr(body + 4);
}

}  // namespace

int main() {
  // -- 1. SQL engine, tracing + full telemetry enabled ---------------------
  // A 10µs slow threshold is deliberately aggressive so this demo's handful
  // of matches lands something in the slow-query ring; production would use
  // milliseconds. admin_port = 0 binds an ephemeral localhost port.
  auto server = PolicyServer::Create({.engine = EngineKind::kSql,
                                      .enable_tracing = true,
                                      .slow_query_threshold_us = 10,
                                      .trace_sample_every = 2,
                                      .enable_admin_endpoint = true,
                                      .admin_port = 0});
  if (!server.ok()) return Fail("server", server.status());
  auto policy_id =
      server.value()->InstallPolicy(p3pdb::workload::VolgaPolicy());
  if (!policy_id.ok()) return Fail("install", policy_id.status());
  auto rf = server.value()->InstallReferenceFile(
      p3pdb::workload::VolgaReferenceFile());
  if (!rf.ok()) return Fail("reference file", rf);
  auto pref =
      server.value()->CompilePreference(p3pdb::workload::JanePreference());
  if (!pref.ok()) return Fail("compile", pref.status());

  p3pdb::obs::TraceContext trace;
  auto result = server.value()->MatchUri(pref.value(),
                                         "/catalog/books/1984", &trace);
  if (!result.ok()) return Fail("match", result.status());
  std::printf("=== SQL engine: traced MatchUri ===\n%s\n",
              trace.RenderText().c_str());

  // -- 2. Native APPEL engine: the §6 breakdown ----------------------------
  auto native = PolicyServer::Create({.engine = EngineKind::kNativeAppel,
                                      .augmentation = Augmentation::kPerMatch,
                                      .enable_tracing = true});
  if (!native.ok()) return Fail("native server", native.status());
  auto native_id =
      native.value()->InstallPolicy(p3pdb::workload::VolgaPolicy());
  if (!native_id.ok()) return Fail("native install", native_id.status());
  auto native_pref =
      native.value()->CompilePreference(p3pdb::workload::JanePreference());
  if (!native_pref.ok()) return Fail("native compile", native_pref.status());

  p3pdb::obs::TraceContext native_trace;
  auto native_result = native.value()->MatchPolicyId(
      native_pref.value(), native_id.value(), &native_trace);
  if (!native_result.ok()) return Fail("native match", native_result.status());
  std::printf(
      "=== Native APPEL engine: traced MatchPolicyId ===\n"
      "(category-augmentation dominates by work counter — the §6.3.2 "
      "finding)\n%s\n",
      native_trace.RenderText().c_str());

  // -- 3. Server metrics ---------------------------------------------------
  std::printf("=== SQL server metrics (Prometheus exposition) ===\n%s\n",
              server.value()->RenderMetricsText().c_str());
  std::printf("=== Same registry as JSON ===\n%s\n\n",
              server.value()->RenderMetricsJson().c_str());

  // -- 4. EXPLAIN ANALYZE on a generated rule query ------------------------
  // Pick the first parameterized rule query and profile it against the
  // installed policy, with the bound value annotated into the plan.
  const p3pdb::translator::SqlRuleset& sql = pref.value().sql;
  for (size_t i = 0; i < sql.rule_queries.size(); ++i) {
    if (sql.param_counts[i] == 0) continue;
    std::vector<p3pdb::sqldb::Value> params(
        sql.param_counts[i],
        p3pdb::sqldb::Value::Integer(policy_id.value()));
    auto plan = server.value()->database()->Execute(
        "EXPLAIN ANALYZE " + sql.rule_queries[i], params);
    if (!plan.ok()) return Fail("explain analyze", plan.status());
    std::printf(
        "=== EXPLAIN ANALYZE, rule %zu (behavior '%s') ===\n", i + 1,
        sql.behaviors[i].c_str());
    for (const auto& row : plan.value().rows) {
      std::printf("%s\n", row[0].AsText().c_str());
    }
    break;
  }

  // -- 5. Statement telemetry + slow-query log -----------------------------
  // Every SELECT the matches above executed was fingerprinted (literals and
  // params normalized to '?'); aggregates accumulate per fingerprint. Run a
  // few more matches so the hottest rule queries separate from the rest.
  for (const char* uri : {"/catalog/books/1984", "/checkout", "/search"}) {
    auto extra = server.value()->MatchUri(pref.value(), uri);
    if (!extra.ok()) return Fail("extra match", extra.status());
  }
  std::printf("\n=== Hottest statements (what /statements?top=5 serves) ===\n%s",
              server.value()->RenderStatementStatsText(5).c_str());
  std::printf(
      "\n=== Slow-query log (threshold 10us; what /slow serves) ===\n%s\n",
      server.value()
          ->RenderSlowLogJson(p3pdb::obs::SlowQueryEntry::Kind::kSlow)
          .c_str());

  // -- 6. The embedded admin endpoint, scraped live ------------------------
  if (server.value()->admin_endpoint_running()) {
    uint16_t port = server.value()->admin_port();
    std::printf("=== Admin endpoint live on http://127.0.0.1:%u ===\n", port);
    std::printf("GET /healthz -> %s\n", HttpGet(port, "/healthz").c_str());
    std::string metrics = HttpGet(port, "/metrics");
    std::printf("GET /metrics -> %zu bytes of Prometheus text, e.g.:\n",
                metrics.size());
    size_t shown = 0;
    for (size_t pos = 0; pos < metrics.size() && shown < 4;) {
      size_t eol = metrics.find('\n', pos);
      if (eol == std::string::npos) eol = metrics.size();
      std::string line = metrics.substr(pos, eol - pos);
      if (!line.empty() && line[0] != '#') {
        std::printf("  %s\n", line.c_str());
        ++shown;
      }
      pos = eol + 1;
    }
    std::printf("(also serving /metrics.json, /statements?top=N, /slow, "
                "/traces)\n");
  }
  return 0;
}
