// p3p_check: command-line preference checker.
//
// Usage:
//   p3p_check                                  demo: Volga vs Jane (§2)
//   p3p_check POLICY.xml PREF.xml [engine]     check PREF against POLICY
//
// engine is one of: native-appel (default: sql), sql, sql-simple,
// xquery-native, xquery-xtable. Prints the behavior of the first rule that
// fires, the rule index, and for the SQL engines the generated queries when
// -v is given.
//
//   $ ./p3p_check policy.xml pref.xml sql -v

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "appel/model.h"
#include "p3p/policy_xml.h"
#include "server/policy_server.h"
#include "workload/paper_examples.h"

using p3pdb::server::EngineKind;
using p3pdb::server::PolicyServer;

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool ParseEngine(const char* name, EngineKind* out) {
  struct Pair {
    const char* name;
    EngineKind kind;
  };
  static constexpr Pair kEngines[] = {
      {"native-appel", EngineKind::kNativeAppel},
      {"sql", EngineKind::kSql},
      {"sql-simple", EngineKind::kSqlSimple},
      {"xquery-native", EngineKind::kXQueryNative},
      {"xquery-xtable", EngineKind::kXQueryXTable},
  };
  for (const Pair& p : kEngines) {
    if (std::strcmp(name, p.name) == 0) {
      *out = p.kind;
      return true;
    }
  }
  return false;
}

int Fail(const p3pdb::Status& status, const char* what) {
  std::fprintf(stderr, "p3p_check: %s: %s\n", what,
               status.ToString().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string policy_xml;
  std::string pref_xml;
  EngineKind engine = EngineKind::kSql;
  bool verbose = false;

  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: p3p_check [POLICY.xml PREF.xml] [engine] [-v]\n"
          "engines: native-appel sql sql-simple xquery-native "
          "xquery-xtable\n");
      return 0;
    } else {
      positional.push_back(argv[i]);
    }
  }

  if (positional.empty()) {
    std::printf("(no inputs; running the paper's demo: Volga vs Jane)\n");
    policy_xml = p3pdb::workload::VolgaPolicyXml();
    pref_xml = p3pdb::workload::JanePreferenceXml();
  } else if (positional.size() >= 2) {
    if (!ReadFile(positional[0], &policy_xml)) {
      std::fprintf(stderr, "p3p_check: cannot read %s\n", positional[0]);
      return 2;
    }
    if (!ReadFile(positional[1], &pref_xml)) {
      std::fprintf(stderr, "p3p_check: cannot read %s\n", positional[1]);
      return 2;
    }
    if (positional.size() >= 3 && !ParseEngine(positional[2], &engine)) {
      std::fprintf(stderr, "p3p_check: unknown engine '%s'\n",
                   positional[2]);
      return 2;
    }
  } else {
    std::fprintf(stderr, "usage: p3p_check [POLICY.xml PREF.xml] [engine]\n");
    return 2;
  }

  auto policy = p3pdb::p3p::PolicyFromText(policy_xml);
  if (!policy.ok()) return Fail(policy.status(), "policy");
  if (p3pdb::Status st = policy.value().Validate(); !st.ok()) {
    return Fail(st, "policy validation");
  }
  auto pref = p3pdb::appel::RulesetFromText(pref_xml);
  if (!pref.ok()) return Fail(pref.status(), "preference");

  PolicyServer::Options options;
  options.engine = engine;
  options.augmentation = engine == EngineKind::kNativeAppel
                             ? p3pdb::server::Augmentation::kPerMatch
                             : p3pdb::server::Augmentation::kAtInstall;
  auto server = PolicyServer::Create(options);
  if (!server.ok()) return Fail(server.status(), "server");
  auto policy_id = server.value()->InstallPolicy(policy.value());
  if (!policy_id.ok()) return Fail(policy_id.status(), "install");
  auto compiled = server.value()->CompilePreference(pref.value());
  if (!compiled.ok()) return Fail(compiled.status(), "compile");

  if (verbose) {
    for (size_t i = 0; i < compiled.value().sql.rule_queries.size(); ++i) {
      std::printf("-- rule %zu SQL:\n%s\n", i + 1,
                  compiled.value().sql.rule_queries[i].c_str());
    }
    for (size_t i = 0;
         i < compiled.value().xquery_text.rule_queries.size(); ++i) {
      std::printf("-- rule %zu XQuery:\n%s\n", i + 1,
                  compiled.value().xquery_text.rule_queries[i].c_str());
    }
  }

  auto result =
      server.value()->MatchPolicyId(compiled.value(), policy_id.value());
  if (!result.ok()) return Fail(result.status(), "match");

  std::printf("engine:   %s\n", EngineKindName(engine));
  std::printf("behavior: %s\n", result.value().behavior.c_str());
  if (result.value().fired_rule_index >= 0) {
    std::printf("rule:     %d\n", result.value().fired_rule_index + 1);
  } else {
    std::printf("rule:     none fired (fail-safe default)\n");
  }
  // Exit code mirrors the decision so the tool scripts well: 0 = request
  // (release data), 1 = anything else.
  return result.value().behavior == "request" ? 0 : 1;
}
