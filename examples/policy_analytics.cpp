// Site-owner analytics — the §4.2 advantage that "site owners can refine
// their policies if they know what policies have a conflict with the
// privacy preferences of their users", which "the current [client-centric]
// architecture does not allow".
//
// Installs the Fortune-1000 corpus, replays a stream of user checks at
// mixed sensitivity levels with match logging on, and then answers the
// site owner's questions with plain SQL over the shredded policy tables
// and the match log — the payoff of storing policies in a database.
//
//   $ ./policy_analytics

#include <cstdio>

#include "common/random.h"
#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"

using p3pdb::Random;
using p3pdb::server::EngineKind;
using p3pdb::server::PolicyServer;
using p3pdb::workload::AllPreferenceLevels;
using p3pdb::workload::JrcPreference;
using p3pdb::workload::PreferenceLevel;

namespace {

void RunQuery(PolicyServer* server, const char* question, const char* sql) {
  std::printf("-- %s\n   %s\n", question, sql);
  auto result = server->database()->Execute(sql);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result.value().ToString().c_str());
}

}  // namespace

int main() {
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.record_matches = true;
  auto server = PolicyServer::Create(options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  std::vector<p3pdb::p3p::Policy> corpus = p3pdb::workload::FortuneCorpus();
  std::vector<long long> ids;
  for (const auto& policy : corpus) {
    auto id = server.value()->InstallPolicy(policy);
    if (!id.ok()) {
      std::fprintf(stderr, "install: %s\n", id.status().ToString().c_str());
      return 1;
    }
    ids.push_back(id.value());
  }
  std::printf("installed %zu policies\n", ids.size());

  // Simulate a day of preference checks: users arrive with mixed
  // sensitivity levels (more Medium/Low than Very High) and hit policies
  // unevenly.
  std::vector<p3pdb::server::CompiledPreference> prefs;
  for (PreferenceLevel level : AllPreferenceLevels()) {
    auto pref = server.value()->CompilePreference(JrcPreference(level));
    if (!pref.ok()) {
      std::fprintf(stderr, "compile: %s\n", pref.status().ToString().c_str());
      return 1;
    }
    prefs.push_back(std::move(pref).value());
  }
  const int level_weights[] = {1, 2, 4, 4, 2};  // VH, H, M, L, VL
  Random rng(7);
  int checks = 0;
  for (int i = 0; i < 2000; ++i) {
    int total_weight = 13;
    int pick = static_cast<int>(rng.Uniform(total_weight));
    size_t level = 0;
    for (int acc = 0; level < 5; ++level) {
      acc += level_weights[level];
      if (pick < acc) break;
    }
    size_t policy = rng.Uniform(ids.size());
    auto result =
        server.value()->MatchPolicyId(prefs[level], ids[policy]);
    if (!result.ok()) {
      std::fprintf(stderr, "match: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    ++checks;
  }
  std::printf("replayed %d preference checks with match logging on\n\n",
              checks);

  RunQuery(server.value().get(),
           "Which policies conflict with users' preferences the most?",
           "SELECT policy_id, COUNT(*) AS blocks FROM MatchLog "
           "WHERE behavior = 'block' GROUP BY policy_id "
           "ORDER BY 2 DESC, 1 LIMIT 5");

  RunQuery(server.value().get(),
           "How do outcomes split overall?",
           "SELECT behavior, COUNT(*) AS matches FROM MatchLog "
           "GROUP BY behavior ORDER BY 2 DESC");

  RunQuery(server.value().get(),
           "Which rules fire? (rule -1 = default / catch-all ordering)",
           "SELECT fired_rule, behavior, COUNT(*) AS matches FROM MatchLog "
           "GROUP BY fired_rule, behavior ORDER BY 3 DESC LIMIT 6");

  RunQuery(server.value().get(),
           "Which purposes do the blocked policies declare? "
           "(join the log with the shredded Purpose table)",
           "SELECT Purpose.purpose, COUNT(*) AS occurrences "
           "FROM Purpose, MatchLog "
           "WHERE MatchLog.behavior = 'block' "
           "AND Purpose.policy_id = MatchLog.policy_id "
           "GROUP BY Purpose.purpose ORDER BY 2 DESC LIMIT 8");

  RunQuery(server.value().get(),
           "How many statements retain data indefinitely, per policy?",
           "SELECT policy_id, COUNT(*) AS stmts FROM Statement "
           "WHERE retention = 'indefinitely' GROUP BY policy_id "
           "ORDER BY 2 DESC LIMIT 5");

  RunQuery(server.value().get(),
           "And how does the engine run a translated rule? (EXPLAIN)",
           "EXPLAIN SELECT 'block' FROM ApplicablePolicy WHERE EXISTS "
           "(SELECT * FROM Policy WHERE Policy.policy_id = "
           "ApplicablePolicy.policy_id AND EXISTS (SELECT * FROM Statement "
           "WHERE Statement.policy_id = Policy.policy_id AND EXISTS "
           "(SELECT * FROM Purpose WHERE Purpose.policy_id = "
           "Statement.policy_id AND Purpose.statement_id = "
           "Statement.statement_id AND Purpose.purpose = 'telemarketing')))");

  std::printf(
      "A client-centric deployment never sees these numbers: the matching\n"
      "happens in the browser. Server-side matching over shredded tables\n"
      "makes policy refinement a reporting query.\n");
  return 0;
}
