// Quickstart: the paper's §2 walk-through, end to end.
//
// Installs Volga the bookseller's P3P policy (Figure 1) into the
// server-centric engine, compiles Jane's APPEL preference (Figure 2) into
// SQL (Figure 15 translator), and checks a page request. Prints the policy,
// the preference, the generated SQL, and the outcome.
//
//   $ ./quickstart

#include <cstdio>

#include "p3p/policy_xml.h"
#include "server/policy_server.h"
#include "workload/paper_examples.h"

using p3pdb::server::EngineKind;
using p3pdb::server::PolicyServer;

int main() {
  // 1. Create a server-centric P3P deployment backed by the SQL engine.
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // 2. The site installs its privacy policy (shredded into the Figure 14
  //    tables) and its reference file.
  p3pdb::p3p::Policy volga = p3pdb::workload::VolgaPolicy();
  std::printf("=== Volga's P3P policy (Figure 1) ===\n%s\n",
              p3pdb::p3p::PolicyToText(volga).c_str());
  auto policy_id = server.value()->InstallPolicy(volga);
  if (!policy_id.ok()) {
    std::fprintf(stderr, "install: %s\n",
                 policy_id.status().ToString().c_str());
    return 1;
  }
  auto rf_status = server.value()->InstallReferenceFile(
      p3pdb::workload::VolgaReferenceFile());
  if (!rf_status.ok()) {
    std::fprintf(stderr, "reference file: %s\n",
                 rf_status.ToString().c_str());
    return 1;
  }

  // 3. Jane's preference arrives as APPEL and is converted to SQL once.
  p3pdb::appel::AppelRuleset jane = p3pdb::workload::JanePreference();
  std::printf("=== Jane's APPEL preference (Figure 2) ===\n%s\n",
              p3pdb::appel::RulesetToText(jane).c_str());
  auto pref = server.value()->CompilePreference(jane);
  if (!pref.ok()) {
    std::fprintf(stderr, "compile: %s\n", pref.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Generated SQL (one query per rule) ===\n");
  for (size_t i = 0; i < pref.value().sql.rule_queries.size(); ++i) {
    std::printf("-- rule %zu (behavior '%s'):\n%s\n\n", i + 1,
                pref.value().sql.behaviors[i].c_str(),
                pref.value().sql.rule_queries[i].c_str());
  }

  // 4. Jane requests a page; the server locates the applicable policy via
  //    the reference tables and evaluates her rules in order.
  for (const char* path : {"/catalog/books/1984", "/about/company.html"}) {
    auto result = server.value()->MatchUri(pref.value(), path);
    if (!result.ok()) {
      std::fprintf(stderr, "match: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("GET %-28s -> %s", path, result.value().behavior.c_str());
    if (result.value().fired_rule_index >= 0) {
      std::printf(" (rule %d fired)", result.value().fired_rule_index + 1);
    }
    std::printf("\n");
  }
  std::printf(
      "\nAs in the paper's Section 2.2: Volga's policy conforms to Jane's "
      "preferences,\nso her catch-all rule requests the page.\n");
  return 0;
}
