#include "appel/engine.h"

#include "p3p/augment.h"
#include "p3p/vocab.h"

namespace p3pdb::appel {

namespace {

/// Default attribute values the policy vocabulary defines; an absent
/// attribute on the evidence matches these values (this is what makes
/// `<contact required="always"/>` in Jane's rule match a policy that writes
/// no required attribute at all).
std::string_view DefaultAttributeValue(std::string_view attr_name) {
  if (attr_name == "required") return p3p::kRequiredDefault;
  if (attr_name == "optional") return "no";
  return {};
}

bool AttributesMatch(const AppelExpr& expr, const xml::Element& evidence) {
  for (const AppelAttribute& attr : expr.attributes) {
    std::optional<std::string_view> actual = evidence.Attr(attr.name);
    std::string_view value =
        actual.has_value() ? *actual : DefaultAttributeValue(attr.name);
    if (attr.name == "ref") {
      // Data references compare in normalized form ("#user.name" and
      // "user.name" denote the same element), matching the shredders'
      // stored form.
      if (p3p::NormalizeDataRef(value) !=
          p3p::NormalizeDataRef(attr.value)) {
        return false;
      }
      continue;
    }
    if (value != attr.value) return false;
  }
  return true;
}

/// Elements in an XML subtree, the augmentation work measure: the naive
/// augmenter deep-copies and re-visits every element of the policy copy.
uint64_t CountElements(const xml::Element& element) {
  uint64_t count = 1;
  for (const auto& child : element.children()) {
    count += CountElements(*child);
  }
  return count;
}

}  // namespace

bool NativeEngine::ExprMatches(const AppelExpr& expr,
                               const xml::Element& evidence) {
  return MatchExpr(expr, evidence, nullptr);
}

bool NativeEngine::MatchExpr(const AppelExpr& expr,
                             const xml::Element& evidence, uint64_t* steps) {
  if (steps != nullptr) ++*steps;
  if (expr.name != evidence.LocalName()) return false;
  if (!AttributesMatch(expr, evidence)) return false;
  if (expr.children.empty()) return true;

  // For each contained expression: is it found among the evidence children?
  size_t found_count = 0;
  bool found_any = false;
  for (const AppelExpr& child_expr : expr.children) {
    bool found = false;
    for (const auto& child_evidence : evidence.children()) {
      if (MatchExpr(child_expr, *child_evidence, steps)) {
        found = true;
        break;
      }
    }
    if (found) {
      ++found_count;
      found_any = true;
    }
  }
  const bool found_all = found_count == expr.children.size();

  switch (expr.connective) {
    case Connective::kAnd:
      return found_all;
    case Connective::kOr:
      return found_any;
    case Connective::kNonAnd:
      // "not all of the contained expressions can be found"
      return !found_all;
    case Connective::kNonOr:
      // "none of the contained expressions can be found"
      return !found_any;
    case Connective::kAndExact:
    case Connective::kOrExact: {
      const bool base = expr.connective == Connective::kAndExact ? found_all
                                                                 : found_any;
      if (!base) return false;
      // Part (b): the evidence may contain only elements listed in the rule.
      for (const auto& child_evidence : evidence.children()) {
        bool covered = false;
        for (const AppelExpr& child_expr : expr.children) {
          if (MatchExpr(child_expr, *child_evidence, steps)) {
            covered = true;
            break;
          }
        }
        if (!covered) return false;
      }
      return true;
    }
  }
  return false;
}

Result<MatchOutcome> NativeEngine::Evaluate(
    const AppelRuleset& ruleset, const xml::Element& policy_root) const {
  return Evaluate(ruleset, policy_root, nullptr);
}

Result<MatchOutcome> NativeEngine::Evaluate(const AppelRuleset& ruleset,
                                            const xml::Element& policy_root,
                                            obs::TraceContext* trace) const {
  if (policy_root.LocalName() != "POLICY") {
    return Status::InvalidArgument("evidence root must be a POLICY element");
  }

  // The client engine's working copy. A stateless matcher holds the base
  // data schema only as the document it downloaded, so every evaluation
  // re-processes that document and resolves each DATA ref by scanning it —
  // the augmentation cost the paper's profiling found to dominate the JRC
  // engine's 2.63 s per match (§6.3.2).
  std::unique_ptr<xml::Element> augmented;
  const xml::Element* evidence = &policy_root;
  if (options_.augment_per_match) {
    obs::ScopedSpan aug_span(trace, "category-augmentation");
    auto schema = p3p::DataSchemaFromXml(p3p::BaseDataSchemaXmlText());
    if (!schema.ok()) return schema.status();
    augmented = p3p::AugmentPolicyXmlNaive(policy_root, schema.value());
    evidence = augmented.get();
    if (aug_span.active()) {
      // Work = base-schema elements re-processed + working-copy elements
      // visited. Deterministic, unlike the wall clock.
      uint64_t schema_elements = schema.value().ElementCount();
      aug_span.AddCount("schema-elements", schema_elements);
      aug_span.AddCount("work", schema_elements + CountElements(*augmented));
    }
  }

  obs::ScopedSpan eval_span(trace, "connective-eval");
  uint64_t steps = 0;
  uint64_t* steps_ptr = trace == nullptr ? nullptr : &steps;
  MatchOutcome outcome;
  outcome.behavior = kDefaultBehavior;
  outcome.fired_rule_index = -1;
  for (size_t i = 0; i < ruleset.rules.size(); ++i) {
    const AppelRule& rule = ruleset.rules[i];
    bool fires;
    if (rule.IsCatchAll()) {
      fires = true;
    } else {
      size_t matched = 0;
      for (const AppelExpr& expr : rule.expressions) {
        if (MatchExpr(expr, *evidence, steps_ptr)) ++matched;
      }
      switch (rule.connective) {
        case Connective::kAnd:
          fires = matched == rule.expressions.size();
          break;
        case Connective::kOr:
          fires = matched > 0;
          break;
        case Connective::kNonAnd:
          fires = matched != rule.expressions.size();
          break;
        case Connective::kNonOr:
          fires = matched == 0;
          break;
        default:
          return Status::Unsupported(
              "exact connectives are not defined at rule level");
      }
    }
    if (fires) {
      outcome.behavior = rule.behavior;
      outcome.fired_rule_index = static_cast<int>(i);
      break;
    }
  }
  if (eval_span.active()) {
    eval_span.AddCount("work", steps);
    eval_span.SetAttr("behavior", outcome.behavior);
    if (outcome.fired())
      eval_span.SetAttr("rule", std::to_string(outcome.fired_rule_index));
  }
  return outcome;
}

}  // namespace p3pdb::appel
