// Native APPEL matching engine — the client-centric baseline of the paper.
//
// This reimplements the evaluator of the only public APPEL engine of the
// time (JRC): rules are tried in order, each rule's pattern is matched
// recursively against the policy's XML tree with the six APPEL connectives,
// and — crucially for the performance story — the engine first augments
// every DATA element of the policy with the categories the P3P base data
// schema assigns to it, on a fresh working copy, on *every* match. The
// paper's profiling found this augmentation to account for most of the
// 15-30x gap to the SQL implementation (§6.3.2). The augmentation placement
// is a knob here so the A2 ablation can quantify that claim.

#ifndef P3PDB_APPEL_ENGINE_H_
#define P3PDB_APPEL_ENGINE_H_

#include <cstdint>
#include <string>

#include "appel/model.h"
#include "common/result.h"
#include "obs/trace.h"
#include "p3p/data_schema.h"
#include "xml/node.h"

namespace p3pdb::appel {

/// Outcome of evaluating a ruleset against one policy.
struct MatchOutcome {
  std::string behavior;       // behavior of the rule that fired
  int fired_rule_index = -1;  // 0-based; -1 when no rule fired
  bool fired() const { return fired_rule_index >= 0; }
};

/// When no rule fires APPEL prescribes fail-safe blocking.
inline constexpr const char* kDefaultBehavior = "block";

class NativeEngine {
 public:
  struct Options {
    /// Re-augment the policy with base-schema categories on every
    /// Evaluate() call, as the JRC engine did. Turning this off models an
    /// engine evaluating pre-augmented policies (the A2 ablation).
    bool augment_per_match = true;
  };

  NativeEngine() : NativeEngine(Options{}) {}
  explicit NativeEngine(Options options)
      : options_(options), schema_(&p3p::DataSchema::Base()) {}

  /// Evaluates `ruleset` against the POLICY element `policy_root`.
  /// Rules fire in order; a rule with an empty body always fires. When no
  /// rule fires, returns kDefaultBehavior with fired_rule_index = -1.
  Result<MatchOutcome> Evaluate(const AppelRuleset& ruleset,
                                const xml::Element& policy_root) const;

  /// Traced variant: records a `category-augmentation` span (with a
  /// deterministic `work` counter — elements scanned in the base schema
  /// plus elements of the augmented working copy) and a `connective-eval`
  /// span (`work` = pattern-match step count), reproducing the paper's
  /// §6.3.2 cost breakdown per match. Null `trace` is the overload above.
  Result<MatchOutcome> Evaluate(const AppelRuleset& ruleset,
                                const xml::Element& policy_root,
                                obs::TraceContext* trace) const;

  /// Whether one expression matches one evidence element (exposed for
  /// testing the connective semantics in isolation).
  static bool ExprMatches(const AppelExpr& expr, const xml::Element& evidence);

 private:
  /// The recursive matcher behind ExprMatches; `steps` (when non-null)
  /// counts invocations — the connective-eval work measure.
  static bool MatchExpr(const AppelExpr& expr, const xml::Element& evidence,
                        uint64_t* steps);

  Options options_;
  const p3p::DataSchema* schema_;
};

}  // namespace p3pdb::appel

#endif  // P3PDB_APPEL_ENGINE_H_
