#include "appel/fingerprint.h"

namespace p3pdb::appel {

uint64_t FingerprintBytes(std::string_view bytes) {
  // FNV-1a 64-bit (offset basis / prime per the FNV reference).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h == 0 ? 1 : h;
}

uint64_t RulesetFingerprint(const AppelRuleset& ruleset) {
  return FingerprintBytes(RulesetToText(ruleset));
}

}  // namespace p3pdb::appel
