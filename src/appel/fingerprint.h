// Canonical APPEL-ruleset fingerprint.
//
// The match outcome is a pure function of (compiled preference, applicable
// policy version, engine), so repeated checks by millions of users against a
// site's handful of policies are an ideal memoization target (paper §4,
// Figure 6). The memo key needs a stable identity for a preference that is
// cheap to compare and independent of which server compiled it: a 64-bit
// FNV-1a hash over the canonical serialized form of the validated ruleset.
// Two rulesets that serialize identically — same rules, behaviors,
// connectives, expressions, attributes, in the same order — always hash
// identically; distinct preferences collide with probability ~2^-64.

#ifndef P3PDB_APPEL_FINGERPRINT_H_
#define P3PDB_APPEL_FINGERPRINT_H_

#include <cstdint>
#include <string_view>

#include "appel/model.h"

namespace p3pdb::appel {

/// FNV-1a 64-bit over a byte string. Never returns 0 (0 is reserved as the
/// "no fingerprint" sentinel, so a default-constructed CompiledPreference
/// can never alias a real one in the match cache).
uint64_t FingerprintBytes(std::string_view bytes);

/// Fingerprint of a ruleset: FingerprintBytes over its canonical XML
/// serialization (RulesetToText). Stable across processes and runs.
uint64_t RulesetFingerprint(const AppelRuleset& ruleset);

}  // namespace p3pdb::appel

#endif  // P3PDB_APPEL_FINGERPRINT_H_
