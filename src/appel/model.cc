#include "appel/model.h"

#include "xml/parser.h"
#include "xml/writer.h"

namespace p3pdb::appel {

Result<Connective> ParseConnective(std::string_view text) {
  if (text == "and") return Connective::kAnd;
  if (text == "or") return Connective::kOr;
  if (text == "non-and") return Connective::kNonAnd;
  if (text == "non-or") return Connective::kNonOr;
  if (text == "and-exact") return Connective::kAndExact;
  if (text == "or-exact") return Connective::kOrExact;
  return Status::ParseError("unknown connective '" + std::string(text) + "'");
}

std::string_view ConnectiveToString(Connective c) {
  switch (c) {
    case Connective::kAnd:
      return "and";
    case Connective::kOr:
      return "or";
    case Connective::kNonAnd:
      return "non-and";
    case Connective::kNonOr:
      return "non-or";
    case Connective::kAndExact:
      return "and-exact";
    case Connective::kOrExact:
      return "or-exact";
  }
  return "and";
}

size_t AppelExpr::SubtreeSize() const {
  size_t n = 1;
  for (const AppelExpr& child : children) n += child.SubtreeSize();
  return n;
}

size_t AppelRuleset::ExpressionCount() const {
  size_t n = 0;
  for (const AppelRule& rule : rules) {
    for (const AppelExpr& expr : rule.expressions) n += expr.SubtreeSize();
  }
  return n;
}

Status AppelRuleset::Validate() const {
  if (rules.empty()) {
    return Status::InvalidArgument("ruleset has no rules");
  }
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].behavior.empty()) {
      return Status::InvalidArgument("rule " + std::to_string(i + 1) +
                                     " has no behavior");
    }
    if (rules[i].IsCatchAll() && i + 1 != rules.size()) {
      return Status::InvalidArgument(
          "catch-all rule " + std::to_string(i + 1) +
          " makes later rules unreachable");
    }
  }
  return Status::OK();
}

namespace {

/// True for attributes that steer APPEL itself rather than match evidence.
bool IsAppelControlAttribute(std::string_view name) {
  return name.rfind("appel:", 0) == 0 || name == "connective" ||
         name.rfind("xmlns", 0) == 0;
}

Result<AppelExpr> ExprFromXml(const xml::Element& elem) {
  AppelExpr expr;
  expr.name = std::string(elem.LocalName());
  std::string_view conn = elem.AttrOr("appel:connective", "");
  if (conn.empty()) conn = elem.AttrOr("connective", "");
  if (!conn.empty()) {
    P3PDB_ASSIGN_OR_RETURN(expr.connective, ParseConnective(conn));
  }
  for (const xml::Attribute& attr : elem.attributes()) {
    if (IsAppelControlAttribute(attr.name)) continue;
    expr.attributes.push_back(AppelAttribute{attr.name, attr.value});
  }
  for (const auto& child : elem.children()) {
    P3PDB_ASSIGN_OR_RETURN(AppelExpr sub, ExprFromXml(*child));
    expr.children.push_back(std::move(sub));
  }
  return expr;
}

Result<AppelRule> RuleFromXml(const xml::Element& elem) {
  AppelRule rule;
  std::string_view behavior = elem.AttrOr("behavior", "");
  if (behavior.empty()) behavior = elem.AttrOr("appel:behavior", "");
  if (behavior.empty()) {
    return Status::ParseError("RULE without behavior attribute");
  }
  rule.behavior = std::string(behavior);
  rule.description = std::string(elem.AttrOr("description", ""));
  std::string_view conn = elem.AttrOr("appel:connective", "");
  if (conn.empty()) conn = elem.AttrOr("connective", "");
  if (!conn.empty()) {
    P3PDB_ASSIGN_OR_RETURN(rule.connective, ParseConnective(conn));
  }
  for (const auto& child : elem.children()) {
    if (child->LocalName() == "OTHERWISE") continue;  // catch-all marker
    P3PDB_ASSIGN_OR_RETURN(AppelExpr expr, ExprFromXml(*child));
    rule.expressions.push_back(std::move(expr));
  }
  return rule;
}

}  // namespace

Result<AppelRuleset> RulesetFromXml(const xml::Element& root) {
  if (root.LocalName() != "RULESET") {
    return Status::ParseError("expected appel:RULESET, got '" + root.name() +
                              "'");
  }
  AppelRuleset ruleset;
  for (const auto& child : root.children()) {
    std::string_view name = child->LocalName();
    if (name == "RULE") {
      P3PDB_ASSIGN_OR_RETURN(AppelRule rule, RuleFromXml(*child));
      ruleset.rules.push_back(std::move(rule));
    } else if (name == "OTHERWISE") {
      // A bare OTHERWISE at ruleset level acts as "request everything else".
      AppelRule rule;
      rule.behavior = "request";
      ruleset.rules.push_back(std::move(rule));
    } else {
      return Status::ParseError("unexpected element '" + std::string(name) +
                                "' in RULESET");
    }
  }
  return ruleset;
}

Result<AppelRuleset> RulesetFromText(std::string_view text) {
  P3PDB_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  return RulesetFromXml(*doc.root);
}

namespace {

void ExprToXml(const AppelExpr& expr, xml::Element* parent) {
  xml::Element* elem = parent->AddChild(expr.name);
  if (expr.connective != Connective::kAnd) {
    elem->SetAttr("appel:connective", ConnectiveToString(expr.connective));
  }
  for (const AppelAttribute& attr : expr.attributes) {
    elem->SetAttr(attr.name, attr.value);
  }
  for (const AppelExpr& child : expr.children) {
    ExprToXml(child, elem);
  }
}

}  // namespace

std::unique_ptr<xml::Element> RulesetToXml(const AppelRuleset& ruleset) {
  auto root = std::make_unique<xml::Element>("appel:RULESET");
  root->SetAttr("xmlns:appel",
                "http://www.w3.org/2002/04/APPELv1");
  for (const AppelRule& rule : ruleset.rules) {
    xml::Element* r = root->AddChild("appel:RULE");
    r->SetAttr("behavior", rule.behavior);
    if (!rule.description.empty()) {
      r->SetAttr("description", rule.description);
    }
    if (rule.connective != Connective::kAnd) {
      r->SetAttr("appel:connective", ConnectiveToString(rule.connective));
    }
    for (const AppelExpr& expr : rule.expressions) {
      ExprToXml(expr, r);
    }
  }
  return root;
}

std::string RulesetToText(const AppelRuleset& ruleset) {
  return xml::Write(*RulesetToXml(ruleset));
}

}  // namespace p3pdb::appel
