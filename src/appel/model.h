// Object model for APPEL preferences (A P3P Preference Exchange Language
// 1.0, W3C Working Draft, Feb 2001; paper §2.2).
//
// A preference is an ordered RULESET of RULEs. Each rule has a behavior
// (block / request / limited / ...) and a body: a pattern of expressions
// mirroring the P3P policy structure, combined with one of six connectives
// (and, or, non-and, non-or, and-exact, or-exact; default and). A rule with
// an empty body always fires — that is how the catch-all final rule of the
// paper's Figure 2 works. The bare appel:OTHERWISE element some preference
// files carry is accepted and treated as that same catch-all marker.

#ifndef P3PDB_APPEL_MODEL_H_
#define P3PDB_APPEL_MODEL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace p3pdb::appel {

enum class Connective { kAnd, kOr, kNonAnd, kNonOr, kAndExact, kOrExact };

/// Parses "or", "and-exact", ... Fails on unknown text.
Result<Connective> ParseConnective(std::string_view text);
std::string_view ConnectiveToString(Connective c);

/// An attribute the expression requires on the evidence element.
struct AppelAttribute {
  std::string name;
  std::string value;
};

/// One pattern expression: matches a policy element with the same local
/// name whose attributes and children satisfy the expression.
struct AppelExpr {
  std::string name;  // local element name, e.g. "PURPOSE" or "contact"
  Connective connective = Connective::kAnd;
  std::vector<AppelAttribute> attributes;
  std::vector<AppelExpr> children;

  /// Number of expressions in this subtree (including this one).
  size_t SubtreeSize() const;
};

/// One RULE element.
struct AppelRule {
  std::string behavior;     // "block", "request", "limited", ...
  std::string description;  // optional appel:description attribute
  Connective connective = Connective::kAnd;  // across top-level expressions
  std::vector<AppelExpr> expressions;  // typically one POLICY pattern

  bool IsCatchAll() const { return expressions.empty(); }
};

/// A full APPEL preference.
struct AppelRuleset {
  std::vector<AppelRule> rules;

  size_t RuleCount() const { return rules.size(); }
  size_t ExpressionCount() const;

  /// Vocabulary-level sanity checks: behaviors non-empty, known connectives
  /// are guaranteed by construction, at most one catch-all and only in final
  /// position (rules after it are unreachable).
  Status Validate() const;
};

Result<AppelRuleset> RulesetFromXml(const xml::Element& root);
Result<AppelRuleset> RulesetFromText(std::string_view text);
std::unique_ptr<xml::Element> RulesetToXml(const AppelRuleset& ruleset);
std::string RulesetToText(const AppelRuleset& ruleset);

}  // namespace p3pdb::appel

#endif  // P3PDB_APPEL_MODEL_H_
