// Deterministic pseudo-random generator for workload synthesis.
//
// Benchmarks and property tests must be reproducible run-to-run, so all
// randomness in p3pdb flows through this seeded SplitMix64 generator instead
// of std::random_device.

#ifndef P3PDB_COMMON_RANDOM_H_
#define P3PDB_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace p3pdb {

/// SplitMix64: tiny, fast, and adequate for workload shuffling.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    return lo + static_cast<int>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Uniform(items.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace p3pdb

#endif  // P3PDB_COMMON_RANDOM_H_
