// Result<T>: a value-or-Status, the companion of Status for functions that
// produce a value on success.

#ifndef P3PDB_COMMON_RESULT_H_
#define P3PDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace p3pdb {

/// Holds either a T (when status().ok()) or an error Status.
///
/// Typical use:
///   Result<Policy> r = ParsePolicy(text);
///   if (!r.ok()) return r.status();
///   const Policy& p = r.value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result. Intentionally implicit so functions can
  /// `return Status::ParseError(...);`. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result built from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or aborts with the error message. For tests, benches,
  /// and examples only.
  T ValueOrDie() && {
    if (!ok()) {
      fprintf(stderr, "ValueOrDie on error: %s\n", status_.ToString().c_str());
      abort();
    }
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace p3pdb

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// binds the value to `lhs`.
#define P3PDB_ASSIGN_OR_RETURN(lhs, expr)            \
  P3PDB_ASSIGN_OR_RETURN_IMPL(                       \
      P3PDB_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define P3PDB_CONCAT_INNER_(a, b) a##b
#define P3PDB_CONCAT_(a, b) P3PDB_CONCAT_INNER_(a, b)

#define P3PDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // P3PDB_COMMON_RESULT_H_
