// Status: the error-handling primitive used across p3pdb.
//
// No exceptions cross API boundaries in this codebase (Arrow/RocksDB idiom).
// Functions that can fail return Status, or Result<T> (see result.h) when
// they also produce a value.

#ifndef P3PDB_COMMON_STATUS_H_
#define P3PDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace p3pdb {

/// Broad classification of a failure. Kept deliberately small; the message
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // caller passed something malformed
  kParseError,       // XML / SQL / APPEL / XQuery text did not parse
  kNotFound,         // named table, column, policy, or URI mapping missing
  kAlreadyExists,    // duplicate table / policy id
  kUnsupported,      // valid input outside the implemented subset
  kLimitExceeded,    // query complexity / resource limit hit
  kInternal,         // invariant violation inside the library
};

/// Human-readable name of a StatusCode, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status LimitExceeded(std::string msg) {
    return Status(StatusCode::kLimitExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace p3pdb

/// Propagates a non-OK Status to the caller.
#define P3PDB_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::p3pdb::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // P3PDB_COMMON_STATUS_H_
