// Wall-clock stopwatch used by the benchmark harnesses to report the
// avg/max/min tables of the paper (Figures 20 and 21).

#ifndef P3PDB_COMMON_STOPWATCH_H_
#define P3PDB_COMMON_STOPWATCH_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <limits>
#include <vector>

namespace p3pdb {

/// Measures elapsed wall time in microseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Microseconds since construction or the last Restart().
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates samples and reports the average/max/min triple the paper's
/// evaluation tables use.
class TimingStats {
 public:
  void Add(double value) { samples_.push_back(value); }

  size_t count() const { return samples_.size(); }

  /// Raw samples, for merging across experiments.
  const std::vector<double>& samples() const { return samples_; }

  double Average() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  double Max() const {
    double m = std::numeric_limits<double>::lowest();
    for (double s : samples_) m = std::max(m, s);
    return samples_.empty() ? 0.0 : m;
  }

  double Min() const {
    double m = std::numeric_limits<double>::max();
    for (double s : samples_) m = std::min(m, s);
    return samples_.empty() ? 0.0 : m;
  }

  /// Nearest-rank percentile, `p` in [0, 100]: the smallest sample with at
  /// least ceil(p/100 * n) samples at or below it. Percentile(0) is the
  /// minimum, Percentile(100) the maximum; 0 when empty. Sorts a copy, so
  /// it is meant for end-of-run reporting, not the hot path.
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0.0) return sorted.front();
    if (p >= 100.0) return sorted.back();
    size_t rank = static_cast<size_t>(
        p / 100.0 * static_cast<double>(sorted.size()));
    if (static_cast<double>(rank) <
        p / 100.0 * static_cast<double>(sorted.size())) {
      ++rank;
    }
    if (rank == 0) rank = 1;
    return sorted[rank - 1];
  }

 private:
  std::vector<double> samples_;
};

}  // namespace p3pdb

#endif  // P3PDB_COMMON_STOPWATCH_H_
