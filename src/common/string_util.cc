#include "common/string_util.h"

#include <cstdio>

namespace p3pdb {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace p3pdb
