// Small string helpers shared by the lexers, parsers, and writers.

#ifndef P3PDB_COMMON_STRING_UTIL_H_
#define P3PDB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace p3pdb {

/// Returns `s` with leading and trailing ASCII whitespace removed.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (P3P vocabulary tokens are ASCII).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality (SQL keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool IsAsciiSpace(char c);
bool IsAsciiDigit(char c);
bool IsAsciiAlpha(char c);

/// Replaces every occurrence of `from` (non-empty) in `s` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Escapes a string for inclusion in a single-quoted SQL literal
/// (doubles embedded quotes).
std::string SqlQuote(std::string_view s);

/// Formats a double with `digits` fractional digits (for report tables).
std::string FormatDouble(double value, int digits);

}  // namespace p3pdb

#endif  // P3PDB_COMMON_STRING_UTIL_H_
