#include "obs/metrics.h"

#include <bit>

#include "common/string_util.h"

namespace p3pdb::obs {

namespace {

bool IsValidMetricChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Escapes a label value for exposition (`\`, `"`, newline).
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string RenderInfoLine(const std::string& name, const InfoLabels& labels) {
  std::string out = name + "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ",";
    out += SanitizeMetricName(labels[i].first) + "=\"" +
           EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "} 1\n";
  return out;
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) out += IsValidMetricChar(c) ? c : '_';
  if (out.empty()) out = "_";
  return out;
}

uint64_t HistogramBucketUpperBound(size_t i) {
  if (i >= kHistogramBuckets) i = kHistogramBuckets - 1;
  return uint64_t{1} << i;
}

size_t HistogramBucketIndex(uint64_t value) {
  if (value <= 1) return 0;
  size_t i = static_cast<size_t>(std::bit_width(value - 1));
  return i < kHistogramBuckets ? i : kHistogramBuckets - 1;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(p/100 * count), with rank at least 1.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count));
  if (static_cast<double>(rank) < p / 100.0 * static_cast<double>(count)) {
    ++rank;
  }
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return static_cast<double>(HistogramBucketUpperBound(i));
    }
  }
  return static_cast<double>(HistogramBucketUpperBound(kHistogramBuckets - 1));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::string key = SanitizeMetricName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(std::move(key), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::string key = SanitizeMetricName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::move(key), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::string key = SanitizeMetricName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::move(key), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::SetInfo(std::string_view name, InfoLabels labels) {
  std::string key = SanitizeMetricName(name);
  std::lock_guard<std::mutex> lock(mu_);
  infos_[std::move(key)] = std::move(labels);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  for (const auto& [name, labels] : infos_) snap.infos[name] = labels;
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, labels] : snap.infos) {
    out += "# TYPE " + name + " gauge\n";
    out += RenderInfoLine(name, labels);
  }
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"" +
             std::to_string(HistogramBucketUpperBound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
      // Collapse the empty tail into the single +Inf line.
      if (cumulative == h.count) break;
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
    for (double q : {0.5, 0.9, 0.99}) {
      out += name + "{quantile=\"" + FormatDouble(q, 2) + "\"} " +
             FormatDouble(h.Percentile(q * 100.0), 1) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  MetricsSnapshot snap = Snapshot();
  std::string out = "{\n";
  // Emitted only when SetInfo was called, so registries without info
  // metrics render exactly as they always did.
  if (!snap.infos.empty()) {
    out += "  \"infos\": {";
    bool first_info = true;
    for (const auto& [name, labels] : snap.infos) {
      out += first_info ? "\n" : ",\n";
      out += "    \"" + name + "\": {";
      for (size_t i = 0; i < labels.size(); ++i) {
        if (i != 0) out += ", ";
        out += "\"" + SanitizeMetricName(labels[i].first) + "\": \"" +
               EscapeLabelValue(labels[i].second) + "\"";
      }
      out += "}";
      first_info = false;
    }
    out += "\n  },\n";
  }
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"avg\": " + FormatDouble(h.Average(), 1) +
           ", \"p50\": " + FormatDouble(h.Percentile(50.0), 1) +
           ", \"p90\": " + FormatDouble(h.Percentile(90.0), 1) +
           ", \"p99\": " + FormatDouble(h.Percentile(99.0), 1) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace p3pdb::obs
