// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms for the match path.
//
// The paper's evaluation (§6) argues from *measurements* — per-step
// profiling of the native APPEL engine and access-path counters for the SQL
// plans. This registry is the production-shaped version of that discipline:
// instruments are registered once (under a mutex), after which every
// Increment/Record is a relaxed atomic operation, so the hot match path
// stays lock-free — the same tally discipline as sqldb's AtomicExecStats.
// Snapshots render as Prometheus-style exposition text and as JSON, with
// p50/p90/p99 computed from the histogram buckets.

#ifndef P3PDB_OBS_METRICS_H_
#define P3PDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p3pdb::obs {

/// Coerces a name into the Prometheus metric-name alphabet
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): invalid characters become `_`, and a leading
/// digit gets a `_` prefix. Applied by the registry at registration, so an
/// exposition page never contains an unscrapable line.
std::string SanitizeMetricName(std::string_view name);

/// Monotonic counter. Lock-free; relaxed ordering (a tally, not a
/// synchronization point).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge (e.g. installed policy count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two bucket count for histograms. Bucket 0 covers [0, 1];
/// bucket i covers (2^(i-1), 2^i]; the last bucket additionally absorbs
/// everything larger (rendered as +Inf). With 40 buckets the second-to-last
/// boundary is 2^38 — far beyond any latency in microseconds this system
/// records.
inline constexpr size_t kHistogramBuckets = 40;

/// Upper (inclusive) boundary of bucket `i`: 1, 2, 4, 8, ...
uint64_t HistogramBucketUpperBound(size_t i);

/// Bucket index a value lands in.
size_t HistogramBucketIndex(uint64_t value);

/// Point-in-time copy of a histogram; all percentile math happens here, on
/// plain integers, so it is deterministic and unit-testable.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};  // per-bucket counts

  /// Nearest-rank percentile over the bucketed distribution, `p` in
  /// [0, 100]. Returns the upper boundary of the bucket containing the
  /// rank (log-bucketing trades exactness for lock-freedom; boundaries are
  /// the conservative answer, as with Prometheus `le` buckets). 0 when
  /// empty.
  double Percentile(double p) const;

  double Average() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Log-bucketed histogram of non-negative integer samples (the match path
/// records microseconds). Record() is lock-free.
class Histogram {
 public:
  void Record(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// Zeroes every cell (relaxed stores). Not atomic as a whole: a
  /// concurrent Record may survive partially; acceptable for the
  /// test/reset paths that use it.
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
};

/// Ordered label set of an info metric (`name{k="v",...} 1`).
using InfoLabels = std::vector<std::pair<std::string, std::string>>;

/// Everything a registry holds, frozen. Maps are keyed by instrument name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, InfoLabels> infos;
};

/// Owns named instruments. Get* registers on first use (mutex-guarded) and
/// returns a stable pointer; callers cache the pointer and touch it
/// lock-free afterwards. Instrument names follow Prometheus conventions
/// (snake_case, unit suffix, `_total` for counters).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Registers (or replaces) an info metric — the `name{label="value"} 1`
  /// idiom for constant build/deployment facts (e.g. p3p_build_info with
  /// git sha and build type). Label values are escaped at render time.
  void SetInfo(std::string_view name, InfoLabels labels);

  MetricsSnapshot Snapshot() const;

  /// Prometheus-style exposition text: `# TYPE` comments, cumulative
  /// `_bucket{le="..."}` lines, `_sum`/`_count`, and quantile lines for
  /// p50/p90/p99.
  std::string RenderText() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, avg, p50, p90, p99}}}.
  std::string RenderJson() const;

 private:
  mutable std::mutex mu_;  // guards the maps; instruments themselves are
                           // lock-free and pointer-stable once registered
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, InfoLabels, std::less<>> infos_;
};

}  // namespace p3pdb::obs

#endif  // P3PDB_OBS_METRICS_H_
