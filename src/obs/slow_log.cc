#include "obs/slow_log.h"

#include <chrono>
#include <cstdio>

#include "common/string_util.h"

namespace p3pdb::obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

const char* SlowQueryKindName(SlowQueryEntry::Kind kind) {
  switch (kind) {
    case SlowQueryEntry::Kind::kSlow:
      return "slow";
    case SlowQueryEntry::Kind::kTraceSample:
      return "trace-sample";
  }
  return "?";
}

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void SlowQueryLog::Add(SlowQueryEntry entry) {
  entry.unix_millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  entry.sequence = ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
    return;
  }
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries(
    std::optional<SlowQueryEntry::Kind> kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryEntry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    const SlowQueryEntry& e = ring_[(next_ + i) % ring_.size()];
    if (kind.has_value() && e.kind != *kind) continue;
    out.push_back(e);
  }
  return out;
}

std::string SlowQueryLog::RenderJson(
    std::optional<SlowQueryEntry::Kind> kind) const {
  std::vector<SlowQueryEntry> entries = Entries(kind);
  std::string out = "[\n";
  for (size_t i = entries.size(); i-- > 0;) {
    const SlowQueryEntry& e = entries[i];
    char fp[17];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(e.fingerprint));
    out += "  {\"seq\": " + std::to_string(e.sequence) + ", ";
    out += "\"kind\": \"" + std::string(SlowQueryKindName(e.kind)) + "\", ";
    out += "\"unix_millis\": " + std::to_string(e.unix_millis) + ", ";
    out += "\"fingerprint\": \"" + std::string(fp) + "\", ";
    out += "\"elapsed_us\": " + FormatDouble(e.elapsed_us, 1) + ", ";
    out += "\"sql\": \"" + JsonEscape(e.sql) + "\", ";
    out += "\"params\": \"" + JsonEscape(e.params) + "\", ";
    out += "\"plan\": \"" + JsonEscape(e.plan) + "\"}";
    if (i != 0) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

uint64_t SlowQueryLog::total_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace p3pdb::obs
