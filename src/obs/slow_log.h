// Slow-query log: a bounded ring buffer of captured statement executions.
//
// Two kinds of entries land here. *Slow* captures are statements whose
// execution exceeded the configured threshold; they carry the normalized
// text, the bound parameter values, and a rendered EXPLAIN ANALYZE plan, so
// the artifact answers "which plan was this, and where did the time go"
// without a reproduction run. *Trace samples* are every-Nth executions
// captured the same way regardless of latency, giving a steady drip of
// representative plans even when nothing is slow.
//
// Captures are rare by construction (they sit behind a threshold or a
// sampling stride), so the ring is guarded by a plain mutex — the
// lock-free discipline of the metrics/stats hot path is not needed here.
// The ring overwrites oldest-first; total_captured() keeps counting so a
// scraper can tell how much history the window dropped.

#ifndef P3PDB_OBS_SLOW_LOG_H_
#define P3PDB_OBS_SLOW_LOG_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace p3pdb::obs {

struct SlowQueryEntry {
  enum class Kind { kSlow, kTraceSample };

  Kind kind = Kind::kSlow;
  uint64_t sequence = 0;      // assigned by the log, monotonically increasing
  uint64_t fingerprint = 0;   // statement fingerprint (0 = unknown)
  std::string sql;            // normalized statement text
  std::string params;         // rendered bound parameters ("[]" when none)
  double elapsed_us = 0.0;    // the triggering execution's latency
  std::string plan;           // rendered EXPLAIN ANALYZE tree
  int64_t unix_millis = 0;    // wall-clock capture time
};

const char* SlowQueryKindName(SlowQueryEntry::Kind kind);

class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Appends one capture, overwriting the oldest when full. Stamps
  /// `sequence` and `unix_millis`.
  void Add(SlowQueryEntry entry);

  /// Entries currently in the window, oldest first; optionally filtered by
  /// kind.
  std::vector<SlowQueryEntry> Entries(
      std::optional<SlowQueryEntry::Kind> kind = std::nullopt) const;

  /// JSON array of Entries(kind), newest first (what `/slow` and `/traces`
  /// serve — the most recent capture is the interesting one).
  std::string RenderJson(
      std::optional<SlowQueryEntry::Kind> kind = std::nullopt) const;

  size_t capacity() const { return capacity_; }
  /// Captures ever observed, including those the ring has since dropped.
  uint64_t total_captured() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> ring_;  // ring_[next_] is the oldest when full
  size_t next_ = 0;
  uint64_t total_ = 0;
};

}  // namespace p3pdb::obs

#endif  // P3PDB_OBS_SLOW_LOG_H_
