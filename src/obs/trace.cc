#include "obs/trace.h"

#include "common/string_util.h"

namespace p3pdb::obs {

uint64_t TraceSpan::CounterValue(std::string_view key) const {
  for (const auto& [k, v] : counters) {
    if (k == key) return v;
  }
  return 0;
}

const TraceSpan* TraceSpan::FindChild(std::string_view child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

TraceSpan* TraceContext::BeginSpan(std::string_view name) {
  auto span = std::make_unique<TraceSpan>();
  span->name = std::string(name);
  TraceSpan* raw = span.get();
  if (open_.empty()) {
    root_ = std::move(span);  // new request: replace any previous tree
  } else {
    open_.back().first->children.push_back(std::move(span));
  }
  open_.emplace_back(raw, std::chrono::steady_clock::now());
  return raw;
}

void TraceContext::EndSpan() {
  if (open_.empty()) return;
  auto [span, start] = open_.back();
  open_.pop_back();
  span->elapsed_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
}

namespace {

const TraceSpan* FindSpanIn(const TraceSpan* span, std::string_view name) {
  if (span == nullptr) return nullptr;
  if (span->name == name) return span;
  for (const auto& child : span->children) {
    if (const TraceSpan* found = FindSpanIn(child.get(), name)) return found;
  }
  return nullptr;
}

void RenderSpanText(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name + " " + FormatDouble(span.elapsed_us, 1) + "us";
  if (!span.attributes.empty()) {
    *out += " {";
    for (size_t i = 0; i < span.attributes.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += span.attributes[i].first + "=" + span.attributes[i].second;
    }
    *out += "}";
  }
  if (!span.counters.empty()) {
    *out += " [";
    for (size_t i = 0; i < span.counters.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += span.counters[i].first + "=" +
              std::to_string(span.counters[i].second);
    }
    *out += "]";
  }
  *out += "\n";
  for (const auto& child : span.children) {
    RenderSpanText(*child, depth + 1, out);
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void RenderSpanJson(const TraceSpan& span, std::string* out) {
  *out += "{\"name\": \"" + JsonEscape(span.name) + "\", \"elapsed_us\": " +
          FormatDouble(span.elapsed_us, 1);
  if (!span.attributes.empty()) {
    *out += ", \"attributes\": {";
    for (size_t i = 0; i < span.attributes.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += "\"" + JsonEscape(span.attributes[i].first) + "\": \"" +
              JsonEscape(span.attributes[i].second) + "\"";
    }
    *out += "}";
  }
  if (!span.counters.empty()) {
    *out += ", \"counters\": {";
    for (size_t i = 0; i < span.counters.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += "\"" + JsonEscape(span.counters[i].first) + "\": " +
              std::to_string(span.counters[i].second);
    }
    *out += "}";
  }
  if (!span.children.empty()) {
    *out += ", \"children\": [";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) *out += ", ";
      RenderSpanJson(*span.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

const TraceSpan* TraceContext::FindSpan(std::string_view name) const {
  return FindSpanIn(root_.get(), name);
}

std::string TraceContext::RenderText() const {
  std::string out;
  if (root_ != nullptr) RenderSpanText(*root_, 0, &out);
  return out;
}

std::string TraceContext::RenderJson() const {
  std::string out;
  if (root_ == nullptr) return "{}\n";
  RenderSpanJson(*root_, &out);
  out += "\n";
  return out;
}

void ScopedSpan::AddCount(std::string_view key, uint64_t delta) {
  if (span_ == nullptr) return;
  for (auto& [k, v] : span_->counters) {
    if (k == key) {
      v += delta;
      return;
    }
  }
  span_->counters.emplace_back(std::string(key), delta);
}

}  // namespace p3pdb::obs
