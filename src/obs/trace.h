// Per-request trace spans for the match path.
//
// A TraceContext records a tree of timed spans: reference-file lookup →
// policy fetch → preference evaluation, and inside the evaluation either
// the native APPEL steps (parse → category-augmentation → connective
// evaluation, the §6 breakdown) or the per-rule SQL steps (parse → bind →
// execute). Spans carry string attributes (policy id, rule behavior) and
// uint64 counters (rows, work units); counters are what the deterministic
// §6 test compares, since wall times are machine-dependent.
//
// Tracing is strictly opt-in: every instrumentation point takes a
// `TraceContext*` and a null pointer makes ScopedSpan a no-op that never
// reads the clock, so the match path pays nothing when tracing is off.
// A TraceContext is single-request, single-thread state — concurrent
// matches each get their own.

#ifndef P3PDB_OBS_TRACE_H_
#define P3PDB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p3pdb::obs {

/// One timed step. Elapsed time is inclusive of children.
struct TraceSpan {
  std::string name;
  double elapsed_us = 0.0;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::unique_ptr<TraceSpan>> children;

  /// Value of a named counter; 0 when absent.
  uint64_t CounterValue(std::string_view key) const;

  /// First direct child with the given name; nullptr when absent.
  const TraceSpan* FindChild(std::string_view name) const;
};

/// Owns the span tree for one request. Begin/End must nest properly (the
/// ScopedSpan RAII wrapper below guarantees this).
class TraceContext {
 public:
  TraceContext() = default;
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Opens a span as a child of the innermost open span (or as the root).
  /// Returns the span; valid until the context is destroyed.
  TraceSpan* BeginSpan(std::string_view name);

  /// Closes the innermost open span, recording its elapsed time.
  void EndSpan();

  /// The completed (or still-open) root span; nullptr before the first
  /// BeginSpan. A second root-level BeginSpan replaces the previous tree,
  /// so one context can be reused across sequential requests.
  const TraceSpan* root() const { return root_.get(); }

  /// Depth-first search for the first span with the given name.
  const TraceSpan* FindSpan(std::string_view name) const;

  /// Flame-style indented text tree:
  ///   match 412.0us {engine=sql}
  ///     ref-lookup 31.0us
  ///     rule-query 120.0us {behavior=block} [rows=1]
  std::string RenderText() const;

  /// JSON rendering of the same tree.
  std::string RenderJson() const;

 private:
  std::unique_ptr<TraceSpan> root_;
  // Innermost-last stack of open spans plus their start times.
  std::vector<std::pair<TraceSpan*, std::chrono::steady_clock::time_point>>
      open_;
};

/// RAII span. With a null context every member is a no-op and the clock is
/// never read — this is the zero-overhead-when-disabled guarantee.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, std::string_view name) : ctx_(ctx) {
    if (ctx_ != nullptr) span_ = ctx_->BeginSpan(name);
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a string attribute to the span.
  void SetAttr(std::string_view key, std::string_view value) {
    if (span_ != nullptr) {
      span_->attributes.emplace_back(std::string(key), std::string(value));
    }
  }

  /// Adds to a named counter on the span (created at 0 on first use).
  void AddCount(std::string_view key, uint64_t delta);

  /// Closes the span early (idempotent).
  void End() {
    if (ctx_ != nullptr && span_ != nullptr) {
      ctx_->EndSpan();
      span_ = nullptr;
    }
  }

  /// True when tracing is live (non-null context, span still open).
  bool active() const { return span_ != nullptr; }

 private:
  TraceContext* ctx_ = nullptr;
  TraceSpan* span_ = nullptr;
};

}  // namespace p3pdb::obs

#endif  // P3PDB_OBS_TRACE_H_
