#include "p3p/augment.h"

#include <algorithm>
#include <set>

namespace p3pdb::p3p {

namespace {

/// Merges `extra` into `categories`, keeping it sorted and deduplicated.
/// Returns how many values were added.
size_t MergeCategories(std::vector<std::string>* categories,
                       const std::vector<std::string>& extra) {
  std::set<std::string> merged(categories->begin(), categories->end());
  size_t before = merged.size();
  merged.insert(extra.begin(), extra.end());
  categories->assign(merged.begin(), merged.end());
  return merged.size() - before;
}

}  // namespace

size_t AugmentPolicy(Policy* policy, const DataSchema& schema) {
  size_t added = 0;
  for (PolicyStatement& stmt : policy->statements) {
    for (DataGroup& group : stmt.data_groups) {
      for (DataItem& item : group.items) {
        std::vector<std::string> cats = schema.CategoriesFor(item.ref);
        added += MergeCategories(&item.categories, cats);
      }
    }
  }
  return added;
}

size_t AugmentPolicy(Policy* policy) {
  return AugmentPolicy(policy, DataSchema::Base());
}

std::unique_ptr<xml::Element> AugmentPolicyXml(const xml::Element& policy_root,
                                               const DataSchema& schema) {
  std::unique_ptr<xml::Element> copy = policy_root.Clone();
  for (auto& stmt : copy->children()) {
    if (stmt->LocalName() != "STATEMENT") continue;
    for (auto& group : stmt->children()) {
      if (group->LocalName() != "DATA-GROUP") continue;
      for (auto& data : group->children()) {
        if (data->LocalName() != "DATA") continue;
        std::string_view ref = data->AttrOr("ref", "");
        std::vector<std::string> cats =
            schema.CategoriesFor(NormalizeDataRef(ref));
        if (cats.empty()) continue;
        xml::Element* categories = data->FindChild("CATEGORIES");
        if (categories == nullptr) {
          categories = data->AddChild("CATEGORIES");
        }
        for (const std::string& cat : cats) {
          if (categories->FindChild(cat) == nullptr) {
            categories->AddChild(cat);
          }
        }
      }
    }
  }
  return copy;
}

std::unique_ptr<xml::Element> AugmentPolicyXml(
    const xml::Element& policy_root) {
  return AugmentPolicyXml(policy_root, DataSchema::Base());
}

namespace {

/// Depth-first enumeration of the schema forest, materializing each node's
/// full dotted path — the work an engine does when its only representation
/// of the base schema is the schema document itself.
void EnumeratePaths(const DataSchemaNode& node, const std::string& prefix,
                    std::string_view target, const DataSchemaNode** found) {
  for (const auto& child : node.children()) {
    std::string path =
        prefix.empty() ? child->name() : prefix + "." + child->name();
    if (path == target) {
      *found = child.get();
      // A real scan would not early-out either, but the match is unique;
      // keep scanning siblings to preserve the linear cost profile.
    }
    EnumeratePaths(*child, path, target, found);
  }
}

}  // namespace

std::vector<std::string> NaiveCategoriesFor(const DataSchema& schema,
                                            std::string_view ref) {
  std::string target(NormalizeDataRef(ref));
  const DataSchemaNode* found = nullptr;
  EnumeratePaths(schema.root(), "", target, &found);
  if (found == nullptr) return {};
  return SubtreeCategories(*found);
}

std::unique_ptr<xml::Element> AugmentPolicyXmlNaive(
    const xml::Element& policy_root, const DataSchema& schema) {
  std::unique_ptr<xml::Element> copy = policy_root.Clone();
  for (auto& stmt : copy->children()) {
    if (stmt->LocalName() != "STATEMENT") continue;
    for (auto& group : stmt->children()) {
      if (group->LocalName() != "DATA-GROUP") continue;
      for (auto& data : group->children()) {
        if (data->LocalName() != "DATA") continue;
        std::string_view ref = data->AttrOr("ref", "");
        std::vector<std::string> cats = NaiveCategoriesFor(schema, ref);
        if (cats.empty()) continue;
        xml::Element* categories = data->FindChild("CATEGORIES");
        if (categories == nullptr) {
          categories = data->AddChild("CATEGORIES");
        }
        for (const std::string& cat : cats) {
          if (categories->FindChild(cat) == nullptr) {
            categories->AddChild(cat);
          }
        }
      }
    }
  }
  return copy;
}

}  // namespace p3pdb::p3p
