// Category augmentation (P3P base data schema resolution).
//
// Before preferences mentioning CATEGORIES can be matched, every DATA
// element of the policy must be annotated with the categories the base data
// schema assigns to its ref. The paper's profiling (§6.3.2) attributes most
// of the JRC APPEL engine's per-match cost to exactly this step, because the
// client-centric engine redoes it on every match, whereas the server-centric
// SQL implementation performs it once while shredding. Both placements are
// exposed here so the A2 ablation benchmark can measure the difference.

#ifndef P3PDB_P3P_AUGMENT_H_
#define P3PDB_P3P_AUGMENT_H_

#include <memory>

#include "p3p/data_schema.h"
#include "p3p/policy.h"
#include "xml/node.h"

namespace p3pdb::p3p {

/// Merges the base-schema categories of each DATA item's ref into the
/// item's category list (model form, used by the shredder). Returns the
/// number of category values added.
size_t AugmentPolicy(Policy* policy, const DataSchema& schema);
size_t AugmentPolicy(Policy* policy);  // against DataSchema::Base()

/// DOM form, mirroring what the client-side APPEL engine does per match:
/// deep-copies the policy element and adds/extends the CATEGORIES child of
/// every DATA element under every STATEMENT. The copy models the engine's
/// working tree (the original policy must not be mutated between matches).
std::unique_ptr<xml::Element> AugmentPolicyXml(const xml::Element& policy_root,
                                               const DataSchema& schema);
std::unique_ptr<xml::Element> AugmentPolicyXml(
    const xml::Element& policy_root);

/// The *naive* per-match form, modeling the JRC engine the paper profiled
/// (§6.3.2): an engine that keeps the base data schema as a document rather
/// than an index resolves every DATA ref by enumerating the schema forest
/// and comparing full dotted path names. Identical output to
/// AugmentPolicyXml, but with the per-match cost profile the paper
/// attributes most of the client engine's latency to. Benchmarks (E3/E4,
/// ablation A2) use this for the client-centric baseline.
std::unique_ptr<xml::Element> AugmentPolicyXmlNaive(
    const xml::Element& policy_root, const DataSchema& schema);

/// Naive path resolution helper: linear scan of the schema forest building
/// dotted paths (exposed for tests; must agree with DataSchema::Lookup).
std::vector<std::string> NaiveCategoriesFor(const DataSchema& schema,
                                            std::string_view ref);

}  // namespace p3pdb::p3p

#endif  // P3PDB_P3P_AUGMENT_H_
