#include "p3p/compact.h"

#include <algorithm>
#include <set>
#include <span>

#include "common/string_util.h"

namespace p3pdb::p3p {

namespace {

struct TokenMapping {
  const char* token;
  const char* value;
};

constexpr TokenMapping kPurposeTokens[] = {
    {"CUR", "current"},        {"ADM", "admin"},
    {"DEV", "develop"},        {"TAI", "tailoring"},
    {"PSA", "pseudo-analysis"}, {"PSD", "pseudo-decision"},
    {"IVA", "individual-analysis"}, {"IVD", "individual-decision"},
    {"CON", "contact"},        {"HIS", "historical"},
    {"TEL", "telemarketing"},  {"OTP", "other-purpose"},
};

constexpr TokenMapping kRecipientTokens[] = {
    {"OUR", "ours"},      {"DEL", "delivery"},        {"SAM", "same"},
    {"OTR", "other-recipient"}, {"UNR", "unrelated"}, {"PUB", "public"},
};

constexpr TokenMapping kRetentionTokens[] = {
    {"NOR", "no-retention"},      {"STP", "stated-purpose"},
    {"LEG", "legal-requirement"}, {"BUS", "business-practices"},
    {"IND", "indefinitely"},
};

constexpr TokenMapping kCategoryTokens[] = {
    {"PHY", "physical"},    {"ONL", "online"},     {"UNI", "uniqueid"},
    {"PUR", "purchase"},    {"FIN", "financial"},  {"COM", "computer"},
    {"NAV", "navigation"},  {"INT", "interactive"}, {"DEM", "demographic"},
    {"CNT", "content"},     {"STA", "state"},      {"POL", "political"},
    {"HEA", "health"},      {"PRE", "preference"}, {"LOC", "location"},
    {"GOV", "government"},  {"OTC", "other-category"},
};

constexpr TokenMapping kAccessTokens[] = {
    {"NOI", "nonident"},          {"ALL", "all"},
    {"CAO", "contact-and-other"}, {"IDC", "ident-contact"},
    {"OTI", "other-ident"},       {"NON", "none"},
};

const char* TokenFor(std::span<const TokenMapping> table,
                     std::string_view value) {
  for (const TokenMapping& m : table) {
    if (value == m.value) return m.token;
  }
  return nullptr;
}

const char* ValueFor(std::span<const TokenMapping> table,
                     std::string_view token) {
  for (const TokenMapping& m : table) {
    if (token == m.token) return m.value;
  }
  return nullptr;
}

/// Consent suffix per spec §4: "a" always, "i" opt-in, "o" opt-out; the
/// bare token means always.
char ConsentSuffix(Required r) {
  switch (r) {
    case Required::kAlways:
      return 'a';
    case Required::kOptIn:
      return 'i';
    case Required::kOptOut:
      return 'o';
  }
  return 'a';
}

bool ParseConsentSuffix(char c, Required* out) {
  switch (c) {
    case 'a':
      *out = Required::kAlways;
      return true;
    case 'i':
      *out = Required::kOptIn;
      return true;
    case 'o':
      *out = Required::kOptOut;
      return true;
    default:
      return false;
  }
}

void AddConsentToken(std::vector<CompactConsentToken>* tokens,
                     std::string value, Required required) {
  for (const CompactConsentToken& t : *tokens) {
    if (t.value == value && t.required == required) return;
  }
  tokens->push_back(CompactConsentToken{std::move(value), required});
}

}  // namespace

bool CompactPolicy::HasPurpose(std::string_view value) const {
  return std::any_of(purposes.begin(), purposes.end(),
                     [&](const auto& t) { return t.value == value; });
}

bool CompactPolicy::HasRecipient(std::string_view value) const {
  return std::any_of(recipients.begin(), recipients.end(),
                     [&](const auto& t) { return t.value == value; });
}

bool CompactPolicy::HasCategory(std::string_view value) const {
  return std::find(categories.begin(), categories.end(), value) !=
         categories.end();
}

CompactPolicy BuildCompactPolicy(const Policy& policy) {
  CompactPolicy compact;
  compact.access = policy.access;
  compact.has_disputes = !policy.disputes.empty();
  std::set<std::string> retentions;
  std::set<std::string> categories;
  for (const PolicyStatement& stmt : policy.statements) {
    if (stmt.non_identifiable) compact.non_identifiable = true;
    for (const PurposeItem& p : stmt.purposes) {
      AddConsentToken(&compact.purposes, p.value, p.required);
    }
    for (const RecipientItem& r : stmt.recipients) {
      AddConsentToken(&compact.recipients, r.value, r.required);
    }
    if (!stmt.retention.empty()) retentions.insert(stmt.retention);
    for (const DataGroup& group : stmt.data_groups) {
      for (const DataItem& item : group.items) {
        categories.insert(item.categories.begin(), item.categories.end());
      }
    }
  }
  compact.retentions.assign(retentions.begin(), retentions.end());
  compact.categories.assign(categories.begin(), categories.end());
  return compact;
}

std::string CompactPolicyToString(const CompactPolicy& compact) {
  std::vector<std::string> tokens;
  if (!compact.access.empty()) {
    if (const char* t = TokenFor(kAccessTokens, compact.access)) {
      tokens.push_back(t);
    }
  }
  if (compact.has_disputes) tokens.push_back("DSP");
  if (compact.non_identifiable) tokens.push_back("NID");
  for (const CompactConsentToken& p : compact.purposes) {
    const char* t = TokenFor(kPurposeTokens, p.value);
    if (t == nullptr) continue;
    std::string token = t;
    if (p.required != Required::kAlways) {
      token.push_back(ConsentSuffix(p.required));
    }
    tokens.push_back(std::move(token));
  }
  for (const CompactConsentToken& r : compact.recipients) {
    const char* t = TokenFor(kRecipientTokens, r.value);
    if (t == nullptr) continue;
    std::string token = t;
    if (r.required != Required::kAlways) {
      token.push_back(ConsentSuffix(r.required));
    }
    tokens.push_back(std::move(token));
  }
  for (const std::string& r : compact.retentions) {
    if (const char* t = TokenFor(kRetentionTokens, r)) tokens.push_back(t);
  }
  for (const std::string& c : compact.categories) {
    if (const char* t = TokenFor(kCategoryTokens, c)) tokens.push_back(t);
  }
  if (compact.test) tokens.push_back("TST");
  return Join(tokens, " ");
}

Result<CompactPolicy> ParseCompactPolicy(std::string_view text) {
  CompactPolicy compact;
  for (const std::string& raw : Split(std::string(text), ' ')) {
    std::string token = Trim(raw);
    if (token.empty()) continue;
    if (token == "DSP") {
      compact.has_disputes = true;
      continue;
    }
    if (token == "NID") {
      compact.non_identifiable = true;
      continue;
    }
    if (token == "TST") {
      compact.test = true;
      continue;
    }
    // Consent suffix?
    Required required = Required::kAlways;
    std::string base = token;
    if (token.size() == 4 && ParseConsentSuffix(token[3], &required)) {
      base = token.substr(0, 3);
    } else if (token.size() != 3) {
      return Status::ParseError("malformed compact token '" + token + "'");
    }
    if (const char* v = ValueFor(kPurposeTokens, base)) {
      AddConsentToken(&compact.purposes, v, required);
      continue;
    }
    if (const char* v = ValueFor(kRecipientTokens, base)) {
      AddConsentToken(&compact.recipients, v, required);
      continue;
    }
    if (required != Required::kAlways) {
      return Status::ParseError("consent suffix on non-consent token '" +
                                token + "'");
    }
    if (const char* v = ValueFor(kRetentionTokens, base)) {
      compact.retentions.push_back(v);
      continue;
    }
    if (const char* v = ValueFor(kCategoryTokens, base)) {
      compact.categories.push_back(v);
      continue;
    }
    if (const char* v = ValueFor(kAccessTokens, base)) {
      if (!compact.access.empty()) {
        return Status::ParseError("duplicate access token '" + token + "'");
      }
      compact.access = v;
      continue;
    }
    return Status::ParseError("unknown compact token '" + token + "'");
  }
  return compact;
}

const char* CookieVerdictName(CookieVerdict v) {
  switch (v) {
    case CookieVerdict::kAccept:
      return "accept";
    case CookieVerdict::kLeashed:
      return "leashed";
    case CookieVerdict::kBlock:
      return "block";
  }
  return "?";
}

namespace {

/// Personally identifiable information in the IE6 sense: identified
/// contactable data categories.
bool UsesPii(const CompactPolicy& c) {
  return c.HasCategory("physical") || c.HasCategory("online") ||
         c.HasCategory("uniqueid") || c.HasCategory("financial") ||
         c.HasCategory("government") || c.HasCategory("location");
}

/// Purposes beyond serving the current request.
bool HasSecondaryUse(const CompactPolicy& c, Required weakest_allowed) {
  for (const CompactConsentToken& p : c.purposes) {
    if (p.value == "current" || p.value == "admin" || p.value == "develop") {
      continue;
    }
    // Secondary use is fine when the user keeps at least the demanded
    // level of choice.
    if (weakest_allowed == Required::kOptOut &&
        p.required != Required::kAlways) {
      continue;  // opt-in or opt-out offered
    }
    if (weakest_allowed == Required::kOptIn &&
        p.required == Required::kOptIn) {
      continue;  // only explicit consent acceptable
    }
    return true;
  }
  return false;
}

bool SharesBeyondAgents(const CompactPolicy& c) {
  for (const CompactConsentToken& r : c.recipients) {
    if (r.value == "ours" || r.value == "delivery" || r.value == "same") {
      continue;
    }
    if (r.required != Required::kAlways) continue;  // choice offered
    return true;
  }
  return false;
}

}  // namespace

CookieVerdict EvaluateCookiePolicy(const CompactPolicy* compact,
                                   CookiePrivacyLevel level) {
  switch (level) {
    case CookiePrivacyLevel::kLow:
      return CookieVerdict::kAccept;
    case CookiePrivacyLevel::kBlockAll:
      return CookieVerdict::kBlock;
    case CookiePrivacyLevel::kMedium: {
      if (compact == nullptr) return CookieVerdict::kBlock;
      if (compact->non_identifiable) return CookieVerdict::kAccept;
      if (UsesPii(*compact)) {
        if (HasSecondaryUse(*compact, Required::kOptOut) ||
            SharesBeyondAgents(*compact)) {
          return CookieVerdict::kBlock;
        }
        // PII for primary use only: allowed but leashed.
        return CookieVerdict::kLeashed;
      }
      return CookieVerdict::kAccept;
    }
    case CookiePrivacyLevel::kHigh: {
      if (compact == nullptr) return CookieVerdict::kBlock;
      if (compact->non_identifiable) return CookieVerdict::kAccept;
      if (UsesPii(*compact)) {
        if (HasSecondaryUse(*compact, Required::kOptIn) ||
            SharesBeyondAgents(*compact)) {
          return CookieVerdict::kBlock;
        }
        return CookieVerdict::kLeashed;
      }
      return CookieVerdict::kAccept;
    }
  }
  return CookieVerdict::kBlock;
}

}  // namespace p3pdb::p3p
