// P3P compact policies (P3P 1.0 Recommendation §4; paper §3.2).
//
// A compact policy is a whitespace-separated token summary of a full
// policy, carried in the HTTP response header alongside cookies — the form
// Internet Explorer 6 evaluated to decide cookie admission (the paper's
// second prominent client-centric implementation). Tokens are three-letter
// codes: purposes (CUR, ADM, ..., with a/i/o consent suffixes), recipients
// (OUR, DEL, ...), retention (NOR..IND), categories (PHY..OTC), access
// (NOI..NON), plus DSP (disputes), NID (non-identifiable), TST (test).
//
// This module encodes a full Policy into its compact form, parses compact
// text back, and provides an IE6-style cookie admission evaluator so the
// cookie path of the reference file (COOKIE-INCLUDE) can be exercised end
// to end.

#ifndef P3PDB_P3P_COMPACT_H_
#define P3PDB_P3P_COMPACT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "p3p/policy.h"

namespace p3pdb::p3p {

/// A purpose/recipient token with its consent suffix.
struct CompactConsentToken {
  std::string value;            // vocabulary value, e.g. "contact"
  Required required = Required::kAlways;

  bool operator==(const CompactConsentToken&) const = default;
};

/// The decoded content of a compact policy.
struct CompactPolicy {
  std::string access;                          // empty when absent
  bool has_disputes = false;
  bool non_identifiable = false;
  bool test = false;
  std::vector<CompactConsentToken> purposes;   // deduplicated, policy order
  std::vector<CompactConsentToken> recipients;
  std::vector<std::string> retentions;
  std::vector<std::string> categories;

  bool HasPurpose(std::string_view value) const;
  bool HasRecipient(std::string_view value) const;
  bool HasCategory(std::string_view value) const;
};

/// Summarizes a full policy into its compact form: the union of the
/// statements' purposes/recipients/retentions and of all data items'
/// categories (base-schema augmentation should run first for faithful
/// category tokens).
CompactPolicy BuildCompactPolicy(const Policy& policy);

/// Renders the token string, e.g. "CAO DSP CUR IVDi CONi OUR SAM STP BUS
/// ONL PHY PUR". Token order follows the spec's grouping.
std::string CompactPolicyToString(const CompactPolicy& compact);

/// Parses compact policy text. Unknown tokens fail with ParseError.
Result<CompactPolicy> ParseCompactPolicy(std::string_view text);

/// The IE6-style privacy slider levels for cookie admission.
enum class CookiePrivacyLevel {
  kLow,     // accept everything with any compact policy
  kMedium,  // block PII without consent for third-party-ish use (default)
  kHigh,    // block PII without explicit opt-in consent
  kBlockAll,
};

enum class CookieVerdict { kAccept, kLeashed, kBlock };

const char* CookieVerdictName(CookieVerdict v);

/// Models IE6's evaluation of a cookie's compact policy: cookies whose
/// policy uses personally identifiable data (physical/online/uniqueid/
/// financial categories or non-anonymous purposes) without the consent the
/// level demands are blocked; PII with opt-out consent is leashed
/// (restricted) at medium. A cookie with no compact policy at all is
/// blocked at medium and above — pass nullptr for that case.
CookieVerdict EvaluateCookiePolicy(const CompactPolicy* compact,
                                   CookiePrivacyLevel level);

}  // namespace p3pdb::p3p

#endif  // P3PDB_P3P_COMPACT_H_
