#include "p3p/data_schema.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace p3pdb::p3p {

DataSchemaNode* DataSchemaNode::AddChild(std::string name,
                                         std::vector<std::string> categories,
                                         bool variable_category) {
  children_.push_back(std::make_unique<DataSchemaNode>(
      std::move(name), std::move(categories), variable_category));
  return children_.back().get();
}

const DataSchemaNode* DataSchemaNode::FindChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

DataSchemaNode* DataSchemaNode::FindChild(std::string_view name) {
  for (auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

size_t DataSchemaNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

std::string_view NormalizeDataRef(std::string_view ref) {
  size_t hash = ref.find('#');
  if (hash != std::string_view::npos) ref = ref.substr(hash + 1);
  return TrimView(ref);
}

const DataSchemaNode* DataSchema::Lookup(std::string_view ref) const {
  ref = NormalizeDataRef(ref);
  if (ref.empty()) return nullptr;
  const DataSchemaNode* node = &root_;
  size_t start = 0;
  while (start <= ref.size()) {
    size_t dot = ref.find('.', start);
    std::string_view part = dot == std::string_view::npos
                                ? ref.substr(start)
                                : ref.substr(start, dot - start);
    node = node->FindChild(part);
    if (node == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return node;
}

namespace {

void CollectCategories(const DataSchemaNode& node,
                       std::set<std::string>* out) {
  if (!node.variable_category()) {
    for (const std::string& c : node.categories()) out->insert(c);
  }
  for (const auto& child : node.children()) {
    CollectCategories(*child, out);
  }
}

}  // namespace

std::vector<std::string> SubtreeCategories(const DataSchemaNode& node) {
  std::set<std::string> cats;
  CollectCategories(node, &cats);
  return std::vector<std::string>(cats.begin(), cats.end());
}

std::vector<std::string> DataSchema::CategoriesFor(std::string_view ref) const {
  const DataSchemaNode* node = Lookup(ref);
  if (node == nullptr) return {};
  return SubtreeCategories(*node);
}

bool DataSchema::IsVariableCategory(std::string_view ref) const {
  const DataSchemaNode* node = Lookup(ref);
  return node != nullptr && node->variable_category();
}

namespace {

// -- Reusable data structures of the base schema (P3P 1.0 §5.5) ------------
//
// The spec factors the schema into named structures (personname, postal,
// telephonenum, ...) instantiated under several roots; we mirror that
// factoring.

using Cats = std::vector<std::string>;

void AddPersonname(DataSchemaNode* parent) {
  DataSchemaNode* name =
      parent->AddChild("name", Cats{"physical", "demographic"});
  for (const char* part :
       {"prefix", "given", "middle", "family", "suffix", "nickname"}) {
    name->AddChild(part, Cats{"physical", "demographic"});
  }
}

void AddCertificate(DataSchemaNode* parent, const char* element_name) {
  DataSchemaNode* cert = parent->AddChild(element_name, Cats{"uniqueid"});
  cert->AddChild("key", Cats{"uniqueid"});
  cert->AddChild("format", Cats{"uniqueid"});
}

void AddPostal(DataSchemaNode* parent) {
  DataSchemaNode* postal =
      parent->AddChild("postal", Cats{"physical", "demographic"});
  for (const char* part : {"name", "street", "city", "stateprov",
                           "postalcode", "country", "organization"}) {
    postal->AddChild(part, Cats{"physical", "demographic"});
  }
}

void AddTelephone(DataSchemaNode* parent, const char* element_name) {
  DataSchemaNode* phone = parent->AddChild(element_name, Cats{"physical"});
  for (const char* part :
       {"intcode", "loccode", "number", "ext", "comment"}) {
    phone->AddChild(part, Cats{"physical"});
  }
}

void AddTelecom(DataSchemaNode* parent) {
  DataSchemaNode* telecom = parent->AddChild("telecom", Cats{});
  AddTelephone(telecom, "telephone");
  AddTelephone(telecom, "fax");
  AddTelephone(telecom, "mobile");
  AddTelephone(telecom, "pager");
}

void AddOnline(DataSchemaNode* parent) {
  DataSchemaNode* online = parent->AddChild("online", Cats{"online"});
  online->AddChild("email", Cats{"online"});
  online->AddChild("uri", Cats{"online"});
}

void AddContactInfo(DataSchemaNode* parent, const char* element_name) {
  DataSchemaNode* info = parent->AddChild(element_name, Cats{});
  AddPostal(info);
  AddTelecom(info);
  AddOnline(info);
}

void AddLoginfo(DataSchemaNode* parent) {
  DataSchemaNode* login = parent->AddChild("login", Cats{"uniqueid"});
  login->AddChild("id", Cats{"uniqueid"});
  login->AddChild("password", Cats{"uniqueid"});
}

void AddDate(DataSchemaNode* parent, const char* element_name,
             const Cats& cats) {
  DataSchemaNode* date = parent->AddChild(element_name, cats);
  DataSchemaNode* ymd = date->AddChild("ymd", cats);
  ymd->AddChild("year", cats);
  ymd->AddChild("month", cats);
  ymd->AddChild("day", cats);
  date->AddChild("hms", cats);
}

/// The `user` and `thirdparty` roots share the same structure (§5.6.2-3).
void AddUserLikeRoot(DataSchemaNode* root, const char* root_name) {
  DataSchemaNode* user = root->AddChild(root_name, Cats{});
  AddPersonname(user);
  AddDate(user, "bdate", Cats{"demographic"});
  AddLoginfo(user);
  AddCertificate(user, "cert");
  user->AddChild("gender", Cats{"demographic"});
  user->AddChild("employer", Cats{"demographic"});
  user->AddChild("department", Cats{"demographic"});
  user->AddChild("jobtitle", Cats{"demographic"});
  AddContactInfo(user, "home-info");
  AddContactInfo(user, "business-info");
}

void AddDynamicRoot(DataSchemaNode* root) {
  DataSchemaNode* dynamic = root->AddChild("dynamic", Cats{});
  DataSchemaNode* clickstream =
      dynamic->AddChild("clickstream", Cats{"navigation", "computer"});
  clickstream->AddChild("uri", Cats{"navigation"});
  clickstream->AddChild("timestamp", Cats{"navigation"});
  clickstream->AddChild("clientip", Cats{"computer"});
  DataSchemaNode* http = dynamic->AddChild("http", Cats{"navigation"});
  http->AddChild("referer", Cats{"navigation"});
  http->AddChild("useragent", Cats{"computer"});
  dynamic->AddChild("clientevents", Cats{"navigation", "interactive"});
  dynamic->AddChild("cookies", Cats{}, /*variable_category=*/true);
  dynamic->AddChild("miscdata", Cats{}, /*variable_category=*/true);
  dynamic->AddChild("searchtext", Cats{"interactive"});
  dynamic->AddChild("interactionrecord", Cats{"interactive"});
}

void AddBusinessRoot(DataSchemaNode* root) {
  DataSchemaNode* business = root->AddChild("business", Cats{});
  business->AddChild("name", Cats{"demographic"});
  business->AddChild("department", Cats{"demographic"});
  AddCertificate(business, "cert");
  AddContactInfo(business, "contact-info");
}

}  // namespace

namespace {

/// Human-readable display name, as the W3C base-schema document carries for
/// every element: "user.home-info.postal.street" -> "User Home Info Postal
/// Street".
std::string DisplayNameFor(std::string_view path) {
  std::string out;
  bool upper_next = true;
  for (char c : path) {
    if (c == '.' || c == '-') {
      out.push_back(' ');
      upper_next = true;
      continue;
    }
    out.push_back(upper_next && c >= 'a' && c <= 'z'
                      ? static_cast<char>(c - 'a' + 'A')
                      : c);
    upper_next = false;
  }
  return out;
}

void EmitDataDefs(const DataSchemaNode& node, const std::string& prefix,
                  xml::Element* root) {
  for (const auto& child : node.children()) {
    std::string path =
        prefix.empty() ? child->name() : prefix + "." + child->name();
    xml::Element* def = root->AddChild("DATA-DEF");
    def->SetAttr("name", path);
    def->SetAttr("display", DisplayNameFor(path));
    if (!child->categories().empty()) {
      def->SetAttr("categories", Join(child->categories(), " "));
    }
    if (child->variable_category()) def->SetAttr("variable", "yes");
    EmitDataDefs(*child, path, root);
  }
}

}  // namespace

std::string DataSchemaToXml(const DataSchema& schema) {
  xml::Element root("DATASCHEMA");
  root.SetAttr("xmlns", "http://www.w3.org/2002/01/P3Pv1");
  EmitDataDefs(schema.root(), "", &root);
  return xml::Write(root);
}

Result<DataSchema> DataSchemaFromXml(std::string_view text) {
  P3PDB_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  if (doc.root->LocalName() != "DATASCHEMA") {
    return Status::ParseError("expected DATASCHEMA element, got '" +
                              doc.root->name() + "'");
  }
  DataSchema schema;
  for (const auto& child : doc.root->children()) {
    if (child->LocalName() != "DATA-DEF") {
      return Status::ParseError("unexpected element '" + child->name() +
                                "' in DATASCHEMA");
    }
    std::string_view name = child->AttrOr("name", "");
    if (name.empty()) {
      return Status::ParseError("DATA-DEF without name");
    }
    // Descend, creating intermediate structure nodes; parents precede
    // children in the serialized form, so attributes land on the right
    // node when its own DATA-DEF arrives.
    DataSchemaNode* node = schema.mutable_root();
    size_t start = 0;
    while (start <= name.size()) {
      size_t dot = name.find('.', start);
      std::string part(dot == std::string_view::npos
                           ? name.substr(start)
                           : name.substr(start, dot - start));
      if (part.empty()) {
        return Status::ParseError("malformed DATA-DEF name '" +
                                  std::string(name) + "'");
      }
      DataSchemaNode* next = node->FindChild(part);
      if (next == nullptr) {
        next = node->AddChild(part, {}, false);
      }
      node = next;
      if (dot == std::string_view::npos) break;
      start = dot + 1;
    }
    std::string_view categories = child->AttrOr("categories", "");
    if (!categories.empty()) {
      std::vector<std::string> cats;
      for (std::string& c : Split(categories, ' ')) {
        if (!c.empty()) cats.push_back(std::move(c));
      }
      node->set_categories(std::move(cats));
    }
    if (child->AttrOr("variable", "no") == "yes") {
      node->set_variable_category(true);
    }
  }
  return schema;
}

const std::string& BaseDataSchemaXmlText() {
  static const std::string* text =
      new std::string(DataSchemaToXml(DataSchema::Base()));
  return *text;
}

const DataSchema& DataSchema::Base() {
  static const DataSchema* schema = [] {
    auto* s = new DataSchema();
    DataSchemaNode* root = s->mutable_root();
    AddDynamicRoot(root);
    AddUserLikeRoot(root, "user");
    AddUserLikeRoot(root, "thirdparty");
    AddBusinessRoot(root);
    return s;
  }();
  return *schema;
}

}  // namespace p3pdb::p3p
