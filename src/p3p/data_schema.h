// The P3P base data schema (P3P 1.0 Recommendation, §5).
//
// P3P predefines a hierarchy of data elements — user.name.given,
// user.home-info.postal.street, dynamic.miscdata, ... — and attaches fixed
// data categories to most of them (a street address is "physical" data, a
// login id is "uniqueid"). A few elements, such as dynamic.miscdata and
// dynamic.cookies, are *variable-category*: their categories come from the
// CATEGORIES child of the DATA element in the policy itself.
//
// The category augmentation that resolves a DATA ref to its categories is
// the operation the paper found to dominate the JRC APPEL engine's matching
// cost (§6.3.2): the client engine re-augments every policy on every match,
// while the server-centric SQL path augments once at shredding time.

#ifndef P3PDB_P3P_DATA_SCHEMA_H_
#define P3PDB_P3P_DATA_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace p3pdb::p3p {

/// One element of the data schema tree.
class DataSchemaNode {
 public:
  DataSchemaNode(std::string name, std::vector<std::string> categories,
                 bool variable_category)
      : name_(std::move(name)),
        categories_(std::move(categories)),
        variable_category_(variable_category) {}

  const std::string& name() const { return name_; }

  /// Fixed categories attached to this element (empty for structures whose
  /// children carry the categories, and for variable-category elements).
  const std::vector<std::string>& categories() const { return categories_; }

  /// True when the policy supplies the categories (dynamic.miscdata,
  /// dynamic.cookies).
  bool variable_category() const { return variable_category_; }

  const std::vector<std::unique_ptr<DataSchemaNode>>& children() const {
    return children_;
  }

  DataSchemaNode* AddChild(std::string name,
                           std::vector<std::string> categories,
                           bool variable_category = false);

  const DataSchemaNode* FindChild(std::string_view name) const;
  DataSchemaNode* FindChild(std::string_view name);

  void set_categories(std::vector<std::string> categories) {
    categories_ = std::move(categories);
  }
  void set_variable_category(bool v) { variable_category_ = v; }

  size_t SubtreeSize() const;

 private:
  std::string name_;
  std::vector<std::string> categories_;
  bool variable_category_;
  std::vector<std::unique_ptr<DataSchemaNode>> children_;
};

/// The data schema: a forest rooted at the four top-level data sets
/// (dynamic, user, thirdparty, business).
class DataSchema {
 public:
  DataSchema() : root_("", {}, false) {}

  /// The singleton base data schema of P3P 1.0.
  static const DataSchema& Base();

  DataSchemaNode* mutable_root() { return &root_; }
  const DataSchemaNode& root() const { return root_; }

  /// Resolves a data reference ("user.name.given", leading '#' and
  /// fragment syntax accepted). Returns nullptr for unknown refs.
  const DataSchemaNode* Lookup(std::string_view ref) const;

  bool IsKnownRef(std::string_view ref) const {
    return Lookup(ref) != nullptr;
  }

  /// The categories implied by a reference: the union of the fixed
  /// categories of the named element and of all elements below it (a ref to
  /// a structure such as user.home-info covers everything inside it).
  /// Variable-category elements contribute nothing — the policy supplies
  /// their categories. Result is sorted and deduplicated.
  std::vector<std::string> CategoriesFor(std::string_view ref) const;

  /// Whether the ref names a variable-category element.
  bool IsVariableCategory(std::string_view ref) const;

  /// Total number of elements (for stats/tests).
  size_t ElementCount() const { return root_.SubtreeSize() - 1; }

 private:
  DataSchemaNode root_;
};

/// Strips the leading '#' (and an optional document part) from a DATA ref
/// attribute: "#user.name" -> "user.name".
std::string_view NormalizeDataRef(std::string_view ref);

/// Union of the fixed categories of `node` and all its descendants, sorted
/// and deduplicated (the category set a ref to this node implies).
std::vector<std::string> SubtreeCategories(const DataSchemaNode& node);

/// Serializes a schema as a DATASCHEMA document: a flat list of DATA-DEF
/// elements with dotted names, space-separated categories, and a
/// variable-category marker — the document form a P3P user agent downloads
/// (P3P 1.0 ships its base data schema as such a document).
std::string DataSchemaToXml(const DataSchema& schema);

/// Parses a DATASCHEMA document back into a schema.
Result<DataSchema> DataSchemaFromXml(std::string_view text);

/// Cached XML text of the base data schema. The client-centric baseline
/// reprocesses this document on every match (see appel::NativeEngine) —
/// the cost the paper's profiling identified as dominant.
const std::string& BaseDataSchemaXmlText();

}  // namespace p3pdb::p3p

#endif  // P3PDB_P3P_DATA_SCHEMA_H_
