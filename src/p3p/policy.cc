#include "p3p/policy.h"

#include "p3p/data_schema.h"

namespace p3pdb::p3p {

Status Policy::Validate(bool strict_data_refs) const {
  if (statements.empty()) {
    return Status::InvalidArgument("policy '" + name +
                                   "' has no statements");
  }
  if (!access.empty() && !IsValidAccess(access)) {
    return Status::InvalidArgument("invalid ACCESS value '" + access + "'");
  }
  for (const Dispute& d : disputes) {
    bool ok = false;
    for (std::string_view t : DisputeResolutionTypes()) {
      if (d.resolution_type == t) ok = true;
    }
    if (!ok) {
      return Status::InvalidArgument("invalid DISPUTES resolution-type '" +
                                     d.resolution_type + "'");
    }
  }
  size_t stmt_index = 0;
  for (const PolicyStatement& stmt : statements) {
    ++stmt_index;
    const std::string where =
        "policy '" + name + "' statement " + std::to_string(stmt_index);
    if (!stmt.non_identifiable) {
      if (stmt.purposes.empty()) {
        return Status::InvalidArgument(where + ": no PURPOSE");
      }
      if (stmt.recipients.empty()) {
        return Status::InvalidArgument(where + ": no RECIPIENT");
      }
      if (stmt.retention.empty()) {
        return Status::InvalidArgument(where + ": no RETENTION");
      }
    }
    for (const PurposeItem& p : stmt.purposes) {
      if (!IsValidPurpose(p.value)) {
        return Status::InvalidArgument(where + ": invalid purpose '" +
                                       p.value + "'");
      }
      // `current` admits no choice: consent cannot be optional for the
      // service the user explicitly requested (P3P §3.3.4).
      if (p.value == "current" && p.required != Required::kAlways) {
        return Status::InvalidArgument(
            where + ": purpose 'current' cannot carry opt-in/opt-out");
      }
    }
    for (const RecipientItem& r : stmt.recipients) {
      if (!IsValidRecipient(r.value)) {
        return Status::InvalidArgument(where + ": invalid recipient '" +
                                       r.value + "'");
      }
      // Only `ours` is exempt from choice per §3.3.5; required applies to
      // the other recipients.
      if (r.value == "ours" && r.required != Required::kAlways) {
        return Status::InvalidArgument(
            where + ": recipient 'ours' cannot carry opt-in/opt-out");
      }
    }
    if (!stmt.retention.empty() && !IsValidRetention(stmt.retention)) {
      return Status::InvalidArgument(where + ": invalid retention '" +
                                     stmt.retention + "'");
    }
    for (const DataGroup& group : stmt.data_groups) {
      if (group.items.empty()) {
        return Status::InvalidArgument(where + ": empty DATA-GROUP");
      }
      for (const DataItem& item : group.items) {
        if (item.ref.empty()) {
          return Status::InvalidArgument(where + ": DATA without ref");
        }
        for (const std::string& cat : item.categories) {
          if (!IsValidCategory(cat)) {
            return Status::InvalidArgument(where + ": invalid category '" +
                                           cat + "'");
          }
        }
        if (strict_data_refs && group.base.empty()) {
          const DataSchema& schema = DataSchema::Base();
          if (!schema.IsKnownRef(item.ref)) {
            return Status::InvalidArgument(where + ": unknown data ref '" +
                                           item.ref + "'");
          }
          if (schema.IsVariableCategory(item.ref) &&
              item.categories.empty()) {
            return Status::InvalidArgument(
                where + ": variable-category ref '" + item.ref +
                "' requires explicit CATEGORIES");
          }
        }
      }
    }
  }
  return Status::OK();
}

Policy Canonicalized(const Policy& policy) {
  Policy out = policy;
  for (PolicyStatement& stmt : out.statements) {
    if (stmt.data_groups.size() <= 1) continue;
    DataGroup merged;
    for (DataGroup& group : stmt.data_groups) {
      if (merged.base.empty()) merged.base = group.base;
      for (DataItem& item : group.items) {
        merged.items.push_back(std::move(item));
      }
    }
    stmt.data_groups.clear();
    stmt.data_groups.push_back(std::move(merged));
  }
  return out;
}

size_t Policy::DataItemCount() const {
  size_t n = 0;
  for (const PolicyStatement& stmt : statements) {
    for (const DataGroup& group : stmt.data_groups) {
      n += group.items.size();
    }
  }
  return n;
}

}  // namespace p3pdb::p3p
