// Object model for P3P privacy policies (P3P 1.0 Recommendation, §3).
//
// A policy is a sequence of STATEMENTs, each declaring the purposes,
// recipients, and retention for a group of data items — exactly the
// structure the schema-decomposition algorithm of the paper's Figure 8
// shreds into relational tables. ENTITY, ACCESS, and DISPUTES-GROUP are kept
// so that policies round-trip faithfully.

#ifndef P3PDB_P3P_POLICY_H_
#define P3PDB_P3P_POLICY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "p3p/vocab.h"

namespace p3pdb::p3p {

/// A DATA element: a reference into the data schema plus any
/// policy-supplied categories (required for variable-category refs such as
/// dynamic.miscdata).
struct DataItem {
  std::string ref;  // normalized, no leading '#': "user.name"
  bool optional = false;
  std::vector<std::string> categories;
};

/// A DATA-GROUP element.
struct DataGroup {
  std::string base;  // optional `base` attribute (custom schema URI)
  std::vector<DataItem> items;
};

/// One purpose value with its consent attribute.
struct PurposeItem {
  std::string value;  // one of Purposes()
  Required required = Required::kAlways;
};

/// One recipient value with its consent attribute.
struct RecipientItem {
  std::string value;  // one of Recipients()
  Required required = Required::kAlways;
};

/// A STATEMENT element.
struct PolicyStatement {
  std::string consequence;  // human-readable rationale, may be empty
  bool non_identifiable = false;
  std::vector<PurposeItem> purposes;
  std::vector<RecipientItem> recipients;
  std::string retention;  // one of Retentions()
  std::vector<DataGroup> data_groups;
};

/// A DISPUTES element of the DISPUTES-GROUP.
struct Dispute {
  std::string resolution_type;  // service | independent | court | law
  std::string service;          // URI
  std::string short_description;
};

/// The legal entity making the policy (subset: its identifying data refs).
struct Entity {
  std::vector<DataItem> data;
};

/// A full P3P policy.
struct Policy {
  std::string name;     // the `name` attribute (fragment id in the policy file)
  std::string discuri;  // human-readable policy URI
  std::string opturi;   // opt-in/opt-out URI
  std::string access;   // one of AccessValues(), may be empty
  Entity entity;
  std::vector<Dispute> disputes;
  std::vector<PolicyStatement> statements;

  /// Structural and vocabulary validation. `strict_data_refs` additionally
  /// requires every DATA ref to resolve in the base data schema (policies
  /// using custom schemas would pass false).
  Status Validate(bool strict_data_refs = true) const;

  /// Total number of DATA items across all statements.
  size_t DataItemCount() const;
};

/// Returns a copy with each statement's DATA-GROUPs merged into one.
/// Groups carry no semantics of their own beyond the `base` attribute (the
/// first non-empty one is kept), and the Figure 14 schema folds them into
/// the Data table; canonicalizing before install keeps the native-DOM and
/// relational evidence exactly equivalent.
Policy Canonicalized(const Policy& policy);

}  // namespace p3pdb::p3p

#endif  // P3PDB_P3P_POLICY_H_
