#include "p3p/policy_xml.h"

#include "common/string_util.h"
#include "p3p/data_schema.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace p3pdb::p3p {

namespace {

Result<std::vector<DataItem>> ParseDataGroupItems(const xml::Element& group) {
  std::vector<DataItem> items;
  for (const xml::Element* data : group.FindChildren("DATA")) {
    DataItem item;
    std::optional<std::string_view> ref = data->Attr("ref");
    if (!ref.has_value()) {
      return Status::ParseError("DATA element without ref attribute");
    }
    item.ref = std::string(NormalizeDataRef(*ref));
    std::string_view optional = data->AttrOr("optional", "no");
    if (optional != "yes" && optional != "no") {
      return Status::ParseError("DATA optional attribute must be yes|no");
    }
    item.optional = optional == "yes";
    if (const xml::Element* cats = data->FindChild("CATEGORIES")) {
      for (const auto& cat : cats->children()) {
        item.categories.push_back(std::string(cat->LocalName()));
      }
    }
    items.push_back(std::move(item));
  }
  return items;
}

Result<PolicyStatement> ParseStatement(const xml::Element& elem) {
  PolicyStatement stmt;
  for (const auto& child : elem.children()) {
    std::string_view name = child->LocalName();
    if (name == "CONSEQUENCE") {
      stmt.consequence = Trim(child->text());
    } else if (name == "NON-IDENTIFIABLE") {
      stmt.non_identifiable = true;
    } else if (name == "PURPOSE") {
      for (const auto& p : child->children()) {
        PurposeItem item;
        item.value = std::string(p->LocalName());
        std::string_view req = p->AttrOr("required", kRequiredDefault);
        if (!ParseRequired(req, &item.required)) {
          return Status::ParseError("invalid required value '" +
                                    std::string(req) + "' on purpose");
        }
        stmt.purposes.push_back(std::move(item));
      }
    } else if (name == "RECIPIENT") {
      for (const auto& r : child->children()) {
        RecipientItem item;
        item.value = std::string(r->LocalName());
        std::string_view req = r->AttrOr("required", kRequiredDefault);
        if (!ParseRequired(req, &item.required)) {
          return Status::ParseError("invalid required value '" +
                                    std::string(req) + "' on recipient");
        }
        stmt.recipients.push_back(std::move(item));
      }
    } else if (name == "RETENTION") {
      if (child->ChildCount() != 1) {
        return Status::ParseError(
            "RETENTION must contain exactly one value element");
      }
      stmt.retention = std::string(child->children()[0]->LocalName());
    } else if (name == "DATA-GROUP") {
      DataGroup group;
      group.base = std::string(child->AttrOr("base", ""));
      P3PDB_ASSIGN_OR_RETURN(group.items, ParseDataGroupItems(*child));
      stmt.data_groups.push_back(std::move(group));
    } else if (name == "EXTENSION") {
      // Extensions are preserved semantically opaque; ignored here.
    } else {
      return Status::ParseError("unexpected element '" +
                                std::string(name) + "' in STATEMENT");
    }
  }
  return stmt;
}

}  // namespace

Result<Policy> PolicyFromXml(const xml::Element& root) {
  if (root.LocalName() != "POLICY") {
    return Status::ParseError("expected POLICY element, got '" +
                              root.name() + "'");
  }
  Policy policy;
  policy.name = std::string(root.AttrOr("name", ""));
  policy.discuri = std::string(root.AttrOr("discuri", ""));
  policy.opturi = std::string(root.AttrOr("opturi", ""));
  for (const auto& child : root.children()) {
    std::string_view name = child->LocalName();
    if (name == "ENTITY") {
      if (const xml::Element* group = child->FindChild("DATA-GROUP")) {
        P3PDB_ASSIGN_OR_RETURN(policy.entity.data,
                               ParseDataGroupItems(*group));
      }
    } else if (name == "ACCESS") {
      if (child->ChildCount() != 1) {
        return Status::ParseError("ACCESS must contain exactly one value");
      }
      policy.access = std::string(child->children()[0]->LocalName());
    } else if (name == "DISPUTES-GROUP") {
      for (const xml::Element* d : child->FindChildren("DISPUTES")) {
        Dispute dispute;
        dispute.resolution_type =
            std::string(d->AttrOr("resolution-type", ""));
        dispute.service = std::string(d->AttrOr("service", ""));
        dispute.short_description =
            std::string(d->AttrOr("short-description", ""));
        policy.disputes.push_back(std::move(dispute));
      }
    } else if (name == "STATEMENT") {
      P3PDB_ASSIGN_OR_RETURN(PolicyStatement stmt, ParseStatement(*child));
      policy.statements.push_back(std::move(stmt));
    } else if (name == "EXPIRY" || name == "EXTENSION" || name == "TEST") {
      // Recognized but not modeled.
    } else {
      return Status::ParseError("unexpected element '" + std::string(name) +
                                "' in POLICY");
    }
  }
  return policy;
}

Result<Policy> PolicyFromText(std::string_view text) {
  P3PDB_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  const xml::Element* root = doc.root.get();
  if (root->LocalName() == "POLICIES") {
    root = root->FindChild("POLICY");
    if (root == nullptr) {
      return Status::ParseError("POLICIES element contains no POLICY");
    }
  }
  return PolicyFromXml(*root);
}

std::unique_ptr<xml::Element> PolicyToXml(const Policy& policy) {
  auto root = std::make_unique<xml::Element>("POLICY");
  if (!policy.name.empty()) root->SetAttr("name", policy.name);
  if (!policy.discuri.empty()) root->SetAttr("discuri", policy.discuri);
  if (!policy.opturi.empty()) root->SetAttr("opturi", policy.opturi);

  auto add_data_items = [](xml::Element* parent,
                           const std::vector<DataItem>& items) {
    for (const DataItem& item : items) {
      xml::Element* data = parent->AddChild("DATA");
      data->SetAttr("ref", "#" + item.ref);
      if (item.optional) data->SetAttr("optional", "yes");
      if (!item.categories.empty()) {
        xml::Element* cats = data->AddChild("CATEGORIES");
        for (const std::string& cat : item.categories) {
          cats->AddChild(cat);
        }
      }
    }
  };

  if (!policy.entity.data.empty()) {
    xml::Element* entity = root->AddChild("ENTITY");
    xml::Element* group = entity->AddChild("DATA-GROUP");
    add_data_items(group, policy.entity.data);
  }
  if (!policy.access.empty()) {
    root->AddChild("ACCESS")->AddChild(policy.access);
  }
  if (!policy.disputes.empty()) {
    xml::Element* group = root->AddChild("DISPUTES-GROUP");
    for (const Dispute& d : policy.disputes) {
      xml::Element* disputes = group->AddChild("DISPUTES");
      if (!d.resolution_type.empty()) {
        disputes->SetAttr("resolution-type", d.resolution_type);
      }
      if (!d.service.empty()) disputes->SetAttr("service", d.service);
      if (!d.short_description.empty()) {
        disputes->SetAttr("short-description", d.short_description);
      }
    }
  }
  for (const PolicyStatement& stmt : policy.statements) {
    xml::Element* s = root->AddChild("STATEMENT");
    if (!stmt.consequence.empty()) {
      s->AddChild("CONSEQUENCE")->set_text(stmt.consequence);
    }
    if (stmt.non_identifiable) s->AddChild("NON-IDENTIFIABLE");
    if (!stmt.purposes.empty()) {
      xml::Element* purpose = s->AddChild("PURPOSE");
      for (const PurposeItem& p : stmt.purposes) {
        xml::Element* v = purpose->AddChild(p.value);
        if (p.required != Required::kAlways) {
          v->SetAttr("required", RequiredToString(p.required));
        }
      }
    }
    if (!stmt.recipients.empty()) {
      xml::Element* recipient = s->AddChild("RECIPIENT");
      for (const RecipientItem& r : stmt.recipients) {
        xml::Element* v = recipient->AddChild(r.value);
        if (r.required != Required::kAlways) {
          v->SetAttr("required", RequiredToString(r.required));
        }
      }
    }
    if (!stmt.retention.empty()) {
      s->AddChild("RETENTION")->AddChild(stmt.retention);
    }
    for (const DataGroup& group : stmt.data_groups) {
      xml::Element* g = s->AddChild("DATA-GROUP");
      if (!group.base.empty()) g->SetAttr("base", group.base);
      add_data_items(g, group.items);
    }
  }
  return root;
}

std::string PolicyToText(const Policy& policy) {
  std::unique_ptr<xml::Element> root = PolicyToXml(policy);
  return xml::Write(*root);
}

}  // namespace p3pdb::p3p
