// XML (de)serialization between P3P policy text and the Policy model.

#ifndef P3PDB_P3P_POLICY_XML_H_
#define P3PDB_P3P_POLICY_XML_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "p3p/policy.h"
#include "xml/node.h"

namespace p3pdb::p3p {

/// Parses a POLICY element (namespace prefixes are accepted and ignored).
Result<Policy> PolicyFromXml(const xml::Element& root);

/// Parses P3P policy text. The root may be POLICY or POLICIES (in which
/// case the first POLICY child is taken).
Result<Policy> PolicyFromText(std::string_view text);

/// Serializes a policy back to a POLICY element.
std::unique_ptr<xml::Element> PolicyToXml(const Policy& policy);

/// Serializes to XML text (pretty-printed; sizes reported by the workload
/// module are measured on this form, matching how the paper reports policy
/// sizes in KB).
std::string PolicyToText(const Policy& policy);

}  // namespace p3pdb::p3p

#endif  // P3PDB_P3P_POLICY_XML_H_
