#include "p3p/reference_file.h"

#include <cstdlib>

#include "common/string_util.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace p3pdb::p3p {

bool UriPatternMatch(std::string_view pattern, std::string_view path) {
  if (pattern.empty()) return false;
  // Two-pointer wildcard match; '*' spans any substring including '/'.
  size_t ti = 0, pi = 0;
  size_t star_pi = std::string_view::npos, star_ti = 0;
  while (ti < path.size()) {
    if (pi < pattern.size() && pattern[pi] == path[ti]) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '*') {
      star_pi = pi++;
      star_ti = ti;
    } else if (star_pi != std::string_view::npos) {
      pi = star_pi + 1;
      ti = ++star_ti;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '*') ++pi;
  return pi == pattern.size();
}

namespace {

bool AnyPatternMatches(const std::vector<std::string>& patterns,
                       std::string_view path) {
  for (const std::string& p : patterns) {
    if (UriPatternMatch(p, path)) return true;
  }
  return false;
}

std::optional<std::string> MatchRefs(
    const std::vector<PolicyRef>& refs, std::string_view path,
    const std::vector<std::string> PolicyRef::* includes,
    const std::vector<std::string> PolicyRef::* excludes) {
  for (const PolicyRef& ref : refs) {
    if (!AnyPatternMatches(ref.*includes, path)) continue;
    if (AnyPatternMatches(ref.*excludes, path)) continue;
    return ref.about;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> ReferenceFile::PolicyForPath(
    std::string_view local_path) const {
  return MatchRefs(refs, local_path, &PolicyRef::includes,
                   &PolicyRef::excludes);
}

std::optional<std::string> ReferenceFile::PolicyForCookie(
    std::string_view cookie_path) const {
  return MatchRefs(refs, cookie_path, &PolicyRef::cookie_includes,
                   &PolicyRef::cookie_excludes);
}

Result<ReferenceFile> ReferenceFileFromXml(const xml::Element& root) {
  if (root.LocalName() != "META") {
    return Status::ParseError("expected META element, got '" + root.name() +
                              "'");
  }
  ReferenceFile rf;
  const xml::Element* references = root.FindChild("POLICY-REFERENCES");
  if (references == nullptr) {
    return Status::ParseError("META has no POLICY-REFERENCES");
  }
  for (const auto& child : references->children()) {
    std::string_view name = child->LocalName();
    if (name == "EXPIRY") {
      std::string_view max_age = child->AttrOr("max-age", "");
      if (!max_age.empty()) {
        rf.expiry_max_age = std::atol(std::string(max_age).c_str());
      }
      continue;
    }
    if (name != "POLICY-REF") {
      return Status::ParseError("unexpected element '" + std::string(name) +
                                "' in POLICY-REFERENCES");
    }
    PolicyRef ref;
    std::optional<std::string_view> about = child->Attr("about");
    if (!about.has_value() || about->empty()) {
      return Status::ParseError("POLICY-REF without about attribute");
    }
    ref.about = std::string(*about);
    for (const auto& sub : child->children()) {
      std::string_view sub_name = sub->LocalName();
      std::string pattern = Trim(sub->text());
      if (sub_name == "INCLUDE") {
        ref.includes.push_back(std::move(pattern));
      } else if (sub_name == "EXCLUDE") {
        ref.excludes.push_back(std::move(pattern));
      } else if (sub_name == "COOKIE-INCLUDE") {
        // Cookie patterns may use the path attribute or text.
        std::string p = std::string(sub->AttrOr("path", pattern));
        ref.cookie_includes.push_back(std::move(p));
      } else if (sub_name == "COOKIE-EXCLUDE") {
        std::string p = std::string(sub->AttrOr("path", pattern));
        ref.cookie_excludes.push_back(std::move(p));
      } else if (sub_name == "METHOD" || sub_name == "HINT" ||
                 sub_name == "EXTENSION") {
        // Recognized but not modeled.
      } else {
        return Status::ParseError("unexpected element '" +
                                  std::string(sub_name) + "' in POLICY-REF");
      }
    }
    rf.refs.push_back(std::move(ref));
  }
  return rf;
}

Result<ReferenceFile> ReferenceFileFromText(std::string_view text) {
  P3PDB_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  return ReferenceFileFromXml(*doc.root);
}

std::unique_ptr<xml::Element> ReferenceFileToXml(const ReferenceFile& rf) {
  auto root = std::make_unique<xml::Element>("META");
  root->SetAttr("xmlns", "http://www.w3.org/2002/01/P3Pv1");
  xml::Element* references = root->AddChild("POLICY-REFERENCES");
  if (rf.expiry_max_age >= 0) {
    references->AddChild("EXPIRY")->SetAttr(
        "max-age", std::to_string(rf.expiry_max_age));
  }
  for (const PolicyRef& ref : rf.refs) {
    xml::Element* r = references->AddChild("POLICY-REF");
    r->SetAttr("about", ref.about);
    for (const std::string& p : ref.includes) {
      r->AddChild("INCLUDE")->set_text(p);
    }
    for (const std::string& p : ref.excludes) {
      r->AddChild("EXCLUDE")->set_text(p);
    }
    for (const std::string& p : ref.cookie_includes) {
      r->AddChild("COOKIE-INCLUDE")->SetAttr("path", p);
    }
    for (const std::string& p : ref.cookie_excludes) {
      r->AddChild("COOKIE-EXCLUDE")->SetAttr("path", p);
    }
  }
  return root;
}

std::string ReferenceFileToText(const ReferenceFile& rf) {
  return xml::Write(*ReferenceFileToXml(rf));
}

}  // namespace p3pdb::p3p
