// P3P reference files (P3P 1.0 Recommendation §2.3-2.4; paper §2.3, §5.5).
//
// A site's reference file maps portions of its URI space to policies via
// POLICY-REF elements carrying INCLUDE/EXCLUDE URI patterns ('*' wildcards).
// Locating the applicable policy for a requested URI is the first step of
// every preference check; in the server-centric architecture this lookup is
// itself answered from shredded tables (Figure 16).

#ifndef P3PDB_P3P_REFERENCE_FILE_H_
#define P3PDB_P3P_REFERENCE_FILE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace p3pdb::p3p {

/// One POLICY-REF element.
struct PolicyRef {
  std::string about;  // policy URI, e.g. "/P3P/policies.xml#shopping"
  std::vector<std::string> includes;
  std::vector<std::string> excludes;
  std::vector<std::string> cookie_includes;
  std::vector<std::string> cookie_excludes;
};

/// A parsed reference file (META / POLICY-REFERENCES).
struct ReferenceFile {
  std::vector<PolicyRef> refs;
  /// Seconds from EXPIRY max-age; -1 when absent (spec default is 86400).
  long expiry_max_age = -1;

  /// Returns the `about` URI of the first POLICY-REF covering `local_path`
  /// (spec §2.4.1: INCLUDEs match and no EXCLUDE matches; refs are tried in
  /// document order). nullopt when no policy covers the path.
  std::optional<std::string> PolicyForPath(std::string_view local_path) const;

  /// Same, for a cookie's path using COOKIE-INCLUDE/COOKIE-EXCLUDE.
  std::optional<std::string> PolicyForCookie(
      std::string_view cookie_path) const;
};

/// '*' wildcard match over a URI local path (spec §2.4.2). An empty pattern
/// matches nothing; "/*" matches everything under the root.
bool UriPatternMatch(std::string_view pattern, std::string_view path);

Result<ReferenceFile> ReferenceFileFromXml(const xml::Element& root);
Result<ReferenceFile> ReferenceFileFromText(std::string_view text);
std::unique_ptr<xml::Element> ReferenceFileToXml(const ReferenceFile& rf);
std::string ReferenceFileToText(const ReferenceFile& rf);

}  // namespace p3pdb::p3p

#endif  // P3PDB_P3P_REFERENCE_FILE_H_
