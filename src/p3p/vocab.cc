#include "p3p/vocab.h"

#include <algorithm>

namespace p3pdb::p3p {

namespace {

constexpr std::string_view kPurposes[] = {
    "current",         "admin",
    "develop",         "tailoring",
    "pseudo-analysis", "pseudo-decision",
    "individual-analysis", "individual-decision",
    "contact",         "historical",
    "telemarketing",   "other-purpose",
};

constexpr std::string_view kRecipients[] = {
    "ours", "delivery", "same", "other-recipient", "unrelated", "public",
};

constexpr std::string_view kRetentions[] = {
    "no-retention",    "stated-purpose", "legal-requirement",
    "business-practices", "indefinitely",
};

constexpr std::string_view kCategories[] = {
    "physical",    "online",     "uniqueid",   "purchase",
    "financial",   "computer",   "navigation", "interactive",
    "demographic", "content",    "state",      "political",
    "health",      "preference", "location",   "government",
    "other-category",
};

constexpr std::string_view kRequiredValues[] = {"always", "opt-in", "opt-out"};

constexpr std::string_view kAccessValues[] = {
    "nonident",    "all",  "contact-and-other",
    "ident-contact", "other-ident", "none",
};

constexpr std::string_view kDisputeResolutionTypes[] = {
    "service", "independent", "court", "law",
};

bool Contains(std::span<const std::string_view> values, std::string_view v) {
  return std::find(values.begin(), values.end(), v) != values.end();
}

}  // namespace

std::span<const std::string_view> Purposes() { return kPurposes; }
std::span<const std::string_view> Recipients() { return kRecipients; }
std::span<const std::string_view> Retentions() { return kRetentions; }
std::span<const std::string_view> Categories() { return kCategories; }
std::span<const std::string_view> RequiredValues() { return kRequiredValues; }
std::span<const std::string_view> AccessValues() { return kAccessValues; }
std::span<const std::string_view> DisputeResolutionTypes() {
  return kDisputeResolutionTypes;
}

bool IsValidPurpose(std::string_view v) { return Contains(kPurposes, v); }
bool IsValidRecipient(std::string_view v) { return Contains(kRecipients, v); }
bool IsValidRetention(std::string_view v) { return Contains(kRetentions, v); }
bool IsValidCategory(std::string_view v) { return Contains(kCategories, v); }
bool IsValidRequired(std::string_view v) {
  return Contains(kRequiredValues, v);
}
bool IsValidAccess(std::string_view v) { return Contains(kAccessValues, v); }

bool ParseRequired(std::string_view text, Required* out) {
  if (text == "always") {
    *out = Required::kAlways;
    return true;
  }
  if (text == "opt-in") {
    *out = Required::kOptIn;
    return true;
  }
  if (text == "opt-out") {
    *out = Required::kOptOut;
    return true;
  }
  return false;
}

std::string_view RequiredToString(Required r) {
  switch (r) {
    case Required::kAlways:
      return "always";
    case Required::kOptIn:
      return "opt-in";
    case Required::kOptOut:
      return "opt-out";
  }
  return "always";
}

}  // namespace p3pdb::p3p
