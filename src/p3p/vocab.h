// The fixed P3P 1.0 vocabulary (W3C Recommendation, 16 April 2002, §3.3).
//
// P3P predefines the value spaces for PURPOSE (12 values), RECIPIENT (6),
// RETENTION (5), the data CATEGORIES, the `required` consent attribute, and
// the ACCESS element. The shredders store these values as text; the
// validators here are what the policy parser checks refs against.

#ifndef P3PDB_P3P_VOCAB_H_
#define P3PDB_P3P_VOCAB_H_

#include <span>
#include <string_view>

namespace p3pdb::p3p {

/// The 12 PURPOSE values (policy §3.3.4).
std::span<const std::string_view> Purposes();

/// The 6 RECIPIENT values (policy §3.3.5).
std::span<const std::string_view> Recipients();

/// The 5 RETENTION values (policy §3.3.6).
std::span<const std::string_view> Retentions();

/// The data CATEGORIES (policy §3.4.2; includes "other-category").
std::span<const std::string_view> Categories();

/// Values of the `required` attribute on PURPOSE/RECIPIENT subelements.
std::span<const std::string_view> RequiredValues();

/// Values of the ACCESS subelement (policy §3.2.5).
std::span<const std::string_view> AccessValues();

/// Values of the resolution-type attribute on DISPUTES (policy §3.2.6).
std::span<const std::string_view> DisputeResolutionTypes();

bool IsValidPurpose(std::string_view v);
bool IsValidRecipient(std::string_view v);
bool IsValidRetention(std::string_view v);
bool IsValidCategory(std::string_view v);
bool IsValidRequired(std::string_view v);
bool IsValidAccess(std::string_view v);

/// Consent level of the `required` attribute; the default when absent is
/// kAlways (policy §3.3.4), the detail Jane's example in §2.2 of the paper
/// hinges on.
enum class Required { kAlways, kOptIn, kOptOut };

constexpr std::string_view kRequiredDefault = "always";

/// Parses a `required` value; fails on anything outside {always, opt-in,
/// opt-out}.
bool ParseRequired(std::string_view text, Required* out);
std::string_view RequiredToString(Required r);

}  // namespace p3pdb::p3p

#endif  // P3PDB_P3P_VOCAB_H_
