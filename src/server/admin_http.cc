#include "server/admin_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/policy_server.h"

namespace p3pdb::server {

namespace {

/// Parses `top=N` out of a query string ("top=5&x=y"); `fallback` when
/// absent or malformed.
size_t TopFromQuery(std::string_view query, size_t fallback) {
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    if (pair.size() > 4 && pair.substr(0, 4) == "top=") {
      size_t value = 0;
      bool any = false;
      for (char c : pair.substr(4)) {
        if (c < '0' || c > '9') return fallback;
        value = value * 10 + static_cast<size_t>(c - '0');
        any = true;
      }
      if (any) return value;
      return fallback;
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return fallback;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
  }
  return "Internal Server Error";
}

void SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), 0);
    if (n <= 0) return;  // peer went away; nothing useful to do
    data.remove_prefix(static_cast<size_t>(n));
  }
}

}  // namespace

AdminHttpServer::AdminHttpServer(Handlers handlers, Options options)
    : handlers_(std::move(handlers)), options_(std::move(options)) {}

Result<std::unique_ptr<AdminHttpServer>> AdminHttpServer::Start(
    Handlers handlers, Options options) {
  std::unique_ptr<AdminHttpServer> admin(
      new AdminHttpServer(std::move(handlers), std::move(options)));
  P3PDB_RETURN_IF_ERROR(admin->Bind());
  admin->thread_ = std::thread([raw = admin.get()] { raw->AcceptLoop(); });
  return admin;
}

Result<std::unique_ptr<AdminHttpServer>> AdminHttpServer::Start(
    PolicyServer* server, Options options) {
  Handlers handlers;
  handlers.healthz_json = [server] { return server->RenderHealthzJson(); };
  handlers.metrics_text = [server] { return server->RenderMetricsText(); };
  handlers.metrics_json = [server] { return server->RenderMetricsJson(); };
  handlers.statements_json = [server](size_t top) {
    return server->RenderStatementStatsJson(top);
  };
  handlers.slow_json = [server] {
    return server->RenderSlowLogJson(obs::SlowQueryEntry::Kind::kSlow);
  };
  handlers.traces_json = [server] {
    return server->RenderSlowLogJson(obs::SlowQueryEntry::Kind::kTraceSample);
  };
  return Start(std::move(handlers), std::move(options));
}

AdminHttpServer::~AdminHttpServer() { Stop(); }

Status AdminHttpServer::Bind() {
  if (::pipe(wake_pipe_) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("admin host is not an IPv4 address: " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal("bind " + options_.host + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  // Read back the bound port: with port 0 the kernel picked an ephemeral
  // one, which tests (and log lines) need.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void AdminHttpServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    char byte = 'q';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void AdminHttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // self-pipe: shutdown
    if ((fds[0].revents & POLLIN) == 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // One request at a time, handled on this thread: admin traffic is a
    // human or a scraper, not a workload worth a thread pool.
    HandleConnection(conn);
    ::close(conn);
  }
}

void AdminHttpServer::HandleConnection(int fd) {
  // Read until the end of the request head. GETs have no body, so the
  // blank line is the whole request; cap the head at 8 KiB.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string head;
  char buf[1024];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    head.append(buf, static_cast<size_t>(n));
  }
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return;
  std::string_view request_line(head.data(), line_end);
  size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos) return;
  size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return;
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  std::string content_type = "text/plain; charset=utf-8";
  int status = 200;
  std::string body = Route(method, target, &content_type, &status);

  std::string response = "HTTP/1.1 " + std::to_string(status) + " " +
                         StatusText(status) + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  SendAll(fd, response);
  ::shutdown(fd, SHUT_WR);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

std::string AdminHttpServer::Route(std::string_view method,
                                   std::string_view target,
                                   std::string* content_type, int* status) {
  if (method != "GET") {
    *status = 405;
    return "method not allowed\n";
  }
  std::string_view path = target;
  std::string_view query;
  if (size_t qmark = target.find('?'); qmark != std::string_view::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }
  if (path == "/healthz" && handlers_.healthz_json) {
    *content_type = "application/json";
    return handlers_.healthz_json();
  }
  if (path == "/metrics" && handlers_.metrics_text) {
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return handlers_.metrics_text();
  }
  if (path == "/metrics.json" && handlers_.metrics_json) {
    *content_type = "application/json";
    return handlers_.metrics_json();
  }
  if (path == "/statements" && handlers_.statements_json) {
    *content_type = "application/json";
    return handlers_.statements_json(TopFromQuery(query, 20));
  }
  if (path == "/slow" && handlers_.slow_json) {
    *content_type = "application/json";
    return handlers_.slow_json();
  }
  if (path == "/traces" && handlers_.traces_json) {
    *content_type = "application/json";
    return handlers_.traces_json();
  }
  *status = 404;
  return "not found\n";
}

}  // namespace p3pdb::server
