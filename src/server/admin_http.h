// AdminHttpServer: a minimal embedded HTTP/1.1 endpoint exposing the
// server's telemetry for scraping and debugging.
//
// URL map (all GET, all `Connection: close`):
//   /healthz          liveness probe: JSON with catalog epoch and per-shard
//                     entry counts (so a stuck shard is observable)
//   /metrics          Prometheus exposition text of the server registry
//   /metrics.json     the same registry as JSON
//   /statements?top=N per-statement aggregates, JSON, ordered by total time
//                     (default top=20; top=0 = all)
//   /slow             slow-query captures (normalized SQL, bound params,
//                     EXPLAIN ANALYZE plan), JSON, newest first
//   /traces           every-Nth trace samples from the same ring
//
// Deliberately not a framework: one blocking accept loop on a dedicated
// thread, one request per connection, loopback by default. The handlers
// call only lock-free snapshot/render paths, so a scrape never contends
// with matching. Shutdown is a self-pipe write that wakes the poll(); the
// destructor joins the thread.
//
// The endpoint is render-agnostic: it serves a Handlers bundle of
// std::functions, so both PolicyServer and the sharded serving tier mount
// the same URL map over their own telemetry.

#ifndef P3PDB_SERVER_ADMIN_HTTP_H_
#define P3PDB_SERVER_ADMIN_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"

namespace p3pdb::server {

class PolicyServer;

class AdminHttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";  // loopback unless explicitly widened
    uint16_t port = 0;               // 0 = ephemeral (read back via port())
  };

  /// Response providers for each route; a null function 404s its route.
  /// Every function must be safe to call from the accept thread for the
  /// server's whole lifetime.
  struct Handlers {
    std::function<std::string()> healthz_json;
    std::function<std::string()> metrics_text;
    std::function<std::string()> metrics_json;
    std::function<std::string(size_t top)> statements_json;
    std::function<std::string()> slow_json;
    std::function<std::string()> traces_json;
  };

  /// Binds, listens, and starts the accept thread. Fails (rather than
  /// crashing later) when the address cannot be bound.
  static Result<std::unique_ptr<AdminHttpServer>> Start(Handlers handlers,
                                                        Options options);

  /// Convenience: the standard URL map over a PolicyServer's renderers.
  static Result<std::unique_ptr<AdminHttpServer>> Start(PolicyServer* server,
                                                        Options options);

  ~AdminHttpServer();
  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  /// Stops accepting, wakes the loop, joins the thread, closes the socket.
  /// Idempotent.
  void Stop();

  /// The bound port (the actual one when Options::port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Requests fully served since start (for tests).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  AdminHttpServer(Handlers handlers, Options options);

  Status Bind();
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Routes one request to its response body; fills `content_type` and
  /// `status` (200/404/405).
  std::string Route(std::string_view method, std::string_view target,
                    std::string* content_type, int* status);

  const Handlers handlers_;
  Options options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: write end wakes the poll()
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace p3pdb::server

#endif  // P3PDB_SERVER_ADMIN_HTTP_H_
