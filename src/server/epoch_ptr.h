// EpochPtr<T>: a lock-free-read published-snapshot cell, the publication
// primitive under the sharded serving tier.
//
// Why not std::atomic<std::shared_ptr<T>>? libstdc++'s _Sp_atomic guards
// the contained pointer with an embedded spinlock whose reader-side unlock
// is memory_order_relaxed (shared_ptr_atomic.h, _Sp_atomic::load), so the
// reader's plain read of _M_ptr has no release edge ordering it against the
// next writer's plain write — ThreadSanitizer reports the pair as a data
// race, and our TSan CI runs with halt_on_error=1. This cell implements the
// same contract with only plain std::atomic operations, so the protocol is
// fully visible to the race detector.
//
// Protocol (two-slot epoch pinning, a user-space RCU in miniature):
//
//   - Two shared_ptr slots. At any instant `parity_ & 1` names the live
//     slot; the other slot is either empty or holds the previous snapshot
//     draining its readers.
//   - Reader: load parity, pin its slot (fetch_add on the slot's pin
//     count), re-check parity. If it moved, unpin and retry — otherwise the
//     pin is guaranteed to cover the slot the writer will next wait on.
//     Copy the slot's shared_ptr (a refcount bump), unpin. The pin window
//     is that copy, nanoseconds; the returned shared_ptr keeps the snapshot
//     alive for as long as the caller works with it.
//   - Writer (callers must serialize stores externally — every tier writer
//     already holds its shard's install_mu or the directory install mutex):
//     write the spare slot (no reader can be pinned there: the previous
//     store drained it and parity has not named it since), bump parity,
//     spin until the old slot's pins drain, then release the old slot's
//     reference. Readers never block; the writer blocks only for the
//     nanosecond pin windows of readers mid-copy.
//
// Every operation is seq_cst (the std::atomic default). That is what makes
// the TOCTOU triangle airtight: either a reader's pin precedes the writer's
// drain-check in the single total order — so the writer sees it and waits —
// or the writer's parity bump precedes the reader's re-check, which then
// must observe the bump and retry. Per-cell traffic is one RMW per reader;
// the old implementation's CAS-lock cost the same.

#ifndef P3PDB_SERVER_EPOCH_PTR_H_
#define P3PDB_SERVER_EPOCH_PTR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

namespace p3pdb::server {

template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  /// Lock-free reader. Returns the snapshot current at some instant during
  /// the call (nullptr if nothing has been stored yet).
  std::shared_ptr<const T> Load() const {
    for (;;) {
      const uint64_t e = parity_.load();
      pins_[e & 1].fetch_add(1);
      if (parity_.load() != e) {
        // A store moved the live slot between our parity read and our pin;
        // the writer may already have skipped this pin in its drain. Back
        // out and pin the new slot.
        pins_[e & 1].fetch_sub(1);
        continue;
      }
      std::shared_ptr<const T> copy = slots_[e & 1];
      pins_[e & 1].fetch_sub(1);
      return copy;
    }
  }

  /// Publishes a new snapshot and reclaims the previous one once its
  /// readers drain. Callers must serialize Store calls on a given cell.
  void Store(std::shared_ptr<const T> next) {
    const uint64_t e = parity_.load();
    slots_[(e + 1) & 1] = std::move(next);
    parity_.fetch_add(1);
    while (pins_[e & 1].load() != 0) {
      std::this_thread::yield();
    }
    // No reader holds a pin on the old slot and none can re-pin it until
    // the next Store names it live again; in-flight readers that already
    // copied the shared_ptr keep the snapshot itself alive.
    slots_[e & 1].reset();
  }

 private:
  std::shared_ptr<const T> slots_[2];
  mutable std::atomic<uint64_t> parity_{0};
  mutable std::atomic<uint64_t> pins_[2] = {{0}, {0}};
};

}  // namespace p3pdb::server

#endif  // P3PDB_SERVER_EPOCH_PTR_H_
