#include "server/hybrid_client.h"

namespace p3pdb::server {

Status HybridClient::FetchReferenceFile(const p3p::ReferenceFile& rf) {
  about_to_policy_id_.clear();
  for (const p3p::PolicyRef& ref : rf.refs) {
    std::optional<int64_t> id = server_->FindPolicyIdByAbout(ref.about);
    if (id.has_value()) {
      about_to_policy_id_[ref.about] = *id;
    }
  }
  cached_rf_ = rf;
  has_rf_ = true;
  return Status::OK();
}

Result<MatchResult> HybridClient::Dispatch(
    const CompiledPreference& pref,
    const std::optional<std::string>& about) {
  if (!about.has_value()) {
    MatchResult result;
    result.behavior = kNoPolicyBehavior;
    result.policy_found = false;
    return result;
  }
  auto it = about_to_policy_id_.find(*about);
  if (it == about_to_policy_id_.end()) {
    MatchResult result;
    result.behavior = kNoPolicyBehavior;
    result.policy_found = false;
    return result;
  }
  return server_->MatchPolicyId(pref, it->second);
}

Result<MatchResult> HybridClient::Check(const CompiledPreference& pref,
                                        std::string_view local_path) {
  if (!has_rf_) {
    return Status::InvalidArgument("no reference file fetched");
  }
  ++local_resolutions_;
  return Dispatch(pref, cached_rf_.PolicyForPath(local_path));
}

Result<MatchResult> HybridClient::CheckCookie(const CompiledPreference& pref,
                                              std::string_view cookie_path) {
  if (!has_rf_) {
    return Status::InvalidArgument("no reference file fetched");
  }
  ++local_resolutions_;
  return Dispatch(pref, cached_rf_.PolicyForCookie(cookie_path));
}

}  // namespace p3pdb::server
