// The hybrid architecture sketched in the paper's §4.2: "it is possible to
// design a hybrid architecture in which the reference file processing is
// done at the client while the preference checking is done at the server."
//
// HybridClient models the client half: it fetches and caches the site's
// reference file once, resolves every requested URI locally against the
// cached INCLUDE/EXCLUDE patterns, and only calls into the server for the
// actual preference evaluation (by policy id). When the user visits many
// pages governed by the same policy, this skips the server-side
// applicablePolicy() query per request — the caching benefit the paper
// credits the client-centric design with, retained inside the
// server-centric one.

#ifndef P3PDB_SERVER_HYBRID_CLIENT_H_
#define P3PDB_SERVER_HYBRID_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "p3p/reference_file.h"
#include "server/policy_server.h"

namespace p3pdb::server {

class HybridClient {
 public:
  /// The client talks to one site's server. The server must outlive the
  /// client.
  explicit HybridClient(PolicyServer* server) : server_(server) {}

  /// "Downloads" the site's reference file into the local cache and
  /// resolves the policy names it mentions to server-side policy ids.
  Status FetchReferenceFile(const p3p::ReferenceFile& rf);

  /// Checks one page request: local URI resolution, server-side matching.
  Result<MatchResult> Check(const CompiledPreference& pref,
                            std::string_view local_path);

  /// Same for a cookie path (COOKIE-INCLUDE/COOKIE-EXCLUDE patterns).
  Result<MatchResult> CheckCookie(const CompiledPreference& pref,
                                  std::string_view cookie_path);

  /// Number of URI resolutions served from the local cache.
  uint64_t local_resolutions() const { return local_resolutions_; }

 private:
  Result<MatchResult> Dispatch(const CompiledPreference& pref,
                               const std::optional<std::string>& about);

  PolicyServer* server_;
  p3p::ReferenceFile cached_rf_;
  bool has_rf_ = false;
  std::map<std::string, int64_t> about_to_policy_id_;
  uint64_t local_resolutions_ = 0;
};

}  // namespace p3pdb::server

#endif  // P3PDB_SERVER_HYBRID_CLIENT_H_
