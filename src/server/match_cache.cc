#include "server/match_cache.h"

namespace p3pdb::server {

namespace {

inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  // FNV-1a over the value's bytes, word at a time.
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace

size_t MatchCacheKeyHash::operator()(const MatchCacheKey& key) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = HashCombine(h, key.pref_fingerprint);
  h = HashCombine(h, static_cast<uint64_t>(key.subject));
  h = HashCombine(h, static_cast<uint64_t>(key.policy_id));
  h = HashCombine(h, static_cast<uint64_t>(key.engine));
  for (unsigned char c : key.path) h = HashCombine(h, c);
  return static_cast<size_t>(h);
}

MatchCache::MatchCache(Options options, obs::MetricsRegistry* registry)
    : capacity_per_shard_(options.capacity_per_shard == 0
                              ? 1
                              : options.capacity_per_shard) {
  size_t shard_count = options.shards == 0 ? 1 : options.shards;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (registry != nullptr) {
    hits_total_ = registry->GetCounter("p3p_match_cache_hits_total");
    misses_total_ = registry->GetCounter("p3p_match_cache_misses_total");
    evictions_total_ = registry->GetCounter("p3p_match_cache_evictions_total");
    invalidations_total_ =
        registry->GetCounter("p3p_match_cache_invalidations_total");
    entries_ = registry->GetGauge("p3p_match_cache_entries");
  }
}

size_t MatchCache::ShardIndex(const MatchCacheKey& key) const {
  return MatchCacheKeyHash{}(key) % shards_.size();
}

std::optional<MatchResult> MatchCache::Lookup(const MatchCacheKey& key,
                                              uint64_t version) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    if (misses_total_ != nullptr) misses_total_->Increment();
    return std::nullopt;
  }
  if (it->second->second.version != version) {
    // Stale: computed under a superseded catalog version. Erase eagerly so
    // the slot frees up, and surface the event to the owner's counters.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    shard.invalidations.fetch_add(1, std::memory_order_relaxed);
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    if (invalidations_total_ != nullptr) invalidations_total_->Increment();
    if (misses_total_ != nullptr) misses_total_->Increment();
    if (entries_ != nullptr) entries_->Add(-1);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  if (hits_total_ != nullptr) hits_total_->Increment();
  return it->second->second.result;
}

void MatchCache::Insert(const MatchCacheKey& key, uint64_t version,
                        const MatchResult& result) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = Entry{version, result};
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, Entry{version, result});
  shard.index.emplace(key, shard.lru.begin());
  if (entries_ != nullptr) entries_->Add(1);
  if (shard.lru.size() > capacity_per_shard_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    if (evictions_total_ != nullptr) evictions_total_->Increment();
    if (entries_ != nullptr) entries_->Add(-1);
  }
}

void MatchCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (entries_ != nullptr) {
      entries_->Add(-static_cast<int64_t>(shard->lru.size()));
    }
    shard->index.clear();
    shard->lru.clear();
  }
}

size_t MatchCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

MatchCache::Stats MatchCache::ShardStats(size_t shard_index) const {
  const Shard& shard = *shards_[shard_index];
  Stats stats;
  stats.hits = shard.hits.load(std::memory_order_relaxed);
  stats.misses = shard.misses.load(std::memory_order_relaxed);
  stats.evictions = shard.evictions.load(std::memory_order_relaxed);
  stats.invalidations = shard.invalidations.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries = shard.lru.size();
  }
  return stats;
}

MatchCache::Stats MatchCache::TotalStats() const {
  Stats total;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Stats s = ShardStats(i);
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.invalidations += s.invalidations;
    total.entries += s.entries;
  }
  return total;
}

}  // namespace p3pdb::server
