// Sharded, thread-safe LRU memo cache for match results.
//
// The server-centric pitch of the paper (§4, Figure 6) is that a site has a
// handful of policies while millions of users repeat the same (preference,
// policy) checks. The match outcome is a pure function of the compiled
// preference, the subject being checked (a policy id, or a URI/cookie path
// the reference file resolves), the catalog version, and the engine — an
// ideal memoization target. A warm hit costs one shard mutex and one hash
// lookup: no reference-file SQL, no rule queries, no policy parse.
//
// Key: (preference fingerprint, subject, policy id, engine kind); every
// entry is stamped with the catalog version it was computed under, so the
// conceptual key of the ISSUE — (fingerprint, policy id, policy version,
// engine) — is enforced at lookup time: Lookup(key, version) only returns
// an entry whose stamp equals `version`.
//
// Invalidation is versioned and lazy: installing a policy or reference file
// bumps the owning server's catalog epoch instead of sweeping the cache.
// A later lookup that finds an entry with a stale stamp erases it, ticks
// the shard's invalidation counter, and reports a miss; untouched stale
// entries age out through normal LRU eviction. Policy-id entries are
// stamped with the immutable version of that policy id (re-installing a
// name mints a new id), so they stay valid across installs; URI/cookie
// entries are stamped with the catalog epoch, since any install may remap
// what a path resolves to.
//
// Sharding: the key hash selects one of N shards, each with its own mutex,
// LRU list, and hit/miss/eviction/invalidation counters, so concurrent
// readers under the server's shared lock rarely contend. Aggregate totals
// are mirrored into an obs::MetricsRegistry as p3p_match_cache_* counters
// and an entry-count gauge.

#ifndef P3PDB_SERVER_MATCH_CACHE_H_
#define P3PDB_SERVER_MATCH_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "server/match_result.h"

namespace p3pdb::server {

/// What a cache entry memoizes the answer for.
enum class MatchSubject : uint8_t {
  kPolicyId = 0,  // MatchPolicyId: evaluate against one installed policy
  kUri = 1,       // MatchUri: reference-file path resolution + evaluation
  kCookie = 2,    // MatchCookie: cookie-pattern resolution + evaluation
};

struct MatchCacheKey {
  uint64_t pref_fingerprint = 0;
  MatchSubject subject = MatchSubject::kPolicyId;
  int64_t policy_id = -1;  // kPolicyId subjects; -1 otherwise
  std::string path;        // kUri/kCookie subjects; empty otherwise
  uint8_t engine = 0;      // EngineKind ordinal

  bool operator==(const MatchCacheKey& other) const = default;
};

struct MatchCacheKeyHash {
  size_t operator()(const MatchCacheKey& key) const;
};

class MatchCache {
 public:
  struct Options {
    size_t shards = 8;              // clamped to >= 1
    size_t capacity_per_shard = 1024;  // clamped to >= 1
  };

  /// Point-in-time counters; per shard or summed over all shards.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    size_t entries = 0;

    double HitRate() const {
      uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
    }
  };

  /// `registry` (may be null) receives the aggregate instruments:
  /// p3p_match_cache_{hits,misses,evictions,invalidations}_total counters
  /// and the p3p_match_cache_entries gauge. Per-shard counts stay readable
  /// through ShardStats regardless.
  MatchCache(Options options, obs::MetricsRegistry* registry);

  MatchCache(const MatchCache&) = delete;
  MatchCache& operator=(const MatchCache&) = delete;

  /// Returns the memoized result if present AND stamped with `version`.
  /// A present-but-stale entry is erased (counted as an invalidation) and
  /// reported as a miss.
  std::optional<MatchResult> Lookup(const MatchCacheKey& key,
                                    uint64_t version);

  /// Memoizes `result` under (key, version), refreshing LRU position and
  /// restamping if the key is already present. Evicts the shard's least
  /// recently used entry when over capacity.
  void Insert(const MatchCacheKey& key, uint64_t version,
              const MatchResult& result);

  /// Drops every entry (counters keep their totals).
  void Clear();

  size_t shard_count() const { return shards_.size(); }
  size_t capacity_per_shard() const { return capacity_per_shard_; }

  /// Live entries across all shards.
  size_t size() const;

  Stats ShardStats(size_t shard) const;
  Stats TotalStats() const;

  /// Which shard a key lands in (exposed so tests can target one shard).
  size_t ShardIndex(const MatchCacheKey& key) const;

 private:
  struct Entry {
    uint64_t version = 0;
    MatchResult result;
  };
  // LRU list front = most recently used; the map points into the list.
  using LruList = std::list<std::pair<MatchCacheKey, Entry>>;

  struct Shard {
    mutable std::mutex mu;
    LruList lru;
    std::unordered_map<MatchCacheKey, LruList::iterator, MatchCacheKeyHash>
        index;
    // Relaxed atomics so ShardStats can read without the shard mutex.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> invalidations{0};
  };

  Shard& ShardFor(const MatchCacheKey& key) {
    return *shards_[ShardIndex(key)];
  }

  size_t capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Aggregate mirrors in the owning registry; null when no registry given.
  obs::Counter* hits_total_ = nullptr;
  obs::Counter* misses_total_ = nullptr;
  obs::Counter* evictions_total_ = nullptr;
  obs::Counter* invalidations_total_ = nullptr;
  obs::Gauge* entries_ = nullptr;
};

}  // namespace p3pdb::server

#endif  // P3PDB_SERVER_MATCH_CACHE_H_
