// Engine identity and the result of one preference check — the vocabulary
// shared by PolicyServer (which computes results), MatchCache (which
// memoizes them), and the proxy/hybrid front ends (which consume them).

#ifndef P3PDB_SERVER_MATCH_RESULT_H_
#define P3PDB_SERVER_MATCH_RESULT_H_

#include <cstdint>
#include <string>

namespace p3pdb::server {

// The architecture matrix of Figure 7 and the three variations of §4.
enum class EngineKind {
  kNativeAppel,
  kSql,
  kSqlSimple,
  kXQueryNative,
  kXQueryXTable,
};

const char* EngineKindName(EngineKind kind);

/// Behavior reported when no installed policy covers the requested URI.
inline constexpr const char* kNoPolicyBehavior = "no-policy";

/// Result of checking one preference against one request.
struct MatchResult {
  std::string behavior;        // fired rule's behavior, or "block" default
  int64_t policy_id = -1;      // applicable policy; -1 when none covered
  int fired_rule_index = -1;   // -1 = default behavior
  bool policy_found = true;    // false when no policy covers the URI
};

}  // namespace p3pdb::server

#endif  // P3PDB_SERVER_MATCH_RESULT_H_
