#include "server/policy_server.h"

#include <chrono>

#include "appel/fingerprint.h"
#include "common/string_util.h"
#include "p3p/augment.h"
#include "p3p/policy_xml.h"
#include "server/admin_http.h"
#include "sqldb/parser.h"
#include "translator/applicable_policy.h"
#include "translator/sql_optimized.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xquery/eval.h"
#include "xquery/parser.h"
#include "xquery/xtable.h"

namespace p3pdb::server {

using sqldb::QueryResult;
using sqldb::Value;

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNativeAppel:
      return "native-appel";
    case EngineKind::kSql:
      return "sql";
    case EngineKind::kSqlSimple:
      return "sql-simple";
    case EngineKind::kXQueryNative:
      return "xquery-native";
    case EngineKind::kXQueryXTable:
      return "xquery-xtable";
  }
  return "?";
}

namespace {

constexpr const char* kCatalogDdl = R"sql(
CREATE TABLE PolicyCatalog (
  policy_id INTEGER NOT NULL,
  name VARCHAR(255) NOT NULL,
  version INTEGER NOT NULL,
  xml TEXT,
  PRIMARY KEY (policy_id)
);
CREATE INDEX idx_catalog_name ON PolicyCatalog (name);
CREATE TABLE MatchLog (
  match_id INTEGER NOT NULL,
  policy_id INTEGER NOT NULL,
  behavior VARCHAR(32) NOT NULL,
  fired_rule INTEGER NOT NULL,
  PRIMARY KEY (match_id)
);
CREATE TABLE RefFileCatalog (
  ref_id INTEGER NOT NULL,
  xml TEXT,
  PRIMARY KEY (ref_id)
);
)sql";

/// Microseconds since `start`. Callers read the clock only when
/// collect_metrics is on, so the start point is a plain time_point rather
/// than a Stopwatch (whose constructor always reads the clock).
double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Stamps the outcome onto the root `match` span (no-op when tracing is
/// off or the match failed).
void FinishMatchSpan(obs::ScopedSpan& span,
                     const Result<MatchResult>& result) {
  if (!span.active()) return;
  if (!result.ok()) {
    span.SetAttr("error", result.status().message());
    return;
  }
  const MatchResult& match = result.value();
  span.SetAttr("behavior", match.behavior);
  if (match.policy_found) {
    span.SetAttr("policy-id", std::to_string(match.policy_id));
    if (match.fired_rule_index >= 0) {
      span.SetAttr("rule", std::to_string(match.fired_rule_index));
    }
  }
}

}  // namespace

std::string AboutToPolicyName(std::string_view about) {
  size_t hash = about.find('#');
  if (hash == std::string_view::npos) return std::string(about);
  return std::string(about.substr(hash + 1));
}

PolicyServer::PolicyServer(Options options)
    : options_(options),
      db_(sqldb::Database::Options{
          .max_subquery_depth = options.max_subquery_depth,
          .enforce_foreign_keys = true,
          .enable_planner = options.enable_planner,
          .enable_plan_cache = options.enable_planner,
          .enable_cost_model = options.enable_cost_model,
          .enable_vectorized_executor = options.enable_vectorized_executor,
          .enable_statement_stats = options.enable_statement_stats,
          .slow_query_threshold_us = options.slow_query_threshold_us,
          .trace_sample_every = options.trace_sample_every,
          .slow_log_capacity = options.slow_log_capacity,
          .storage_path = options.storage_path,
          .storage_buffer_pool_pages = options.storage_buffer_pool_pages,
          .storage_sync_on_commit = options.storage_sync_on_commit,
          .storage_checkpoint_wal_bytes = options.storage_checkpoint_wal_bytes,
          .storage_group_commit = options.storage_group_commit,
          .storage_group_commit_window_us =
              options.storage_group_commit_window_us,
          .storage_checkpoint_on_close = options.storage_checkpoint_on_close,
          .storage_backend_factory = options.storage_backend_factory}),
      native_engine_(appel::NativeEngine::Options{
          .augment_per_match =
              options.augmentation == Augmentation::kPerMatch}),
      start_time_(std::chrono::steady_clock::now()) {
  // Instruments register once here; the match path then touches them
  // through cached pointers only (relaxed atomics, no registry lock).
  // Build identity and uptime: the `_info` idiom (constant labels, value 1)
  // plus a gauge refreshed at snapshot time.
#ifndef P3PDB_GIT_SHA
#define P3PDB_GIT_SHA "unknown"
#endif
#ifndef P3PDB_BUILD_TYPE
#define P3PDB_BUILD_TYPE "unknown"
#endif
  metrics_.SetInfo("p3p_build_info", {{"git_sha", P3PDB_GIT_SHA},
                                      {"build_type", P3PDB_BUILD_TYPE}});
  uptime_seconds_ = metrics_.GetGauge("p3p_uptime_seconds");
  matches_total_ = metrics_.GetCounter("p3p_matches_total");
  match_errors_total_ = metrics_.GetCounter("p3p_match_errors_total");
  no_policy_total_ = metrics_.GetCounter("p3p_match_no_policy_total");
  rule_queries_total_ = metrics_.GetCounter("p3p_rule_queries_total");
  compiles_total_ = metrics_.GetCounter("p3p_preference_compiles_total");
  policies_installed_ = metrics_.GetGauge("p3p_policies_installed");
  match_us_ = metrics_.GetHistogram("p3p_match_duration_us");
  ref_lookup_us_ = metrics_.GetHistogram("p3p_ref_lookup_duration_us");
  compile_us_ = metrics_.GetHistogram("p3p_preference_compile_duration_us");
  cache_hit_us_ = metrics_.GetHistogram("p3p_match_cache_hit_duration_us");
  cache_miss_us_ = metrics_.GetHistogram("p3p_match_cache_miss_duration_us");
  sql_plans_built_ = metrics_.GetCounter("sqldb_plans_built_total");
  sql_plan_cache_hits_ = metrics_.GetCounter("sqldb_plan_cache_hits_total");
  sql_semi_join_rewrites_ =
      metrics_.GetCounter("sqldb_semi_join_rewrites_total");
  sql_anti_join_rewrites_ =
      metrics_.GetCounter("sqldb_anti_join_rewrites_total");
  sql_hash_join_builds_ = metrics_.GetCounter("sqldb_hash_join_builds_total");
  sql_hash_join_probes_ = metrics_.GetCounter("sqldb_hash_join_probes_total");
  sql_batches_ = metrics_.GetCounter("sqldb_batches_total");
  sql_batch_rows_ = metrics_.GetCounter("sqldb_batch_rows_total");
  sql_vectorized_filters_ =
      metrics_.GetCounter("sqldb_vectorized_filters_total");
  sql_vectorized_fallback_rows_ =
      metrics_.GetCounter("sqldb_vectorized_fallback_rows_total");
  sql_cost_exists_kept_ = metrics_.GetCounter("sqldb_cost_exists_kept_total");
  sql_cost_join_reorders_ =
      metrics_.GetCounter("sqldb_cost_join_reorders_total");
  sql_cost_seq_forced_ = metrics_.GetCounter("sqldb_cost_seq_forced_total");
  sql_plan_recosts_ = metrics_.GetCounter("sqldb_plan_recosts_total");
  sql_stats_updates_ = metrics_.GetCounter("sqldb_stats_updates_total");
  sql_stats_rebuilds_ = metrics_.GetCounter("sqldb_stats_rebuilds_total");
  sql_stats_epoch_bumps_ =
      metrics_.GetCounter("sqldb_stats_epoch_bumps_total");
  if (!options_.storage_path.empty()) {
    storage_wal_records_ =
        metrics_.GetCounter("p3p_storage_wal_records_total");
    storage_wal_commits_ =
        metrics_.GetCounter("p3p_storage_wal_commits_total");
    storage_wal_syncs_ = metrics_.GetCounter("p3p_storage_wal_syncs_total");
    storage_wal_group_syncs_ =
        metrics_.GetCounter("p3p_storage_wal_group_syncs_total");
    storage_wal_bytes_ = metrics_.GetCounter("p3p_storage_wal_bytes_total");
    storage_checkpoints_ =
        metrics_.GetCounter("p3p_storage_checkpoints_total");
    storage_pool_hits_ =
        metrics_.GetCounter("p3p_storage_buffer_pool_hits_total");
    storage_pool_misses_ =
        metrics_.GetCounter("p3p_storage_buffer_pool_misses_total");
    storage_recovered_txns_ =
        metrics_.GetCounter("p3p_storage_recovered_txns_total");
  }
  if (options_.enable_match_cache && !UsesLegacyMaterialization()) {
    match_cache_ = std::make_unique<MatchCache>(
        MatchCache::Options{
            .shards = options_.match_cache_shards,
            .capacity_per_shard = options_.match_cache_capacity_per_shard},
        &metrics_);
  }
}

PolicyServer::~PolicyServer() {
  // Stop the admin thread before any member it scrapes is destroyed.
  admin_.reset();
}

Result<std::unique_ptr<PolicyServer>> PolicyServer::Create(Options options) {
  if (options.augmentation == Augmentation::kPerMatch &&
      options.engine != EngineKind::kNativeAppel) {
    return Status::InvalidArgument(
        "per-match augmentation is only meaningful for the native APPEL "
        "engine; SQL engines expand categories while shredding");
  }
  std::unique_ptr<PolicyServer> server(new PolicyServer(options));
  P3PDB_RETURN_IF_ERROR(server->Init());
  return server;
}

bool PolicyServer::UsesSqlMatching() const {
  return options_.engine == EngineKind::kSql ||
         options_.engine == EngineKind::kSqlSimple ||
         options_.engine == EngineKind::kXQueryXTable;
}

bool PolicyServer::UsesSimpleSchema() const {
  return options_.engine == EngineKind::kSqlSimple ||
         options_.engine == EngineKind::kXQueryXTable;
}

bool PolicyServer::UsesLegacyMaterialization() const {
  return options_.materialize_applicable_policy ||
         options_.engine == EngineKind::kXQueryXTable;
}

Status PolicyServer::Init() {
  // Disk-backed servers surface open/recovery failures at Create time
  // rather than on the first statement.
  P3PDB_RETURN_IF_ERROR(db_.storage_status());
  if (db_.storage_active() && db_.LookupTable("PolicyCatalog") != nullptr) {
    // The storage directory already holds a bootstrapped catalog: rebuild
    // the in-memory server state from it instead of re-installing schemas.
    P3PDB_RETURN_IF_ERROR(RestoreFromStorage());
  } else {
    // Group the bootstrap DDL and the ApplicablePolicy anchor into one WAL
    // transaction: the anchor insert goes through the table directly (no
    // per-statement commit), so without the explicit commit it would stay
    // uncommitted and be dropped by the next recovery.
    P3PDB_RETURN_IF_ERROR(db_.BeginTransaction());
    Status schema = InitSchema();
    Status commit = db_.CommitTransaction();
    P3PDB_RETURN_IF_ERROR(schema);
    P3PDB_RETURN_IF_ERROR(commit);
  }
  if (options_.enable_admin_endpoint) {
    P3PDB_ASSIGN_OR_RETURN(
        admin_, AdminHttpServer::Start(
                    this, AdminHttpServer::Options{
                              .host = options_.admin_host,
                              .port = options_.admin_port}));
  }
  return Status::OK();
}

Status PolicyServer::InitSchema() {
  P3PDB_RETURN_IF_ERROR(db_.ExecuteScript(kCatalogDdl));
  if (UsesSqlMatching()) {
    if (UsesSimpleSchema()) {
      P3PDB_RETURN_IF_ERROR(shredder::InstallSimpleSchema(&db_));
      simple_shredder_ = std::make_unique<shredder::SimpleShredder>(&db_);
    } else {
      P3PDB_RETURN_IF_ERROR(shredder::InstallOptimizedSchema(&db_));
      optimized_shredder_ =
          std::make_unique<shredder::OptimizedShredder>(&db_);
    }
    P3PDB_RETURN_IF_ERROR(shredder::InstallReferenceSchema(&db_));
    reference_shredder_ = std::make_unique<shredder::ReferenceShredder>(&db_);
    P3PDB_RETURN_IF_ERROR(
        db_.ExecuteScript(translator::ApplicablePolicyDdl()));
    if (!UsesLegacyMaterialization()) {
      // Parameterized matching never joins ApplicablePolicy — the rule
      // queries only need it as a one-row FROM anchor so catch-all rules
      // return a row. Install that anchor once; matches never mutate it.
      sqldb::Table* table =
          db_.GetMutableTable(translator::kApplicablePolicyTable);
      if (table == nullptr) {
        return Status::Internal("ApplicablePolicy table missing");
      }
      P3PDB_RETURN_IF_ERROR(table->Insert({Value::Integer(0)}));
    }
  }
  return Status::OK();
}

Status PolicyServer::RestoreFromStorage() {
  if (UsesSqlMatching()) {
    // Guard against reopening a directory that was bootstrapped under a
    // different engine configuration: the shredded schemas would not match
    // the SQL this engine generates.
    for (const char* name :
         {"Meta", "Policyref", "Include", "Exclude", "CookieInclude",
          "CookieExclude", translator::kApplicablePolicyTable}) {
      if (db_.LookupTable(name) == nullptr) {
        return Status::InvalidArgument(
            "storage at '" + options_.storage_path + "' lacks table '" +
            std::string(name) + "'; created under a different engine?");
      }
    }
    if (UsesSimpleSchema()) {
      for (const sqldb::TableSchema& expected :
           shredder::GenerateSimpleSchema().tables) {
        const sqldb::Table* table = db_.LookupTable(expected.name());
        if (table == nullptr || table->schema().columns().size() !=
                                    expected.columns().size()) {
          return Status::InvalidArgument(
              "storage at '" + options_.storage_path +
              "' does not carry the simple schema (table '" +
              expected.name() + "' missing or mismatched)");
        }
      }
      simple_shredder_ = std::make_unique<shredder::SimpleShredder>(&db_);
      simple_shredder_->ResumeIds();
    } else {
      const sqldb::Table* policy_table = db_.LookupTable("Policy");
      if (policy_table == nullptr ||
          policy_table->schema().columns().size() != 5) {
        return Status::InvalidArgument(
            "storage at '" + options_.storage_path +
            "' does not carry the optimized schema");
      }
      optimized_shredder_ =
          std::make_unique<shredder::OptimizedShredder>(&db_);
      optimized_shredder_->ResumeIds();
    }
    reference_shredder_ = std::make_unique<shredder::ReferenceShredder>(&db_);
    reference_shredder_->ResumeIds();
    if (!UsesLegacyMaterialization()) {
      // Re-seed the one-row FROM anchor if a legacy-materialized run (which
      // mutates the table per match) left it empty.
      sqldb::Table* anchor =
          db_.GetMutableTable(translator::kApplicablePolicyTable);
      if (anchor->RowCount() == 0) {
        P3PDB_RETURN_IF_ERROR(db_.BeginTransaction());
        Status inserted = anchor->Insert({Value::Integer(0)});
        Status commit = db_.CommitTransaction();
        P3PDB_RETURN_IF_ERROR(inserted);
        P3PDB_RETURN_IF_ERROR(commit);
      }
    }
  }

  // Policy catalog -> id list, name/version maps, and native evidence. The
  // catalog stores the original un-augmented XML, so the DOM each non-SQL
  // engine evaluates is rebuilt exactly as InstallPolicy built it. Slots
  // are in install order, so the last row per name is the latest version.
  const sqldb::Table* catalog = db_.LookupTable("PolicyCatalog");
  for (size_t slot = 0; slot < catalog->SlotCount(); ++slot) {
    if (!catalog->IsLive(slot)) continue;
    const sqldb::Row& row = catalog->RowAt(slot);
    const int64_t policy_id = row[0].AsInteger();
    const std::string name = row[1].AsText();
    P3PDB_ASSIGN_OR_RETURN(p3p::Policy policy,
                           p3p::PolicyFromText(row[3].AsText()));
    p3p::Policy canonical = p3p::Canonicalized(policy);
    if (options_.augmentation == Augmentation::kAtInstall) {
      p3p::AugmentPolicy(&canonical);
    }
    policy_dom_[policy_id] = p3p::PolicyToXml(canonical);
    if (options_.engine == EngineKind::kNativeAppel) {
      policy_text_[policy_id] = xml::Write(*policy_dom_[policy_id]);
    }
    policy_ids_.push_back(policy_id);
    latest_policy_by_name_[name] = policy_id;
    policy_version_by_id_[policy_id] = row[2].AsInteger();
  }

  // Reference file: every engine keeps the native copy for URI resolution.
  if (const sqldb::Table* rft = db_.LookupTable("RefFileCatalog")) {
    for (size_t slot = 0; slot < rft->SlotCount(); ++slot) {
      if (!rft->IsLive(slot)) continue;
      P3PDB_ASSIGN_OR_RETURN(
          reference_file_,
          p3p::ReferenceFileFromText(rft->RowAt(slot)[1].AsText()));
      has_reference_file_ = true;
    }
  }

  // MatchLog id sequence, so recorded matches never collide.
  if (const sqldb::Table* log = db_.LookupTable("MatchLog")) {
    for (size_t slot = 0; slot < log->SlotCount(); ++slot) {
      if (!log->IsLive(slot)) continue;
      const int64_t id = log->RowAt(slot)[0].AsInteger();
      if (id + 1 > next_match_id_) next_match_id_ = id + 1;
    }
  }

  if (options_.collect_metrics) {
    policies_installed_->Set(static_cast<int64_t>(policy_ids_.size()));
  }
  return Status::OK();
}

Result<std::vector<InstalledPolicyRecord>>
PolicyServer::InstalledPolicyRecords() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const sqldb::Table* catalog = db_.LookupTable("PolicyCatalog");
  if (catalog == nullptr) {
    return Status::Internal("PolicyCatalog table missing");
  }
  std::vector<InstalledPolicyRecord> records;
  records.reserve(policy_ids_.size());
  // Slots are in install order (append-only inserts), which is the order a
  // replaying tier must re-install in to reproduce versions.
  for (size_t slot = 0; slot < catalog->SlotCount(); ++slot) {
    if (!catalog->IsLive(slot)) continue;
    const sqldb::Row& row = catalog->RowAt(slot);
    records.push_back({row[0].AsInteger(), row[1].AsText(),
                       row[2].AsInteger(), row[3].AsText()});
  }
  return records;
}

std::optional<p3p::ReferenceFile> PolicyServer::InstalledReferenceFile()
    const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!has_reference_file_) return std::nullopt;
  return reference_file_;
}

Result<int64_t> PolicyServer::InstallPolicy(const p3p::Policy& policy) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // One durable unit: every row the shred writes plus the catalog entry
  // commit together, so a crash mid-install recovers to "not installed".
  // There is no rollback — a *failed* install keeps its partial in-memory
  // effects, exactly as before storage existed — so the commit runs on
  // every path to keep disk and memory identical.
  P3PDB_RETURN_IF_ERROR(db_.BeginTransaction());
  auto result = InstallPolicyLocked(policy);
  if (options_.storage_group_commit) {
    // Two-phase commit: every WAL record (including the commit record) is
    // already appended, so the exclusive lock can be released before the
    // fsync — matches proceed and concurrent installers coalesce their
    // fsyncs in WaitDurable's leader/follower queue.
    auto ticket = db_.CommitTransactionStaged();
    if (!ticket.ok()) return result.ok() ? ticket.status() : result;
    lock.unlock();
    Status durable = db_.WaitDurable(ticket.value());
    if (result.ok() && !durable.ok()) return durable;
    return result;
  }
  Status commit = db_.CommitTransaction();
  if (result.ok() && !commit.ok()) return commit;
  return result;
}

Result<int64_t> PolicyServer::InstallPolicyLocked(const p3p::Policy& policy) {
  P3PDB_RETURN_IF_ERROR(policy.Validate());
  p3p::Policy canonical = p3p::Canonicalized(policy);
  if (options_.augmentation == Augmentation::kAtInstall) {
    p3p::AugmentPolicy(&canonical);
  }

  int64_t policy_id = -1;
  if (UsesSqlMatching()) {
    if (UsesSimpleSchema()) {
      std::unique_ptr<xml::Element> dom = p3p::PolicyToXml(canonical);
      P3PDB_ASSIGN_OR_RETURN(policy_id, simple_shredder_->ShredPolicy(*dom));
    } else {
      P3PDB_ASSIGN_OR_RETURN(policy_id,
                             optimized_shredder_->ShredPolicy(canonical));
    }
  } else {
    policy_id = static_cast<int64_t>(policy_ids_.size()) + 1;
  }

  // Evidence for the non-SQL engines: DOM for the XML-store variations and
  // serialized text for the client-centric baseline, which re-parses it on
  // every match. (The original, un-augmented text is kept in the catalog
  // for PolicyXml retrieval.)
  policy_dom_[policy_id] = p3p::PolicyToXml(canonical);
  if (options_.engine == EngineKind::kNativeAppel) {
    policy_text_[policy_id] = xml::Write(*policy_dom_[policy_id]);
  }

  const std::string name =
      policy.name.empty() ? ("policy-" + std::to_string(policy_id))
                          : policy.name;
  int64_t version = PolicyVersionLocked(name) + 1;
  P3PDB_RETURN_IF_ERROR(db_.InsertRow(
      "PolicyCatalog",
      {Value::Integer(policy_id), Value::Text(name), Value::Integer(version),
       Value::Text(p3p::PolicyToText(policy))}));

  policy_ids_.push_back(policy_id);
  latest_policy_by_name_[name] = policy_id;
  policy_version_by_id_[policy_id] = version;
  // Cached URI/cookie results may now be stale (a re-installed name changes
  // what a path resolves to): bump the catalog version. Stale entries are
  // invalidated lazily at their next lookup. Policy-id entries are keyed by
  // this id's immutable (id, version) pair and stay valid.
  ++catalog_epoch_;
  if (options_.collect_metrics) {
    policies_installed_->Set(static_cast<int64_t>(policy_ids_.size()));
  }
  return policy_id;
}

Status PolicyServer::InstallReferenceFile(const p3p::ReferenceFile& rf) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // One durable unit, as in InstallPolicy: the old reference rows' deletes,
  // the reshred, and the RefFileCatalog swap commit together.
  P3PDB_RETURN_IF_ERROR(db_.BeginTransaction());
  Status result = InstallReferenceFileLocked(rf);
  if (options_.storage_group_commit) {
    auto ticket = db_.CommitTransactionStaged();
    if (!ticket.ok()) return result.ok() ? ticket.status() : result;
    lock.unlock();
    Status durable = db_.WaitDurable(ticket.value());
    if (result.ok() && !durable.ok()) return durable;
    return result;
  }
  Status commit = db_.CommitTransaction();
  if (result.ok() && !commit.ok()) return commit;
  return result;
}

Status PolicyServer::InstallReferenceFileLocked(const p3p::ReferenceFile& rf) {
  // Resolve about -> latest installed policy id by fragment name.
  std::map<std::string, int64_t> resolution;
  for (const p3p::PolicyRef& ref : rf.refs) {
    auto it = latest_policy_by_name_.find(AboutToPolicyName(ref.about));
    if (it != latest_policy_by_name_.end()) {
      resolution[ref.about] = it->second;
    }
  }

  if (UsesSqlMatching()) {
    // Replace any previous reference data.
    for (const char* table : {"Include", "Exclude", "CookieInclude",
                              "CookieExclude", "Policyref", "Meta"}) {
      auto cleared = db_.Execute(std::string("DELETE FROM ") + table);
      if (!cleared.ok()) return cleared.status();
    }
    auto meta = reference_shredder_->ShredReferenceFile(rf, resolution);
    if (!meta.ok()) return meta.status();
  }
  // Persist the reference XML itself so a disk-backed reopen can rebuild
  // the native-path copy (the shredded rows only carry LIKE patterns).
  auto cleared = db_.Execute("DELETE FROM RefFileCatalog");
  if (!cleared.ok()) return cleared.status();
  P3PDB_RETURN_IF_ERROR(db_.InsertRow(
      "RefFileCatalog",
      {Value::Integer(0), Value::Text(p3p::ReferenceFileToText(rf))}));
  reference_file_ = rf;
  has_reference_file_ = true;
  // The path -> policy mapping changed; cached URI/cookie results computed
  // under the previous reference file must never be served again.
  ++catalog_epoch_;
  return Status::OK();
}

Result<CompiledPreference> PolicyServer::CompilePreference(
    const appel::AppelRuleset& ruleset) {
  return CompilePreference(ruleset, nullptr);
}

Result<CompiledPreference> PolicyServer::CompilePreference(
    const appel::AppelRuleset& ruleset, obs::TraceContext* trace) {
  // Read-only against the server: translation touches no shared state and
  // statement preparation only reads the catalog, so compiles run
  // concurrently with matches and each other.
  std::shared_lock<std::shared_mutex> lock(mu_);
  obs::TraceContext* t = EffectiveTrace(trace);
  obs::ScopedSpan compile_span(t, "compile-preference");
  if (compile_span.active()) {
    compile_span.SetAttr("engine", EngineKindName(options_.engine));
    compile_span.AddCount("rules", ruleset.rules.size());
  }
  std::chrono::steady_clock::time_point start{};
  if (options_.collect_metrics) start = std::chrono::steady_clock::now();

  P3PDB_RETURN_IF_ERROR(ruleset.Validate());
  CompiledPreference pref;
  // The fingerprint is the preference's identity in the match cache — over
  // the canonical serialized ruleset, so it is the same on every server and
  // engine this preference compiles on.
  pref.fingerprint = appel::RulesetFingerprint(ruleset);
  pref.ruleset = ruleset;
  {
    obs::ScopedSpan translate_span(t, "translate");
    switch (options_.engine) {
      case EngineKind::kNativeAppel:
        // No compilation in the client-centric model: the engine consumes
        // the APPEL text itself on every match.
        pref.appel_text = appel::RulesetToText(ruleset);
        break;
      case EngineKind::kSql: {
        translator::OptimizedSqlTranslator translator(
            /*parameterized=*/!UsesLegacyMaterialization());
        P3PDB_ASSIGN_OR_RETURN(pref.sql,
                               translator.TranslateRuleset(ruleset, t));
        break;
      }
      case EngineKind::kSqlSimple: {
        translator::SimpleSqlTranslator translator(
            /*parameterized=*/!UsesLegacyMaterialization());
        P3PDB_ASSIGN_OR_RETURN(pref.sql,
                               translator.TranslateRuleset(ruleset, t));
        break;
      }
      case EngineKind::kXQueryNative: {
        xquery::AppelToXQueryTranslator translator;
        P3PDB_ASSIGN_OR_RETURN(pref.xquery_text,
                               translator.TranslateRuleset(ruleset));
        for (const std::string& text : pref.xquery_text.rule_queries) {
          P3PDB_ASSIGN_OR_RETURN(xquery::Query q, xquery::ParseQuery(text));
          pref.xquery_asts.push_back(std::move(q));
        }
        break;
      }
      case EngineKind::kXQueryXTable: {
        xquery::AppelToXQueryTranslator to_xq;
        P3PDB_ASSIGN_OR_RETURN(pref.xquery_text,
                               to_xq.TranslateRuleset(ruleset));
        xquery::XTableTranslator to_sql;
        for (const std::string& text : pref.xquery_text.rule_queries) {
          // XTABLE consumes the XQuery *text*, so parse then translate —
          // both conversions are part of this path's cost.
          P3PDB_ASSIGN_OR_RETURN(xquery::Query q, xquery::ParseQuery(text));
          P3PDB_ASSIGN_OR_RETURN(std::string sql, to_sql.TranslateQuery(q));
          // Prepare-time validation, as DB2 would do: parse and bind the
          // generated SQL, enforcing the statement complexity budget. This
          // is where the deeply nested Medium translation fails (Figure
          // 21).
          P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<sqldb::Statement> stmt,
                                 sqldb::ParseStatement(sql));
          if (stmt->kind == sqldb::StatementKind::kSelect) {
            sqldb::Binder binder(db_, options_.max_subquery_depth);
            P3PDB_RETURN_IF_ERROR(binder.BindSelect(
                static_cast<sqldb::SelectStmt*>(stmt.get())));
          }
          pref.xtable_sql.push_back(std::move(sql));
        }
        break;
      }
    }
  }
  if (options_.use_prepared_statements) {
    obs::ScopedSpan prepare_span(t, "prepare");
    for (const std::string& sql : pref.sql.rule_queries) {
      P3PDB_ASSIGN_OR_RETURN(sqldb::PreparedStatement stmt, db_.Prepare(sql));
      pref.prepared_sql.push_back(std::move(stmt));
    }
    for (const std::string& sql : pref.xtable_sql) {
      P3PDB_ASSIGN_OR_RETURN(sqldb::PreparedStatement stmt, db_.Prepare(sql));
      pref.prepared_sql.push_back(std::move(stmt));
    }
    if (prepare_span.active()) {
      prepare_span.AddCount("statements", pref.prepared_sql.size());
    }
  }
  if (options_.collect_metrics) {
    compiles_total_->Increment();
    compile_us_->Record(static_cast<uint64_t>(MicrosSince(start)));
  }
  return pref;
}

Result<int64_t> PolicyServer::FindApplicablePolicyId(
    std::string_view local_path, bool for_cookie, obs::TraceContext* trace) {
  if (!has_reference_file_) {
    return Status::InvalidArgument("no reference file installed");
  }
  obs::ScopedSpan span(trace, "ref-lookup");
  if (span.active()) {
    span.SetAttr("path", local_path);
    if (for_cookie) span.SetAttr("cookie", "true");
  }
  std::chrono::steady_clock::time_point start{};
  if (options_.collect_metrics) start = std::chrono::steady_clock::now();

  Result<int64_t> id = [&]() -> Result<int64_t> {
    if (UsesSqlMatching()) {
      P3PDB_ASSIGN_OR_RETURN(
          QueryResult result,
          db_.Execute(
              translator::ApplicablePolicyQuery(local_path, for_cookie),
              trace));
      if (result.rows.empty()) return int64_t{-1};
      return result.rows[0][0].AsInteger();
    }
    std::optional<std::string> about =
        for_cookie ? reference_file_.PolicyForCookie(local_path)
                   : reference_file_.PolicyForPath(local_path);
    if (!about.has_value()) return int64_t{-1};
    std::optional<int64_t> found = FindPolicyIdByAboutLocked(*about);
    return found.has_value() ? *found : int64_t{-1};
  }();

  if (options_.collect_metrics) {
    ref_lookup_us_->Record(static_cast<uint64_t>(MicrosSince(start)));
  }
  if (span.active() && id.ok()) {
    span.SetAttr("policy-id", std::to_string(id.value()));
  }
  return id;
}

std::optional<int64_t> PolicyServer::FindPolicyIdByAbout(
    std::string_view about) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindPolicyIdByAboutLocked(about);
}

std::optional<int64_t> PolicyServer::FindPolicyIdByAboutLocked(
    std::string_view about) const {
  auto it = latest_policy_by_name_.find(AboutToPolicyName(about));
  if (it == latest_policy_by_name_.end()) return std::nullopt;
  return it->second;
}

Status PolicyServer::MaterializeApplicablePolicy(int64_t policy_id) {
  // A direct storage operation (not a SQL round-trip): this is server
  // plumbing around the generated queries, equivalent to binding the
  // one-row temporary table of the paper's Figure 13 preamble.
  sqldb::Table* table =
      db_.GetMutableTable(translator::kApplicablePolicyTable);
  if (table == nullptr) {
    return Status::Internal("ApplicablePolicy table missing");
  }
  for (size_t row_id = 0; row_id < table->SlotCount(); ++row_id) {
    if (table->IsLive(row_id)) table->Delete(row_id);
  }
  return table->Insert({Value::Integer(policy_id)});
}

Result<MatchResult> PolicyServer::EvaluateAgainstCurrent(
    const CompiledPreference& pref, int64_t policy_id,
    obs::TraceContext* trace) {
  MatchResult result;
  result.policy_id = policy_id;
  result.behavior = appel::kDefaultBehavior;

  switch (options_.engine) {
    case EngineKind::kNativeAppel: {
      auto it = policy_text_.find(policy_id);
      if (it == policy_text_.end()) {
        return Status::NotFound("policy id " + std::to_string(policy_id) +
                                " not installed");
      }
      // The client-centric pipeline, per match: parse the policy XML the
      // site served, parse the user's APPEL text, then evaluate (with the
      // engine's per-match augmentation when so configured).
      xml::Document policy_doc;
      {
        obs::ScopedSpan parse_span(trace, "policy-parse");
        P3PDB_ASSIGN_OR_RETURN(policy_doc, xml::Parse(it->second));
        if (parse_span.active()) {
          parse_span.AddCount("chars", it->second.size());
        }
      }
      appel::AppelRuleset ruleset;
      {
        obs::ScopedSpan parse_span(trace, "appel-parse");
        P3PDB_ASSIGN_OR_RETURN(ruleset,
                               appel::RulesetFromText(pref.appel_text));
        if (parse_span.active()) {
          parse_span.AddCount("chars", pref.appel_text.size());
        }
      }
      // The engine adds the §6 breakdown: category-augmentation (when
      // configured per match) and connective-eval spans.
      P3PDB_ASSIGN_OR_RETURN(
          appel::MatchOutcome outcome,
          native_engine_.Evaluate(ruleset, *policy_doc.root, trace));
      result.behavior = outcome.behavior;
      result.fired_rule_index = outcome.fired_rule_index;
      break;
    }
    case EngineKind::kSql:
    case EngineKind::kSqlSimple: {
      if (UsesLegacyMaterialization()) {
        P3PDB_RETURN_IF_ERROR(MaterializeApplicablePolicy(policy_id));
      }
      const bool prepared = !pref.prepared_sql.empty();
      const size_t rule_count = pref.sql.rule_queries.size();
      std::vector<Value> params;  // reused across rules (capacity sticks)
      for (size_t i = 0; i < rule_count; ++i) {
        obs::ScopedSpan rule_span(trace, "rule-query");
        if (rule_span.active()) {
          rule_span.SetAttr("rule", std::to_string(i));
          rule_span.SetAttr("behavior", pref.sql.behaviors[i]);
        }
        // In the default (parameterized) mode, every `?` of the rule query
        // binds the applicable policy id; catch-all rules take none.
        const size_t param_count = i < pref.sql.param_counts.size()
                                       ? pref.sql.param_counts[i]
                                       : 0;
        QueryResult rows;
        if (prepared) {
          params.assign(param_count, Value::Integer(policy_id));
          P3PDB_ASSIGN_OR_RETURN(rows,
                                 pref.prepared_sql[i].Execute(params, trace));
        } else if (param_count > 0) {
          params.assign(param_count, Value::Integer(policy_id));
          P3PDB_ASSIGN_OR_RETURN(
              rows, db_.Execute(pref.sql.rule_queries[i], params, trace));
        } else {
          // Paper methodology: the SQL text is submitted to the database
          // for every match; query time includes its prepare.
          P3PDB_ASSIGN_OR_RETURN(
              rows, db_.Execute(pref.sql.rule_queries[i], trace));
        }
        if (options_.collect_metrics) rule_queries_total_->Increment();
        if (rule_span.active()) rule_span.AddCount("rows", rows.rows.size());
        if (!rows.rows.empty()) {
          result.behavior = rows.rows[0][0].AsText();
          result.fired_rule_index = static_cast<int>(i);
          break;
        }
      }
      break;
    }
    case EngineKind::kXQueryNative: {
      auto it = policy_dom_.find(policy_id);
      if (it == policy_dom_.end()) {
        return Status::NotFound("policy id " + std::to_string(policy_id) +
                                " not installed");
      }
      for (size_t i = 0; i < pref.xquery_asts.size(); ++i) {
        obs::ScopedSpan rule_span(trace, "rule-query");
        if (rule_span.active()) rule_span.SetAttr("rule", std::to_string(i));
        P3PDB_ASSIGN_OR_RETURN(
            bool fired, xquery::EvalQuery(pref.xquery_asts[i], *it->second));
        if (options_.collect_metrics) rule_queries_total_->Increment();
        if (fired) {
          result.behavior = pref.xquery_text.behaviors[i];
          result.fired_rule_index = static_cast<int>(i);
          break;
        }
      }
      break;
    }
    case EngineKind::kXQueryXTable: {
      P3PDB_RETURN_IF_ERROR(MaterializeApplicablePolicy(policy_id));
      for (size_t i = 0; i < pref.xtable_sql.size(); ++i) {
        obs::ScopedSpan rule_span(trace, "rule-query");
        if (rule_span.active()) rule_span.SetAttr("rule", std::to_string(i));
        P3PDB_ASSIGN_OR_RETURN(QueryResult rows,
                               db_.Execute(pref.xtable_sql[i], trace));
        if (options_.collect_metrics) rule_queries_total_->Increment();
        if (rule_span.active()) rule_span.AddCount("rows", rows.rows.size());
        if (!rows.rows.empty()) {
          result.behavior = rows.rows[0][0].AsText();
          result.fired_rule_index = static_cast<int>(i);
          break;
        }
      }
      break;
    }
  }
  if (options_.record_matches) {
    obs::ScopedSpan record_span(trace, "record-match");
    P3PDB_RETURN_IF_ERROR(RecordMatch(result));
  }
  return result;
}

Result<MatchResult> PolicyServer::MatchUri(const CompiledPreference& pref,
                                           std::string_view local_path) {
  return MatchUri(pref, local_path, nullptr);
}

Result<MatchResult> PolicyServer::MatchUri(const CompiledPreference& pref,
                                           std::string_view local_path,
                                           obs::TraceContext* trace) {
  obs::TraceContext* t = EffectiveTrace(trace);
  obs::ScopedSpan match_span(t, "match");
  if (match_span.active()) {
    match_span.SetAttr("engine", EngineKindName(options_.engine));
    match_span.SetAttr("uri", local_path);
  }
  std::chrono::steady_clock::time_point start{};
  if (options_.collect_metrics) start = std::chrono::steady_clock::now();

  // Read-only matching runs under the shared lock; only the legacy
  // materialized mode mutates the ApplicablePolicy row and must exclude
  // other matchers.
  std::shared_lock<std::shared_mutex> shared(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(mu_, std::defer_lock);
  if (UsesLegacyMaterialization()) {
    exclusive.lock();
  } else {
    shared.lock();
  }
  const bool cacheable = match_cache_ != nullptr && pref.fingerprint != 0;
  bool cache_hit = false;
  MatchCacheKey key;
  Result<MatchResult> result = [&]() -> Result<MatchResult> {
    if (cacheable) {
      key = MatchCacheKey{pref.fingerprint, MatchSubject::kUri, -1,
                          std::string(local_path),
                          static_cast<uint8_t>(options_.engine)};
      if (std::optional<MatchResult> hit =
              CachedMatch(key, catalog_epoch_, match_span)) {
        cache_hit = true;
        if (options_.record_matches) {
          obs::ScopedSpan record_span(t, "record-match");
          P3PDB_RETURN_IF_ERROR(RecordMatch(*hit));
        }
        return *hit;
      }
    }
    P3PDB_ASSIGN_OR_RETURN(
        int64_t policy_id,
        FindApplicablePolicyId(local_path, /*for_cookie=*/false, t));
    if (policy_id < 0) {
      MatchResult miss;
      miss.behavior = kNoPolicyBehavior;
      miss.policy_found = false;
      return miss;
    }
    return EvaluateAgainstCurrent(pref, policy_id, t);
  }();
  if (cacheable && !cache_hit) StoreMatch(key, catalog_epoch_, result);
  FinishMatchSpan(match_span, result);
  if (options_.collect_metrics) {
    TallyMatch(result, MicrosSince(start), cache_hit);
  }
  return result;
}

Result<MatchResult> PolicyServer::MatchCookie(const CompiledPreference& pref,
                                              std::string_view cookie_path) {
  return MatchCookie(pref, cookie_path, nullptr);
}

Result<MatchResult> PolicyServer::MatchCookie(const CompiledPreference& pref,
                                              std::string_view cookie_path,
                                              obs::TraceContext* trace) {
  obs::TraceContext* t = EffectiveTrace(trace);
  obs::ScopedSpan match_span(t, "match");
  if (match_span.active()) {
    match_span.SetAttr("engine", EngineKindName(options_.engine));
    match_span.SetAttr("cookie", cookie_path);
  }
  std::chrono::steady_clock::time_point start{};
  if (options_.collect_metrics) start = std::chrono::steady_clock::now();

  std::shared_lock<std::shared_mutex> shared(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(mu_, std::defer_lock);
  if (UsesLegacyMaterialization()) {
    exclusive.lock();
  } else {
    shared.lock();
  }
  const bool cacheable = match_cache_ != nullptr && pref.fingerprint != 0;
  bool cache_hit = false;
  MatchCacheKey key;
  Result<MatchResult> result = [&]() -> Result<MatchResult> {
    if (cacheable) {
      key = MatchCacheKey{pref.fingerprint, MatchSubject::kCookie, -1,
                          std::string(cookie_path),
                          static_cast<uint8_t>(options_.engine)};
      if (std::optional<MatchResult> hit =
              CachedMatch(key, catalog_epoch_, match_span)) {
        cache_hit = true;
        if (options_.record_matches) {
          obs::ScopedSpan record_span(t, "record-match");
          P3PDB_RETURN_IF_ERROR(RecordMatch(*hit));
        }
        return *hit;
      }
    }
    P3PDB_ASSIGN_OR_RETURN(
        int64_t policy_id,
        FindApplicablePolicyId(cookie_path, /*for_cookie=*/true, t));
    if (policy_id < 0) {
      MatchResult miss;
      miss.behavior = kNoPolicyBehavior;
      miss.policy_found = false;
      return miss;
    }
    return EvaluateAgainstCurrent(pref, policy_id, t);
  }();
  if (cacheable && !cache_hit) StoreMatch(key, catalog_epoch_, result);
  FinishMatchSpan(match_span, result);
  if (options_.collect_metrics) {
    TallyMatch(result, MicrosSince(start), cache_hit);
  }
  return result;
}

Result<MatchResult> PolicyServer::MatchPolicyId(const CompiledPreference& pref,
                                                int64_t policy_id) {
  return MatchPolicyId(pref, policy_id, nullptr);
}

Result<MatchResult> PolicyServer::MatchPolicyId(const CompiledPreference& pref,
                                                int64_t policy_id,
                                                obs::TraceContext* trace) {
  obs::TraceContext* t = EffectiveTrace(trace);
  obs::ScopedSpan match_span(t, "match");
  if (match_span.active()) {
    match_span.SetAttr("engine", EngineKindName(options_.engine));
  }
  std::chrono::steady_clock::time_point start{};
  if (options_.collect_metrics) start = std::chrono::steady_clock::now();

  std::shared_lock<std::shared_mutex> shared(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(mu_, std::defer_lock);
  if (UsesLegacyMaterialization()) {
    exclusive.lock();
  } else {
    shared.lock();
  }
  const bool cacheable = match_cache_ != nullptr && pref.fingerprint != 0;
  bool cache_hit = false;
  MatchCacheKey key;
  uint64_t version = 0;
  Result<MatchResult> result = [&]() -> Result<MatchResult> {
    if (policy_dom_.find(policy_id) == policy_dom_.end()) {
      return Status::NotFound("policy id " + std::to_string(policy_id) +
                              " not installed");
    }
    if (cacheable) {
      // Policy ids are immutable (re-installing a name mints a new id), so
      // the entry is stamped with the id's own version and survives
      // unrelated catalog changes.
      auto version_it = policy_version_by_id_.find(policy_id);
      version = version_it == policy_version_by_id_.end()
                    ? 0
                    : static_cast<uint64_t>(version_it->second);
      key = MatchCacheKey{pref.fingerprint, MatchSubject::kPolicyId,
                          policy_id, std::string(),
                          static_cast<uint8_t>(options_.engine)};
      if (std::optional<MatchResult> hit =
              CachedMatch(key, version, match_span)) {
        cache_hit = true;
        if (options_.record_matches) {
          obs::ScopedSpan record_span(t, "record-match");
          P3PDB_RETURN_IF_ERROR(RecordMatch(*hit));
        }
        return *hit;
      }
    }
    return EvaluateAgainstCurrent(pref, policy_id, t);
  }();
  if (cacheable && !cache_hit) StoreMatch(key, version, result);
  FinishMatchSpan(match_span, result);
  if (options_.collect_metrics) {
    TallyMatch(result, MicrosSince(start), cache_hit);
  }
  return result;
}

std::optional<MatchResult> PolicyServer::CachedMatch(
    const MatchCacheKey& key, uint64_t version, obs::ScopedSpan& match_span) {
  std::optional<MatchResult> hit = match_cache_->Lookup(key, version);
  if (match_span.active()) {
    match_span.SetAttr("cache", hit.has_value() ? "hit" : "miss");
  }
  return hit;
}

void PolicyServer::StoreMatch(const MatchCacheKey& key, uint64_t version,
                              const Result<MatchResult>& result) {
  // Errors are not memoized: they describe the attempt, not the catalog.
  if (!result.ok()) return;
  match_cache_->Insert(key, version, result.value());
}

uint64_t PolicyServer::catalog_epoch() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return catalog_epoch_;
}

void PolicyServer::TallyMatch(const Result<MatchResult>& result,
                              double elapsed_us, bool cache_hit) {
  matches_total_->Increment();
  match_us_->Record(static_cast<uint64_t>(elapsed_us));
  obs::Histogram* bucket = cache_hit ? cache_hit_us_ : cache_miss_us_;
  if (match_cache_ != nullptr && bucket != nullptr) {
    bucket->Record(static_cast<uint64_t>(elapsed_us));
  }
  if (!result.ok()) {
    match_errors_total_->Increment();
  } else if (!result.value().policy_found) {
    no_policy_total_->Increment();
  }
}

void PolicyServer::SyncDatabaseMetrics() const {
  const sqldb::ExecStats stats = db_.stats();
  // Counters are monotonic on both sides, so incrementing by the delta
  // since the last sync makes the registry converge on the database's
  // cumulative totals regardless of how often (or from how many threads)
  // the render entry points are hit.
  const auto sync = [](obs::Counter* counter, uint64_t current) {
    const uint64_t seen = counter->value();
    if (current > seen) counter->Increment(current - seen);
  };
  sync(sql_plans_built_, stats.plans_built);
  sync(sql_plan_cache_hits_, stats.plan_cache_hits);
  sync(sql_semi_join_rewrites_, stats.semi_join_rewrites);
  sync(sql_anti_join_rewrites_, stats.anti_join_rewrites);
  sync(sql_hash_join_builds_, stats.hash_join_builds);
  sync(sql_hash_join_probes_, stats.hash_join_probes);
  sync(sql_batches_, stats.batches);
  sync(sql_batch_rows_, stats.batch_rows);
  sync(sql_vectorized_filters_, stats.vectorized_filters);
  sync(sql_vectorized_fallback_rows_, stats.vectorized_fallback_rows);
  sync(sql_cost_exists_kept_, stats.cost_exists_kept);
  sync(sql_cost_join_reorders_, stats.cost_join_reorders);
  sync(sql_cost_seq_forced_, stats.cost_seq_forced);
  sync(sql_plan_recosts_, stats.plan_recosts);
  const sqldb::StatsCounters stats_counters = db_.stats_catalog().counters();
  sync(sql_stats_updates_, stats_counters.updates);
  sync(sql_stats_rebuilds_, stats_counters.rebuilds);
  sync(sql_stats_epoch_bumps_, stats_counters.epoch_bumps);
  if (storage_wal_records_ != nullptr) {
    const sqldb::StorageStats storage = db_.storage_stats();
    sync(storage_wal_records_, storage.wal_records);
    sync(storage_wal_commits_, storage.wal_commits);
    sync(storage_wal_syncs_, storage.wal_syncs);
    sync(storage_wal_group_syncs_, storage.wal_group_syncs);
    sync(storage_wal_bytes_, storage.wal_bytes);
    sync(storage_checkpoints_, storage.checkpoints);
    sync(storage_pool_hits_, storage.pool.hits);
    sync(storage_pool_misses_, storage.pool.misses);
    sync(storage_recovered_txns_, storage.recovered_txns);
  }
  uptime_seconds_->Set(std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now() - start_time_)
                           .count());
}

obs::MetricsSnapshot PolicyServer::MetricsSnapshot() const {
  SyncDatabaseMetrics();
  return metrics_.Snapshot();
}

std::string PolicyServer::RenderMetricsText() const {
  SyncDatabaseMetrics();
  return metrics_.RenderText();
}

std::string PolicyServer::RenderMetricsJson() const {
  SyncDatabaseMetrics();
  return metrics_.RenderJson();
}

std::string PolicyServer::RenderStatementStatsJson(size_t top) const {
  return db_.statement_stats().RenderJson(top);
}

std::string PolicyServer::RenderStatementStatsText(size_t top) const {
  return db_.statement_stats().RenderText(top);
}

std::string PolicyServer::RenderSlowLogJson(
    obs::SlowQueryEntry::Kind kind) const {
  const obs::SlowQueryLog* log = db_.slow_log();
  if (log == nullptr) return "[]\n";
  return log->RenderJson(kind);
}

std::string PolicyServer::RenderHealthzJson() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out = "{\"status\":\"ok\",\"catalog_epoch\":" +
                    std::to_string(catalog_epoch_) +
                    ",\"policies\":" + std::to_string(policy_ids_.size()) +
                    ",\"match_cache_shards\":[";
  if (match_cache_ != nullptr) {
    for (size_t shard = 0; shard < match_cache_->shard_count(); ++shard) {
      if (shard > 0) out += ',';
      out += "{\"shard\":" + std::to_string(shard) + ",\"entries\":" +
             std::to_string(match_cache_->ShardStats(shard).entries) + "}";
    }
  }
  out += "]}\n";
  return out;
}

bool PolicyServer::admin_endpoint_running() const { return admin_ != nullptr; }

uint16_t PolicyServer::admin_port() const {
  return admin_ == nullptr ? 0 : admin_->port();
}

Status PolicyServer::RecordMatch(const MatchResult& result) {
  // Matches hold the main lock shared, so the log append — the one write a
  // read-only match performs — gets its own mutex. MatchLog is touched by
  // nothing else a concurrent matcher executes, and ConflictReport reads it
  // under the exclusive main lock.
  std::lock_guard<std::mutex> lock(match_log_mu_);
  return db_.InsertRow(
      "MatchLog",
      {Value::Integer(next_match_id_++), Value::Integer(result.policy_id),
       Value::Text(result.behavior),
       Value::Integer(result.fired_rule_index)});
}

int64_t PolicyServer::PolicyVersion(std::string_view name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return PolicyVersionLocked(name);
}

int64_t PolicyServer::PolicyVersionLocked(std::string_view name) {
  auto result = db_.Execute(
      "SELECT MAX(version) FROM PolicyCatalog WHERE name = " +
      SqlQuote(name));
  if (!result.ok() || result.value().rows.empty() ||
      result.value().rows[0][0].is_null()) {
    return 0;
  }
  return result.value().rows[0][0].AsInteger();
}

Result<std::string> PolicyServer::PolicyXml(std::string_view name,
                                            int64_t version) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  P3PDB_ASSIGN_OR_RETURN(
      QueryResult result,
      db_.Execute("SELECT xml FROM PolicyCatalog WHERE name = " +
                  SqlQuote(name) +
                  " AND version = " + std::to_string(version)));
  if (result.rows.empty()) {
    return Status::NotFound("no version " + std::to_string(version) +
                            " of policy '" + std::string(name) + "'");
  }
  return result.rows[0][0].AsText();
}

Result<sqldb::QueryResult> PolicyServer::ConflictReport() {
  // Exclusive: reads MatchLog, which concurrent shared-lock matchers append
  // to under match_log_mu_.
  std::unique_lock<std::shared_mutex> lock(mu_);
  return db_.Execute(
      "SELECT policy_id, behavior, COUNT(*) AS matches FROM MatchLog "
      "GROUP BY policy_id, behavior ORDER BY 1, 2");
}

}  // namespace p3pdb::server
