// PolicyServer: the server-centric P3P deployment of the paper's §4
// (Figures 5 and 6).
//
// A web site installs its privacy policies (shredded into relational
// tables, Figure 5) and its reference file; user preferences arrive as
// APPEL, are compiled once into the engine's query form, and every page
// request is checked by locating the applicable policy for the URI and
// evaluating the compiled rules in order (Figure 6).
//
// Five engines cover the architecture matrix of Figure 7 and the three
// variations of §4:
//   kNativeAppel  — client-centric baseline: the JRC-style APPEL engine
//                   matching against the policy DOM (specialized engine).
//   kSql          — the proposed system: optimized schema + Figure 15 SQL.
//   kSqlSimple    — pedagogical: Figure 8 schema + Figure 11 SQL.
//   kXQueryNative — APPEL -> XQuery evaluated directly on the XML policy
//                   (native XML store variation).
//   kXQueryXTable — APPEL -> XQuery -> SQL over the simple schema
//                   (XTABLE/XPERANTO variation).
//
// The server also demonstrates the §4.2 advantages: policy versioning in
// the database, and conflict statistics that tell the site owner which
// policies collide with users' preferences.
//
// Thread safety: all public methods are safe to call from multiple threads.
// Installs (InstallPolicy, InstallReferenceFile) and ConflictReport take the
// server mutex exclusively; matching, preference compilation, and the
// catalog lookups take it shared and therefore run concurrently. This works
// because the default match path is read-only: the generated rule queries
// take the applicable policy id as a bind parameter (`?`) instead of
// joining a materialized one-row ApplicablePolicy table, and the executor
// statistics merge into atomic counters at the Database level. Per-match
// bookkeeping that does write — the MatchLog insert and its id sequence,
// active only with `record_matches` — is serialized by a dedicated internal
// mutex so it never blocks other readers' query execution. The legacy
// materialized mode (Options::materialize_applicable_policy, and always
// kXQueryXTable, whose generated SQL still joins ApplicablePolicy) mutates
// that table per match and falls back to the exclusive lock.
//
// Caching: repeated (preference, subject) checks — the server-centric load
// of Figure 6 — are memoized in a sharded LRU MatchCache keyed by the
// preference fingerprint, the subject (policy id or URI/cookie path), the
// catalog version, and the engine kind. Installs bump the catalog epoch so
// stale entries are never served (versioned invalidation; see
// match_cache.h). A warm hit takes the shared lock, one shard lookup, and
// zero SQL. On by default for read-only engines; the legacy materialized
// mode (and kXQueryXTable) bypasses it.

#ifndef P3PDB_SERVER_POLICY_SERVER_H_
#define P3PDB_SERVER_POLICY_SERVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "appel/engine.h"
#include "appel/model.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "p3p/policy.h"
#include "p3p/reference_file.h"
#include "server/match_cache.h"
#include "server/match_result.h"
#include "shredder/optimized_schema.h"
#include "shredder/reference_schema.h"
#include "shredder/simple_schema.h"
#include "sqldb/database.h"
#include "translator/sql_simple.h"
#include "xml/node.h"
#include "xquery/ast.h"
#include "xquery/translate_appel.h"

namespace p3pdb::server {

class AdminHttpServer;

/// Resolves the fragment of a POLICY-REF `about` URI to a policy name:
/// "/P3P/policies.xml#shopping" -> "shopping"; no fragment -> whole string.
/// Shared with the sharded serving tier, whose shard map hashes this name.
std::string AboutToPolicyName(std::string_view about);

/// One PolicyCatalog row, in install order: everything needed to replay the
/// install elsewhere (the sharded tier's recovery path re-parses `text`
/// with p3p::PolicyFromText and re-installs).
struct InstalledPolicyRecord {
  int64_t id = 0;
  std::string name;
  int64_t version = 0;
  std::string text;
};

/// Where category augmentation (base data schema expansion) happens.
enum class Augmentation {
  kAtInstall,  // once, while shredding/storing — the server-centric choice
  kPerMatch,   // on every match — what the JRC client engine does
  kNone,       // skipped entirely (ablation lower bound)
};

/// A preference compiled for a particular engine. Obtain via
/// PolicyServer::CompilePreference; reusable across many matches (the
/// paper's "conversion time" is the cost of building this).
struct CompiledPreference {
  /// Canonical ruleset fingerprint (appel::RulesetFingerprint), the
  /// preference's identity in the match cache. 0 — the value in a
  /// hand-assembled CompiledPreference — means "unknown" and bypasses the
  /// cache entirely, so no two distinct preferences can ever alias.
  uint64_t fingerprint = 0;
  appel::AppelRuleset ruleset;               // always retained
  std::string appel_text;                    // kNativeAppel: the client
                                             // engine re-parses this per
                                             // match, as the JRC engine did
  translator::SqlRuleset sql;                // kSql / kSqlSimple
  std::vector<sqldb::PreparedStatement> prepared_sql;  // bound rule queries
  xquery::XQueryRuleset xquery_text;         // kXQuery*
  std::vector<xquery::Query> xquery_asts;    // kXQueryNative
  std::vector<std::string> xtable_sql;       // kXQueryXTable
};

class PolicyServer {
 public:
  struct Options {
    EngineKind engine = EngineKind::kSql;
    Augmentation augmentation = Augmentation::kAtInstall;
    /// Statement complexity budget of the underlying database (models the
    /// fixed budget that made DB2 reject XTABLE's Medium translation).
    int max_subquery_depth = 32;
    /// Run the database's rule-based planner (EXISTS decorrelation into
    /// hash semi/anti-joins) and its plan cache. Defaults from the
    /// P3PDB_NO_PLANNER environment variable so whole harnesses can be
    /// flipped without code changes; benches pass it explicitly for the
    /// `--no-planner` ablation.
    bool enable_planner = sqldb::PlannerEnabledFromEnv();
    /// Run the database's vectorized batch executor (columnar chunk scans,
    /// selection-vector predicate kernels, batched hash-join probes).
    /// Defaults from the P3PDB_NO_VECTORIZE environment variable, so the
    /// bench/CI ablations flip the whole server stack the way they flip
    /// the planner. Off = the scalar row-at-a-time executor.
    bool enable_vectorized_executor = sqldb::VectorizeEnabledFromEnv();
    /// Maintain the database's statistics catalog (row counts, NDV
    /// sketches, min/max, null fractions) and let the cost model moderate
    /// the rule planner (build-side estimates, EXISTS rewrite vetoes,
    /// cheapest-build-first join ordering, index-vs-seq choice). Defaults
    /// from the P3PDB_NO_COST environment variable, so the bench/CI
    /// ablations flip it the way they flip the planner.
    bool enable_cost_model = sqldb::CostModelEnabledFromEnv();
    /// Log every match into the MatchLog table for site-owner analytics.
    bool record_matches = false;
    /// Bind the translated rule queries once at CompilePreference time and
    /// reuse them across matches. Off by default to mirror the paper's
    /// methodology (SQL text was submitted to DB2 for every match, and
    /// "query time" includes the database's prepare); turning it on is the
    /// modern deployment choice and cuts match latency further.
    bool use_prepared_statements = false;
    /// Compatibility mode: materialize the applicable policy into the
    /// one-row ApplicablePolicy table before evaluating each match, as the
    /// paper's Figure 13 preamble describes, instead of passing the policy
    /// id as a bind parameter. Makes every match a writer (serialized under
    /// the exclusive lock). kXQueryXTable always behaves this way: its
    /// XQuery-derived SQL joins ApplicablePolicy.policy_id directly.
    bool materialize_applicable_policy = false;
    /// Tally counters and latency histograms for matches and compiles into
    /// the server's MetricsRegistry (lock-free on the hot path; see
    /// RenderMetricsText). Off switches even the clock reads off.
    bool collect_metrics = true;
    /// Honor the TraceContext* passed to the Match*/CompilePreference
    /// overloads. Off (the default) makes every instrumentation point a
    /// no-op — the zero-overhead guarantee — even when a caller supplies a
    /// context.
    bool enable_tracing = false;
    /// Memoize full MatchResults in a sharded LRU keyed by (preference
    /// fingerprint, subject, catalog version, engine kind); installs bump
    /// the version so stale entries are never served. On by default for the
    /// read-only engines; the legacy materialized mode (and kXQueryXTable,
    /// which always materializes) bypasses the cache even when this is set.
    /// Benchmarks reproducing the paper's figures turn it off — the paper
    /// restarted DB2 between preferences precisely to defeat caching.
    bool enable_match_cache = true;
    size_t match_cache_shards = 8;
    size_t match_cache_capacity_per_shard = 1024;
    /// Fingerprint every SELECT the database prepares and keep
    /// per-statement aggregates (calls, rows, cache hits, rewrites,
    /// latency percentiles) — the pg_stat_statements view of the match
    /// workload, served at /statements. Off removes even the per-execution
    /// stopwatch read (the steady-state benches turn it off).
    bool enable_statement_stats = true;
    /// Statement executions slower than this (microseconds) are captured
    /// into the slow-query log with bound params and an EXPLAIN ANALYZE
    /// plan. 0 disables slow capture. Requires enable_statement_stats.
    uint64_t slow_query_threshold_us = 0;
    /// Capture every Nth execution of each statement shape as a trace
    /// sample regardless of latency. 0 disables sampling.
    uint32_t trace_sample_every = 0;
    /// Ring capacity of the slow-query/trace-sample log.
    size_t slow_log_capacity = 128;
    /// Serve /metrics, /metrics.json, /statements, /slow, /traces, and
    /// /healthz over an embedded HTTP endpoint on admin_host:admin_port.
    /// Off by default: no socket, no thread, no overhead.
    bool enable_admin_endpoint = false;
    std::string admin_host = "127.0.0.1";
    /// 0 = ephemeral; read the bound port back via admin_port().
    uint16_t admin_port = 0;
    /// Directory for the database's disk-backed storage engine (page-based
    /// checkpoints + write-ahead log; see sqldb/storage.h). Empty — the
    /// default — keeps the server purely in-memory with zero storage
    /// overhead. Non-empty either bootstraps a fresh catalog into the
    /// directory or recovers an existing one: Create() detects a recovered
    /// PolicyCatalog, skips the schema installs, and rebuilds the in-memory
    /// maps, policy DOMs, shredder id sequences, and reference file from
    /// the durable tables. Each InstallPolicy / InstallReferenceFile is one
    /// WAL transaction, so a crash mid-install recovers to "not installed".
    std::string storage_path;
    size_t storage_buffer_pool_pages = 64;
    /// fsync the WAL on every commit (off trades tail-loss for speed).
    bool storage_sync_on_commit = true;
    /// Auto-checkpoint once this many WAL bytes accumulate; 0 disables.
    uint64_t storage_checkpoint_wal_bytes = 4ull << 20;
    bool storage_checkpoint_on_close = true;
    /// WAL group commit: installs stage their commit record under the
    /// exclusive lock but fsync *after releasing it*, joining a
    /// leader/follower queue that coalesces concurrent installs into one
    /// fsync. Durability is unchanged (InstallPolicy still returns only
    /// once its commit record is on disk); what changes is that matches no
    /// longer wait behind an installer's fsync, and N concurrent installers
    /// pay ~1 fsync instead of N.
    bool storage_group_commit = false;
    /// Extra microseconds a group-commit leader waits for followers before
    /// fsyncing; 0 adds no latency.
    uint64_t storage_group_commit_window_us = 0;
    /// File-backend factory for storage files; null = plain POSIX files.
    /// The kill-and-recover harness injects fault backends here.
    sqldb::FileBackendFactory storage_backend_factory;
  };

  /// Creates a server and installs the engine's schemas. With
  /// enable_admin_endpoint set, the admin HTTP server is bound and serving
  /// before Create returns (bind failure fails the Create).
  static Result<std::unique_ptr<PolicyServer>> Create(Options options);

  ~PolicyServer();
  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  /// Installs (a new version of) a policy. Policies are keyed by their
  /// `name`; re-installing a name creates the next version and future
  /// reference-file resolutions pick it up. Returns the policy id.
  Result<int64_t> InstallPolicy(const p3p::Policy& policy);

  /// Installs the site's reference file (replacing any previous one).
  /// POLICY-REF `about` fragments are resolved against installed policy
  /// names.
  Status InstallReferenceFile(const p3p::ReferenceFile& rf);

  /// Compiles an APPEL preference for this server's engine. For the SQL
  /// engines this is the paper's "conversion" step: translation plus
  /// statement preparation; matches then pay execution cost only.
  Result<CompiledPreference> CompilePreference(
      const appel::AppelRuleset& ruleset);

  /// Traced compile: a `compile-preference` root span with `translate`
  /// (one `translate-rule` child per rule) and `prepare` children. The
  /// context is honored only when Options::enable_tracing is set.
  Result<CompiledPreference> CompilePreference(
      const appel::AppelRuleset& ruleset, obs::TraceContext* trace);

  /// Full pipeline: locate the applicable policy for the URI local path,
  /// then evaluate the compiled preference against it.
  Result<MatchResult> MatchUri(const CompiledPreference& pref,
                               std::string_view local_path);

  /// Traced match: a `match` root span covering `ref-lookup` and the
  /// engine's evaluation steps — per-rule `rule-query` (with nested
  /// sql-parse/sql-bind/sql-execute) for the SQL engines, or
  /// policy-parse/appel-parse plus the engine's category-augmentation and
  /// connective-eval spans for the native path. Honored only when
  /// Options::enable_tracing is set; a null context is always free.
  Result<MatchResult> MatchUri(const CompiledPreference& pref,
                               std::string_view local_path,
                               obs::TraceContext* trace);

  /// Like MatchUri, but resolves the URI of a cookie via the reference
  /// file's COOKIE-INCLUDE/COOKIE-EXCLUDE patterns (§5.5).
  Result<MatchResult> MatchCookie(const CompiledPreference& pref,
                                  std::string_view cookie_path);

  Result<MatchResult> MatchCookie(const CompiledPreference& pref,
                                  std::string_view cookie_path,
                                  obs::TraceContext* trace);

  /// Evaluates the compiled preference against one installed policy
  /// (the paper's experiments match each preference against every policy).
  Result<MatchResult> MatchPolicyId(const CompiledPreference& pref,
                                    int64_t policy_id);

  Result<MatchResult> MatchPolicyId(const CompiledPreference& pref,
                                    int64_t policy_id,
                                    obs::TraceContext* trace);

  /// Resolves a POLICY-REF `about` URI (by its fragment name) to the
  /// latest installed policy id; nullopt when unknown. Used by the hybrid
  /// client to pre-resolve its cached reference file.
  std::optional<int64_t> FindPolicyIdByAbout(std::string_view about) const;

  // -- §4.2 extras ---------------------------------------------------------

  /// Latest version number of a named policy (0 if not installed).
  int64_t PolicyVersion(std::string_view name);

  /// XML text of a specific installed version (NotFound if absent).
  Result<std::string> PolicyXml(std::string_view name, int64_t version);

  /// Per-policy behavior counts from the MatchLog — what a site owner
  /// would study to refine a conflicting policy. Rows:
  /// (policy_id, behavior, matches).
  Result<sqldb::QueryResult> ConflictReport();

  /// Ids of installed policies, in install order.
  const std::vector<int64_t>& policy_ids() const { return policy_ids_; }

  /// PolicyCatalog rows in install order (the durable system of record a
  /// sharded tier replays on recovery). Read-only; takes the shared lock.
  Result<std::vector<InstalledPolicyRecord>> InstalledPolicyRecords() const;

  /// Copy of the installed reference file; nullopt when none is installed.
  std::optional<p3p::ReferenceFile> InstalledReferenceFile() const;

  // -- Observability -------------------------------------------------------

  /// Frozen copy of every server instrument (counters such as
  /// p3p_matches_total / p3p_rule_queries_total, histograms such as
  /// p3p_match_duration_us). Lock-free reads of relaxed atomics.
  obs::MetricsSnapshot MetricsSnapshot() const;

  /// Prometheus-style exposition text of the server metrics.
  std::string RenderMetricsText() const;

  /// JSON rendering of the server metrics.
  std::string RenderMetricsJson() const;

  /// JSON array of the top-N statement aggregates, ordered by total time
  /// (what /statements?top=N serves; top=0 = all, empty array when
  /// statement stats are off).
  std::string RenderStatementStatsJson(size_t top) const;

  /// Fixed-width table of the top-N statement aggregates (CI artifacts,
  /// debugging).
  std::string RenderStatementStatsText(size_t top) const;

  /// JSON array of slow-query-log entries of one kind (what /slow and
  /// /traces serve; "[]" when capture is not configured).
  std::string RenderSlowLogJson(obs::SlowQueryEntry::Kind kind) const;

  /// What /healthz serves: catalog epoch, installed-policy count, and
  /// per-match-cache-shard entry counts, so a stuck or lopsided shard is
  /// observable from the probe that used to be a bare 200.
  std::string RenderHealthzJson() const;

  /// Per-statement aggregates of the underlying database.
  const sqldb::StatementStatsRegistry& statement_stats() const {
    return db_.statement_stats();
  }

  /// The slow-query/trace-sample ring, or nullptr when capture is off.
  const obs::SlowQueryLog* slow_log() const { return db_.slow_log(); }

  /// True when the admin endpoint is up; admin_port() is then the bound
  /// port (the actual one when Options::admin_port was 0).
  bool admin_endpoint_running() const;
  uint16_t admin_port() const;

  /// The server's registry, for callers that add their own instruments.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// The match-result cache, or nullptr when disabled (option off, or the
  /// legacy materialized mode). Exposed for tests and hit-rate reporting;
  /// the cache is internally thread-safe.
  const MatchCache* match_cache() const { return match_cache_.get(); }

  /// Current catalog version. Every InstallPolicy/InstallReferenceFile
  /// bumps it; cached URI/cookie results from older versions are
  /// invalidated on their next lookup.
  uint64_t catalog_epoch() const;

  /// The underlying database (for examples, tests, and stats).
  sqldb::Database* database() { return &db_; }

  const Options& options() const { return options_; }

 private:
  explicit PolicyServer(Options options);

  Status Init();
  /// Fresh bootstrap: catalog DDL, engine schemas, ApplicablePolicy anchor.
  Status InitSchema();
  /// Disk-backed reopen: verifies the recovered tables match this engine
  /// configuration and rebuilds all in-memory state from them.
  Status RestoreFromStorage();
  Result<int64_t> InstallPolicyLocked(const p3p::Policy& policy);
  Status InstallReferenceFileLocked(const p3p::ReferenceFile& rf);
  bool UsesSqlMatching() const;
  bool UsesSimpleSchema() const;
  /// True when matches mutate the ApplicablePolicy row (compat flag, or the
  /// XTABLE engine whose SQL joins it) and thus need the exclusive lock.
  bool UsesLegacyMaterialization() const;
  Result<int64_t> FindApplicablePolicyId(std::string_view local_path,
                                         bool for_cookie,
                                         obs::TraceContext* trace);
  Status MaterializeApplicablePolicy(int64_t policy_id);
  Result<MatchResult> EvaluateAgainstCurrent(const CompiledPreference& pref,
                                             int64_t policy_id,
                                             obs::TraceContext* trace);
  Status RecordMatch(const MatchResult& result);

  /// Consults the match cache (when enabled and the preference carries a
  /// fingerprint). On a hit, performs the per-match bookkeeping a computed
  /// match would (MatchLog append, span attribute) and returns the result.
  /// Caller must hold mu_ (shared suffices). `version` is the stamp the
  /// entry must carry to be served.
  std::optional<MatchResult> CachedMatch(const MatchCacheKey& key,
                                         uint64_t version,
                                         obs::ScopedSpan& match_span);
  /// Memoizes an ok, fingerprinted result; no-op otherwise.
  void StoreMatch(const MatchCacheKey& key, uint64_t version,
                  const Result<MatchResult>& result);

  /// The context instrumentation actually sees: null unless
  /// Options::enable_tracing is set (so disabled tracing never reads the
  /// clock, whatever the caller passed).
  obs::TraceContext* EffectiveTrace(obs::TraceContext* trace) const {
    return options_.enable_tracing ? trace : nullptr;
  }

  /// Tallies one finished match into the counters/histograms (no-op unless
  /// Options::collect_metrics). `cache_hit` routes the latency into the
  /// p3p_match_cache_{hit,miss}_duration_us histogram as well.
  void TallyMatch(const Result<MatchResult>& result, double elapsed_us,
                  bool cache_hit);

  /// Folds the database's cumulative executor counters into the sqldb_*
  /// metrics (incrementing each by the delta since the previous sync), so
  /// snapshots and renders always expose current planner/plan-cache
  /// activity without putting a registry touch on the query hot path.
  void SyncDatabaseMetrics() const;

  int64_t PolicyVersionLocked(std::string_view name);
  std::optional<int64_t> FindPolicyIdByAboutLocked(
      std::string_view about) const;

  Options options_;
  // Reader/writer: installs and ConflictReport lock exclusively; matches,
  // compiles, and catalog lookups lock shared (read-only against db_ and
  // the in-memory maps). Legacy-materialization matches lock exclusively.
  // Private *Locked helpers assume the caller holds it (either mode).
  mutable std::shared_mutex mu_;
  // Serializes MatchLog appends (next_match_id_ and the InsertRow), which
  // happen under the *shared* main lock when record_matches is on. MatchLog
  // is only read by ConflictReport, which holds the exclusive lock.
  mutable std::mutex match_log_mu_;
  sqldb::Database db_;
  appel::NativeEngine native_engine_;

  // Native-evidence store: the policy DOM each non-SQL engine evaluates,
  // plus the serialized text the client-centric baseline re-parses per
  // match (a client receives policy XML over the wire, it does not share
  // the site's DOM).
  std::map<int64_t, std::unique_ptr<xml::Element>> policy_dom_;
  std::map<int64_t, std::string> policy_text_;
  std::vector<int64_t> policy_ids_;
  std::map<std::string, int64_t, std::less<>> latest_policy_by_name_;
  p3p::ReferenceFile reference_file_;  // native-path URI resolution
  bool has_reference_file_ = false;

  // Versioned invalidation state (guarded by mu_: installs write under the
  // exclusive lock, matches read under the shared lock). catalog_epoch_
  // stamps URI/cookie cache entries; policy ids are immutable once
  // installed, so their entries are stamped with the per-name version the
  // id was installed as and stay valid across later installs.
  uint64_t catalog_epoch_ = 1;
  std::map<int64_t, int64_t> policy_version_by_id_;
  // Sharded memo cache; internally thread-safe (null when disabled).
  std::unique_ptr<MatchCache> match_cache_;

  // Shredders own their id sequences; ids are unique per server.
  std::unique_ptr<shredder::SimpleShredder> simple_shredder_;
  std::unique_ptr<shredder::OptimizedShredder> optimized_shredder_;
  std::unique_ptr<shredder::ReferenceShredder> reference_shredder_;
  int64_t next_match_id_ = 1;  // guarded by match_log_mu_

  // Admin HTTP endpoint (null unless Options::enable_admin_endpoint).
  // Started last in Init and stopped first in the destructor, so its
  // handlers never see a partially built or partially torn-down server.
  std::unique_ptr<AdminHttpServer> admin_;

  // Uptime baseline for p3p_uptime_seconds (stamped at construction; the
  // gauge is refreshed on every snapshot/render).
  std::chrono::steady_clock::time_point start_time_;

  // Server instruments. Registered once in the constructor; every update
  // afterwards is a relaxed atomic op, safe under the shared lock.
  obs::MetricsRegistry metrics_;
  obs::Gauge* uptime_seconds_ = nullptr;
  obs::Counter* matches_total_ = nullptr;
  obs::Counter* match_errors_total_ = nullptr;
  obs::Counter* no_policy_total_ = nullptr;
  obs::Counter* rule_queries_total_ = nullptr;
  obs::Counter* compiles_total_ = nullptr;
  obs::Gauge* policies_installed_ = nullptr;
  obs::Histogram* match_us_ = nullptr;
  obs::Histogram* ref_lookup_us_ = nullptr;
  obs::Histogram* compile_us_ = nullptr;
  obs::Histogram* cache_hit_us_ = nullptr;
  obs::Histogram* cache_miss_us_ = nullptr;
  // Mirrors of the database's planner/plan-cache counters, synced on demand.
  obs::Counter* sql_plans_built_ = nullptr;
  obs::Counter* sql_plan_cache_hits_ = nullptr;
  obs::Counter* sql_semi_join_rewrites_ = nullptr;
  obs::Counter* sql_anti_join_rewrites_ = nullptr;
  obs::Counter* sql_hash_join_builds_ = nullptr;
  obs::Counter* sql_hash_join_probes_ = nullptr;
  obs::Counter* sql_batches_ = nullptr;
  obs::Counter* sql_batch_rows_ = nullptr;
  obs::Counter* sql_vectorized_filters_ = nullptr;
  obs::Counter* sql_vectorized_fallback_rows_ = nullptr;
  // Mirrors of the database's cost-model decision counters and the stats
  // catalog's maintenance tallies.
  obs::Counter* sql_cost_exists_kept_ = nullptr;
  obs::Counter* sql_cost_join_reorders_ = nullptr;
  obs::Counter* sql_cost_seq_forced_ = nullptr;
  obs::Counter* sql_plan_recosts_ = nullptr;
  obs::Counter* sql_stats_updates_ = nullptr;
  obs::Counter* sql_stats_rebuilds_ = nullptr;
  obs::Counter* sql_stats_epoch_bumps_ = nullptr;
  // Mirrors of the storage engine's WAL/buffer-pool counters. Registered
  // only when Options::storage_path is set, so in-memory servers expose
  // exactly the metric set they always did; null pointers mean "no storage".
  obs::Counter* storage_wal_records_ = nullptr;
  obs::Counter* storage_wal_commits_ = nullptr;
  obs::Counter* storage_wal_syncs_ = nullptr;
  obs::Counter* storage_wal_group_syncs_ = nullptr;
  obs::Counter* storage_wal_bytes_ = nullptr;
  obs::Counter* storage_checkpoints_ = nullptr;
  obs::Counter* storage_pool_hits_ = nullptr;
  obs::Counter* storage_pool_misses_ = nullptr;
  obs::Counter* storage_recovered_txns_ = nullptr;
};

}  // namespace p3pdb::server

#endif  // P3PDB_SERVER_POLICY_SERVER_H_
