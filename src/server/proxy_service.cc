#include "server/proxy_service.h"

#include <chrono>

namespace p3pdb::server {

Result<PolicyServer*> ProxyService::AddSite(std::string host) {
  if (host.empty()) {
    return Status::InvalidArgument("empty host");
  }
  if (sites_.find(host) != sites_.end()) {
    return Status::AlreadyExists("site '" + host + "' already registered");
  }
  P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<PolicyServer> server,
                         PolicyServer::Create(site_options_));
  Site site;
  site.server = std::move(server);
  PolicyServer* raw = site.server.get();
  sites_.emplace(std::move(host), std::move(site));
  return raw;
}

PolicyServer* ProxyService::GetSite(std::string_view host) {
  auto it = sites_.find(host);
  return it == sites_.end() ? nullptr : it->second.server.get();
}

Status ProxyService::Subscribe(std::string user,
                               const appel::AppelRuleset& preference) {
  P3PDB_RETURN_IF_ERROR(preference.Validate());
  // A changed preference invalidates every cached compilation.
  for (auto& [host, site] : sites_) {
    DropCompiled(&site, user);
  }
  users_[std::move(user)] = preference;
  return Status::OK();
}

Status ProxyService::Unsubscribe(std::string_view user) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    return Status::NotFound("no subscriber '" + std::string(user) + "'");
  }
  users_.erase(it);
  for (auto& [host, site] : sites_) {
    DropCompiled(&site, user);
  }
  return Status::OK();
}

void ProxyService::DropCompiled(Site* site, std::string_view user) {
  auto it = site->compiled_index.find(user);
  if (it == site->compiled_index.end()) return;
  site->compiled.erase(it->second);
  site->compiled_index.erase(it);
  compiled_entries_->Add(-1);
}

size_t ProxyService::compiled_count(std::string_view host) const {
  auto it = sites_.find(host);
  return it == sites_.end() ? 0 : it->second.compiled.size();
}

Result<const CompiledPreference*> ProxyService::CompiledFor(
    std::string_view user, Site* site) {
  auto cached = site->compiled_index.find(user);
  if (cached != site->compiled_index.end()) {
    site->compiled.splice(site->compiled.begin(), site->compiled,
                          cached->second);
    return &cached->second->second;
  }
  auto account = users_.find(user);
  if (account == users_.end()) {
    return Status::NotFound("no subscriber '" + std::string(user) + "'");
  }
  P3PDB_ASSIGN_OR_RETURN(CompiledPreference compiled,
                         site->server->CompilePreference(account->second));
  site->compiled.emplace_front(std::string(user), std::move(compiled));
  site->compiled_index.insert_or_assign(std::string(user),
                                        site->compiled.begin());
  compiled_entries_->Add(1);
  if (site->compiled.size() > compiled_capacity_per_site_) {
    // The least recently active user loses their slot; their preference is
    // simply recompiled on their next request through this site.
    site->compiled_index.erase(site->compiled.back().first);
    site->compiled.pop_back();
    compiled_evictions_total_->Increment();
    compiled_entries_->Add(-1);
  }
  return &site->compiled.begin()->second;
}

Result<MatchResult> ProxyService::Handle(std::string_view user,
                                         std::string_view host,
                                         std::string_view path, bool cookie,
                                         obs::TraceContext* trace) {
  // The proxy span opens regardless of the site's enable_tracing option —
  // the proxy is its own deployment; a null context is still free.
  obs::ScopedSpan span(trace, "proxy-request");
  if (span.active()) {
    span.SetAttr("user", user);
    span.SetAttr("host", host);
    span.SetAttr("path", path);
    if (cookie) span.SetAttr("cookie", "true");
  }
  auto start = std::chrono::steady_clock::now();
  Result<MatchResult> result = [&]() -> Result<MatchResult> {
    auto site_it = sites_.find(host);
    if (site_it == sites_.end()) {
      return Status::NotFound("no site '" + std::string(host) + "'");
    }
    P3PDB_ASSIGN_OR_RETURN(const CompiledPreference* pref,
                           CompiledFor(user, &site_it->second));
    PolicyServer* server = site_it->second.server.get();
    return cookie ? server->MatchCookie(*pref, path, trace)
                  : server->MatchUri(*pref, path, trace);
  }();
  (cookie ? cookie_requests_total_ : requests_total_)->Increment();
  if (!result.ok()) request_errors_total_->Increment();
  request_us_->Record(static_cast<uint64_t>(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count()));
  if (span.active() && result.ok()) {
    span.SetAttr("behavior", result.value().behavior);
  }
  return result;
}

Result<MatchResult> ProxyService::HandleRequest(std::string_view user,
                                                std::string_view host,
                                                std::string_view path) {
  return Handle(user, host, path, /*cookie=*/false, nullptr);
}

Result<MatchResult> ProxyService::HandleRequest(std::string_view user,
                                                std::string_view host,
                                                std::string_view path,
                                                obs::TraceContext* trace) {
  return Handle(user, host, path, /*cookie=*/false, trace);
}

Result<MatchResult> ProxyService::HandleCookie(std::string_view user,
                                               std::string_view host,
                                               std::string_view cookie_path) {
  return Handle(user, host, cookie_path, /*cookie=*/true, nullptr);
}

Result<MatchResult> ProxyService::HandleCookie(std::string_view user,
                                               std::string_view host,
                                               std::string_view cookie_path,
                                               obs::TraceContext* trace) {
  return Handle(user, host, cookie_path, /*cookie=*/true, trace);
}

}  // namespace p3pdb::server
