// A centralized P3P checking proxy, modeled on the JRC P3P Proxy the paper
// describes in §3.3: "a centralized proxy service that conducts P3P privacy
// policy checking on behalf of subscribed users. A user can specify her
// APPEL preference for her account ... her further browsing requests are
// redirected to the proxy service," which matches policy against preference
// and acts for the user.
//
// Here the proxy is built on the server-centric machinery: it hosts one
// PolicyServer per site, keeps each subscriber's APPEL preference, compiles
// it lazily per site (the compiled form is engine-specific), and answers
// HandleRequest(user, host, path) with the user's decision for that page.

#ifndef P3PDB_SERVER_PROXY_SERVICE_H_
#define P3PDB_SERVER_PROXY_SERVICE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "appel/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/policy_server.h"

namespace p3pdb::server {

class ProxyService {
 public:
  /// `site_options` configures every hosted site's engine (the proxy is a
  /// single deployment; all sites share the engine choice).
  /// `compiled_capacity_per_site` bounds each site's cache of per-user
  /// compiled preferences: the proxy serves an open-ended user population,
  /// so the cache is LRU — the least recently active user's compiled form
  /// is dropped (and recompiled on their next request) rather than letting
  /// the map grow with every subscriber who ever touched the site.
  ProxyService() : ProxyService(PolicyServer::Options{}) {}
  explicit ProxyService(PolicyServer::Options site_options,
                        size_t compiled_capacity_per_site = 64)
      : site_options_(site_options),
        compiled_capacity_per_site_(compiled_capacity_per_site == 0
                                        ? 1
                                        : compiled_capacity_per_site) {
    requests_total_ = metrics_.GetCounter("proxy_requests_total");
    cookie_requests_total_ = metrics_.GetCounter("proxy_cookie_requests_total");
    request_errors_total_ = metrics_.GetCounter("proxy_request_errors_total");
    compiled_evictions_total_ =
        metrics_.GetCounter("proxy_compiled_evictions_total");
    compiled_entries_ = metrics_.GetGauge("proxy_compiled_entries");
    request_us_ = metrics_.GetHistogram("proxy_request_duration_us");
  }

  ProxyService(const ProxyService&) = delete;
  ProxyService& operator=(const ProxyService&) = delete;

  /// Registers a site and returns its PolicyServer so the caller can
  /// install policies and the reference file. Fails if the host exists.
  Result<PolicyServer*> AddSite(std::string host);

  /// The site's server, or nullptr.
  PolicyServer* GetSite(std::string_view host);

  /// Creates or replaces a user's account preference. Replacing drops the
  /// user's cached compiled forms (the preference changed).
  Status Subscribe(std::string user, const appel::AppelRuleset& preference);

  Status Unsubscribe(std::string_view user);

  /// Full proxy pipeline for one browsing request: find the site, compile
  /// the user's preference for it (cached), locate the applicable policy
  /// for the path, evaluate. NotFound for unknown host or user.
  Result<MatchResult> HandleRequest(std::string_view user,
                                    std::string_view host,
                                    std::string_view path);

  /// Traced variant: adds a `proxy-request` root span (user/host/path
  /// attributes) and forwards the context into the site server's match,
  /// which honors it only when its Options::enable_tracing is set.
  Result<MatchResult> HandleRequest(std::string_view user,
                                    std::string_view host,
                                    std::string_view path,
                                    obs::TraceContext* trace);

  /// Cookie variant of HandleRequest.
  Result<MatchResult> HandleCookie(std::string_view user,
                                   std::string_view host,
                                   std::string_view cookie_path);

  Result<MatchResult> HandleCookie(std::string_view user,
                                   std::string_view host,
                                   std::string_view cookie_path,
                                   obs::TraceContext* trace);

  /// Proxy-level instruments (request counts/latency); each hosted site's
  /// PolicyServer keeps its own registry in addition.
  obs::MetricsSnapshot MetricsSnapshot() const { return metrics_.Snapshot(); }
  std::string RenderMetricsText() const { return metrics_.RenderText(); }
  std::string RenderMetricsJson() const { return metrics_.RenderJson(); }

  size_t site_count() const { return sites_.size(); }
  size_t user_count() const { return users_.size(); }
  size_t compiled_capacity_per_site() const {
    return compiled_capacity_per_site_;
  }
  /// Live compiled-preference entries for one site (for tests/inspection).
  size_t compiled_count(std::string_view host) const;

 private:
  // Bounded per-site cache of compiled preferences, LRU front = most
  // recently used, with the index map pointing into the list.
  using CompiledLru = std::list<std::pair<std::string, CompiledPreference>>;

  struct Site {
    std::unique_ptr<PolicyServer> server;
    // user -> preference compiled for this site's engine
    CompiledLru compiled;
    std::map<std::string, CompiledLru::iterator, std::less<>> compiled_index;
  };

  Result<const CompiledPreference*> CompiledFor(std::string_view user,
                                                Site* site);
  void DropCompiled(Site* site, std::string_view user);

  /// Shared body of HandleRequest/HandleCookie: span + metrics around the
  /// site lookup, compile, and match.
  Result<MatchResult> Handle(std::string_view user, std::string_view host,
                             std::string_view path, bool cookie,
                             obs::TraceContext* trace);

  PolicyServer::Options site_options_;
  size_t compiled_capacity_per_site_;
  std::map<std::string, Site, std::less<>> sites_;
  std::map<std::string, appel::AppelRuleset, std::less<>> users_;

  obs::MetricsRegistry metrics_;
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* cookie_requests_total_ = nullptr;
  obs::Counter* request_errors_total_ = nullptr;
  obs::Counter* compiled_evictions_total_ = nullptr;
  obs::Gauge* compiled_entries_ = nullptr;
  obs::Histogram* request_us_ = nullptr;
};

}  // namespace p3pdb::server

#endif  // P3PDB_SERVER_PROXY_SERVICE_H_
