#include "server/sharded_server.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "p3p/policy_xml.h"
#include "server/admin_http.h"

namespace p3pdb::server {

ShardedPolicyServer::ShardedPolicyServer(Options options)
    : options_(std::move(options)) {}

ShardedPolicyServer::~ShardedPolicyServer() {
  // The admin thread's handlers walk the shards; stop it before anything
  // else unwinds.
  admin_.reset();
}

Result<std::unique_ptr<ShardedPolicyServer>> ShardedPolicyServer::Create(
    Options options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("sharded tier needs at least one shard");
  }
  if (options.engine == EngineKind::kXQueryXTable) {
    return Status::InvalidArgument(
        "kXQueryXTable matches by mutating the ApplicablePolicy row and "
        "cannot run on the lock-free serving tier");
  }
  std::unique_ptr<ShardedPolicyServer> tier(
      new ShardedPolicyServer(std::move(options)));
  P3PDB_RETURN_IF_ERROR(tier->Init());
  return tier;
}

Result<std::shared_ptr<PolicyServer>> ShardedPolicyServer::MakeReplica()
    const {
  PolicyServer::Options o;
  o.engine = options_.engine;
  o.enable_planner = options_.enable_planner;
  o.enable_vectorized_executor = options_.enable_vectorized_executor;
  o.enable_cost_model = options_.enable_cost_model;
  o.enable_match_cache = options_.enable_match_cache;
  o.match_cache_shards = options_.match_cache_shards;
  o.match_cache_capacity_per_shard = options_.match_cache_capacity_per_shard;
  o.enable_statement_stats = options_.enable_statement_stats;
  // Replicas are purely in-memory evaluation engines: durability lives in
  // the tier's durable store, telemetry in the tier registry.
  o.collect_metrics = false;
  o.enable_admin_endpoint = false;
  P3PDB_ASSIGN_OR_RETURN(auto server, PolicyServer::Create(std::move(o)));
  return std::shared_ptr<PolicyServer>(std::move(server));
}

Status ShardedPolicyServer::Init() {
  shards_.reserve(options_.shards);
  for (size_t k = 0; k < options_.shards; ++k) {
    auto shard = std::make_unique<Shard>();
    for (Replica& replica : shard->replicas) {
      P3PDB_ASSIGN_OR_RETURN(replica.server, MakeReplica());
    }
    auto snapshot = std::make_shared<const ShardSnapshot>(
        ShardSnapshot{shard->replicas[0].server, /*epoch=*/1, /*policies=*/0});
    shard->published.Store(std::move(snapshot));
    if (options_.collect_metrics) {
      const std::string prefix = "p3p_shard_" + std::to_string(k);
      shard->matches_total = metrics_.GetCounter(prefix + "_matches_total");
      shard->policies_gauge = metrics_.GetGauge(prefix + "_policies");
      shard->epoch_gauge = metrics_.GetGauge(prefix + "_epoch");
      shard->epoch_gauge->Set(1);
    }
    shards_.push_back(std::move(shard));
  }
  if (options_.collect_metrics) {
    matches_total_ = metrics_.GetCounter("p3p_matches_total");
    no_policy_total_ = metrics_.GetCounter("p3p_no_policy_total");
    installs_total_ = metrics_.GetCounter("p3p_installs_total");
    metrics_.GetGauge("p3p_tier_shards")
        ->Set(static_cast<int64_t>(options_.shards));
  }

  if (!options_.storage_path.empty()) {
    // The durable store shreds nothing (kNativeAppel keeps catalog rows and
    // policy DOMs only) and serves no traffic; it is the WAL-backed system
    // of record whose group commit coalesces cross-shard install fsyncs.
    PolicyServer::Options o;
    o.engine = EngineKind::kNativeAppel;
    o.collect_metrics = false;
    o.enable_match_cache = false;
    o.enable_statement_stats = false;
    o.storage_path = options_.storage_path;
    o.storage_buffer_pool_pages = options_.storage_buffer_pool_pages;
    o.storage_sync_on_commit = options_.storage_sync_on_commit;
    o.storage_checkpoint_wal_bytes = options_.storage_checkpoint_wal_bytes;
    o.storage_checkpoint_on_close = options_.storage_checkpoint_on_close;
    o.storage_group_commit = options_.storage_group_commit;
    o.storage_group_commit_window_us = options_.storage_group_commit_window_us;
    P3PDB_ASSIGN_OR_RETURN(auto durable, PolicyServer::Create(std::move(o)));
    durable_ = std::move(durable);

    // Recovery replay: the durable catalog, re-parsed and re-routed through
    // the same shard map, reproduces every replica and every global id (the
    // routing hash and the replicas' id sequences are deterministic).
    P3PDB_ASSIGN_OR_RETURN(auto records, durable_->InstalledPolicyRecords());
    for (const InstalledPolicyRecord& record : records) {
      P3PDB_ASSIGN_OR_RETURN(p3p::Policy policy,
                             p3p::PolicyFromText(record.text));
      Shard& shard = *shards_[ShardOf(policy.name)];
      std::lock_guard<std::mutex> lock(shard.install_mu);
      P3PDB_RETURN_IF_ERROR(ApplyAndPublish(shard, policy).status());
    }
    if (auto rf = durable_->InstalledReferenceFile(); rf.has_value()) {
      PublishDirectory(*rf);
    }
  }

  if (options_.enable_admin_endpoint) {
    AdminHttpServer::Handlers handlers;
    handlers.healthz_json = [this] { return RenderHealthzJson(); };
    handlers.metrics_text = [this] { return RenderMetricsText(); };
    handlers.metrics_json = [this] { return RenderMetricsJson(); };
    handlers.statements_json = [this](size_t top) {
      return RenderStatementStatsJson(top);
    };
    AdminHttpServer::Options admin_options;
    admin_options.host = options_.admin_host;
    admin_options.port = options_.admin_port;
    P3PDB_ASSIGN_OR_RETURN(
        admin_, AdminHttpServer::Start(std::move(handlers), admin_options));
  }
  return Status::OK();
}

size_t ShardedPolicyServer::ShardOf(std::string_view policy_name) const {
  return std::hash<std::string_view>{}(policy_name) % shards_.size();
}

Result<int64_t> ShardedPolicyServer::ApplyAndPublish(
    Shard& shard, const p3p::Policy& policy) {
  if (!shard.poisoned.ok()) return shard.poisoned;
  shard.op_log.push_back(policy);
  const size_t total = shard.op_base + shard.op_log.size();

  // Catch the spare up through the op it has not yet applied — usually just
  // the one appended above plus the op the previous install published
  // without waiting for this replica.
  Replica& spare = shard.replicas[1 - shard.published_idx];
  int64_t local_id = -1;
  while (spare.applied < total) {
    const p3p::Policy& op = shard.op_log[spare.applied - shard.op_base];
    Result<int64_t> installed = spare.server->InstallPolicy(op);
    if (!installed.ok()) {
      // The durable store (when present) already committed this op; a
      // replica that cannot apply it would serve a catalog disagreeing
      // with disk. Refuse the shard until a restart replays cleanly.
      shard.poisoned = installed.status();
      return installed.status();
    }
    local_id = installed.value();
    ++spare.applied;
  }

  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto snapshot = std::make_shared<const ShardSnapshot>(ShardSnapshot{
      spare.server, epoch, spare.server->policy_ids().size()});
  shard.published.Store(std::move(snapshot));
  shard.published_idx = 1 - shard.published_idx;
  shard.publishes.fetch_add(1, std::memory_order_relaxed);

  // Drop ops both replicas have applied; the deque retains only what the
  // now-spare (previously published) replica still owes.
  const size_t min_applied =
      std::min(shard.replicas[0].applied, shard.replicas[1].applied);
  while (shard.op_base < min_applied && !shard.op_log.empty()) {
    shard.op_log.pop_front();
    ++shard.op_base;
  }

  if (shard.policies_gauge != nullptr) {
    shard.policies_gauge->Set(
        static_cast<int64_t>(spare.server->policy_ids().size()));
  }
  if (shard.epoch_gauge != nullptr) {
    shard.epoch_gauge->Set(static_cast<int64_t>(epoch));
  }
  return local_id;
}

Result<int64_t> ShardedPolicyServer::InstallPolicy(const p3p::Policy& policy) {
  const size_t k = ShardOf(policy.name);
  Shard& shard = *shards_[k];
  std::lock_guard<std::mutex> lock(shard.install_mu);
  if (!shard.poisoned.ok()) return shard.poisoned;
  if (durable_ != nullptr) {
    // Durable first: by the time the policy is reachable through any
    // snapshot, its install has survived an fsync (group-committed with
    // whatever other shards are installing right now).
    P3PDB_RETURN_IF_ERROR(durable_->InstallPolicy(policy).status());
  }
  P3PDB_ASSIGN_OR_RETURN(int64_t local_id, ApplyAndPublish(shard, policy));
  if (installs_total_ != nullptr) installs_total_->Increment();
  return local_id * static_cast<int64_t>(shards_.size()) +
         static_cast<int64_t>(k);
}

void ShardedPolicyServer::PublishDirectory(const p3p::ReferenceFile& rf) {
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto snapshot = std::make_shared<const DirectorySnapshot>(
      DirectorySnapshot{rf, epoch});
  directory_.Store(std::move(snapshot));
}

Status ShardedPolicyServer::InstallReferenceFile(
    const p3p::ReferenceFile& rf) {
  std::lock_guard<std::mutex> lock(directory_install_mu_);
  if (durable_ != nullptr) {
    P3PDB_RETURN_IF_ERROR(durable_->InstallReferenceFile(rf));
  }
  PublishDirectory(rf);
  return Status::OK();
}

Result<CompiledPreference> ShardedPolicyServer::CompilePreference(
    const appel::AppelRuleset& ruleset) {
  // Compilation is catalog-independent (translation + fingerprint, no
  // prepared statements on this tier), so any replica can do it; shard 0's
  // published one is as good as any.
  auto snapshot = shards_[0]->published.Load();
  return snapshot->server->CompilePreference(ruleset);
}

Result<MatchResult> ShardedPolicyServer::MatchPolicyId(
    const CompiledPreference& pref, int64_t global_policy_id) {
  if (global_policy_id < 0) {
    return Status::NotFound("unknown policy id: " +
                            std::to_string(global_policy_id));
  }
  const int64_t n = static_cast<int64_t>(shards_.size());
  const size_t k = static_cast<size_t>(global_policy_id % n);
  const int64_t local_id = global_policy_id / n;
  Shard& shard = *shards_[k];
  auto snapshot = shard.published.Load();
  Result<MatchResult> result = snapshot->server->MatchPolicyId(pref, local_id);
  if (matches_total_ != nullptr) matches_total_->Increment();
  if (shard.matches_total != nullptr) shard.matches_total->Increment();
  if (result.ok() && result.value().policy_id >= 0) {
    result.value().policy_id =
        result.value().policy_id * n + static_cast<int64_t>(k);
  }
  return result;
}

Result<MatchResult> ShardedPolicyServer::MatchResolved(
    const CompiledPreference& pref, std::string_view path, bool for_cookie) {
  auto directory = directory_.Load();
  if (directory == nullptr) {
    // Same contract as PolicyServer with no reference file installed.
    return Status::InvalidArgument("no reference file installed");
  }
  std::optional<std::string> about =
      for_cookie ? directory->rf.PolicyForCookie(path)
                 : directory->rf.PolicyForPath(path);
  std::optional<int64_t> local_id;
  size_t k = 0;
  std::shared_ptr<const ShardSnapshot> snapshot;
  if (about.has_value()) {
    k = ShardOf(AboutToPolicyName(*about));
    snapshot = shards_[k]->published.Load();
    local_id = snapshot->server->FindPolicyIdByAbout(*about);
  }
  if (!local_id.has_value()) {
    if (matches_total_ != nullptr) matches_total_->Increment();
    if (no_policy_total_ != nullptr) no_policy_total_->Increment();
    MatchResult miss;
    miss.behavior = kNoPolicyBehavior;
    miss.policy_found = false;
    return miss;
  }
  Shard& shard = *shards_[k];
  Result<MatchResult> result =
      snapshot->server->MatchPolicyId(pref, *local_id);
  if (matches_total_ != nullptr) matches_total_->Increment();
  if (shard.matches_total != nullptr) shard.matches_total->Increment();
  if (result.ok() && result.value().policy_id >= 0) {
    result.value().policy_id =
        result.value().policy_id * static_cast<int64_t>(shards_.size()) +
        static_cast<int64_t>(k);
  }
  return result;
}

Result<MatchResult> ShardedPolicyServer::MatchUri(
    const CompiledPreference& pref, std::string_view local_path) {
  return MatchResolved(pref, local_path, /*for_cookie=*/false);
}

Result<MatchResult> ShardedPolicyServer::MatchCookie(
    const CompiledPreference& pref, std::string_view cookie_path) {
  return MatchResolved(pref, cookie_path, /*for_cookie=*/true);
}

std::optional<int64_t> ShardedPolicyServer::FindPolicyIdByAbout(
    std::string_view about) const {
  const size_t k = ShardOf(AboutToPolicyName(about));
  auto snapshot = shards_[k]->published.Load();
  std::optional<int64_t> local_id = snapshot->server->FindPolicyIdByAbout(about);
  if (!local_id.has_value()) return std::nullopt;
  return *local_id * static_cast<int64_t>(shards_.size()) +
         static_cast<int64_t>(k);
}

size_t ShardedPolicyServer::ShardPolicyCount(size_t shard) const {
  return shards_[shard]->published.Load()->policies;
}

uint64_t ShardedPolicyServer::ShardPublishes(size_t shard) const {
  return shards_[shard]->publishes.load(std::memory_order_relaxed);
}

std::vector<int64_t> ShardedPolicyServer::GlobalPolicyIds() const {
  std::vector<int64_t> ids;
  const int64_t n = static_cast<int64_t>(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    // install_mu keeps installs (which mutate the replica behind the
    // snapshot once it cycles to spare) out while we walk the id list.
    std::lock_guard<std::mutex> lock(shard.install_mu);
    auto snapshot = shard.published.Load();
    for (int64_t local_id : snapshot->server->policy_ids()) {
      ids.push_back(local_id * n + static_cast<int64_t>(k));
    }
  }
  return ids;
}

std::string ShardedPolicyServer::RenderHealthzJson() const {
  uint64_t matches = 0;
  size_t policies = 0;
  std::string shards_json;
  bool poisoned = false;
  for (size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    auto snapshot = shard.published.Load();
    {
      std::lock_guard<std::mutex> lock(shard.install_mu);
      poisoned = poisoned || !shard.poisoned.ok();
    }
    policies += snapshot->policies;
    const uint64_t shard_matches =
        shard.matches_total != nullptr ? shard.matches_total->value() : 0;
    matches += shard_matches;
    if (k > 0) shards_json += ",";
    shards_json += "{\"shard\":" + std::to_string(k) +
                   ",\"epoch\":" + std::to_string(snapshot->epoch) +
                   ",\"policies\":" + std::to_string(snapshot->policies) +
                   ",\"publishes\":" +
                   std::to_string(
                       shard.publishes.load(std::memory_order_relaxed)) +
                   ",\"matches\":" + std::to_string(shard_matches) + "}";
  }
  std::string out = "{\"status\":\"";
  out += poisoned ? "poisoned" : "ok";
  out += "\",\"catalog_epoch\":" + std::to_string(catalog_epoch()) +
         ",\"policies\":" + std::to_string(policies) +
         ",\"matches\":" + std::to_string(matches) + ",\"shards\":[" +
         shards_json + "]}";
  return out;
}

std::string ShardedPolicyServer::RenderMetricsText() const {
  return metrics_.RenderText();
}

std::string ShardedPolicyServer::RenderMetricsJson() const {
  return metrics_.RenderJson();
}

std::string ShardedPolicyServer::RenderStatementStatsJson(size_t top) const {
  std::string out = "{";
  for (size_t k = 0; k < shards_.size(); ++k) {
    auto snapshot = shards_[k]->published.Load();
    if (k > 0) out += ",";
    out += "\"shard_" + std::to_string(k) +
           "\":" + snapshot->server->RenderStatementStatsJson(top);
  }
  out += "}";
  return out;
}

uint16_t ShardedPolicyServer::admin_port() const {
  return admin_ != nullptr ? admin_->port() : 0;
}

}  // namespace p3pdb::server
