// ShardedPolicyServer: the scale-out serving tier over N PolicyServer
// shards, built for the deployment shape the paper's server-centric
// architecture implies — one shared matching service fielding match traffic
// from many clients while sites keep (re)installing policies.
//
// Why not one PolicyServer? Its single shared_mutex means every install
// stalls the entire match fleet for the install's full duration (shred +
// WAL fsync). Here, policy state is partitioned by policy-name hash into N
// catalog shards, and each shard serves matches from an immutable published
// snapshot that installs swap RCU-style:
//
//   - Each shard owns two in-memory PolicyServer replicas (A/B) and a short
//     per-shard op log. At any moment one replica is *published* — reachable
//     only through an EpochPtr<ShardSnapshot> (see epoch_ptr.h: a two-slot
//     epoch-pinned cell; readers are lock-free, writers drain the old
//     slot's nanosecond-scale reader pins before reclaiming) — and the
//     other is the *spare*.
//   - An install (serialized per shard by install_mu) first commits to the
//     durable store, then catches the spare up from the op log and publishes
//     it with a single epoch-pinned snapshot store. The previously published
//     replica becomes the spare; it is caught up lazily by the *next*
//     install, so the installer never takes an exclusive lock a match could
//     be waiting behind.
//   - A match loads the snapshot pointer (one pinned shared_ptr copy; the
//     refcount is the reclamation scheme — a replica's snapshot stays alive
//     exactly as long as some match still holds it) and evaluates against
//     that replica. Everything the match touches — the replica's catalog,
//     its MatchCache, its statement stats — is per-shard, so matches on
//     different shards share no lock at all, and matches on the same shard
//     share only that replica's (never exclusively held) shared_mutex and
//     its internally sharded cache.
//
// Epoch publication: every snapshot carries the tier-wide epoch it was
// published at. A match resolves its whole subject against one snapshot, so
// it observes the catalog as-of one epoch — either entirely before an
// install or entirely after, never a half-installed policy (the torn-epoch
// test in serving_tier_test.cc hammers exactly this).
//
// Ids: a shard's replicas assign local policy ids deterministically (both
// replay the identical op sequence), and the tier exposes
// global = local * num_shards + shard, so routing a global id back to its
// shard is a modulo, no map lookup on the hot path.
//
// Durability: one disk-backed PolicyServer (the *durable store*, engine
// kNativeAppel — catalog rows only, no shredding) is the system of record,
// opened with WAL group commit so concurrent installs to different shards
// coalesce their fsyncs. Create() on an existing directory replays the
// PolicyCatalog in install order through the same routing, reproducing the
// shard contents and global ids exactly.

#ifndef P3PDB_SERVER_SHARDED_SERVER_H_
#define P3PDB_SERVER_SHARDED_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "p3p/policy.h"
#include "p3p/reference_file.h"
#include "server/epoch_ptr.h"
#include "server/match_result.h"
#include "server/policy_server.h"

namespace p3pdb::server {

class ShardedPolicyServer {
 public:
  struct Options {
    /// Number of catalog shards (policy-name hash partitions).
    size_t shards = 4;
    /// Engine of every replica. kXQueryXTable is rejected: its generated
    /// SQL mutates the ApplicablePolicy row per match, which is exactly the
    /// exclusive-lock path this tier exists to avoid.
    EngineKind engine = EngineKind::kSql;
    bool enable_planner = sqldb::PlannerEnabledFromEnv();
    bool enable_vectorized_executor = sqldb::VectorizeEnabledFromEnv();
    bool enable_cost_model = sqldb::CostModelEnabledFromEnv();
    /// Per-replica match caches (so caching, like matching, is per-shard).
    bool enable_match_cache = true;
    size_t match_cache_shards = 4;
    size_t match_cache_capacity_per_shard = 1024;
    /// Per-replica statement-stats registries (per-shard pg_stat_statements;
    /// served aggregated at /statements). Off by default for lean replicas.
    bool enable_statement_stats = false;
    /// Tier gauges/counters (p3p_shard_*) in the tier registry.
    bool collect_metrics = true;
    /// Directory for the durable store. Empty = no durability (bench and
    /// test use); non-empty opens or recovers it at Create.
    std::string storage_path;
    size_t storage_buffer_pool_pages = 64;
    bool storage_sync_on_commit = true;
    uint64_t storage_checkpoint_wal_bytes = 4ull << 20;
    bool storage_checkpoint_on_close = true;
    /// Group commit for the durable store — the default here, unlike the
    /// single server: concurrent installs to different shards are exactly
    /// the traffic whose fsyncs coalesce.
    bool storage_group_commit = true;
    uint64_t storage_group_commit_window_us = 0;
    /// Serve /healthz, /metrics, /metrics.json, /statements over the
    /// embedded admin endpoint (same URL map as PolicyServer's).
    bool enable_admin_endpoint = false;
    std::string admin_host = "127.0.0.1";
    uint16_t admin_port = 0;
  };

  static Result<std::unique_ptr<ShardedPolicyServer>> Create(Options options);

  ~ShardedPolicyServer();
  ShardedPolicyServer(const ShardedPolicyServer&) = delete;
  ShardedPolicyServer& operator=(const ShardedPolicyServer&) = delete;

  /// Installs (a new version of) a policy into its name's shard. Returns
  /// the global policy id. Durable-store commit first, then epoch
  /// publication — a policy is never served before it is durable.
  Result<int64_t> InstallPolicy(const p3p::Policy& policy);

  /// Installs the site's reference file (tier-wide: URI resolution is a
  /// directory concern, not a shard concern). Published atomically as a new
  /// directory snapshot.
  Status InstallReferenceFile(const p3p::ReferenceFile& rf);

  /// Compiles a preference once for the whole tier. The compiled form is
  /// database-independent for every supported engine (SQL text, XQuery
  /// ASTs, or APPEL text), so one compile serves matches on every shard.
  Result<CompiledPreference> CompilePreference(
      const appel::AppelRuleset& ruleset);

  /// Evaluates against one installed policy by global id. Hot path: one
  /// atomic snapshot load + the replica's shared-mode match; no tier lock,
  /// no exclusive lock anywhere.
  Result<MatchResult> MatchPolicyId(const CompiledPreference& pref,
                                    int64_t global_policy_id);

  /// Full pipeline: directory snapshot resolves the URI to a policy name,
  /// the name's shard snapshot resolves and evaluates. One snapshot each,
  /// so the observation is torn-free at both levels.
  Result<MatchResult> MatchUri(const CompiledPreference& pref,
                               std::string_view local_path);

  /// Like MatchUri via the reference file's COOKIE-* patterns.
  Result<MatchResult> MatchCookie(const CompiledPreference& pref,
                                  std::string_view cookie_path);

  /// Resolves a POLICY-REF `about` to the latest global policy id.
  std::optional<int64_t> FindPolicyIdByAbout(std::string_view about) const;

  size_t shard_count() const { return shards_.size(); }
  /// Installed policies in one shard's published snapshot.
  size_t ShardPolicyCount(size_t shard) const;
  /// Snapshot publications (installs) a shard has performed.
  uint64_t ShardPublishes(size_t shard) const;
  /// Tier-wide publication epoch: bumped by every shard publish and every
  /// reference-file install.
  uint64_t catalog_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Installed global ids, grouped by shard and in install order within
  /// each shard (takes no tier lock beyond each shard's install_mu).
  std::vector<int64_t> GlobalPolicyIds() const;

  // -- Observability -------------------------------------------------------

  /// Tier health: epoch plus per-shard policy counts, publish counts, and
  /// match tallies — what /healthz serves, so a stuck shard is visible.
  std::string RenderHealthzJson() const;

  std::string RenderMetricsText() const;
  std::string RenderMetricsJson() const;
  /// JSON object mapping "shard_<k>" to that replica's statement-stats
  /// array ("{}" sans statement stats).
  std::string RenderStatementStatsJson(size_t top) const;

  obs::MetricsRegistry* metrics() { return &metrics_; }
  bool admin_endpoint_running() const { return admin_ != nullptr; }
  uint16_t admin_port() const;

  /// The durable store (nullptr without storage_path); tests inspect its
  /// storage stats to count coalesced fsyncs.
  PolicyServer* durable_store() { return durable_.get(); }

  const Options& options() const { return options_; }

 private:
  /// What a match holds while it runs: the published replica plus the
  /// publication metadata. Immutable after construction; reclaimed by the
  /// shared_ptr refcount when the last in-flight match drops it.
  struct ShardSnapshot {
    std::shared_ptr<PolicyServer> server;
    uint64_t epoch = 0;
    size_t policies = 0;
  };

  /// URI/cookie resolution state, tier-wide, swapped whole on reference
  /// install. Matches resolve against one directory snapshot, never a
  /// half-replaced reference file.
  struct DirectorySnapshot {
    p3p::ReferenceFile rf;
    uint64_t epoch = 0;
  };

  struct Replica {
    std::shared_ptr<PolicyServer> server;
    size_t applied = 0;  // absolute op index this replica has installed up to
  };

  struct Shard {
    /// Serializes installs to this shard (matches never take it).
    std::mutex install_mu;
    Replica replicas[2];
    int published_idx = 0;  // which replica the current snapshot wraps
    /// Install-order op log; replicas consume it to catch up. Pruned to the
    /// suffix some replica still needs, so it stays O(1) entries.
    std::deque<p3p::Policy> op_log;
    size_t op_base = 0;  // absolute index of op_log.front()
    /// Sticky failure: a replica that diverged mid-install (durable store
    /// has the op, the replica does not) poisons the shard rather than
    /// serving a catalog that disagrees with disk.
    Status poisoned = Status::OK();
    EpochPtr<ShardSnapshot> published;
    std::atomic<uint64_t> publishes{0};
    // Tier instruments (null when collect_metrics is off).
    obs::Counter* matches_total = nullptr;
    obs::Gauge* policies_gauge = nullptr;
    obs::Gauge* epoch_gauge = nullptr;
  };

  explicit ShardedPolicyServer(Options options);

  Status Init();
  Result<std::shared_ptr<PolicyServer>> MakeReplica() const;
  size_t ShardOf(std::string_view policy_name) const;
  /// The install path shared by InstallPolicy and recovery replay: assumes
  /// shard.install_mu is held and the durable store (if any) already has
  /// the op. Appends to the op log, catches the spare up, publishes it.
  Result<int64_t> ApplyAndPublish(Shard& shard, const p3p::Policy& policy);
  void PublishDirectory(const p3p::ReferenceFile& rf);
  Result<MatchResult> MatchResolved(const CompiledPreference& pref,
                                    std::string_view path, bool for_cookie);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Serializes reference-file installs (so durable order and published
  /// order agree); directory reads are lock-free snapshot loads.
  mutable std::mutex directory_install_mu_;
  EpochPtr<DirectorySnapshot> directory_;
  std::atomic<uint64_t> epoch_{1};
  std::unique_ptr<PolicyServer> durable_;
  obs::MetricsRegistry metrics_;
  obs::Counter* matches_total_ = nullptr;
  obs::Counter* no_policy_total_ = nullptr;
  obs::Counter* installs_total_ = nullptr;
  std::unique_ptr<AdminHttpServer> admin_;
};

}  // namespace p3pdb::server

#endif  // P3PDB_SERVER_SHARDED_SERVER_H_
