#include "shredder/element_spec.h"

#include "p3p/vocab.h"

namespace p3pdb::shredder {

std::string ElementToTableName(std::string_view element_name) {
  std::string out;
  bool upper_next = true;
  for (char c : element_name) {
    if (c == '-') {
      upper_next = true;
      continue;
    }
    if (upper_next) {
      out.push_back(c >= 'a' && c <= 'z' ? static_cast<char>(c - 'a' + 'A')
                                         : c);
      upper_next = false;
    } else {
      out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
    }
  }
  return out;
}

std::string ElementToIdColumn(std::string_view element_name) {
  std::string out;
  for (char c : element_name) {
    if (c == '-') continue;
    out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  out += "_id";
  return out;
}

ElementSpec::ElementSpec(std::string element_name,
                         std::vector<AttributeSpec> attributes,
                         bool capture_text, std::string table_override)
    : element_name_(std::move(element_name)),
      table_name_(table_override.empty() ? ElementToTableName(element_name_)
                                         : std::move(table_override)),
      id_column_(ElementToIdColumn(table_name_)),
      attributes_(std::move(attributes)),
      capture_text_(capture_text) {}

ElementSpec* ElementSpec::AddChild(std::string element_name,
                                   std::vector<AttributeSpec> attributes,
                                   bool capture_text,
                                   std::string table_override) {
  children_.push_back(std::make_unique<ElementSpec>(
      std::move(element_name), std::move(attributes), capture_text,
      std::move(table_override)));
  return children_.back().get();
}

const ElementSpec* ElementSpec::FindChild(
    std::string_view element_name) const {
  for (const auto& child : children_) {
    if (child->element_name() == element_name) return child.get();
  }
  return nullptr;
}

size_t ElementSpec::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

const ElementSpec& PolicyElementSpec() {
  static const ElementSpec* spec = [] {
    auto* policy = new ElementSpec(
        "POLICY",
        {AttributeSpec{"name", "name", ""},
         AttributeSpec{"discuri", "discuri", ""},
         AttributeSpec{"opturi", "opturi", ""}},
        /*capture_text=*/false);

    ElementSpec* access = policy->AddChild("ACCESS");
    for (std::string_view v : p3p::AccessValues()) {
      access->AddChild(std::string(v), {}, false,
                       "Access" + ElementToTableName(v));
    }

    ElementSpec* statement = policy->AddChild("STATEMENT");
    statement->AddChild("CONSEQUENCE", {}, /*capture_text=*/true);

    ElementSpec* purpose = statement->AddChild("PURPOSE");
    for (std::string_view v : p3p::Purposes()) {
      purpose->AddChild(std::string(v),
                        {AttributeSpec{"required", "required", "always"}});
    }
    purpose->AddChild("extension", {}, false, "PurposeExtension");

    ElementSpec* recipient = statement->AddChild("RECIPIENT");
    for (std::string_view v : p3p::Recipients()) {
      recipient->AddChild(std::string(v),
                          {AttributeSpec{"required", "required", "always"}});
    }
    recipient->AddChild("extension", {}, false, "RecipientExtension");

    ElementSpec* retention = statement->AddChild("RETENTION");
    for (std::string_view v : p3p::Retentions()) {
      retention->AddChild(std::string(v));
    }

    ElementSpec* data_group = statement->AddChild(
        "DATA-GROUP", {AttributeSpec{"base", "base", ""}});
    ElementSpec* data = data_group->AddChild(
        "DATA", {AttributeSpec{"ref", "ref", "", /*is_data_ref=*/true},
                 AttributeSpec{"optional", "optional", "no"}});
    ElementSpec* categories = data->AddChild("CATEGORIES");
    for (std::string_view v : p3p::Categories()) {
      categories->AddChild(std::string(v));
    }
    return policy;
  }();
  return *spec;
}

}  // namespace p3pdb::shredder
