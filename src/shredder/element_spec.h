// Declarative description of the P3P policy element hierarchy.
//
// The schema-decomposition algorithm of the paper's Figure 8 is generic: it
// walks "each element e defined in the P3P policy [schema]" and emits one
// table per element. This file supplies that schema walk: an ElementSpec
// tree covering the matching-relevant part of a P3P policy — POLICY,
// STATEMENT, CONSEQUENCE, PURPOSE and its 12 value elements, RECIPIENT and
// its 6, RETENTION and its 5, DATA-GROUP, DATA, CATEGORIES and the category
// value elements (49 tables in total).
//
// Attribute defaults are recorded so the shredder stores *effective* values
// (an absent required attribute is stored as "always"), mirroring how the
// paper's system resolves defaults at shred time rather than query time.

#ifndef P3PDB_SHREDDER_ELEMENT_SPEC_H_
#define P3PDB_SHREDDER_ELEMENT_SPEC_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace p3pdb::shredder {

/// An attribute captured as a column.
struct AttributeSpec {
  std::string name;           // XML attribute name
  std::string column;         // column name (hyphens become underscores)
  std::string default_value;  // effective default; empty = nullable, no default
  /// Data-reference attributes are stored normalized ("#user.name" ->
  /// "user.name"), another piece of the shred-time expansion that lets the
  /// generated queries compare stored values directly.
  bool is_data_ref = false;
};

/// One element of the P3P schema tree.
class ElementSpec {
 public:
  /// `table_override` names the table explicitly when the default mapping
  /// would collide (EXTENSION appears under both PURPOSE and RECIPIENT).
  ElementSpec(std::string element_name, std::vector<AttributeSpec> attributes,
              bool capture_text, std::string table_override = "");

  const std::string& element_name() const { return element_name_; }
  /// SQL table name per Figure 8(a): derived from the element name
  /// ("DATA-GROUP" -> "DataGroup", "individual-decision" ->
  /// "IndividualDecision").
  const std::string& table_name() const { return table_name_; }
  /// Id column per Figure 8(b)(i): element name + "_id" ("datagroup_id").
  const std::string& id_column() const { return id_column_; }

  const std::vector<AttributeSpec>& attributes() const { return attributes_; }
  bool capture_text() const { return capture_text_; }

  const std::vector<std::unique_ptr<ElementSpec>>& children() const {
    return children_;
  }
  ElementSpec* AddChild(std::string element_name,
                        std::vector<AttributeSpec> attributes = {},
                        bool capture_text = false,
                        std::string table_override = "");

  const ElementSpec* FindChild(std::string_view element_name) const;

  /// Elements in this subtree (== tables Figure 8 creates for it).
  size_t SubtreeSize() const;

 private:
  std::string element_name_;
  std::string table_name_;
  std::string id_column_;
  std::vector<AttributeSpec> attributes_;
  bool capture_text_;
  std::vector<std::unique_ptr<ElementSpec>> children_;
};

/// The singleton spec tree rooted at POLICY.
const ElementSpec& PolicyElementSpec();

/// "DATA-GROUP" -> "DataGroup"; "individual-decision" -> "IndividualDecision".
std::string ElementToTableName(std::string_view element_name);

/// "DATA-GROUP" -> "datagroup_id".
std::string ElementToIdColumn(std::string_view element_name);

}  // namespace p3pdb::shredder

#endif  // P3PDB_SHREDDER_ELEMENT_SPEC_H_
