#include "shredder/optimized_schema.h"

#include "p3p/vocab.h"

namespace p3pdb::shredder {

namespace {

using sqldb::Value;

constexpr const char* kOptimizedDdl = R"sql(
CREATE TABLE Policy (
  policy_id INTEGER NOT NULL,
  name VARCHAR(255),
  discuri VARCHAR(255),
  opturi VARCHAR(255),
  access VARCHAR(32),
  PRIMARY KEY (policy_id)
);
CREATE TABLE Statement (
  policy_id INTEGER NOT NULL,
  statement_id INTEGER NOT NULL,
  consequence VARCHAR(1024),
  retention VARCHAR(32),
  non_identifiable INTEGER NOT NULL,
  PRIMARY KEY (policy_id, statement_id),
  FOREIGN KEY (policy_id) REFERENCES Policy (policy_id)
);
CREATE TABLE Purpose (
  policy_id INTEGER NOT NULL,
  statement_id INTEGER NOT NULL,
  purpose VARCHAR(32) NOT NULL,
  required VARCHAR(16) NOT NULL,
  PRIMARY KEY (policy_id, statement_id, purpose),
  FOREIGN KEY (policy_id, statement_id)
    REFERENCES Statement (policy_id, statement_id)
);
CREATE TABLE Recipient (
  policy_id INTEGER NOT NULL,
  statement_id INTEGER NOT NULL,
  recipient VARCHAR(32) NOT NULL,
  required VARCHAR(16) NOT NULL,
  PRIMARY KEY (policy_id, statement_id, recipient),
  FOREIGN KEY (policy_id, statement_id)
    REFERENCES Statement (policy_id, statement_id)
);
CREATE TABLE Data (
  policy_id INTEGER NOT NULL,
  statement_id INTEGER NOT NULL,
  data_id INTEGER NOT NULL,
  ref VARCHAR(255) NOT NULL,
  optional VARCHAR(8) NOT NULL,
  base VARCHAR(255),
  PRIMARY KEY (policy_id, statement_id, data_id),
  FOREIGN KEY (policy_id, statement_id)
    REFERENCES Statement (policy_id, statement_id)
);
CREATE TABLE Categories (
  policy_id INTEGER NOT NULL,
  statement_id INTEGER NOT NULL,
  data_id INTEGER NOT NULL,
  category VARCHAR(32) NOT NULL,
  PRIMARY KEY (policy_id, statement_id, data_id, category),
  FOREIGN KEY (policy_id, statement_id, data_id)
    REFERENCES Data (policy_id, statement_id, data_id)
);
CREATE INDEX idx_statement_policy ON Statement (policy_id);
CREATE INDEX idx_purpose_stmt ON Purpose (policy_id, statement_id);
CREATE INDEX idx_recipient_stmt ON Recipient (policy_id, statement_id);
CREATE INDEX idx_data_stmt ON Data (policy_id, statement_id);
CREATE INDEX idx_categories_data ON Categories (policy_id, statement_id, data_id);
)sql";

}  // namespace

Status InstallOptimizedSchema(sqldb::Database* db) {
  return db->ExecuteScript(kOptimizedDdl);
}

Result<int64_t> OptimizedShredder::ShredPolicy(const p3p::Policy& policy) {
  const int64_t policy_id = next_policy_id_++;

  P3PDB_RETURN_IF_ERROR(db_->InsertRow(
      "Policy",
      {Value::Integer(policy_id),
       policy.name.empty() ? Value::Null() : Value::Text(policy.name),
       policy.discuri.empty() ? Value::Null() : Value::Text(policy.discuri),
       policy.opturi.empty() ? Value::Null() : Value::Text(policy.opturi),
       policy.access.empty() ? Value::Null() : Value::Text(policy.access)}));

  int64_t statement_id = 0;
  for (const p3p::PolicyStatement& stmt : policy.statements) {
    ++statement_id;
    P3PDB_RETURN_IF_ERROR(db_->InsertRow(
        "Statement",
        {Value::Integer(policy_id), Value::Integer(statement_id),
         stmt.consequence.empty() ? Value::Null()
                                  : Value::Text(stmt.consequence),
         stmt.retention.empty() ? Value::Null() : Value::Text(stmt.retention),
         Value::Integer(stmt.non_identifiable ? 1 : 0)}));

    for (const p3p::PurposeItem& p : stmt.purposes) {
      P3PDB_RETURN_IF_ERROR(db_->InsertRow(
          "Purpose",
          {Value::Integer(policy_id), Value::Integer(statement_id),
           Value::Text(p.value),
           Value::Text(std::string(p3p::RequiredToString(p.required)))}));
    }
    for (const p3p::RecipientItem& r : stmt.recipients) {
      P3PDB_RETURN_IF_ERROR(db_->InsertRow(
          "Recipient",
          {Value::Integer(policy_id), Value::Integer(statement_id),
           Value::Text(r.value),
           Value::Text(std::string(p3p::RequiredToString(r.required)))}));
    }
    int64_t data_id = 0;
    for (const p3p::DataGroup& group : stmt.data_groups) {
      for (const p3p::DataItem& item : group.items) {
        ++data_id;
        P3PDB_RETURN_IF_ERROR(db_->InsertRow(
            "Data", {Value::Integer(policy_id), Value::Integer(statement_id),
                     Value::Integer(data_id), Value::Text(item.ref),
                     Value::Text(item.optional ? "yes" : "no"),
                     group.base.empty() ? Value::Null()
                                        : Value::Text(group.base)}));
        for (const std::string& category : item.categories) {
          P3PDB_RETURN_IF_ERROR(db_->InsertRow(
              "Categories",
              {Value::Integer(policy_id), Value::Integer(statement_id),
               Value::Integer(data_id), Value::Text(category)}));
        }
      }
    }
  }
  return policy_id;
}

void OptimizedShredder::ResumeIds() {
  int64_t max_id = 0;
  const sqldb::Table* table = db_->LookupTable("Policy");
  if (table != nullptr) {
    for (size_t slot = 0; slot < table->SlotCount(); ++slot) {
      if (!table->IsLive(slot)) continue;
      const Value& id = table->RowAt(slot)[0];
      if (!id.is_null() && id.AsInteger() > max_id) max_id = id.AsInteger();
    }
  }
  next_policy_id_ = max_id + 1;
}

}  // namespace p3pdb::shredder
