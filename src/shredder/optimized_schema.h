// The optimized relational schema of the paper's Figure 14, and its
// populator.
//
// Optimizations over the Figure 8 schema (paper §5.4):
//  - Vocabulary subelements of PURPOSE / RECIPIENT / CATEGORIES are folded
//    into their parent table as value columns ("purpose", "recipient",
//    "category"), together with their `required` attribute.
//  - PURPOSE and RECIPIENT lose their id column (at most one per STATEMENT),
//    so (policy_id, statement_id, value) is the key.
//  - RETENTION's single value is stored with the grand-parent STATEMENT.
//  - CONSEQUENCE becomes a nullable `consequence` column of Statement.
//  - DATA-GROUP is folded into Data (its `base` attribute travels along).
//
// Six tables: Policy, Statement, Purpose, Recipient, Data, Categories.

#ifndef P3PDB_SHREDDER_OPTIMIZED_SCHEMA_H_
#define P3PDB_SHREDDER_OPTIMIZED_SCHEMA_H_

#include <cstdint>

#include "common/result.h"
#include "p3p/policy.h"
#include "sqldb/database.h"

namespace p3pdb::shredder {

/// Creates the six optimized tables plus FK indexes in `db`.
Status InstallOptimizedSchema(sqldb::Database* db);

/// Populates the optimized tables from validated Policy models.
class OptimizedShredder {
 public:
  explicit OptimizedShredder(sqldb::Database* db) : db_(db) {}

  /// Shreds one policy; returns its assigned policy id. The caller chooses
  /// whether to run category augmentation first (the server-centric install
  /// path does — that is the shred-time expansion the paper credits for the
  /// SQL path's match-time advantage).
  Result<int64_t> ShredPolicy(const p3p::Policy& policy);

  /// Re-seeds the policy-id sequence to max(Policy.policy_id) + 1. Called
  /// after disk-backed recovery so new shreds never collide with recovered
  /// rows (statement/data ids are per-policy and need no resume).
  void ResumeIds();

 private:
  sqldb::Database* db_;
  int64_t next_policy_id_ = 1;
};

}  // namespace p3pdb::shredder

#endif  // P3PDB_SHREDDER_OPTIMIZED_SCHEMA_H_
