#include "shredder/reference_schema.h"

namespace p3pdb::shredder {

namespace {

using sqldb::Value;

constexpr const char* kReferenceDdl = R"sql(
CREATE TABLE Meta (
  meta_id INTEGER NOT NULL,
  PRIMARY KEY (meta_id)
);
CREATE TABLE Policyref (
  policyref_id INTEGER NOT NULL,
  meta_id INTEGER NOT NULL,
  about VARCHAR(255) NOT NULL,
  policy_id INTEGER,
  PRIMARY KEY (policyref_id),
  FOREIGN KEY (meta_id) REFERENCES Meta (meta_id),
  FOREIGN KEY (policy_id) REFERENCES Policy (policy_id)
);
CREATE TABLE Include (
  include_id INTEGER NOT NULL,
  policyref_id INTEGER NOT NULL,
  pattern VARCHAR(255) NOT NULL,
  PRIMARY KEY (include_id),
  FOREIGN KEY (policyref_id) REFERENCES Policyref (policyref_id)
);
CREATE TABLE Exclude (
  exclude_id INTEGER NOT NULL,
  policyref_id INTEGER NOT NULL,
  pattern VARCHAR(255) NOT NULL,
  PRIMARY KEY (exclude_id),
  FOREIGN KEY (policyref_id) REFERENCES Policyref (policyref_id)
);
CREATE TABLE CookieInclude (
  cookieinclude_id INTEGER NOT NULL,
  policyref_id INTEGER NOT NULL,
  pattern VARCHAR(255) NOT NULL,
  PRIMARY KEY (cookieinclude_id),
  FOREIGN KEY (policyref_id) REFERENCES Policyref (policyref_id)
);
CREATE TABLE CookieExclude (
  cookieexclude_id INTEGER NOT NULL,
  policyref_id INTEGER NOT NULL,
  pattern VARCHAR(255) NOT NULL,
  PRIMARY KEY (cookieexclude_id),
  FOREIGN KEY (policyref_id) REFERENCES Policyref (policyref_id)
);
CREATE INDEX idx_include_ref ON Include (policyref_id);
CREATE INDEX idx_exclude_ref ON Exclude (policyref_id);
CREATE INDEX idx_cookieinclude_ref ON CookieInclude (policyref_id);
CREATE INDEX idx_cookieexclude_ref ON CookieExclude (policyref_id);
)sql";

}  // namespace

Status InstallReferenceSchema(sqldb::Database* db) {
  if (db->LookupTable("Policy") == nullptr) {
    return Status::InvalidArgument(
        "install a policy schema before the reference schema (Policyref "
        "references Policy)");
  }
  return db->ExecuteScript(kReferenceDdl);
}

std::string UriPatternToLike(std::string_view pattern) {
  std::string out;
  out.reserve(pattern.size());
  for (char c : pattern) {
    switch (c) {
      case '*':
        out.push_back('%');
        break;
      case '%':
      case '_':
      case '\\':
        out.push_back('\\');
        out.push_back(c);
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<int64_t> ReferenceShredder::ShredReferenceFile(
    const p3p::ReferenceFile& rf,
    const std::map<std::string, int64_t>& policy_ids) {
  const int64_t meta_id = next_id_++;
  P3PDB_RETURN_IF_ERROR(db_->InsertRow("Meta", {Value::Integer(meta_id)}));

  for (const p3p::PolicyRef& ref : rf.refs) {
    const int64_t policyref_id = next_id_++;
    auto it = policy_ids.find(ref.about);
    Value policy_id =
        it == policy_ids.end() ? Value::Null() : Value::Integer(it->second);
    P3PDB_RETURN_IF_ERROR(db_->InsertRow(
        "Policyref", {Value::Integer(policyref_id), Value::Integer(meta_id),
                      Value::Text(ref.about), std::move(policy_id)}));

    auto insert_patterns = [&](const char* table,
                               const std::vector<std::string>& patterns)
        -> Status {
      for (const std::string& pattern : patterns) {
        P3PDB_RETURN_IF_ERROR(db_->InsertRow(
            table, {Value::Integer(next_id_++), Value::Integer(policyref_id),
                    Value::Text(UriPatternToLike(pattern))}));
      }
      return Status::OK();
    };
    P3PDB_RETURN_IF_ERROR(insert_patterns("Include", ref.includes));
    P3PDB_RETURN_IF_ERROR(insert_patterns("Exclude", ref.excludes));
    P3PDB_RETURN_IF_ERROR(
        insert_patterns("CookieInclude", ref.cookie_includes));
    P3PDB_RETURN_IF_ERROR(
        insert_patterns("CookieExclude", ref.cookie_excludes));
  }
  return meta_id;
}

void ReferenceShredder::ResumeIds() {
  // One sequence across all six reference tables; the id is always the
  // first column.
  int64_t max_id = 0;
  for (const char* name : {"Meta", "Policyref", "Include", "Exclude",
                           "CookieInclude", "CookieExclude"}) {
    const sqldb::Table* table = db_->LookupTable(name);
    if (table == nullptr) continue;
    for (size_t slot = 0; slot < table->SlotCount(); ++slot) {
      if (!table->IsLive(slot)) continue;
      const Value& id = table->RowAt(slot)[0];
      if (!id.is_null() && id.AsInteger() > max_id) max_id = id.AsInteger();
    }
  }
  next_id_ = max_id + 1;
}

}  // namespace p3pdb::shredder
