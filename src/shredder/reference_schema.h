// Tables for the P3P reference file (paper §5.5, Figure 16) and their
// populator.
//
// META is the top-level element; Policyref rows map a policy (`about` URI,
// resolved to the installed policy's id) to the URI space described by
// Include/Exclude rows; cookie policies use CookieInclude/CookieExclude.
// URI patterns are converted from P3P '*' wildcards to SQL LIKE patterns at
// shred time, so the applicablePolicy() subquery (translator module) can
// evaluate coverage with plain LIKE predicates.

#ifndef P3PDB_SHREDDER_REFERENCE_SCHEMA_H_
#define P3PDB_SHREDDER_REFERENCE_SCHEMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "p3p/reference_file.h"
#include "sqldb/database.h"

namespace p3pdb::shredder {

/// Creates Meta, Policyref, Include, Exclude, CookieInclude, CookieExclude.
/// Requires the Policy table (either schema) to exist already — Policyref
/// carries a foreign key to it.
Status InstallReferenceSchema(sqldb::Database* db);

/// Converts a P3P URI pattern ('*' wildcard) into a SQL LIKE pattern,
/// escaping literal '%', '_' and '\' with '\'.
std::string UriPatternToLike(std::string_view pattern);

/// Populates the reference tables from a parsed reference file.
/// `policy_ids` resolves POLICY-REF `about` URIs to installed policy ids;
/// unresolved refs are stored with a NULL policy_id.
class ReferenceShredder {
 public:
  explicit ReferenceShredder(sqldb::Database* db) : db_(db) {}

  Result<int64_t> ShredReferenceFile(
      const p3p::ReferenceFile& rf,
      const std::map<std::string, int64_t>& policy_ids);

  /// Re-seeds the shared id sequence to max(existing id) + 1 across all
  /// reference tables. Called after disk-backed recovery.
  void ResumeIds();

 private:
  sqldb::Database* db_;
  int64_t next_id_ = 1;
};

}  // namespace p3pdb::shredder

#endif  // P3PDB_SHREDDER_REFERENCE_SCHEMA_H_
