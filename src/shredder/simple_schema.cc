#include "shredder/simple_schema.h"

#include "p3p/data_schema.h"

namespace p3pdb::shredder {

namespace {

using sqldb::ColumnDef;
using sqldb::ColumnType;
using sqldb::ForeignKeyDef;
using sqldb::TableSchema;
using sqldb::Value;

/// Figure 8, applied to one element: id column, parent-PK foreign key,
/// attribute columns; PK = id + FK. `parent_pk` lists the parent's primary
/// key columns (own id first), empty for the root.
void GenerateFor(const ElementSpec& spec, const std::string& parent_table,
                 const std::vector<std::string>& parent_pk,
                 GeneratedSchema* out) {
  std::vector<ColumnDef> columns;
  columns.push_back(
      ColumnDef{spec.id_column(), ColumnType::kInteger, /*nullable=*/false});
  for (const std::string& col : parent_pk) {
    columns.push_back(ColumnDef{col, ColumnType::kInteger, false});
  }
  for (const AttributeSpec& attr : spec.attributes()) {
    columns.push_back(ColumnDef{attr.column, ColumnType::kText, true});
  }
  if (spec.capture_text()) {
    columns.push_back(ColumnDef{"content", ColumnType::kText, true});
  }

  TableSchema table(spec.table_name(), std::move(columns));
  std::vector<std::string> pk;
  pk.push_back(spec.id_column());
  pk.insert(pk.end(), parent_pk.begin(), parent_pk.end());
  table.set_primary_key(pk);
  if (!parent_pk.empty()) {
    ForeignKeyDef fk;
    fk.columns = parent_pk;
    fk.referenced_table = parent_table;
    fk.referenced_columns = parent_pk;
    table.AddForeignKey(std::move(fk));
    // Index the FK so parent->child navigation in the generated queries is
    // a point lookup rather than a scan.
    out->indexes.push_back(
        IndexSpec{"idx_" + spec.table_name() + "_parent", spec.table_name(),
                  parent_pk});
  }
  out->tables.push_back(std::move(table));

  for (const auto& child : spec.children()) {
    GenerateFor(*child, spec.table_name(), pk, out);
  }
}

}  // namespace

GeneratedSchema GenerateSimpleSchema() {
  GeneratedSchema out;
  GenerateFor(PolicyElementSpec(), "", {}, &out);
  return out;
}

Status InstallSimpleSchema(sqldb::Database* db) {
  GeneratedSchema schema = GenerateSimpleSchema();
  for (TableSchema& table : schema.tables) {
    P3PDB_RETURN_IF_ERROR(db->CreateTable(std::move(table)));
  }
  for (const IndexSpec& index : schema.indexes) {
    sqldb::Table* table = db->GetMutableTable(index.table);
    if (table == nullptr) {
      return Status::Internal("generated table '" + index.table +
                              "' missing");
    }
    P3PDB_RETURN_IF_ERROR(
        table->CreateIndex(index.name, index.columns, /*unique=*/false));
  }
  return Status::OK();
}

Result<int64_t> SimpleShredder::ShredPolicy(const xml::Element& policy_root) {
  if (policy_root.LocalName() != "POLICY") {
    return Status::InvalidArgument("expected POLICY element, got '" +
                                   policy_root.name() + "'");
  }
  int64_t policy_id = next_id_;
  P3PDB_RETURN_IF_ERROR(Add(PolicyElementSpec(), policy_root, {}));
  return policy_id;
}

Status SimpleShredder::Add(
    const ElementSpec& spec, const xml::Element& elem,
    const std::vector<std::pair<std::string, int64_t>>& foreign_key) {
  const int64_t id = next_id_++;

  // Build the row in schema column order: id, FK columns, attributes,
  // optional content.
  sqldb::Row row;
  row.push_back(Value::Integer(id));
  for (const auto& [column, value] : foreign_key) {
    (void)column;
    row.push_back(Value::Integer(value));
  }
  for (const AttributeSpec& attr : spec.attributes()) {
    std::optional<std::string_view> v = elem.Attr(attr.name);
    if (v.has_value()) {
      std::string_view value =
          attr.is_data_ref ? p3p::NormalizeDataRef(*v) : *v;
      row.push_back(Value::Text(std::string(value)));
    } else if (!attr.default_value.empty()) {
      // Effective default resolved at shred time (e.g. required="always").
      row.push_back(Value::Text(attr.default_value));
    } else {
      row.push_back(Value::Null());
    }
  }
  if (spec.capture_text()) {
    row.push_back(elem.text().empty() ? Value::Null()
                                      : Value::Text(elem.text()));
  }
  P3PDB_RETURN_IF_ERROR(db_->InsertRow(spec.table_name(), std::move(row)));

  std::vector<std::pair<std::string, int64_t>> child_fk;
  child_fk.reserve(foreign_key.size() + 1);
  child_fk.emplace_back(spec.id_column(), id);
  child_fk.insert(child_fk.end(), foreign_key.begin(), foreign_key.end());

  for (const auto& child : elem.children()) {
    const ElementSpec* child_spec = spec.FindChild(
        std::string(child->LocalName()));
    if (child_spec == nullptr) continue;  // EXTENSION, ENTITY, etc.
    P3PDB_RETURN_IF_ERROR(Add(*child_spec, *child, child_fk));
  }
  return Status::OK();
}

void SimpleShredder::ResumeIds() {
  // The sequence is shared across all element tables; the id is always the
  // first column.
  int64_t max_id = 0;
  for (const TableSchema& schema : GenerateSimpleSchema().tables) {
    const sqldb::Table* table = db_->LookupTable(schema.name());
    if (table == nullptr) continue;
    for (size_t slot = 0; slot < table->SlotCount(); ++slot) {
      if (!table->IsLive(slot)) continue;
      const Value& id = table->RowAt(slot)[0];
      if (!id.is_null() && id.AsInteger() > max_id) max_id = id.AsInteger();
    }
  }
  next_id_ = max_id + 1;
}

}  // namespace p3pdb::shredder
