// The pedagogical relational schema of the paper's Figure 8 and the data
// population algorithm of Figure 10.
//
// One table per P3P element (49 tables for the policy tree): an id column,
// a foreign key consisting of the parent table's primary key, and one
// column per attribute. The primary key is the id column concatenated with
// the foreign key. Text-bearing elements (CONSEQUENCE) additionally carry a
// `content` column.
//
// Population mirrors Figure 10's add(Element, ForeignKey): a recursive walk
// of the policy DOM assigning fresh ids and inserting one row per element.
// The shredder stores *effective* attribute values (defaults resolved, e.g.
// required="always"), so the generated queries can compare against stored
// values directly — the paper's shred-time normalization.

#ifndef P3PDB_SHREDDER_SIMPLE_SCHEMA_H_
#define P3PDB_SHREDDER_SIMPLE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "shredder/element_spec.h"
#include "sqldb/database.h"
#include "xml/node.h"

namespace p3pdb::shredder {

/// A secondary index created alongside the tables (on each table's
/// foreign-key columns, so the parent-child joins of the generated queries
/// are point lookups).
struct IndexSpec {
  std::string name;
  std::string table;
  std::vector<std::string> columns;
};

/// The DDL produced by the Figure 8 algorithm.
struct GeneratedSchema {
  std::vector<sqldb::TableSchema> tables;   // parents before children
  std::vector<IndexSpec> indexes;
};

/// Runs the Figure 8 decomposition over the P3P element spec tree.
GeneratedSchema GenerateSimpleSchema();

/// Creates all simple-schema tables and indexes in `db`.
Status InstallSimpleSchema(sqldb::Database* db);

/// Figure 10: populates the simple-schema tables from policy DOMs.
class SimpleShredder {
 public:
  explicit SimpleShredder(sqldb::Database* db) : db_(db) {}

  /// Shreds one POLICY element tree; returns the id assigned to its Policy
  /// row. The caller decides whether the DOM was category-augmented first
  /// (the server does this once at install time).
  Result<int64_t> ShredPolicy(const xml::Element& policy_root);

  /// Re-seeds the id sequence to max(existing id) + 1 by scanning every
  /// simple-schema table (the sequence is shared across all of them).
  /// Called after disk-backed recovery so new shreds never collide with
  /// recovered rows.
  void ResumeIds();

 private:
  Status Add(const ElementSpec& spec, const xml::Element& elem,
             const std::vector<std::pair<std::string, int64_t>>& foreign_key);

  sqldb::Database* db_;
  int64_t next_id_ = 1;
};

}  // namespace p3pdb::shredder

#endif  // P3PDB_SHREDDER_SIMPLE_SCHEMA_H_
