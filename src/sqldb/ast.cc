#include "sqldb/ast.h"

namespace p3pdb::sqldb {

const char* CompareOpSql(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggFuncSql(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kSum:
      return "SUM";
  }
  return "?";
}

std::string LogicalExpr::ToSql() const {
  std::string out = "(";
  for (size_t i = 0; i < operands.size(); ++i) {
    if (i > 0) out += is_and ? " AND " : " OR ";
    out += operands[i]->ToSql();
  }
  out += ")";
  return out;
}

ExistsExpr::ExistsExpr(bool neg, std::unique_ptr<SelectStmt> sub)
    : Expr(ExprKind::kExists), negated(neg), subquery(std::move(sub)) {}

ExistsExpr::~ExistsExpr() = default;

std::string ExistsExpr::ToSql() const {
  return std::string(negated ? "NOT EXISTS (" : "EXISTS (") +
         subquery->ToSql() + ")";
}

HashJoinExpr::HashJoinExpr(bool anti_join,
                           std::unique_ptr<SelectStmt> build_select)
    : Expr(ExprKind::kHashJoin),
      anti(anti_join),
      build(std::move(build_select)) {}

HashJoinExpr::~HashJoinExpr() = default;

std::string HashJoinExpr::ToSql() const {
  // Rendered back as the EXISTS it was rewritten from, with the join
  // condition re-attached, so debug output stays valid SQL.
  std::string cond;
  for (size_t i = 0; i < build_keys.size(); ++i) {
    if (i > 0) cond += " AND ";
    cond += build_keys[i]->ToSql() + " = " + probe_keys[i]->ToSql();
  }
  std::string sub = build->ToSql();
  if (build->where != nullptr) {
    // Splice the join condition in front of the existing WHERE.
    size_t pos = sub.find(" WHERE ");
    sub = sub.substr(0, pos + 7) + cond + " AND (" + sub.substr(pos + 7) + ")";
  } else {
    sub += " WHERE " + cond;
  }
  return std::string(anti ? "NOT EXISTS (" : "EXISTS (") + sub + ")";
}

std::string InListExpr::ToSql() const {
  std::string out = operand->ToSql();
  out += negated ? " NOT IN (" : " IN (";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i]->ToSql();
  }
  out += ")";
  return out;
}

std::string SelectStmt::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    if (items[i].is_star) {
      out += "*";
    } else {
      out += items[i].expr->ToSql();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i].table_name;
      if (!from[i].alias.empty() && from[i].alias != from[i].table_name) {
        out += " " + from[i].alias;
      }
    }
  }
  if (where != nullptr) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToSql();
    }
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToSql();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  return out;
}

}  // namespace p3pdb::sqldb
