// Abstract syntax tree for the sqldb SQL dialect.
//
// The dialect covers what the APPEL translators generate plus enough general
// SQL to be usable on its own: SELECT with correlated EXISTS subqueries,
// IN lists, LIKE, IS NULL, aggregates with GROUP BY, DISTINCT, ORDER BY and
// LIMIT; INSERT ... VALUES; DELETE; CREATE/DROP TABLE; CREATE INDEX.
//
// The binder annotates the tree in place (column refs get scope coordinates,
// table refs get table pointers); see binder.h.

#ifndef P3PDB_SQLDB_AST_H_
#define P3PDB_SQLDB_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sqldb/schema.h"
#include "sqldb/value.h"

namespace p3pdb::sqldb {

class Index;
class Table;
struct SelectStmt;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kParam,
  kColumnRef,
  kComparison,
  kLogical,
  kNot,
  kExists,
  kInList,
  kIsNull,
  kLike,
  kAggregate,
  kHashJoin,
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Renders the expression back to SQL text (debugging / EXPLAIN).
  virtual std::string ToSql() const = 0;

  const ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  std::string ToSql() const override { return value.ToString(); }

  Value value;
};

/// A `?` bind-parameter placeholder. Parameters are numbered left to right
/// across the whole statement (the root SelectStmt records the total in
/// `param_count`); values are supplied per execution, so one bound statement
/// serves concurrent executions with different inputs.
struct ParamExpr : Expr {
  explicit ParamExpr(size_t i) : Expr(ExprKind::kParam), index(i) {}
  std::string ToSql() const override { return "?"; }

  size_t index;
};

/// `column` or `table.column`. The binder fills the scope coordinates:
/// `level` counts enclosing SELECTs (0 = the SELECT containing this ref),
/// `table_slot` indexes that SELECT's FROM list, `column_ordinal` indexes the
/// table's columns.
struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string table, std::string column)
      : Expr(ExprKind::kColumnRef),
        table_name(std::move(table)),
        column_name(std::move(column)) {}
  std::string ToSql() const override {
    return table_name.empty() ? column_name : table_name + "." + column_name;
  }

  std::string table_name;  // may be empty (unqualified)
  std::string column_name;

  // Binder output.
  int level = -1;
  size_t table_slot = 0;
  size_t column_ordinal = 0;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSql(CompareOp op);

struct ComparisonExpr : Expr {
  ComparisonExpr(CompareOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kComparison),
        op(o),
        left(std::move(l)),
        right(std::move(r)) {}
  std::string ToSql() const override {
    return left->ToSql() + " " + CompareOpSql(op) + " " + right->ToSql();
  }

  CompareOp op;
  ExprPtr left;
  ExprPtr right;
};

/// N-ary AND / OR.
struct LogicalExpr : Expr {
  LogicalExpr(bool and_op, std::vector<ExprPtr> ops)
      : Expr(ExprKind::kLogical), is_and(and_op), operands(std::move(ops)) {}
  std::string ToSql() const override;

  bool is_and;
  std::vector<ExprPtr> operands;
};

struct NotExpr : Expr {
  explicit NotExpr(ExprPtr e) : Expr(ExprKind::kNot), operand(std::move(e)) {}
  std::string ToSql() const override { return "NOT (" + operand->ToSql() + ")"; }

  ExprPtr operand;
};

struct ExistsExpr : Expr {
  ExistsExpr(bool neg, std::unique_ptr<SelectStmt> sub);
  ~ExistsExpr() override;
  std::string ToSql() const override;

  bool negated;
  std::unique_ptr<SelectStmt> subquery;
};

/// Executor-shared runtime state for a HashJoinExpr: the cached build-side
/// key set plus the table-version stamp it was built at. Defined in
/// executor.h (it needs table.h's IndexKey); the AST only carries an opaque
/// shared_ptr so concurrent executions of one cached plan share the build.
struct HashJoinRuntime;

/// Planner output (never produced by the parser): a decorrelated
/// `[NOT] EXISTS` rewritten as a hash semi-/anti-join. The build side is the
/// former subquery with its correlation equalities stripped (local predicates
/// stay pushed below the build); `build_keys[i] = probe_keys[i]` are the
/// stripped equalities, with probe-side column-ref levels rebased by -1 so
/// they evaluate in the scope where this expression now sits. Evaluation
/// builds the key set over the build side once (cached across executions via
/// `runtime`, invalidated when any table in `dep_tables` changes) and then
/// answers each outer row with one hash probe. Keys containing NULL never
/// match on either side: a NULL build key is excluded from the set and a NULL
/// probe key yields false for EXISTS / true for NOT EXISTS, matching the
/// three-valued-logic result of the correlated path.
struct HashJoinExpr : Expr {
  HashJoinExpr(bool anti_join, std::unique_ptr<SelectStmt> build_select);
  ~HashJoinExpr() override;
  std::string ToSql() const override;

  bool anti;  // true = NOT EXISTS (anti-join), false = EXISTS (semi-join)
  std::unique_ptr<SelectStmt> build;
  std::vector<std::unique_ptr<ColumnRefExpr>> build_keys;  // level-0 in build
  std::vector<ExprPtr> probe_keys;  // evaluated in the enclosing scope
  /// Every table the build side reads (transitively, nested subqueries
  /// included); the cached key set is stale once any of their versions move.
  std::vector<const Table*> dep_tables;
  std::shared_ptr<HashJoinRuntime> runtime;
  /// Cost-model output: estimated rows the build side enumerates (drives
  /// cheapest-build-first ordering of sibling joins). Negative = not costed.
  double est_build_rows = -1.0;
};

struct InListExpr : Expr {
  InListExpr(ExprPtr op, std::vector<ExprPtr> list, bool neg)
      : Expr(ExprKind::kInList),
        operand(std::move(op)),
        items(std::move(list)),
        negated(neg) {}
  std::string ToSql() const override;

  ExprPtr operand;
  std::vector<ExprPtr> items;
  bool negated;
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr op, bool neg)
      : Expr(ExprKind::kIsNull), operand(std::move(op)), negated(neg) {}
  std::string ToSql() const override {
    return operand->ToSql() + (negated ? " IS NOT NULL" : " IS NULL");
  }

  ExprPtr operand;
  bool negated;
};

/// `expr [NOT] LIKE pattern [ESCAPE 'c']` with SQL wildcards % and _.
struct LikeExpr : Expr {
  LikeExpr(ExprPtr op, ExprPtr pat, bool neg, char esc = '\0')
      : Expr(ExprKind::kLike),
        operand(std::move(op)),
        pattern(std::move(pat)),
        negated(neg),
        escape_char(esc) {}
  std::string ToSql() const override {
    std::string out = operand->ToSql() + (negated ? " NOT LIKE " : " LIKE ") +
                      pattern->ToSql();
    if (escape_char != '\0') {
      out += " ESCAPE '";
      if (escape_char == '\'') out += "'";
      out += escape_char;
      out += "'";
    }
    return out;
  }

  ExprPtr operand;
  ExprPtr pattern;
  bool negated;
  char escape_char;  // '\0' = no ESCAPE clause
};

enum class AggFunc { kCountStar, kCount, kMin, kMax, kSum };

const char* AggFuncSql(AggFunc f);

struct AggregateExpr : Expr {
  AggregateExpr(AggFunc f, ExprPtr a)
      : Expr(ExprKind::kAggregate), func(f), arg(std::move(a)) {}
  std::string ToSql() const override {
    if (func == AggFunc::kCountStar) return "COUNT(*)";
    return std::string(AggFuncSql(func)) + "(" + arg->ToSql() + ")";
  }

  AggFunc func;
  ExprPtr arg;  // null for COUNT(*)
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kDropTable,
  kExplain,
};

struct Statement {
  explicit Statement(StatementKind k) : kind(k) {}
  virtual ~Statement() = default;
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;

  const StatementKind kind;
};

/// `table [alias]` in a FROM list.
struct TableRef {
  std::string table_name;
  std::string alias;  // defaults to table_name

  // Binder output.
  const Table* table = nullptr;
};

struct SelectItem {
  bool is_star = false;  // bare `*`
  ExprPtr expr;          // null when is_star
  std::string alias;     // optional `AS alias`
};

/// Planner output (AnnotateSelect): the resolved access path for one FROM
/// slot, computed once at plan time so the executor does not re-derive it on
/// every scan. `index` is stable across CREATE INDEX (tables hold indexes by
/// unique_ptr) and `key_exprs` are aligned with `index->column_ordinals()`.
/// `vector_filter` marks the slot whose WHERE filtering the vectorized
/// executor may run in columnar chunks (the innermost slot; outer slots must
/// stay row-at-a-time so EXISTS early-out scans no extra rows).
struct SlotPlan {
  const Index* index = nullptr;          // null = sequential scan
  std::vector<const Expr*> key_exprs;    // probe keys, index column order
  bool vector_filter = false;
  /// Cost-model output: estimated rows this scan produces per loop, after
  /// the WHERE conjuncts local to the slot. Negative = not costed (cost
  /// model off or no statistics); EXPLAIN prints it only when present.
  double est_rows = -1.0;
  /// True when the cost model overrode the syntactic index choice with a
  /// sequential scan (the index's estimated selectivity was too poor).
  bool seq_forced = false;
};

struct OrderByItem {
  ExprPtr expr;  // integer literal means result-column ordinal (1-based)
  bool ascending = true;
};

struct SelectStmt : Statement {
  SelectStmt() : Statement(StatementKind::kSelect) {}
  std::string ToSql() const;

  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  /// Number of `?` placeholders in the whole statement (subqueries
  /// included). Only meaningful on the root SELECT; executions must supply
  /// exactly this many values.
  size_t param_count = 0;

  /// Per-FROM-slot access paths, filled by AnnotateSelect when the
  /// vectorized executor is enabled. Empty = not annotated (the executor
  /// derives access paths per scan as before).
  std::vector<SlotPlan> slot_plans;

  /// Bind-time execution hints (PrecomputeExecHints, called from
  /// Database::BindAndPlan): the rendered result column headers (shared
  /// with every QueryResult this statement produces) and whether the
  /// statement aggregates. Statements bound outside BindAndPlan (the DML
  /// helpers' single-table shells) leave `aggregate_mode` at -1 and the
  /// executor derives both per query, as it always did.
  std::shared_ptr<const std::vector<std::string>> column_headers;
  int8_t aggregate_mode = -1;  // -1 unknown, 0 plain, 1 aggregate

  /// Statement-telemetry entry for this statement's shape, stamped at
  /// prepare time by Database::BindAndPlan when statement stats are
  /// enabled. Null = untracked (telemetry off, or bound outside
  /// BindAndPlan). The entry outlives the plan: the registry never erases
  /// entries (see StatementStatsRegistry::Reset).
  class StatementStatsEntry* stats_entry = nullptr;
};

struct InsertStmt : Statement {
  InsertStmt() : Statement(StatementKind::kInsert) {}

  std::string table_name;
  std::vector<std::string> columns;  // empty = positional
  std::vector<std::vector<ExprPtr>> rows;
};

struct DeleteStmt : Statement {
  DeleteStmt() : Statement(StatementKind::kDelete) {}

  std::string table_name;
  ExprPtr where;  // may be null (delete all)
};

/// `UPDATE t SET col = expr [, ...] [WHERE ...]`. Assignment expressions
/// may reference the row's current column values.
struct UpdateStmt : Statement {
  UpdateStmt() : Statement(StatementKind::kUpdate) {}

  struct Assignment {
    std::string column;
    ExprPtr value;
  };

  std::string table_name;
  std::vector<Assignment> assignments;
  ExprPtr where;  // may be null (update all)
};

struct CreateTableStmt : Statement {
  CreateTableStmt() : Statement(StatementKind::kCreateTable) {}

  TableSchema schema;
  bool if_not_exists = false;
};

struct CreateIndexStmt : Statement {
  CreateIndexStmt() : Statement(StatementKind::kCreateIndex) {}

  std::string index_name;
  std::string table_name;
  std::vector<std::string> columns;
  bool unique = false;
};

struct DropTableStmt : Statement {
  DropTableStmt() : Statement(StatementKind::kDropTable) {}

  std::string table_name;
  bool if_exists = false;
};

/// `EXPLAIN [ANALYZE] SELECT ...`: renders the access-path plan instead of
/// rows. With ANALYZE the statement is also executed and every plan node is
/// annotated with its actual row count, loop count, and elapsed time.
struct ExplainStmt : Statement {
  ExplainStmt() : Statement(StatementKind::kExplain) {}

  std::unique_ptr<SelectStmt> select;
  bool analyze = false;
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_AST_H_
