#include "sqldb/binder.h"

#include <vector>

#include "common/string_util.h"
#include "sqldb/table.h"

namespace p3pdb::sqldb {

bool ContainsAggregate(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kAggregate:
      return true;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(expr);
      return ContainsAggregate(*c.left) || ContainsAggregate(*c.right);
    }
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(expr);
      for (const auto& op : l.operands) {
        if (ContainsAggregate(*op)) return true;
      }
      return false;
    }
    case ExprKind::kNot:
      return ContainsAggregate(*static_cast<const NotExpr&>(expr).operand);
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      if (ContainsAggregate(*in.operand)) return true;
      for (const auto& item : in.items) {
        if (ContainsAggregate(*item)) return true;
      }
      return false;
    }
    case ExprKind::kIsNull:
      return ContainsAggregate(
          *static_cast<const IsNullExpr&>(expr).operand);
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(expr);
      return ContainsAggregate(*lk.operand) || ContainsAggregate(*lk.pattern);
    }
    case ExprKind::kExists:    // subquery boundary
    case ExprKind::kHashJoin:  // planner-produced, post-binding
    case ExprKind::kLiteral:
    case ExprKind::kParam:
    case ExprKind::kColumnRef:
      return false;
  }
  return false;
}

Status Binder::BindSelect(SelectStmt* stmt) {
  std::vector<SelectStmt*> stack;
  return BindSelectImpl(stmt, &stack);
}

Status Binder::BindSelectImpl(SelectStmt* stmt,
                              std::vector<SelectStmt*>* stack) {
  if (static_cast<int>(stack->size()) + 1 > max_subquery_depth_) {
    return Status::LimitExceeded(
        "query nesting depth exceeds the configured limit of " +
        std::to_string(max_subquery_depth_));
  }
  // Resolve FROM tables first so column refs can land on them.
  for (TableRef& ref : stmt->from) {
    ref.table = catalog_.LookupTable(ref.table_name);
    if (ref.table == nullptr) {
      return Status::NotFound("table '" + ref.table_name + "' does not exist");
    }
    if (ref.alias.empty()) ref.alias = ref.table_name;
    // Duplicate alias check within this FROM list.
    for (const TableRef& other : stmt->from) {
      if (&other != &ref && EqualsIgnoreCase(other.alias, ref.alias) &&
          &other < &ref) {
        return Status::InvalidArgument("duplicate table alias '" + ref.alias +
                                       "'");
      }
    }
  }

  stack->push_back(stmt);

  const bool has_group_by = !stmt->group_by.empty();
  bool has_aggregate_item = false;
  for (const SelectItem& item : stmt->items) {
    if (!item.is_star && ContainsAggregate(*item.expr)) {
      has_aggregate_item = true;
    }
  }
  const bool aggregate_mode = has_group_by || has_aggregate_item;

  for (SelectItem& item : stmt->items) {
    if (item.is_star) {
      if (aggregate_mode) {
        stack->pop_back();
        return Status::InvalidArgument("'*' not allowed with GROUP BY");
      }
      if (stmt->from.empty()) {
        stack->pop_back();
        return Status::InvalidArgument("'*' requires a FROM clause");
      }
      continue;
    }
    Status st = BindExpr(item.expr.get(), stack, /*allow_aggregates=*/true);
    if (!st.ok()) {
      stack->pop_back();
      return st;
    }
  }
  if (stmt->where != nullptr) {
    Status st =
        BindExpr(stmt->where.get(), stack, /*allow_aggregates=*/false);
    if (!st.ok()) {
      stack->pop_back();
      return st;
    }
    if (ContainsAggregate(*stmt->where)) {
      stack->pop_back();
      return Status::InvalidArgument("aggregates not allowed in WHERE");
    }
  }
  for (ExprPtr& g : stmt->group_by) {
    Status st = BindExpr(g.get(), stack, /*allow_aggregates=*/false);
    if (!st.ok()) {
      stack->pop_back();
      return st;
    }
  }
  // In aggregate mode, every non-aggregate select item must match a GROUP BY
  // expression (matched on SQL text, which is canonical after parsing).
  if (aggregate_mode) {
    for (const SelectItem& item : stmt->items) {
      if (ContainsAggregate(*item.expr)) continue;
      bool matched = false;
      for (const ExprPtr& g : stmt->group_by) {
        if (g->ToSql() == item.expr->ToSql()) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        stack->pop_back();
        return Status::InvalidArgument(
            "select item '" + item.expr->ToSql() +
            "' must appear in GROUP BY or be an aggregate");
      }
    }
  }
  for (OrderByItem& item : stmt->order_by) {
    // Integer literals are result ordinals, validated at execution.
    if (item.expr->kind == ExprKind::kLiteral) continue;
    // References to a select item's alias (or its exact text) resolve to
    // the output column at execution time; they need no binding here.
    const std::string text = item.expr->ToSql();
    bool matches_item = false;
    for (const SelectItem& si : stmt->items) {
      if (!si.is_star && (si.alias == text || si.expr->ToSql() == text)) {
        matches_item = true;
        break;
      }
    }
    if (matches_item) continue;
    Status st =
        BindExpr(item.expr.get(), stack, /*allow_aggregates=*/aggregate_mode);
    if (!st.ok()) {
      stack->pop_back();
      return st;
    }
  }

  stack->pop_back();
  return Status::OK();
}

Status Binder::BindExpr(Expr* expr, std::vector<SelectStmt*>* stack,
                        bool allow_aggregates) {
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kParam:
      // Placeholders bind to per-execution values, not catalog state.
      return Status::OK();
    case ExprKind::kColumnRef:
      return BindColumnRef(static_cast<ColumnRefExpr*>(expr), *stack);
    case ExprKind::kComparison: {
      auto* c = static_cast<ComparisonExpr*>(expr);
      P3PDB_RETURN_IF_ERROR(BindExpr(c->left.get(), stack, false));
      return BindExpr(c->right.get(), stack, false);
    }
    case ExprKind::kLogical: {
      auto* l = static_cast<LogicalExpr*>(expr);
      for (ExprPtr& op : l->operands) {
        P3PDB_RETURN_IF_ERROR(BindExpr(op.get(), stack, false));
      }
      return Status::OK();
    }
    case ExprKind::kNot:
      return BindExpr(static_cast<NotExpr*>(expr)->operand.get(), stack,
                      false);
    case ExprKind::kExists: {
      auto* e = static_cast<ExistsExpr*>(expr);
      return BindSelectImpl(e->subquery.get(), stack);
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(expr);
      P3PDB_RETURN_IF_ERROR(BindExpr(in->operand.get(), stack, false));
      for (ExprPtr& item : in->items) {
        P3PDB_RETURN_IF_ERROR(BindExpr(item.get(), stack, false));
      }
      return Status::OK();
    }
    case ExprKind::kIsNull:
      return BindExpr(static_cast<IsNullExpr*>(expr)->operand.get(), stack,
                      false);
    case ExprKind::kLike: {
      auto* lk = static_cast<LikeExpr*>(expr);
      P3PDB_RETURN_IF_ERROR(BindExpr(lk->operand.get(), stack, false));
      return BindExpr(lk->pattern.get(), stack, false);
    }
    case ExprKind::kAggregate: {
      if (!allow_aggregates) {
        return Status::InvalidArgument("aggregate not allowed here");
      }
      auto* agg = static_cast<AggregateExpr*>(expr);
      if (agg->arg != nullptr) {
        P3PDB_RETURN_IF_ERROR(BindExpr(agg->arg.get(), stack, false));
        if (ContainsAggregate(*agg->arg)) {
          return Status::InvalidArgument("nested aggregates not allowed");
        }
      }
      return Status::OK();
    }
    case ExprKind::kHashJoin:
      // The planner rewrites EXISTS into hash joins only after binding; a
      // hash join reaching the binder means a plan was re-bound, which the
      // cache never does.
      return Status::Internal("hash join encountered during binding");
  }
  return Status::Internal("unhandled expression kind in binder");
}

Status Binder::BindColumnRef(ColumnRefExpr* ref,
                             const std::vector<SelectStmt*>& stack) {
  // Search scopes innermost-out. level = distance from the innermost scope.
  for (size_t up = 0; up < stack.size(); ++up) {
    const SelectStmt* scope = stack[stack.size() - 1 - up];
    int found_slot = -1;
    size_t found_ordinal = 0;
    for (size_t slot = 0; slot < scope->from.size(); ++slot) {
      const TableRef& tr = scope->from[slot];
      if (!ref->table_name.empty() &&
          !EqualsIgnoreCase(tr.alias, ref->table_name)) {
        continue;
      }
      std::optional<size_t> ord =
          tr.table->schema().ColumnIndex(ref->column_name);
      if (!ord.has_value()) continue;
      if (found_slot >= 0) {
        return Status::InvalidArgument("ambiguous column '" + ref->ToSql() +
                                       "'");
      }
      found_slot = static_cast<int>(slot);
      found_ordinal = *ord;
    }
    if (found_slot >= 0) {
      ref->level = static_cast<int>(up);
      ref->table_slot = static_cast<size_t>(found_slot);
      ref->column_ordinal = found_ordinal;
      return Status::OK();
    }
  }
  return Status::NotFound("column '" + ref->ToSql() + "' not found");
}

}  // namespace p3pdb::sqldb
