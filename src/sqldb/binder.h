// Semantic analysis: resolves table and column references, validates
// aggregate usage, and enforces the query-complexity limit.
//
// Binding is done in place on the AST: each ColumnRefExpr receives its scope
// coordinates (level, table slot, column ordinal) and each TableRef its
// Table pointer. Correlated references — a subquery referring to a table of
// an enclosing SELECT — resolve to level >= 1, which is what the generated
// APPEL queries rely on for the parent-child joins of Figure 13.

#ifndef P3PDB_SQLDB_BINDER_H_
#define P3PDB_SQLDB_BINDER_H_

#include <string_view>

#include "common/result.h"
#include "sqldb/ast.h"

namespace p3pdb::sqldb {

/// Table-name resolution interface implemented by Database.
class CatalogView {
 public:
  virtual ~CatalogView() = default;
  /// Case-insensitive lookup; nullptr when absent.
  virtual const Table* LookupTable(std::string_view name) const = 0;
};

class Binder {
 public:
  /// `max_subquery_depth` bounds SELECT nesting (outer query = depth 1).
  /// Exceeding it fails with LimitExceeded — this models the fixed statement
  /// complexity budget of the paper's DB2 setup (the XQuery-generated SQL
  /// for the Medium preference exceeded it; see Figure 21).
  Binder(const CatalogView& catalog, int max_subquery_depth)
      : catalog_(catalog), max_subquery_depth_(max_subquery_depth) {}

  /// Binds a SELECT (and, recursively, its subqueries).
  Status BindSelect(SelectStmt* stmt);

 private:
  Status BindSelectImpl(SelectStmt* stmt, std::vector<SelectStmt*>* stack);
  Status BindExpr(Expr* expr, std::vector<SelectStmt*>* stack,
                  bool allow_aggregates);
  Status BindColumnRef(ColumnRefExpr* ref,
                       const std::vector<SelectStmt*>& stack);

  const CatalogView& catalog_;
  int max_subquery_depth_;
};

/// True if the expression tree contains an AggregateExpr outside of
/// subqueries.
bool ContainsAggregate(const Expr& expr);

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_BINDER_H_
