#include "sqldb/buffer_pool.h"

#include <cstring>

namespace p3pdb::sqldb {

BufferPool::BufferPool(FileBackend* file, size_t frame_count, size_t k)
    : file_(file), k_(k == 0 ? 1 : k) {
  if (frame_count == 0) frame_count = 1;
  frames_.resize(frame_count);
  for (Frame& frame : frames_) frame.data.resize(kPageSize);
}

void BufferPool::RecordAccess(Frame& frame) {
  frame.history.insert(frame.history.begin(), ++clock_);
  if (frame.history.size() > k_) frame.history.resize(k_);
}

Result<size_t> BufferPool::AcquireFrame() {
  size_t victim = frames_.size();
  bool victim_infinite = false;
  uint64_t victim_kth = 0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (!frame.valid) return i;
    if (frame.pins > 0) continue;
    // Backward k-distance: frames with < k accesses rank as infinite and
    // are preferred victims, ties broken by oldest most-recent access;
    // otherwise evict the oldest k-th access.
    const bool infinite = frame.history.size() < k_;
    const uint64_t kth = frame.history.empty() ? 0 : frame.history.back();
    const bool better =
        victim == frames_.size() ||
        (infinite && !victim_infinite) ||
        (infinite == victim_infinite && kth < victim_kth);
    if (better) {
      victim = i;
      victim_infinite = infinite;
      victim_kth = kth;
    }
  }
  if (victim == frames_.size()) {
    return Status::LimitExceeded("buffer pool: all frames pinned");
  }
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    P3PDB_RETURN_IF_ERROR(file_->WriteAt(frame.page_id * kPageSize,
                                         frame.data.data(), kPageSize));
    ++stats_.writebacks;
  }
  page_table_.erase(frame.page_id);
  frame.valid = false;
  frame.dirty = false;
  frame.history.clear();
  ++stats_.evictions;
  return victim;
}

Result<uint8_t*> BufferPool::FetchPage(PageId page_id) {
  ++stats_.fetches;
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    ++stats_.hits;
    ++frame.pins;
    RecordAccess(frame);
    return frame.data.data();
  }
  ++stats_.misses;
  P3PDB_ASSIGN_OR_RETURN(size_t slot, AcquireFrame());
  Frame& frame = frames_[slot];
  size_t got = 0;
  P3PDB_RETURN_IF_ERROR(
      file_->ReadAt(page_id * kPageSize, frame.data.data(), kPageSize, &got));
  if (got < kPageSize) {
    std::memset(frame.data.data() + got, 0, kPageSize - got);
  }
  frame.page_id = page_id;
  frame.valid = true;
  frame.dirty = false;
  frame.pins = 1;
  RecordAccess(frame);
  page_table_[page_id] = slot;
  return frame.data.data();
}

void BufferPool::UnpinPage(PageId page_id, bool dirty) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return;
  Frame& frame = frames_[it->second];
  if (frame.pins > 0) --frame.pins;
  if (dirty) frame.dirty = true;
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (!frame.valid || !frame.dirty) continue;
    P3PDB_RETURN_IF_ERROR(file_->WriteAt(frame.page_id * kPageSize,
                                         frame.data.data(), kPageSize));
    frame.dirty = false;
    ++stats_.writebacks;
  }
  return Status::OK();
}

}  // namespace p3pdb::sqldb
