// Buffer pool: a fixed set of in-memory frames caching 8 KiB file pages,
// with pin counts and LRU-K (K=2) eviction.
//
// The checkpoint reader/writer streams table images through the pool rather
// than the raw file, so cold opens exercise the same replacement policy a
// real paged heap would: pages touched twice recently (the "hot" history
// pages of LRU-K) survive scans that would flush a plain LRU. Pinned frames
// are never evicted; dirty frames are written back on eviction and on
// FlushAll.

#ifndef P3PDB_SQLDB_BUFFER_POOL_H_
#define P3PDB_SQLDB_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sqldb/file_backend.h"

namespace p3pdb::sqldb {

inline constexpr size_t kPageSize = 8192;

using PageId = uint64_t;

class BufferPool {
 public:
  /// `frame_count` pages of capacity over `file`. `k` is the LRU-K history
  /// depth: eviction prefers frames with fewer than k recorded accesses
  /// (infinite backward k-distance), then the frame whose k-th most recent
  /// access is oldest.
  BufferPool(FileBackend* file, size_t frame_count, size_t k = 2);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page and returns its frame bytes (kPageSize long). Pages past
  /// the current end of file read as zeros. Call Unpin exactly once per
  /// Fetch.
  Result<uint8_t*> FetchPage(PageId page_id);

  /// Releases one pin; `dirty` marks the frame for writeback.
  void UnpinPage(PageId page_id, bool dirty);

  /// Writes back every dirty frame (pinned or not; contents are whatever
  /// the frame holds now). Does not sync the file.
  Status FlushAll();

  struct Stats {
    uint64_t fetches = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
  };
  const Stats& stats() const { return stats_; }

  size_t frame_count() const { return frames_.size(); }

 private:
  struct Frame {
    PageId page_id = 0;
    bool valid = false;
    bool dirty = false;
    uint32_t pins = 0;
    /// Last k access timestamps, most recent first; size < k means the
    /// frame has infinite backward k-distance (evicted first).
    std::vector<uint64_t> history;
    std::vector<uint8_t> data;
  };

  /// Picks a victim frame (invalid first, then LRU-K), writing back a dirty
  /// victim. Fails only if every frame is pinned.
  Result<size_t> AcquireFrame();
  void RecordAccess(Frame& frame);

  FileBackend* file_;
  const size_t k_;
  uint64_t clock_ = 0;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  Stats stats_;
};

/// RAII pin over one fetched page.
class PageRef {
 public:
  PageRef(BufferPool* pool, PageId page_id, uint8_t* data)
      : pool_(pool), page_id_(page_id), data_(data) {}
  ~PageRef() {
    if (pool_ != nullptr) pool_->UnpinPage(page_id_, dirty_);
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), page_id_(other.page_id_), data_(other.data_),
        dirty_(other.dirty_) {
    other.pool_ = nullptr;
  }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  void MarkDirty() { dirty_ = true; }

 private:
  BufferPool* pool_;
  PageId page_id_;
  uint8_t* data_;
  bool dirty_ = false;
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_BUFFER_POOL_H_
