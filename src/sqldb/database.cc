#include "sqldb/database.h"

#include <cstdlib>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sqldb/executor.h"
#include "sqldb/explain.h"
#include "sqldb/parser.h"
#include "sqldb/planner.h"

namespace p3pdb::sqldb {

bool PlannerEnabledFromEnv() {
  const char* v = std::getenv("P3PDB_NO_PLANNER");
  return v == nullptr || v[0] == '\0' || std::string_view(v) == "0";
}

bool VectorizeEnabledFromEnv() {
  const char* v = std::getenv("P3PDB_NO_VECTORIZE");
  return v == nullptr || v[0] == '\0' || std::string_view(v) == "0";
}

bool CostModelEnabledFromEnv() {
  const char* v = std::getenv("P3PDB_NO_COST");
  return v == nullptr || v[0] == '\0' || std::string_view(v) == "0";
}

namespace {

/// Shared ownership of a bound SELECT still owned by its Statement base.
std::shared_ptr<const SelectStmt> ShareSelect(std::unique_ptr<Statement> stmt,
                                              const SelectStmt* select) {
  return std::shared_ptr<const SelectStmt>(
      std::shared_ptr<Statement>(std::move(stmt)), select);
}

/// Single-writer increment on a stats-shard counter (see LocalStats).
void BumpRelaxed(std::atomic<uint64_t>& c) {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

}  // namespace

uint64_t Database::NextDatabaseId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Database::~Database() {
  if (storage_ != nullptr && storage_status_.ok() &&
      options_.storage_checkpoint_on_close) {
    // Final checkpoint: the next open loads a compact image instead of
    // replaying the whole WAL. Close-time failures are unreportable; the
    // WAL alone is sufficient for recovery, so best-effort is safe.
    (void)storage_->CommitIfImplicit();
    (void)storage_->Checkpoint(*this);
  }
  for (auto& [key, table] : tables_) table->ClearObservers();
}

Status Database::OpenStorage() {
  StorageEngine::Options sopts;
  sopts.path = options_.storage_path;
  sopts.buffer_pool_pages = options_.storage_buffer_pool_pages;
  sopts.sync_on_commit = options_.storage_sync_on_commit;
  sopts.checkpoint_wal_bytes = options_.storage_checkpoint_wal_bytes;
  sopts.group_commit = options_.storage_group_commit;
  sopts.group_commit_window_us = options_.storage_group_commit_window_us;
  sopts.backend_factory = options_.storage_backend_factory;
  auto engine = StorageEngine::Open(std::move(sopts));
  if (!engine.ok()) return engine.status();
  storage_ = std::move(engine).value();
  Status st = storage_->RecoverInto(this);
  if (!st.ok()) {
    for (auto& [key, table] : tables_) table->ClearObservers();
    storage_.reset();
    return st;
  }
  // Checkpoint load restores rows through RestoreSlot, which bypasses the
  // observers; one analysis pass brings the stats catalog up to the
  // recovered state. The HLL sketches are order/duplicate-insensitive, so
  // this lands on the same state incremental maintenance would have.
  if (options_.enable_cost_model) stats_catalog_.AnalyzeAll();
  return Status::OK();
}

Table* Database::RestoreTable(TableSchema schema) {
  std::string key = ToLower(schema.name());
  if (tables_.count(key) != 0) return nullptr;
  auto [it, inserted] =
      tables_.emplace(std::move(key),
                      std::make_unique<Table>(std::move(schema)));
  it->second->AddObserver(storage_.get());
  if (options_.enable_cost_model) {
    stats_catalog_.Register(it->second.get());
    it->second->AddObserver(&stats_catalog_);
  }
  ++catalog_generation_;
  return it->second.get();
}

Status Database::StorageStatementEnd() {
  if (!storage_active() || storage_->replaying()) return Status::OK();
  P3PDB_RETURN_IF_ERROR(storage_->CommitIfImplicit());
  return storage_->MaybeCheckpoint(*this);
}

Status Database::BeginTransaction() {
  if (!storage_status_.ok()) return storage_status_;
  if (storage_ == nullptr) return Status::OK();
  return storage_->Begin();
}

Status Database::CommitTransaction() {
  if (!storage_status_.ok()) return storage_status_;
  if (storage_ == nullptr) return Status::OK();
  P3PDB_RETURN_IF_ERROR(storage_->Commit());
  return storage_->MaybeCheckpoint(*this);
}

Result<uint64_t> Database::CommitTransactionStaged() {
  if (!storage_status_.ok()) return storage_status_;
  if (storage_ == nullptr) return 0;
  P3PDB_ASSIGN_OR_RETURN(uint64_t ticket, storage_->CommitStaged());
  // MaybeCheckpoint runs here, under the caller's serialization — if it
  // fires, the checkpoint itself durably covers the staged commit and
  // WaitDurable(ticket) returns without another fsync.
  P3PDB_RETURN_IF_ERROR(storage_->MaybeCheckpoint(*this));
  return ticket;
}

Status Database::WaitDurable(uint64_t ticket) {
  if (storage_ == nullptr || ticket == 0) return Status::OK();
  return storage_->WaitDurable(ticket);
}

Status Database::Checkpoint() {
  if (!storage_status_.ok()) return storage_status_;
  if (storage_ == nullptr) return Status::OK();
  return storage_->Checkpoint(*this);
}

AtomicExecStats& Database::LocalStats() const {
  // Small per-thread cache of (database id, shard) pairs: the common case
  // (a server thread executing against one or two databases, e.g. the
  // cross-engine differential harness) resolves with a few integer
  // compares. Eviction can hand a thread a second shard for the same
  // database; sums stay exact. A stale entry for a destroyed database is
  // only ever compared, never dereferenced — ids are process-unique.
  struct TlsEntry {
    uint64_t db_id = 0;
    AtomicExecStats* stats = nullptr;
  };
  constexpr size_t kTlsEntries = 4;
  thread_local TlsEntry tls_cache[kTlsEntries];
  thread_local size_t tls_next = 0;
  for (const TlsEntry& e : tls_cache) {
    if (e.db_id == db_id_) return *e.stats;
  }
  std::lock_guard<std::mutex> lock(shard_mu_);
  shards_.push_back(std::make_unique<StatShard>());
  AtomicExecStats* stats = &shards_.back()->stats;
  tls_cache[tls_next] = {db_id_, stats};
  tls_next = (tls_next + 1) % kTlsEntries;
  return *stats;
}

ExecStats Database::stats() const {
  std::lock_guard<std::mutex> lock(shard_mu_);
  ExecStats total;
  for (const auto& shard : shards_) total.Accumulate(shard->stats.Snapshot());
  return total;
}

void Database::ResetStats() {
  std::lock_guard<std::mutex> lock(shard_mu_);
  for (const auto& shard : shards_) shard->stats.Reset();
}

Result<QueryResult> Database::Execute(std::string_view sql) {
  if (std::shared_ptr<const SelectStmt> plan = LookupCachedPlan(sql)) {
    return RunBoundSelect(*plan, nullptr, nullptr);
  }
  P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                         ParseStatement(sql));
  if (stmt->kind == StatementKind::kSelect) {
    auto* select = static_cast<SelectStmt*>(stmt.get());
    P3PDB_RETURN_IF_ERROR(BindAndPlan(select, sql));
    std::shared_ptr<const SelectStmt> plan = ShareSelect(std::move(stmt),
                                                         select);
    StoreCachedPlan(sql, plan);
    return RunBoundSelect(*plan, nullptr, nullptr);
  }
  return ExecuteParsed(stmt.get());
}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      const std::vector<Value>& params) {
  if (std::shared_ptr<const SelectStmt> plan = LookupCachedPlan(sql)) {
    return RunBoundSelect(*plan, &params, nullptr);
  }
  P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                         ParseStatement(sql));
  if (stmt->kind == StatementKind::kSelect) {
    auto* select = static_cast<SelectStmt*>(stmt.get());
    P3PDB_RETURN_IF_ERROR(BindAndPlan(select, sql));
    std::shared_ptr<const SelectStmt> plan = ShareSelect(std::move(stmt),
                                                         select);
    StoreCachedPlan(sql, plan);
    return RunBoundSelect(*plan, &params, nullptr);
  }
  if (stmt->kind != StatementKind::kExplain) {
    return Status::Unsupported(
        "bind parameters are only supported for SELECT statements");
  }
  return ExecuteParsed(stmt.get(), &params);
}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      obs::TraceContext* trace) {
  if (trace == nullptr) return Execute(sql);
  return ExecuteTraced(sql, nullptr, trace);
}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      const std::vector<Value>& params,
                                      obs::TraceContext* trace) {
  if (trace == nullptr) return Execute(sql, params);
  return ExecuteTraced(sql, &params, trace);
}

Result<QueryResult> Database::ExecuteTraced(std::string_view sql,
                                            const std::vector<Value>* params,
                                            obs::TraceContext* trace) {
  // A plan-cache hit skips the parse and bind spans entirely — that absence
  // in the trace *is* the signal that the cached path ran.
  if (std::shared_ptr<const SelectStmt> plan = LookupCachedPlan(sql)) {
    return RunBoundSelect(*plan, params, trace);
  }
  obs::ScopedSpan parse_span(trace, "sql-parse");
  auto parsed = ParseStatement(sql);
  parse_span.End();
  P3PDB_RETURN_IF_ERROR(parsed.status());
  Statement* stmt = parsed.value().get();
  if (params != nullptr && stmt->kind != StatementKind::kSelect &&
      stmt->kind != StatementKind::kExplain) {
    return Status::Unsupported(
        "bind parameters are only supported for SELECT statements");
  }
  if (stmt->kind != StatementKind::kSelect) {
    // DDL/DML/EXPLAIN: bind+execute as one span; per-node detail for
    // SELECTs comes from EXPLAIN ANALYZE, not the trace.
    obs::ScopedSpan exec_span(trace, "sql-execute");
    return ExecuteParsed(stmt, params);
  }
  auto* select = static_cast<SelectStmt*>(stmt);
  const size_t supplied = params == nullptr ? 0 : params->size();
  if (supplied != select->param_count) {
    return Status::InvalidArgument(
        "statement takes " + std::to_string(select->param_count) +
        " parameter(s) but " + std::to_string(supplied) + " were supplied");
  }
  {
    obs::ScopedSpan bind_span(trace, "sql-bind");
    P3PDB_RETURN_IF_ERROR(BindAndPlan(select, sql));
  }
  std::shared_ptr<const SelectStmt> plan =
      ShareSelect(std::move(parsed).value(), select);
  StoreCachedPlan(sql, plan);
  return RunBoundSelect(*plan, params, trace);
}

Status Database::BindAndPlan(SelectStmt* select, std::string_view sql) {
  Binder binder(*this, options_.max_subquery_depth);
  P3PDB_RETURN_IF_ERROR(binder.BindSelect(select));
  ExecStats local;
  ++local.plans_built;
  const StatsCatalog* catalog =
      options_.enable_cost_model ? &stats_catalog_ : nullptr;
  PlannerStats planner_stats;
  if (options_.enable_planner) {
    PlanSelect(select, &planner_stats, catalog);
    local.semi_join_rewrites = planner_stats.semi_join_rewrites;
    local.anti_join_rewrites = planner_stats.anti_join_rewrites;
  }
  // Annotation must follow planning: the rewrite replaces EXISTS subtrees
  // with hash joins, and the slot plans point into the final tree. The
  // cost model needs the slot plans too (est rows, index-vs-seq override),
  // so annotation also runs — scalar-path or not — whenever stats are on.
  if (options_.enable_vectorized_executor || catalog != nullptr) {
    AnnotateSelect(select, catalog, &planner_stats);
  }
  local.cost_exists_kept = planner_stats.cost_exists_kept;
  local.cost_join_reorders = planner_stats.cost_join_reorders;
  local.cost_seq_forced = planner_stats.cost_seq_forced;
  PrecomputeExecHints(select);
  if (options_.enable_statement_stats && !sql.empty()) {
    select->stats_entry = statement_stats_.Intern(sql);
    select->stats_entry->RecordPlanned(local.semi_join_rewrites,
                                       local.anti_join_rewrites);
  }
  LocalStats().MergeSingleWriter(local);
  return Status::OK();
}

Result<QueryResult> Database::RunBoundSelect(const SelectStmt& select,
                                             const std::vector<Value>* params,
                                             obs::TraceContext* trace) {
  const size_t supplied = params == nullptr ? 0 : params->size();
  if (supplied != select.param_count) {
    return Status::InvalidArgument(
        "statement takes " + std::to_string(select.param_count) +
        " parameter(s) but " + std::to_string(supplied) + " were supplied");
  }
  obs::ScopedSpan exec_span(trace, "sql-execute");
  // Telemetry costs one branch when off; when on, a stopwatch read plus a
  // handful of relaxed fetch_adds on the interned entry.
  StatementStatsEntry* entry = select.stats_entry;
  Stopwatch timer;
  ExecStats local;
  Executor executor(&local, params, nullptr,
                    ExecConfig{options_.enable_vectorized_executor,
                               options_.vector_chunk_size});
  auto result = executor.RunSelect(select);
  LocalStats().MergeSingleWriter(local);
  if (entry != nullptr) {
    const double elapsed_us = timer.ElapsedMicros();
    entry->RecordExecution(local,
                           result.ok() ? result.value().rows.size() : 0,
                           elapsed_us, result.ok());
    if (result.ok() && slow_log_ != nullptr) {
      MaybeCaptureStatement(select, params, elapsed_us);
    }
  }
  if (result.ok()) {
    exec_span.AddCount("rows", result.value().rows.size());
    exec_span.AddCount("rows-scanned", local.rows_scanned);
    exec_span.AddCount("index-lookups", local.index_lookups);
  }
  return result;
}

void Database::MaybeCaptureStatement(const SelectStmt& select,
                                     const std::vector<Value>* params,
                                     double elapsed_us) {
  StatementStatsEntry* entry = select.stats_entry;
  const bool slow = options_.slow_query_threshold_us > 0 &&
                    elapsed_us >=
                        static_cast<double>(options_.slow_query_threshold_us);
  const bool sampled =
      options_.trace_sample_every > 0 &&
      entry->calls() % options_.trace_sample_every == 0;
  if (!slow && !sampled) return;

  // Re-execute with a profile to render EXPLAIN ANALYZE. The capture pays
  // for a second run, but only for statements already past the threshold
  // (or on the sampling stride), and the profiled run's counters go to a
  // scratch ExecStats so the aggregate tallies are not double-counted.
  obs::SlowQueryEntry capture;
  capture.kind = slow ? obs::SlowQueryEntry::Kind::kSlow
                      : obs::SlowQueryEntry::Kind::kTraceSample;
  capture.fingerprint = entry->fingerprint();
  capture.sql = entry->normalized_sql();
  capture.elapsed_us = elapsed_us;
  std::string rendered = "[";
  if (params != nullptr) {
    for (size_t i = 0; i < params->size(); ++i) {
      if (i != 0) rendered += ", ";
      rendered += (*params)[i].ToString();
    }
  }
  rendered += "]";
  capture.params = std::move(rendered);
  PlanProfile profile;
  ExecStats scratch;
  Executor executor(&scratch, params, &profile,
                    ExecConfig{options_.enable_vectorized_executor,
                               options_.vector_chunk_size});
  if (executor.RunSelect(select).ok()) {
    ExplainOptions explain_options;
    explain_options.params = params;
    explain_options.profile = &profile;
    capture.plan = ExplainPlan(select, explain_options);
  }
  slow_log_->Add(std::move(capture));
}

std::shared_ptr<const SelectStmt> Database::LookupCachedPlan(
    std::string_view sql) {
  if (!options_.enable_plan_cache) return nullptr;
  std::lock_guard<std::mutex> lock(plan_mu_);
  auto it = plan_index_.find(sql);
  if (it == plan_index_.end()) return nullptr;
  if (it->second->second.generation != catalog_generation_) {
    // Stale after DDL: drop and let the caller re-prepare.
    plan_lru_.erase(it->second);
    plan_index_.erase(it);
    return nullptr;
  }
  if (options_.enable_cost_model &&
      it->second->second.stats_epoch != stats_catalog_.epoch()) {
    // Cardinalities drifted past the epoch boundary since this plan was
    // costed: its build-side/access-path choices may no longer hold. Drop
    // it and let the caller re-plan against current statistics.
    plan_lru_.erase(it->second);
    plan_index_.erase(it);
    BumpRelaxed(LocalStats().plan_recosts);
    return nullptr;
  }
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
  BumpRelaxed(LocalStats().plan_cache_hits);
  if (it->second->second.stmt->stats_entry != nullptr) {
    it->second->second.stmt->stats_entry->RecordPlanCacheHit();
  }
  return it->second->second.stmt;
}

void Database::StoreCachedPlan(std::string_view sql,
                               std::shared_ptr<const SelectStmt> plan) {
  if (!options_.enable_plan_cache || options_.plan_cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(plan_mu_);
  if (plan_index_.find(sql) != plan_index_.end()) return;  // concurrent store
  plan_lru_.emplace_front(
      std::string(sql),
      CachedPlan{std::move(plan), catalog_generation_,
                 options_.enable_cost_model ? stats_catalog_.epoch() : 0});
  plan_index_.emplace(plan_lru_.front().first, plan_lru_.begin());
  if (plan_lru_.size() > options_.plan_cache_capacity) {
    plan_index_.erase(plan_lru_.back().first);
    plan_lru_.pop_back();
  }
}

Result<PreparedStatement> Database::Prepare(std::string_view sql) {
  P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                         ParseStatement(sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::Unsupported("only SELECT statements can be prepared");
  }
  P3PDB_RETURN_IF_ERROR(
      BindAndPlan(static_cast<SelectStmt*>(stmt.get()), sql));
  PreparedStatement prepared;
  prepared.db_ = this;
  prepared.stmt_ = std::shared_ptr<Statement>(std::move(stmt));
  prepared.sql_ = std::string(sql);
  prepared.catalog_generation_ = catalog_generation_;
  return prepared;
}

Result<QueryResult> PreparedStatement::Execute() const {
  static const std::vector<Value> kNoParams;
  return Execute(kNoParams);
}

Result<QueryResult> PreparedStatement::Execute(
    const std::vector<Value>& params) const {
  return Execute(params, nullptr);
}

Result<QueryResult> PreparedStatement::Execute(
    const std::vector<Value>& params, obs::TraceContext* trace) const {
  if (stmt_ == nullptr) {
    return Status::InvalidArgument("executing an empty prepared statement");
  }
  if (catalog_generation_ != db_->catalog_generation_) {
    return Status::InvalidArgument(
        "prepared statement is stale: the catalog changed since Prepare()");
  }
  const auto* select = static_cast<const SelectStmt*>(stmt_.get());
  // RunBoundSelect executes with per-call private stats (concurrent
  // executions stay race-free; the merge is the only shared-state touch)
  // and applies the same telemetry as the text-execution path.
  return db_->RunBoundSelect(*select, &params, trace);
}

size_t PreparedStatement::param_count() const {
  if (stmt_ == nullptr) return 0;
  return static_cast<const SelectStmt*>(stmt_.get())->param_count;
}

Status Database::ExecuteScript(std::string_view sql) {
  P3PDB_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<Statement>> stmts,
                         ParseScript(sql));
  for (auto& stmt : stmts) {
    auto result = ExecuteParsed(stmt.get());
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<QueryResult> Database::ExecuteParsed(Statement* stmt,
                                            const std::vector<Value>* params) {
  switch (stmt->kind) {
    case StatementKind::kSelect: {
      auto* select = static_cast<SelectStmt*>(stmt);
      const size_t supplied = params == nullptr ? 0 : params->size();
      if (supplied != select->param_count) {
        return Status::InvalidArgument(
            "statement takes " + std::to_string(select->param_count) +
            " parameter(s) but " + std::to_string(supplied) +
            " were supplied");
      }
      P3PDB_RETURN_IF_ERROR(BindAndPlan(select));
      ExecStats local;
      Executor executor(&local, params, nullptr,
                        ExecConfig{options_.enable_vectorized_executor,
                                   options_.vector_chunk_size});
      auto result = executor.RunSelect(*select);
      LocalStats().MergeSingleWriter(local);
      return result;
    }
    case StatementKind::kInsert: {
      auto result = ExecuteInsert(static_cast<InsertStmt*>(stmt));
      // Commit even a failed statement's partial effects: the in-memory
      // state keeps them (no rollback), so disk must too.
      Status st = StorageStatementEnd();
      if (result.ok() && !st.ok()) return st;
      return result;
    }
    case StatementKind::kUpdate: {
      auto result = ExecuteUpdate(static_cast<UpdateStmt*>(stmt));
      Status st = StorageStatementEnd();
      if (result.ok() && !st.ok()) return st;
      return result;
    }
    case StatementKind::kDelete: {
      auto result = ExecuteDelete(static_cast<DeleteStmt*>(stmt));
      Status st = StorageStatementEnd();
      if (result.ok() && !st.ok()) return st;
      return result;
    }
    case StatementKind::kCreateTable: {
      auto* ct = static_cast<CreateTableStmt*>(stmt);
      if (ct->if_not_exists &&
          LookupTable(ct->schema.name()) != nullptr) {
        return QueryResult{};
      }
      // CreateTable consumes the schema; copy so re-execution stays valid.
      TableSchema schema = ct->schema;
      P3PDB_RETURN_IF_ERROR(CreateTable(std::move(schema)));
      BumpRelaxed(LocalStats().statements_executed);
      return QueryResult{};
    }
    case StatementKind::kCreateIndex: {
      auto* ci = static_cast<CreateIndexStmt*>(stmt);
      Table* table = GetMutableTable(ci->table_name);
      if (table == nullptr) {
        return Status::NotFound("table '" + ci->table_name +
                                "' does not exist");
      }
      P3PDB_RETURN_IF_ERROR(
          table->CreateIndex(ci->index_name, ci->columns, ci->unique));
      P3PDB_RETURN_IF_ERROR(StorageStatementEnd());
      BumpRelaxed(LocalStats().statements_executed);
      return QueryResult{};
    }
    case StatementKind::kDropTable: {
      auto* dt = static_cast<DropTableStmt*>(stmt);
      P3PDB_RETURN_IF_ERROR(DropTable(dt->table_name, dt->if_exists));
      BumpRelaxed(LocalStats().statements_executed);
      return QueryResult{};
    }
    case StatementKind::kExplain: {
      auto* explain = static_cast<ExplainStmt*>(stmt);
      SelectStmt* select = explain->select.get();
      const size_t supplied = params == nullptr ? 0 : params->size();
      // Plain EXPLAIN renders a parameterized plan without values (the
      // placeholders stay `?`); ANALYZE executes, so values are mandatory.
      if (supplied != select->param_count &&
          (explain->analyze || supplied != 0)) {
        return Status::InvalidArgument(
            "statement takes " + std::to_string(select->param_count) +
            " parameter(s) but " + std::to_string(supplied) +
            " were supplied");
      }
      P3PDB_RETURN_IF_ERROR(BindAndPlan(select));
      ExplainOptions explain_options;
      explain_options.params = params;
      PlanProfile profile;
      if (explain->analyze) {
        ExecStats local;
        Executor executor(&local, params, &profile,
                          ExecConfig{options_.enable_vectorized_executor,
                                     options_.vector_chunk_size});
        P3PDB_RETURN_IF_ERROR(executor.RunSelect(*select).status());
        LocalStats().MergeSingleWriter(local);
        explain_options.profile = &profile;
      }
      QueryResult result;
      result.columns.push_back("plan");
      std::string plan = ExplainPlan(*select, explain_options);
      for (const std::string& line : Split(plan, '\n')) {
        if (!line.empty()) result.rows.push_back({Value::Text(line)});
      }
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::CreateTable(TableSchema schema) {
  if (!storage_status_.ok()) return storage_status_;
  std::string key = ToLower(schema.name());
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table '" + schema.name() +
                                 "' already exists");
  }
  // Validate the primary key columns exist.
  for (const std::string& col : schema.primary_key()) {
    if (!schema.ColumnIndex(col).has_value()) {
      return Status::InvalidArgument("primary key column '" + col +
                                     "' not in table '" + schema.name() + "'");
    }
  }
  // Validate foreign keys against existing tables.
  for (const ForeignKeyDef& fk : schema.foreign_keys()) {
    if (fk.columns.size() != fk.referenced_columns.size()) {
      return Status::InvalidArgument(
          "foreign key column count mismatch in table '" + schema.name() +
          "'");
    }
    for (const std::string& col : fk.columns) {
      if (!schema.ColumnIndex(col).has_value()) {
        return Status::InvalidArgument("foreign key column '" + col +
                                       "' not in table '" + schema.name() +
                                       "'");
      }
    }
    const Table* ref = LookupTable(fk.referenced_table);
    if (ref == nullptr) {
      return Status::NotFound("referenced table '" + fk.referenced_table +
                              "' does not exist");
    }
    for (const std::string& col : fk.referenced_columns) {
      if (!ref->schema().ColumnIndex(col).has_value()) {
        return Status::InvalidArgument(
            "referenced column '" + col + "' not in table '" +
            fk.referenced_table + "'");
      }
    }
  }
  auto [it, inserted] = tables_.emplace(
      std::move(key), std::make_unique<Table>(std::move(schema)));
  ++catalog_generation_;
  if (options_.enable_cost_model) {
    stats_catalog_.Register(it->second.get());
    it->second->AddObserver(&stats_catalog_);
  }
  if (storage_active()) {
    storage_->LogCreateTable(it->second->schema());
    it->second->AddObserver(storage_.get());
    P3PDB_RETURN_IF_ERROR(StorageStatementEnd());
  }
  return Status::OK();
}

Status Database::DropTable(std::string_view name, bool if_exists) {
  if (!storage_status_.ok()) return storage_status_;
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table '" + std::string(name) +
                            "' does not exist");
  }
  stats_catalog_.Forget(it->second.get());
  tables_.erase(it);
  ++catalog_generation_;
  if (storage_active() && !storage_->replaying()) {
    storage_->LogDropTable(std::string(name));
    P3PDB_RETURN_IF_ERROR(StorageStatementEnd());
  }
  return Status::OK();
}

Status Database::InsertRow(std::string_view table_name, Row row) {
  if (!storage_status_.ok()) return storage_status_;
  Table* table = GetMutableTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("table '" + std::string(table_name) +
                            "' does not exist");
  }
  if (options_.enforce_foreign_keys) {
    P3PDB_RETURN_IF_ERROR(CheckForeignKeys(*table, row));
  }
  P3PDB_RETURN_IF_ERROR(table->Insert(std::move(row)));
  return StorageStatementEnd();
}

const Table* Database::LookupTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::GetMutableTable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) {
    names.push_back(table->schema().name());
  }
  return names;
}

Status Database::CheckForeignKeys(const Table& table, const Row& row) const {
  for (const ForeignKeyDef& fk : table.schema().foreign_keys()) {
    const Table* ref = LookupTable(fk.referenced_table);
    if (ref == nullptr) {
      return Status::Internal("referenced table '" + fk.referenced_table +
                              "' vanished");
    }
    // Build the referencing key; NULL components skip the check (SQL MATCH
    // SIMPLE semantics).
    std::vector<Value> key_values;
    bool has_null = false;
    for (const std::string& col : fk.columns) {
      size_t ord = *table.schema().ColumnIndex(col);
      if (row[ord].is_null()) {
        has_null = true;
        break;
      }
      key_values.push_back(row[ord]);
    }
    if (has_null) continue;

    std::vector<size_t> ref_ordinals;
    for (const std::string& col : fk.referenced_columns) {
      ref_ordinals.push_back(*ref->schema().ColumnIndex(col));
    }
    const Index* index = ref->FindIndexCovering(ref_ordinals);
    bool found = false;
    if (index != nullptr &&
        index->column_ordinals().size() == ref_ordinals.size()) {
      // Reorder key values to the index's column order.
      IndexKey key;
      for (size_t ord : index->column_ordinals()) {
        for (size_t i = 0; i < ref_ordinals.size(); ++i) {
          if (ref_ordinals[i] == ord) {
            key.values.push_back(key_values[i]);
            break;
          }
        }
      }
      found = index->Lookup(key) != nullptr;
    } else {
      for (size_t row_id = 0; row_id < ref->SlotCount() && !found; ++row_id) {
        if (!ref->IsLive(row_id)) continue;
        const Row& candidate = ref->RowAt(row_id);
        bool all_equal = true;
        for (size_t i = 0; i < ref_ordinals.size(); ++i) {
          if (Value::OrderCompare(candidate[ref_ordinals[i]],
                                  key_values[i]) != 0) {
            all_equal = false;
            break;
          }
        }
        found = all_equal;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "foreign key violation: no matching row in '" + fk.referenced_table +
          "' for insert into '" + table.schema().name() + "'");
    }
  }
  return Status::OK();
}

Result<QueryResult> Database::ExecuteInsert(InsertStmt* stmt) {
  if (!storage_status_.ok()) return storage_status_;
  Table* table = GetMutableTable(stmt->table_name);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt->table_name +
                            "' does not exist");
  }
  const TableSchema& schema = table->schema();

  // Map the column list (or positional order) to ordinals.
  std::vector<size_t> ordinals;
  if (stmt->columns.empty()) {
    for (size_t i = 0; i < schema.ColumnCount(); ++i) ordinals.push_back(i);
  } else {
    for (const std::string& col : stmt->columns) {
      std::optional<size_t> ord = schema.ColumnIndex(col);
      if (!ord.has_value()) {
        return Status::NotFound("column '" + col + "' not in table '" +
                                stmt->table_name + "'");
      }
      ordinals.push_back(*ord);
    }
  }

  ExecStats local;
  Executor executor(&local);
  int64_t inserted = 0;
  for (const std::vector<ExprPtr>& value_exprs : stmt->rows) {
    if (value_exprs.size() != ordinals.size()) {
      return Status::InvalidArgument(
          "INSERT has " + std::to_string(value_exprs.size()) +
          " values for " + std::to_string(ordinals.size()) + " columns");
    }
    Row row(schema.ColumnCount(), Value::Null());
    for (size_t i = 0; i < value_exprs.size(); ++i) {
      P3PDB_ASSIGN_OR_RETURN(Value v, executor.EvalConstant(*value_exprs[i]));
      row[ordinals[i]] = std::move(v);
    }
    if (options_.enforce_foreign_keys) {
      P3PDB_RETURN_IF_ERROR(CheckForeignKeys(*table, row));
    }
    P3PDB_RETURN_IF_ERROR(table->Insert(std::move(row)));
    ++inserted;
  }
  ++local.statements_executed;
  LocalStats().MergeSingleWriter(local);
  QueryResult result;
  result.rows_affected = inserted;
  return result;
}

Result<QueryResult> Database::ExecuteUpdate(UpdateStmt* stmt) {
  if (!storage_status_.ok()) return storage_status_;
  Table* table = GetMutableTable(stmt->table_name);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt->table_name +
                            "' does not exist");
  }
  const TableSchema& schema = table->schema();

  std::vector<size_t> ordinals;
  for (const UpdateStmt::Assignment& a : stmt->assignments) {
    std::optional<size_t> ord = schema.ColumnIndex(a.column);
    if (!ord.has_value()) {
      return Status::NotFound("column '" + a.column + "' not in table '" +
                              stmt->table_name + "'");
    }
    ordinals.push_back(*ord);
  }

  // Bind WHERE and the assignment expressions through a probe SELECT whose
  // select list carries the assignment values.
  SelectStmt probe;
  TableRef ref;
  ref.table_name = stmt->table_name;
  ref.alias = stmt->table_name;
  probe.from.push_back(std::move(ref));
  for (UpdateStmt::Assignment& a : stmt->assignments) {
    SelectItem item;
    item.expr = std::move(a.value);
    probe.items.push_back(std::move(item));
  }
  probe.where = std::move(stmt->where);

  // Whatever happens, restore the statement for potential re-execution.
  auto restore = [&]() {
    for (size_t i = 0; i < stmt->assignments.size(); ++i) {
      stmt->assignments[i].value = std::move(probe.items[i].expr);
    }
    stmt->where = std::move(probe.where);
  };

  Binder binder(*this, options_.max_subquery_depth);
  if (Status st = binder.BindSelect(&probe); !st.ok()) {
    restore();
    return st;
  }

  // Snapshot pass: compute every victim's new row from its old values
  // before mutating anything.
  ExecStats local;
  Executor executor(&local);
  std::vector<std::pair<size_t, Row>> updates;
  for (size_t row_id = 0; row_id < table->SlotCount(); ++row_id) {
    if (!table->IsLive(row_id)) continue;
    const Row& old_row = table->RowAt(row_id);
    auto pass = executor.EvalRowPredicate(probe, old_row);
    if (!pass.ok()) {
      restore();
      return pass.status();
    }
    if (!pass.value()) continue;
    Row new_row = old_row;
    for (size_t i = 0; i < ordinals.size(); ++i) {
      auto value =
          executor.EvalRowExpression(probe, old_row, *probe.items[i].expr);
      if (!value.ok()) {
        restore();
        return value.status();
      }
      new_row[ordinals[i]] = std::move(value).value();
    }
    updates.emplace_back(row_id, std::move(new_row));
  }
  restore();

  // Apply. Not transactional: a constraint violation mid-way leaves earlier
  // updates in place (as in many engines without ROLLBACK).
  for (auto& [row_id, new_row] : updates) {
    if (options_.enforce_foreign_keys) {
      P3PDB_RETURN_IF_ERROR(CheckForeignKeys(*table, new_row));
    }
    Row old_row = table->RowAt(row_id);
    table->Delete(row_id);
    Status st = table->Insert(std::move(new_row));
    if (!st.ok()) {
      // Try to put the old row back so a unique violation does not lose it.
      (void)table->Insert(std::move(old_row));
      return st;
    }
  }
  ++local.statements_executed;
  LocalStats().MergeSingleWriter(local);
  QueryResult result;
  result.rows_affected = static_cast<int64_t>(updates.size());
  return result;
}

Result<QueryResult> Database::ExecuteDelete(DeleteStmt* stmt) {
  if (!storage_status_.ok()) return storage_status_;
  Table* table = GetMutableTable(stmt->table_name);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt->table_name +
                            "' does not exist");
  }

  // Reuse the SELECT machinery: wrap the WHERE in a single-table SELECT to
  // bind it, then evaluate per row.
  ExecStats local;
  std::vector<size_t> victims;
  if (stmt->where == nullptr) {
    for (size_t row_id = 0; row_id < table->SlotCount(); ++row_id) {
      if (table->IsLive(row_id)) victims.push_back(row_id);
    }
  } else {
    SelectStmt probe;
    TableRef ref;
    ref.table_name = stmt->table_name;
    ref.alias = stmt->table_name;
    probe.from.push_back(std::move(ref));
    SelectItem star;
    star.is_star = true;
    probe.items.push_back(std::move(star));
    probe.where = std::move(stmt->where);

    Binder binder(*this, options_.max_subquery_depth);
    Status bind_status = binder.BindSelect(&probe);
    if (!bind_status.ok()) {
      stmt->where = std::move(probe.where);
      return bind_status;
    }

    // Enumerate matching rows by id (a bespoke loop rather than RunSelect so
    // the victim row ids are known).
    Executor executor(&local);
    for (size_t row_id = 0; row_id < table->SlotCount(); ++row_id) {
      if (!table->IsLive(row_id)) continue;
      auto pass = executor.EvalRowPredicate(probe, table->RowAt(row_id));
      if (!pass.ok()) {
        stmt->where = std::move(probe.where);
        return pass.status();
      }
      if (pass.value()) victims.push_back(row_id);
    }
    stmt->where = std::move(probe.where);  // restore for re-execution
  }

  for (size_t row_id : victims) table->Delete(row_id);
  ++local.statements_executed;
  LocalStats().MergeSingleWriter(local);
  QueryResult result;
  result.rows_affected = static_cast<int64_t>(victims.size());
  return result;
}

}  // namespace p3pdb::sqldb
