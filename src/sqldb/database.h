// Database: the top-level facade of the sqldb engine.
//
// Owns the catalog of tables and executes SQL text end to end:
// tokenize -> parse -> bind -> execute. This is the component that stands in
// for DB2 UDB in the paper's server-centric architecture; the APPEL
// translators hand it SQL strings exactly as the paper's system handed
// generated SQL to DB2.

#ifndef P3PDB_SQLDB_DATABASE_H_
#define P3PDB_SQLDB_DATABASE_H_

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "sqldb/ast.h"
#include "sqldb/binder.h"
#include "sqldb/query_result.h"
#include "sqldb/statement_stats.h"
#include "sqldb/stats.h"
#include "sqldb/storage.h"
#include "sqldb/table.h"

namespace p3pdb::sqldb {

class Database;

/// Planner default: on, unless the environment sets P3PDB_NO_PLANNER to a
/// non-empty value other than "0". Read at Database construction time, so
/// harnesses (the cross-engine differential, the `--no-planner` bench
/// ablations) can flip the whole executor path without threading a flag
/// through every layer.
bool PlannerEnabledFromEnv();

/// Vectorized-executor default: on, unless the environment sets
/// P3PDB_NO_VECTORIZE to a non-empty value other than "0". Same contract as
/// PlannerEnabledFromEnv, so the bench/CI ablations flip the batch executor
/// the way they flip the planner.
bool VectorizeEnabledFromEnv();

/// Cost-model default: on, unless the environment sets P3PDB_NO_COST to a
/// non-empty value other than "0". Same contract as PlannerEnabledFromEnv,
/// so bench/CI ablations can compare rule-only planning against cost-based
/// planning without code changes.
bool CostModelEnabledFromEnv();

/// A parsed-and-bound SELECT that can be executed repeatedly without
/// re-preparing — what the generated rule queries become after the
/// "conversion" step, so match-time cost is execution only.
///
/// Execution is read-only over the bound AST, so one PreparedStatement may
/// be executed from many threads concurrently (each call supplies its own
/// parameter values and accumulates into a private ExecStats).
class PreparedStatement {
 public:
  PreparedStatement() = default;

  /// Runs the statement against the database it was prepared on. The
  /// catalog must still contain the bound tables. Fails if the statement
  /// contains `?` placeholders (their values would be unbound).
  Result<QueryResult> Execute() const;

  /// Runs the statement with one value per `?` placeholder, in order.
  /// `params.size()` must equal param_count().
  Result<QueryResult> Execute(const std::vector<Value>& params) const;

  /// As above, recording an `sql-execute` trace span (row and access-path
  /// counters attached). A null `trace` is a plain Execute.
  Result<QueryResult> Execute(const std::vector<Value>& params,
                              obs::TraceContext* trace) const;

  bool valid() const { return stmt_ != nullptr; }
  /// The SQL text the statement was prepared from.
  const std::string& sql() const { return sql_; }
  /// Number of `?` placeholders the statement takes.
  size_t param_count() const;

 private:
  friend class Database;
  Database* db_ = nullptr;
  std::shared_ptr<Statement> stmt_;  // bound SELECT
  std::string sql_;
  uint64_t catalog_generation_ = 0;  // guards against post-DDL execution
};

class Database : public CatalogView {
 public:
  struct Options {
    /// Maximum SELECT nesting depth accepted by the binder. Models the
    /// complexity budget that made DB2 reject the XTABLE-generated SQL for
    /// the Medium preference (Figure 21). The default accommodates every
    /// query the optimized translator generates.
    int max_subquery_depth = 32;
    /// Verify FOREIGN KEY references on INSERT (parents must exist).
    bool enforce_foreign_keys = true;
    /// Run the rule-based planner (EXISTS decorrelation into hash
    /// semi/anti-joins, see planner.h) after binding every SELECT.
    bool enable_planner = PlannerEnabledFromEnv();
    /// Cache parsed+bound+planned SELECTs keyed by SQL text, so repeated
    /// executions of the same statement (the server's per-match rule
    /// queries) skip parse/bind/plan entirely. Entries are stamped with the
    /// catalog generation and lazily re-prepared after DDL.
    bool enable_plan_cache = PlannerEnabledFromEnv();
    /// Bounded LRU capacity of the plan cache.
    size_t plan_cache_capacity = 256;
    /// Maintain table/column statistics (see stats.h) and let them moderate
    /// the rule planner: build-side estimates, EXISTS rewrite vetoes,
    /// cheapest-build-first join ordering, index-vs-seq access choice, and
    /// stats-epoch invalidation of cached plans. Off = the planner is
    /// purely syntactic, exactly as before, and stats maintenance costs
    /// zero on every DML path.
    bool enable_cost_model = CostModelEnabledFromEnv();
    /// Annotate planned SELECTs with per-slot access paths and run them on
    /// the vectorized batch executor (chunked scans, selection-vector
    /// predicate kernels, batched hash-join probes; see vectorized.cc).
    /// Off = the scalar row-at-a-time path, byte-identical to before.
    bool enable_vectorized_executor = VectorizeEnabledFromEnv();
    /// Rows per columnar chunk on the vectorized path.
    uint32_t vector_chunk_size = 1024;
    /// Fingerprint every prepared SELECT (literals normalize to `?`) and
    /// keep per-fingerprint aggregates — calls, rows, cache hits, rewrites,
    /// latency distribution (see statement_stats.h). Off by default: the
    /// raw engine stays exactly as before; the policy server turns it on.
    bool enable_statement_stats = false;
    /// With statement stats on, executions slower than this land in the
    /// slow-query log with their bound params and an EXPLAIN ANALYZE plan.
    /// 0 disables slow capture.
    uint64_t slow_query_threshold_us = 0;
    /// With statement stats on, every Nth execution of a statement shape is
    /// captured into the slow log as a trace sample regardless of latency.
    /// 0 disables sampling.
    uint32_t trace_sample_every = 0;
    /// Ring capacity of the slow-query log.
    size_t slow_log_capacity = 128;
    /// Directory for the disk-backed storage engine (page files + WAL,
    /// see storage.h). Empty — the default — keeps the database purely
    /// in-memory with zero storage overhead on any path. Non-empty opens
    /// (creating or recovering) the directory at construction; check
    /// storage_status() before use.
    std::string storage_path;
    /// Buffer pool capacity, in kPageSize frames, for checkpoint I/O.
    size_t storage_buffer_pool_pages = 64;
    /// fsync the WAL on every commit (off trades tail-loss for speed).
    bool storage_sync_on_commit = true;
    /// Auto-checkpoint once this many WAL bytes accumulate; 0 disables.
    uint64_t storage_checkpoint_wal_bytes = 4ull << 20;
    /// Group commit: concurrent committers share one WAL fsync via a
    /// leader/follower queue instead of paying one fsync each. Also enables
    /// the two-phase CommitTransactionStaged/WaitDurable surface.
    bool storage_group_commit = false;
    /// Extra microseconds a group-commit leader waits for followers to
    /// stage before fsyncing; 0 adds no latency.
    uint64_t storage_group_commit_window_us = 0;
    /// Take a final checkpoint in the destructor so the next open loads a
    /// compact image instead of replaying the whole WAL.
    bool storage_checkpoint_on_close = true;
    /// File-backend factory for storage files; null means plain POSIX
    /// files. The kill-and-recover harness injects fault backends here.
    FileBackendFactory storage_backend_factory;
  };

  Database() : Database(Options{}) {}
  explicit Database(Options options)
      : options_(options), db_id_(NextDatabaseId()) {
    if (options_.enable_statement_stats &&
        (options_.slow_query_threshold_us > 0 ||
         options_.trace_sample_every > 0)) {
      slow_log_ =
          std::make_unique<obs::SlowQueryLog>(options_.slow_log_capacity);
    }
    if (!options_.storage_path.empty()) {
      storage_status_ = OpenStorage();
    }
  }
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// OK for in-memory databases and for successfully opened/recovered
  /// disk-backed ones; otherwise the open/recovery error (every mutating
  /// call then fails with this status rather than diverging from disk).
  const Status& storage_status() const { return storage_status_; }
  /// True when this database is disk-backed and healthy.
  bool storage_active() const {
    return storage_ != nullptr && storage_status_.ok();
  }
  /// WAL/buffer-pool/recovery counters; zeros when not disk-backed.
  StorageStats storage_stats() const {
    return storage_ != nullptr ? storage_->stats() : StorageStats{};
  }

  /// Opens an explicit transaction: subsequent statements share one WAL
  /// commit, issued by CommitTransaction. No-op (OK) when in-memory.
  /// Transactions group durability only — there is no rollback; partial
  /// effects of a failed statement remain, exactly as in-memory.
  Status BeginTransaction();
  Status CommitTransaction();

  /// Two-phase variant of CommitTransaction: appends the commit record and
  /// returns a durability ticket without fsyncing, so a caller holding an
  /// exclusive lock can release it before blocking on the disk in
  /// WaitDurable. Ticket 0 = already durable (in-memory database, empty
  /// transaction, or sync-on-commit off); WaitDurable(0) returns
  /// immediately. Staging must be serialized by the caller (like every
  /// other mutating call); WaitDurable is thread-safe.
  Result<uint64_t> CommitTransactionStaged();
  Status WaitDurable(uint64_t ticket);

  /// Forces a checkpoint (full catalog image + WAL truncation). No-op when
  /// in-memory.
  Status Checkpoint();

  /// Parses and executes one SQL statement. Statements containing `?`
  /// placeholders are rejected (use the parameterized overload).
  Result<QueryResult> Execute(std::string_view sql);

  /// Parses and executes one SELECT (or EXPLAIN [ANALYZE]) with one value
  /// per `?` placeholder.
  Result<QueryResult> Execute(std::string_view sql,
                              const std::vector<Value>& params);

  /// Traced variants: record `sql-parse` / `sql-bind` / `sql-execute`
  /// spans into `trace` (null = untraced, identical to the above).
  Result<QueryResult> Execute(std::string_view sql, obs::TraceContext* trace);
  Result<QueryResult> Execute(std::string_view sql,
                              const std::vector<Value>& params,
                              obs::TraceContext* trace);

  /// Parses and binds a SELECT once for repeated execution.
  Result<PreparedStatement> Prepare(std::string_view sql);

  /// Executes a semicolon-separated script, discarding row results.
  Status ExecuteScript(std::string_view sql);

  /// Programmatic DDL, used by the shredders.
  Status CreateTable(TableSchema schema);
  Status DropTable(std::string_view name, bool if_exists);
  /// Programmatic insert (bypasses SQL text; values must match the schema).
  Status InsertRow(std::string_view table_name, Row row);

  /// Case-insensitive table lookup; nullptr if absent.
  const Table* LookupTable(std::string_view name) const override;
  Table* GetMutableTable(std::string_view name);

  std::vector<std::string> TableNames() const;
  size_t TableCount() const { return tables_.size(); }

  const Options& options() const { return options_; }
  /// Snapshot of the accumulated execution counters (sums the per-thread
  /// shards). Returned by value: the live shards are atomic and may be
  /// concurrently updated.
  ExecStats stats() const;
  void ResetStats();

  /// Per-statement aggregates (populated only when
  /// options().enable_statement_stats; empty otherwise).
  const StatementStatsRegistry& statement_stats() const {
    return statement_stats_;
  }
  StatementStatsRegistry& mutable_statement_stats() { return statement_stats_; }
  /// The statistics catalog backing the cost model. Always present; only
  /// populated (and only consulted) when options().enable_cost_model.
  const StatsCatalog& stats_catalog() const { return stats_catalog_; }
  StatsCatalog& mutable_stats_catalog() { return stats_catalog_; }
  /// Slow-query/trace-sample ring; nullptr unless statement stats are on
  /// and a threshold or sampling stride is configured.
  obs::SlowQueryLog* slow_log() { return slow_log_.get(); }
  const obs::SlowQueryLog* slow_log() const { return slow_log_.get(); }

 private:
  friend class PreparedStatement;
  friend class StorageEngine;

  /// Recovery-only table creation: no PK/FK validation (the definition was
  /// validated when first created), attaches the storage observer. Returns
  /// nullptr if the name is already taken.
  Table* RestoreTable(TableSchema schema);
  Status OpenStorage();
  /// Commits the statement-level implicit transaction and runs the
  /// auto-checkpoint policy. Called at the end of every mutating
  /// operation; no-op when not disk-backed.
  Status StorageStatementEnd();

  Result<QueryResult> ExecuteParsed(Statement* stmt,
                                    const std::vector<Value>* params = nullptr);
  Result<QueryResult> ExecuteTraced(std::string_view sql,
                                    const std::vector<Value>* params,
                                    obs::TraceContext* trace);

  /// Binds (and, when enabled, plans) a freshly parsed SELECT, counting the
  /// work in the stats aggregate. With statement stats on and a non-empty
  /// `sql`, interns the statement shape and stamps the entry pointer onto
  /// the bound AST so executions tally without any lookup.
  Status BindAndPlan(SelectStmt* select, std::string_view sql = {});
  /// Post-execution telemetry hook: decides whether this execution crossed
  /// the slow threshold or hit the trace-sampling stride, and if so
  /// re-executes with a PlanProfile to capture an EXPLAIN ANALYZE plan into
  /// the slow log. Called only when the statement carries a stats entry.
  void MaybeCaptureStatement(const SelectStmt& select,
                             const std::vector<Value>* params,
                             double elapsed_us);
  /// Runs a bound SELECT: param-count check, private-stats execution,
  /// merge. Shared by the plan-cache hit path and the fresh-parse path.
  Result<QueryResult> RunBoundSelect(const SelectStmt& select,
                                     const std::vector<Value>* params,
                                     obs::TraceContext* trace);
  /// Plan-cache lookup; returns null on miss or stale generation (the
  /// stale entry is dropped). Hits are counted and moved to the LRU front.
  std::shared_ptr<const SelectStmt> LookupCachedPlan(std::string_view sql);
  void StoreCachedPlan(std::string_view sql,
                       std::shared_ptr<const SelectStmt> plan);
  Result<QueryResult> ExecuteInsert(InsertStmt* stmt);
  Result<QueryResult> ExecuteUpdate(UpdateStmt* stmt);
  Result<QueryResult> ExecuteDelete(DeleteStmt* stmt);
  Status CheckForeignKeys(const Table& table, const Row& row) const;

  static uint64_t NextDatabaseId();

  /// The per-thread stats shard for this database. Each (thread, database)
  /// pair writes its own cache-line-aligned shard, so the per-query stats
  /// merge is a handful of relaxed loads+stores instead of locked
  /// fetch_adds on one contended aggregate (the locked RMWs were a visible
  /// slice of the per-match profile). Shards are keyed by a process-unique
  /// database id, so a thread's cached shard pointer can never be revived
  /// by a later Database allocated at the same address; stats() sums every
  /// shard under the registry mutex.
  AtomicExecStats& LocalStats() const;

  Options options_;
  // Keyed by lower-cased name for case-insensitive resolution.
  std::map<std::string, std::unique_ptr<Table>> tables_;

  struct alignas(64) StatShard {
    AtomicExecStats stats;
  };
  const uint64_t db_id_;
  mutable std::mutex shard_mu_;
  mutable std::vector<std::unique_ptr<StatShard>> shards_;
  // Bumped on every DDL change; prepared statements from an older
  // generation refuse to run rather than touch stale table pointers.
  uint64_t catalog_generation_ = 0;

  /// Plan cache: SQL text -> bound+planned SELECT, stamped with the catalog
  /// generation it was prepared under. LRU-bounded; the mutex guards only
  /// the map/list bookkeeping — execution of a cached plan is read-only
  /// over the shared AST (the PreparedStatement concurrency contract), so
  /// hits from many threads proceed in parallel.
  struct CachedPlan {
    std::shared_ptr<const SelectStmt> stmt;
    uint64_t generation = 0;
    /// Stats epoch the plan was costed under (see StatsCatalog). With the
    /// cost model on, a lookup whose epoch moved drops the entry so the
    /// statement re-plans against the current cardinality landscape.
    uint64_t stats_epoch = 0;
  };
  using PlanLruList = std::list<std::pair<std::string, CachedPlan>>;
  mutable std::mutex plan_mu_;
  PlanLruList plan_lru_;  // front = most recent
  std::unordered_map<std::string_view, PlanLruList::iterator> plan_index_;

  // Statement telemetry. The registry always exists (entries are only
  // created when enable_statement_stats is set); the slow log exists only
  // when capture is configured.
  StatementStatsRegistry statement_stats_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;

  // Disk-backed persistence; null for in-memory databases (the default).
  std::unique_ptr<StorageEngine> storage_;
  Status storage_status_ = Status::OK();

  // Cost-model statistics; registered as a table observer (alongside the
  // storage engine) only when options_.enable_cost_model.
  StatsCatalog stats_catalog_;
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_DATABASE_H_
