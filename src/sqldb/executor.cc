#include "sqldb/executor.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/stopwatch.h"
#include "sqldb/binder.h"

namespace p3pdb::sqldb {

const PlanNodeStats* PlanProfile::FindSelect(const SelectStmt* stmt) const {
  auto it = selects_.find(stmt);
  return it == selects_.end() ? nullptr : &it->second;
}

const PlanNodeStats* PlanProfile::FindScan(const SelectStmt* stmt,
                                           size_t slot) const {
  auto it = scans_.find({stmt, slot});
  return it == scans_.end() ? nullptr : &it->second;
}

const PlanNodeStats* PlanProfile::FindHashJoin(const Expr* join) const {
  auto it = hash_joins_.find(join);
  return it == hash_joins_.end() ? nullptr : &it->second;
}

namespace {

/// Flattens nested ANDs into a conjunct list.
void FlattenAnd(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kLogical) {
    const auto* l = static_cast<const LogicalExpr*>(e);
    if (l->is_and) {
      for (const ExprPtr& op : l->operands) FlattenAnd(op.get(), out);
      return;
    }
  }
  out->push_back(e);
}

/// True when every column reference in `e` is available before `slot` is
/// assigned: either an outer-scope reference (level > 0) or an earlier slot
/// of the current FROM list. Subqueries are conservatively unavailable.
bool RefsAvailableForSlot(const Expr& e, size_t slot) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParam:  // bound before execution starts
      return true;
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      return ref.level > 0 || ref.table_slot < slot;
    }
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      return RefsAvailableForSlot(*c.left, slot) &&
             RefsAvailableForSlot(*c.right, slot);
    }
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(e);
      for (const auto& op : l.operands) {
        if (!RefsAvailableForSlot(*op, slot)) return false;
      }
      return true;
    }
    case ExprKind::kNot:
      return RefsAvailableForSlot(*static_cast<const NotExpr&>(e).operand,
                                  slot);
    case ExprKind::kIsNull:
      return RefsAvailableForSlot(*static_cast<const IsNullExpr&>(e).operand,
                                  slot);
    default:
      return false;
  }
}

}  // namespace

std::vector<IndexableEquality> CollectIndexableEqualities(const Expr* where,
                                                          size_t slot) {
  std::vector<IndexableEquality> out;
  if (where == nullptr) return out;
  std::vector<const Expr*> conjuncts;
  FlattenAnd(where, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kComparison) continue;
    const auto* cmp = static_cast<const ComparisonExpr*>(c);
    if (cmp->op != CompareOp::kEq) continue;
    const Expr* sides[2] = {cmp->left.get(), cmp->right.get()};
    for (int i = 0; i < 2; ++i) {
      const Expr* col_side = sides[i];
      const Expr* val_side = sides[1 - i];
      if (col_side->kind != ExprKind::kColumnRef) continue;
      const auto* ref = static_cast<const ColumnRefExpr*>(col_side);
      if (ref->level != 0 || ref->table_slot != slot) continue;
      if (!RefsAvailableForSlot(*val_side, slot)) continue;
      out.push_back(IndexableEquality{ref->column_ordinal, val_side});
      break;
    }
  }
  return out;
}

namespace {

Result<Value> ThreeValuedNot(const Value& v) {
  if (v.is_null()) return Value::Null();
  if (v.type() != ValueType::kBoolean) {
    return Status::InvalidArgument("NOT applied to non-boolean");
  }
  return Value::Boolean(!v.AsBoolean());
}

}  // namespace

bool SqlLikeMatch(std::string_view text, std::string_view pattern,
                  char escape_char) {
  // Compile the pattern into tokens so escapes become plain literals, then
  // run the classic two-pointer wildcard match with backtracking on '%'.
  enum class TokKind { kLiteral, kAnyRun, kAnyOne };
  struct Tok {
    TokKind kind;
    char c;
  };
  std::vector<Tok> toks;
  toks.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (escape_char != '\0' && c == escape_char && i + 1 < pattern.size()) {
      toks.push_back({TokKind::kLiteral, pattern[++i]});
    } else if (c == '%') {
      toks.push_back({TokKind::kAnyRun, c});
    } else if (c == '_') {
      toks.push_back({TokKind::kAnyOne, c});
    } else {
      toks.push_back({TokKind::kLiteral, c});
    }
  }

  size_t ti = 0, pi = 0;
  size_t star_pi = std::string_view::npos, star_ti = 0;
  while (ti < text.size()) {
    if (pi < toks.size() && (toks[pi].kind == TokKind::kAnyOne ||
                             (toks[pi].kind == TokKind::kLiteral &&
                              toks[pi].c == text[ti]))) {
      ++ti;
      ++pi;
    } else if (pi < toks.size() && toks[pi].kind == TokKind::kAnyRun) {
      star_pi = pi++;
      star_ti = ti;
    } else if (star_pi != std::string_view::npos) {
      pi = star_pi + 1;
      ti = ++star_ti;
    } else {
      return false;
    }
  }
  while (pi < toks.size() && toks[pi].kind == TokKind::kAnyRun) ++pi;
  return pi == toks.size();
}

Result<Value> Executor::EvalConstant(const Expr& expr) {
  ScopeStack empty;
  return Eval(expr, empty);
}

Result<bool> Executor::EvalRowPredicate(const SelectStmt& stmt,
                                        const Row& row) {
  if (stmt.where == nullptr) return true;
  Scope scope;
  scope.stmt = &stmt;
  scope.Reset(stmt.from.size());
  scope.rows[0] = &row;
  ScopeStack stack;
  stack.push_back(&scope);
  return EvalFilter(*stmt.where, stack);
}

Result<Value> Executor::EvalRowExpression(const SelectStmt& stmt,
                                          const Row& row, const Expr& expr) {
  Scope scope;
  scope.stmt = &stmt;
  scope.Reset(stmt.from.size());
  scope.rows[0] = &row;
  ScopeStack stack;
  stack.push_back(&scope);
  return Eval(expr, stack);
}

Result<Value> Executor::Eval(const Expr& expr, ScopeStack& stack) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value;
    case ExprKind::kParam: {
      const auto& param = static_cast<const ParamExpr&>(expr);
      if (params_ == nullptr || param.index >= params_->size()) {
        return Status::InvalidArgument(
            "unbound parameter: statement uses '?' placeholder " +
            std::to_string(param.index + 1) + " but " +
            std::to_string(params_ == nullptr ? 0 : params_->size()) +
            " value(s) were supplied");
      }
      return (*params_)[param.index];
    }
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (ref.level < 0 ||
          static_cast<size_t>(ref.level) >= stack.size()) {
        return Status::Internal("unbound column reference '" + ref.ToSql() +
                                "'");
      }
      const Scope* scope = stack[stack.size() - 1 - ref.level];
      const Row* row = scope->rows[ref.table_slot];
      if (row == nullptr) {
        return Status::Internal("column '" + ref.ToSql() +
                                "' read before its table was positioned");
      }
      return (*row)[ref.column_ordinal];
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      P3PDB_ASSIGN_OR_RETURN(Value left, Eval(*cmp.left, stack));
      P3PDB_ASSIGN_OR_RETURN(Value right, Eval(*cmp.right, stack));
      ++stats_->comparisons;
      switch (cmp.op) {
        case CompareOp::kEq:
          return Value::CompareEq(left, right);
        case CompareOp::kNe: {
          P3PDB_ASSIGN_OR_RETURN(Value eq, Value::CompareEq(left, right));
          return ThreeValuedNot(eq);
        }
        case CompareOp::kLt:
          return Value::CompareLt(left, right);
        case CompareOp::kGt:
          return Value::CompareLt(right, left);
        case CompareOp::kLe: {
          P3PDB_ASSIGN_OR_RETURN(Value gt, Value::CompareLt(right, left));
          return ThreeValuedNot(gt);
        }
        case CompareOp::kGe: {
          P3PDB_ASSIGN_OR_RETURN(Value lt, Value::CompareLt(left, right));
          return ThreeValuedNot(lt);
        }
      }
      return Status::Internal("bad comparison op");
    }
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(expr);
      bool saw_null = false;
      for (const ExprPtr& op : l.operands) {
        P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*op, stack));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.type() != ValueType::kBoolean) {
          return Status::InvalidArgument(
              "logical operand is not a boolean: " + op->ToSql());
        }
        if (l.is_and && !v.AsBoolean()) return Value::Boolean(false);
        if (!l.is_and && v.AsBoolean()) return Value::Boolean(true);
      }
      if (saw_null) return Value::Null();
      return Value::Boolean(l.is_and);
    }
    case ExprKind::kNot: {
      const auto& n = static_cast<const NotExpr&>(expr);
      P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*n.operand, stack));
      return ThreeValuedNot(v);
    }
    case ExprKind::kExists: {
      const auto& e = static_cast<const ExistsExpr&>(expr);
      P3PDB_ASSIGN_OR_RETURN(bool found, ExistsAnyRow(*e.subquery, stack));
      return Value::Boolean(e.negated ? !found : found);
    }
    case ExprKind::kHashJoin:
      return EvalHashJoin(static_cast<const HashJoinExpr&>(expr), stack);
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*in.operand, stack));
      bool saw_null = false;
      bool found = false;
      for (const ExprPtr& item : in.items) {
        P3PDB_ASSIGN_OR_RETURN(Value iv, Eval(*item, stack));
        P3PDB_ASSIGN_OR_RETURN(Value eq, Value::CompareEq(v, iv));
        ++stats_->comparisons;
        if (eq.is_null()) {
          saw_null = true;
        } else if (eq.AsBoolean()) {
          found = true;
          break;
        }
      }
      Value result = found           ? Value::Boolean(true)
                     : saw_null      ? Value::Null()
                                     : Value::Boolean(false);
      if (in.negated) return ThreeValuedNot(result);
      return result;
    }
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(expr);
      P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*isn.operand, stack));
      bool is_null = v.is_null();
      return Value::Boolean(isn.negated ? !is_null : is_null);
    }
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(expr);
      P3PDB_ASSIGN_OR_RETURN(Value text, Eval(*lk.operand, stack));
      P3PDB_ASSIGN_OR_RETURN(Value pattern, Eval(*lk.pattern, stack));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      if (text.type() != ValueType::kText ||
          pattern.type() != ValueType::kText) {
        return Status::InvalidArgument("LIKE requires text operands");
      }
      ++stats_->comparisons;
      bool matched =
          SqlLikeMatch(text.AsText(), pattern.AsText(), lk.escape_char);
      return Value::Boolean(lk.negated ? !matched : matched);
    }
    case ExprKind::kAggregate:
      return Status::Internal(
          "aggregate evaluated outside aggregation context");
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> Executor::EvalFilter(const Expr& expr, ScopeStack& stack) {
  P3PDB_ASSIGN_OR_RETURN(Value v, Eval(expr, stack));
  if (v.is_null()) return false;
  if (v.type() != ValueType::kBoolean) {
    return Status::InvalidArgument("WHERE clause is not a boolean");
  }
  return v.AsBoolean();
}

Result<bool> Executor::ExistsAnyRow(const SelectStmt& sub, ScopeStack& stack) {
  ++stats_->subquery_evals;
  PlanNodeStats* node = nullptr;
  std::chrono::steady_clock::time_point profile_start{};
  if (profile_ != nullptr) {
    node = profile_->Select(&sub);
    ++node->loops;
    profile_start = std::chrono::steady_clock::now();
  }
  Scope scope;
  scope.stmt = &sub;
  scope.Reset(sub.from.size());
  stack.push_back(&scope);
  bool found = false;
  bool stopped = false;
  Status st = EnumerateRows(
      sub, stack, scope, 0,
      [&]() -> Result<bool> {
        found = true;
        return true;  // stop at first row
      },
      &stopped);
  stack.pop_back();
  if (node != nullptr) {
    node->elapsed_us += std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - profile_start)
                            .count();
    if (found) ++node->rows;
  }
  if (!st.ok()) return st;
  return found;
}

Result<Value> Executor::EvalHashJoin(const HashJoinExpr& join,
                                     ScopeStack& stack) {
  PlanNodeStats* node = nullptr;
  std::chrono::steady_clock::time_point profile_start{};
  if (profile_ != nullptr) {
    node = profile_->HashJoin(&join);
    ++node->loops;  // loops = probes
    profile_start = std::chrono::steady_clock::now();
  }
  // Evaluate the probe key in the enclosing scope first: a NULL component
  // can never equal anything, so the subquery's correlation equality is
  // UNKNOWN for every inner row — EXISTS is false, NOT EXISTS is true —
  // without needing the key set at all.
  // The probe key lives on the stack and is passed as a non-owning view
  // (heterogeneous lookup): probes run once per outer row on the match
  // path, and an owned IndexKey would allocate every time.
  constexpr size_t kInlineKeyCols = 8;
  Value inline_vals[kInlineKeyCols];
  const Value* inline_ptrs[kInlineKeyCols];
  std::vector<Value> spill_vals;
  std::vector<const Value*> spill_ptrs;
  Value* vals = inline_vals;
  const Value** ptrs = inline_ptrs;
  if (join.probe_keys.size() > kInlineKeyCols) {
    spill_vals.resize(join.probe_keys.size());
    spill_ptrs.resize(join.probe_keys.size());
    vals = spill_vals.data();
    ptrs = spill_ptrs.data();
  }
  size_t nk = 0;
  bool null_key = false;
  for (const ExprPtr& pk : join.probe_keys) {
    P3PDB_ASSIGN_OR_RETURN(vals[nk], Eval(*pk, stack));
    if (vals[nk].is_null()) {
      null_key = true;
      break;
    }
    ptrs[nk] = &vals[nk];
    ++nk;
  }
  bool found = false;
  if (!null_key) {
    P3PDB_ASSIGN_OR_RETURN(const HashJoinRuntime::KeySet* keys,
                           MemoKeySet(join));
    found = keys->find(IndexKeyView{ptrs, nk}) != keys->end();
  }
  ++stats_->hash_join_probes;
  if (node != nullptr) {
    node->elapsed_us += std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - profile_start)
                            .count();
    if (found) ++node->rows;  // rows = probe hits
  }
  return Value::Boolean(join.anti ? !found : found);
}

Result<std::shared_ptr<const HashJoinRuntime::KeySet>> Executor::HashJoinKeySet(
    const HashJoinExpr& join) {
  uint64_t version = 0;
  for (const Table* t : join.dep_tables) version += t->version();
  HashJoinRuntime& rt = *join.runtime;
  std::lock_guard<std::mutex> lock(rt.mu);
  if (rt.keys != nullptr && rt.built_at_version == version) {
    return std::shared_ptr<const HashJoinRuntime::KeySet>(rt.keys);
  }

  // (Re)build. The planner guarantees the build side references nothing
  // outside itself, so it enumerates under a fresh scope stack — which also
  // means the resulting set is independent of the probing context and safe
  // to cache. Building under the runtime mutex serializes concurrent
  // first-probers; all later executions take the cached branch above.
  const SelectStmt& build = *join.build;
  PlanNodeStats* node = nullptr;
  if (profile_ != nullptr) {
    node = profile_->Select(&build);
    ++node->loops;
  }
  Stopwatch sw;
  auto keys = std::make_shared<HashJoinRuntime::KeySet>();
  Scope scope;
  scope.stmt = &build;
  scope.Reset(build.from.size());
  ScopeStack build_stack;
  build_stack.push_back(&scope);
  uint64_t build_rows = 0;
  bool stopped = false;
  Status st = EnumerateRows(
      build, build_stack, scope, 0,
      [&]() -> Result<bool> {
        ++build_rows;
        IndexKey k;
        k.values.reserve(join.build_keys.size());
        bool has_null = false;
        for (const auto& bk : join.build_keys) {
          P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*bk, build_stack));
          if (v.is_null()) {
            has_null = true;  // NULL keys can never match a probe
            break;
          }
          k.values.push_back(std::move(v));
        }
        if (!has_null) keys->insert(std::move(k));
        return false;  // enumerate every row
      },
      &stopped);
  if (node != nullptr) {
    node->elapsed_us += sw.ElapsedMicros();
    node->rows += build_rows;
  }
  P3PDB_RETURN_IF_ERROR(st);
  ++stats_->hash_join_builds;
  stats_->hash_join_build_rows += build_rows;
  rt.keys = keys;
  rt.built_at_version = version;
  return std::shared_ptr<const HashJoinRuntime::KeySet>(std::move(keys));
}

Result<const HashJoinRuntime::KeySet*> Executor::MemoKeySet(
    const HashJoinExpr& join) {
  for (const KeySetMemoEntry& e : keyset_memo_) {
    if (e.join == &join) return e.keys.get();
  }
  P3PDB_ASSIGN_OR_RETURN(std::shared_ptr<const HashJoinRuntime::KeySet> keys,
                         HashJoinKeySet(join));
  KeySetMemoEntry& slot = keyset_memo_[keyset_memo_next_];
  keyset_memo_next_ = (keyset_memo_next_ + 1) % kKeySetMemoSlots;
  slot.join = &join;
  slot.keys = std::move(keys);
  return slot.keys.get();
}

Status Executor::EnumerateRows(
    const SelectStmt& stmt, ScopeStack& stack, Scope& scope, size_t slot,
    const RowCallback& on_row, bool* stopped) {
  if (*stopped) return Status::OK();
  if (slot == stmt.from.size()) {
    if (stmt.where != nullptr) {
      P3PDB_ASSIGN_OR_RETURN(bool pass, EvalFilter(*stmt.where, stack));
      if (!pass) return Status::OK();
    }
    P3PDB_ASSIGN_OR_RETURN(bool stop, on_row());
    if (stop) *stopped = true;
    return Status::OK();
  }
  if (profile_ == nullptr) {
    return ScanSlot(stmt, stack, scope, slot, on_row, stopped, nullptr);
  }
  PlanNodeStats* node = profile_->Scan(&stmt, slot);
  ++node->loops;
  Stopwatch sw;
  Status st = ScanSlot(stmt, stack, scope, slot, on_row, stopped, node);
  node->elapsed_us += sw.ElapsedMicros();
  return st;
}

Status Executor::ScanSlot(const SelectStmt& stmt, ScopeStack& stack,
                          Scope& scope, size_t slot,
                          const RowCallback& on_row,
                          bool* stopped, PlanNodeStats* node) {
  // Annotated statements take the vectorized path when it is enabled; the
  // scalar path below is byte-identical to the pre-vectorization executor
  // (it also serves un-annotated statements, e.g. DML probe selects).
  if (config_.vectorized && !stmt.slot_plans.empty()) {
    return ScanSlotVectorized(stmt, stack, scope, slot, on_row, stopped, node);
  }

  const Table* table = stmt.from[slot].table;

  // Access path: annotated statements carry the planner's choice (which,
  // with the cost model on, may have overridden the syntactic index pick
  // with a forced sequential scan); un-annotated statements re-derive the
  // syntactic choice per scan, byte-identical to the pre-planner executor.
  const Index* index = nullptr;
  std::vector<const Expr*> key_exprs;
  if (!stmt.slot_plans.empty()) {
    const SlotPlan& sp = stmt.slot_plans[slot];
    index = sp.index;
    key_exprs = sp.key_exprs;
  } else {
    std::vector<IndexableEquality> equalities =
        CollectIndexableEqualities(stmt.where.get(), slot);
    if (!equalities.empty()) {
      std::vector<size_t> available_ordinals;
      available_ordinals.reserve(equalities.size());
      for (const IndexableEquality& eq : equalities) {
        available_ordinals.push_back(eq.column_ordinal);
      }
      index = table->FindIndexCovering(available_ordinals);
    }
    if (index != nullptr) {
      for (size_t ord : index->column_ordinals()) {
        const Expr* key_expr = nullptr;
        for (const IndexableEquality& eq : equalities) {
          if (eq.column_ordinal == ord) {
            key_expr = eq.key_expr;
            break;
          }
        }
        key_exprs.push_back(key_expr);
      }
    }
  }

  if (index != nullptr) {
    ++stats_->index_lookups;
    IndexKey key;
    key.values.reserve(key_exprs.size());
    for (const Expr* key_expr : key_exprs) {
      P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*key_expr, stack));
      key.values.push_back(std::move(v));
    }
    const std::vector<size_t>* row_ids = index->Lookup(key);
    if (row_ids == nullptr) return Status::OK();
    // By reference: execution is read-only over the tables (DML never runs
    // concurrently with or within a SELECT), so the id list is stable and
    // copying it would tax every probe of the hot match path.
    const std::vector<size_t>& ids = *row_ids;
    for (size_t row_id : ids) {
      if (!table->IsLive(row_id)) continue;
      ++stats_->rows_scanned;
      if (node != nullptr) ++node->rows;
      scope.rows[slot] = &table->RowAt(row_id);
      P3PDB_RETURN_IF_ERROR(
          EnumerateRows(stmt, stack, scope, slot + 1, on_row, stopped));
      if (*stopped) break;
    }
    scope.rows[slot] = nullptr;
    return Status::OK();
  }

  ++stats_->full_scans;
  for (size_t row_id = 0; row_id < table->SlotCount(); ++row_id) {
    if (!table->IsLive(row_id)) continue;
    ++stats_->rows_scanned;
    if (node != nullptr) ++node->rows;
    scope.rows[slot] = &table->RowAt(row_id);
    P3PDB_RETURN_IF_ERROR(
        EnumerateRows(stmt, stack, scope, slot + 1, on_row, stopped));
    if (*stopped) break;
  }
  scope.rows[slot] = nullptr;
  return Status::OK();
}

Result<QueryResult> Executor::RunSelect(const SelectStmt& stmt) {
  ScopeStack stack;
  bool aggregate_mode;
  if (stmt.aggregate_mode >= 0) {
    aggregate_mode = stmt.aggregate_mode != 0;
  } else {
    aggregate_mode = !stmt.group_by.empty();
    for (const SelectItem& item : stmt.items) {
      if (!item.is_star && ContainsAggregate(*item.expr)) {
        aggregate_mode = true;
      }
    }
  }
  if (profile_ == nullptr) {
    if (aggregate_mode) return RunAggregateSelect(stmt, stack);
    return RunPlainSelect(stmt, stack);
  }
  PlanNodeStats* node = profile_->Select(&stmt);
  ++node->loops;
  Stopwatch sw;
  auto result = aggregate_mode ? RunAggregateSelect(stmt, stack)
                               : RunPlainSelect(stmt, stack);
  node->elapsed_us += sw.ElapsedMicros();
  if (result.ok()) node->rows += result.value().rows.size();
  return result;
}

namespace {

/// Column header for a select item.
std::string ItemColumnName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr*>(item.expr.get())->column_name;
  }
  return item.expr->ToSql();
}

std::string RowKey(const Row& row) {
  std::string key;
  for (const Value& v : row) {
    key += v.ToString();
    key.push_back('\x1f');
  }
  return key;
}

struct SortEntry {
  Row output;
  Row keys;
};

}  // namespace

Status Executor::ApplyDistinctOrderLimit(const SelectStmt& stmt,
                                         ScopeStack& stack,
                                         QueryResult* result,
                                         const std::vector<Row>& order_keys) {
  (void)stack;
  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<Row> rows;
    std::vector<Row> keys;
    for (size_t i = 0; i < result->rows.size(); ++i) {
      std::string key = RowKey(result->rows[i]);
      if (seen.insert(std::move(key)).second) {
        rows.push_back(std::move(result->rows[i]));
        if (!order_keys.empty()) keys.push_back(order_keys[i]);
      }
    }
    result->rows = std::move(rows);
    if (!stmt.order_by.empty()) {
      return SortAndLimit(stmt, result, keys);
    }
  } else if (!stmt.order_by.empty()) {
    return SortAndLimit(stmt, result, order_keys);
  }
  if (stmt.limit.has_value() &&
      result->rows.size() > static_cast<size_t>(*stmt.limit)) {
    result->rows.resize(static_cast<size_t>(*stmt.limit));
  }
  return Status::OK();
}

Result<QueryResult> Executor::RunPlainSelect(const SelectStmt& stmt,
                                             ScopeStack& stack) {
  ++stats_->statements_executed;
  QueryResult result;

  // Column headers (precomputed at bind time on the statements that went
  // through BindAndPlan; re-derived here otherwise).
  if (stmt.column_headers != nullptr) {
    result.columns.Borrow(stmt.column_headers);
  } else {
    for (const SelectItem& item : stmt.items) {
      if (item.is_star) {
        for (const TableRef& tr : stmt.from) {
          for (const ColumnDef& col : tr.table->schema().columns()) {
            result.columns.push_back(col.name);
          }
        }
      } else {
        result.columns.push_back(ItemColumnName(item));
      }
    }
  }

  Scope scope;
  scope.stmt = &stmt;
  scope.Reset(stmt.from.size());
  stack.push_back(&scope);

  std::vector<Row> order_keys;
  bool stopped = false;
  Status st = EnumerateRows(
      stmt, stack, scope, 0,
      [&]() -> Result<bool> {
        Row out;
        for (const SelectItem& item : stmt.items) {
          if (item.is_star) {
            for (size_t slot = 0; slot < stmt.from.size(); ++slot) {
              const Row* row = scope.rows[slot];
              out.insert(out.end(), row->begin(), row->end());
            }
          } else {
            P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, stack));
            out.push_back(std::move(v));
          }
        }
        if (!stmt.order_by.empty()) {
          Row keys;
          for (const OrderByItem& ob : stmt.order_by) {
            if (ob.expr->kind == ExprKind::kLiteral) {
              const Value& lit =
                  static_cast<const LiteralExpr*>(ob.expr.get())->value;
              if (lit.type() == ValueType::kInteger) {
                int64_t ordinal = lit.AsInteger();
                if (ordinal < 1 ||
                    ordinal > static_cast<int64_t>(out.size())) {
                  return Status::InvalidArgument(
                      "ORDER BY ordinal out of range");
                }
                keys.push_back(out[static_cast<size_t>(ordinal - 1)]);
                continue;
              }
            }
            // A select-item alias (or exact text) sorts by that output
            // column; anything else evaluates in row context.
            std::string text = ob.expr->ToSql();
            size_t star_width = 0;
            for (const TableRef& tr : stmt.from) {
              star_width += tr.table->schema().ColumnCount();
            }
            bool matched = false;
            size_t column = 0;
            for (const SelectItem& item : stmt.items) {
              if (item.is_star) {
                column += star_width;
                continue;
              }
              if (item.alias == text || item.expr->ToSql() == text) {
                matched = true;
                break;
              }
              ++column;
            }
            if (matched && column < out.size()) {
              keys.push_back(out[column]);
              continue;
            }
            P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*ob.expr, stack));
            keys.push_back(std::move(v));
          }
          order_keys.push_back(std::move(keys));
        }
        result.rows.push_back(std::move(out));
        return false;
      },
      &stopped);
  stack.pop_back();
  P3PDB_RETURN_IF_ERROR(st);

  P3PDB_RETURN_IF_ERROR(
      ApplyDistinctOrderLimit(stmt, stack, &result, order_keys));
  return result;
}

namespace {

struct AggState {
  int64_t count = 0;
  int64_t sum = 0;
  bool sum_valid = false;
  Value min = Value::Null();
  Value max = Value::Null();
};

}  // namespace

Result<QueryResult> Executor::RunAggregateSelect(const SelectStmt& stmt,
                                                 ScopeStack& stack) {
  ++stats_->statements_executed;
  QueryResult result;
  for (const SelectItem& item : stmt.items) {
    result.columns.push_back(ItemColumnName(item));
  }

  // Classify select items: each must be either exactly an aggregate call or
  // aggregate-free (the binder verified the latter match GROUP BY).
  std::vector<const AggregateExpr*> agg_exprs;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kAggregate) {
      agg_exprs.push_back(static_cast<const AggregateExpr*>(item.expr.get()));
    } else if (ContainsAggregate(*item.expr)) {
      return Status::Unsupported(
          "select items must be plain aggregates or grouping columns");
    } else {
      agg_exprs.push_back(nullptr);
    }
  }

  Scope scope;
  scope.stmt = &stmt;
  scope.Reset(stmt.from.size());
  stack.push_back(&scope);

  struct Group {
    Row group_values;          // values of GROUP BY expressions
    Row item_values;           // grouping-item values aligned with items
    std::vector<AggState> aggs;  // one per select item (unused for grouping)
  };
  std::map<std::string, Group> groups;

  bool stopped = false;
  Status st = EnumerateRows(
      stmt, stack, scope, 0,
      [&]() -> Result<bool> {
        Row group_values;
        for (const ExprPtr& g : stmt.group_by) {
          P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*g, stack));
          group_values.push_back(std::move(v));
        }
        std::string key = RowKey(group_values);
        auto [it, inserted] = groups.try_emplace(std::move(key));
        Group& group = it->second;
        if (inserted) {
          group.group_values = std::move(group_values);
          group.aggs.resize(stmt.items.size());
          group.item_values.resize(stmt.items.size());
          for (size_t i = 0; i < stmt.items.size(); ++i) {
            if (agg_exprs[i] == nullptr) {
              P3PDB_ASSIGN_OR_RETURN(Value v,
                                     Eval(*stmt.items[i].expr, stack));
              group.item_values[i] = std::move(v);
            }
          }
        }
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          const AggregateExpr* agg = agg_exprs[i];
          if (agg == nullptr) continue;
          AggState& state = group.aggs[i];
          if (agg->func == AggFunc::kCountStar) {
            ++state.count;
            continue;
          }
          P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*agg->arg, stack));
          if (v.is_null()) continue;
          ++state.count;
          switch (agg->func) {
            case AggFunc::kSum:
              if (v.type() != ValueType::kInteger) {
                return Status::InvalidArgument("SUM requires integers");
              }
              state.sum += v.AsInteger();
              state.sum_valid = true;
              break;
            case AggFunc::kMin:
              if (state.min.is_null() ||
                  Value::OrderCompare(v, state.min) < 0) {
                state.min = v;
              }
              break;
            case AggFunc::kMax:
              if (state.max.is_null() ||
                  Value::OrderCompare(v, state.max) > 0) {
                state.max = v;
              }
              break;
            default:
              break;
          }
        }
        return false;
      },
      &stopped);
  stack.pop_back();
  P3PDB_RETURN_IF_ERROR(st);

  // With no GROUP BY, aggregates over an empty input still produce one row.
  if (groups.empty() && stmt.group_by.empty()) {
    Group empty_group;
    empty_group.aggs.resize(stmt.items.size());
    empty_group.item_values.resize(stmt.items.size());
    groups.emplace("", std::move(empty_group));
  }

  std::vector<Row> order_keys;
  for (auto& [key, group] : groups) {
    Row out;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const AggregateExpr* agg = agg_exprs[i];
      if (agg == nullptr) {
        out.push_back(group.item_values[i]);
        continue;
      }
      switch (agg->func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          out.push_back(Value::Integer(group.aggs[i].count));
          break;
        case AggFunc::kSum:
          out.push_back(group.aggs[i].sum_valid
                            ? Value::Integer(group.aggs[i].sum)
                            : Value::Null());
          break;
        case AggFunc::kMin:
          out.push_back(group.aggs[i].min);
          break;
        case AggFunc::kMax:
          out.push_back(group.aggs[i].max);
          break;
      }
    }
    // Order keys: ordinals or select-item text matches only (row context is
    // gone by aggregation time).
    if (!stmt.order_by.empty()) {
      Row keys;
      for (const OrderByItem& ob : stmt.order_by) {
        if (ob.expr->kind == ExprKind::kLiteral) {
          const Value& lit =
              static_cast<const LiteralExpr*>(ob.expr.get())->value;
          if (lit.type() == ValueType::kInteger) {
            int64_t ordinal = lit.AsInteger();
            if (ordinal < 1 || ordinal > static_cast<int64_t>(out.size())) {
              return Status::InvalidArgument("ORDER BY ordinal out of range");
            }
            keys.push_back(out[static_cast<size_t>(ordinal - 1)]);
            continue;
          }
        }
        std::string text = ob.expr->ToSql();
        bool matched = false;
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          if (!stmt.items[i].is_star &&
              (stmt.items[i].expr->ToSql() == text ||
               stmt.items[i].alias == text)) {
            keys.push_back(out[i]);
            matched = true;
            break;
          }
        }
        if (!matched) {
          return Status::InvalidArgument(
              "ORDER BY in an aggregate query must reference a select item");
        }
      }
      order_keys.push_back(std::move(keys));
    }
    result.rows.push_back(std::move(out));
  }

  P3PDB_RETURN_IF_ERROR(
      ApplyDistinctOrderLimit(stmt, stack, &result, order_keys));
  return result;
}

Status Executor::SortAndLimit(const SelectStmt& stmt, QueryResult* result,
                              const std::vector<Row>& order_keys) {
  std::vector<size_t> order(result->rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Row& ka = order_keys[a];
    const Row& kb = order_keys[b];
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      int c = Value::OrderCompare(ka[i], kb[i]);
      if (c != 0) return stmt.order_by[i].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(result->rows.size());
  for (size_t i : order) sorted.push_back(std::move(result->rows[i]));
  result->rows = std::move(sorted);
  if (stmt.limit.has_value() &&
      result->rows.size() > static_cast<size_t>(*stmt.limit)) {
    result->rows.resize(static_cast<size_t>(*stmt.limit));
  }
  return Status::OK();
}

void PrecomputeExecHints(SelectStmt* stmt) {
  bool aggregate_mode = !stmt->group_by.empty();
  for (const SelectItem& item : stmt->items) {
    if (!item.is_star && ContainsAggregate(*item.expr)) aggregate_mode = true;
  }
  stmt->aggregate_mode = aggregate_mode ? 1 : 0;
  // Headers match RunPlainSelect's derivation exactly; the aggregate path
  // keeps building its own (its header shape differs for star items).
  auto headers = std::make_shared<std::vector<std::string>>();
  for (const SelectItem& item : stmt->items) {
    if (item.is_star) {
      for (const TableRef& tr : stmt->from) {
        for (const ColumnDef& col : tr.table->schema().columns()) {
          headers->push_back(col.name);
        }
      }
    } else {
      headers->push_back(ItemColumnName(item));
    }
  }
  stmt->column_headers = std::move(headers);
}

}  // namespace p3pdb::sqldb
