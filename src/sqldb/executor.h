// Query executor.
//
// Evaluation is tuple-at-a-time over nested loops. For each table in a FROM
// list the executor picks an access path: when the WHERE clause contains
// equality conjuncts binding indexed columns of that table to values already
// available (outer-scope tables of a correlated subquery, or earlier tables
// in the same FROM list), it performs a hash-index point lookup; otherwise
// it scans. Correlated EXISTS subqueries are re-evaluated per outer row with
// early-out on the first matching row — the execution shape DB2 would pick
// for the highly selective key joins of the generated APPEL queries.

#ifndef P3PDB_SQLDB_EXECUTOR_H_
#define P3PDB_SQLDB_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "sqldb/ast.h"
#include "sqldb/query_result.h"
#include "sqldb/table.h"

namespace p3pdb::sqldb {

/// Shared runtime state of one planner-produced hash join (see planner.h):
/// the build-side key set, cached across executions of the same bound plan
/// and across the concurrent executors sharing it. `built_at_version` is
/// the sum of the dep tables' modification counters at build time; any
/// mismatch means a table changed and the set is rebuilt. Probers copy the
/// shared_ptr under the mutex and then probe lock-free, so a rebuild never
/// invalidates a set another thread is still reading.
struct HashJoinRuntime {
  // Transparent hash/equality so probes can use IndexKeyView without
  // materializing an IndexKey per probe (heterogeneous lookup).
  using KeySet = std::unordered_set<IndexKey, IndexKeyHash, IndexKeyEqual>;

  std::mutex mu;
  std::shared_ptr<const KeySet> keys;  // null until first build
  uint64_t built_at_version = 0;
};

/// Runtime counters for one plan node, accumulated across loops (EXPLAIN
/// ANALYZE). `elapsed_us` is inclusive of child nodes, Postgres-style.
struct PlanNodeStats {
  uint64_t loops = 0;   // times the node was (re)started
  uint64_t rows = 0;    // rows the node produced, summed over loops
  double elapsed_us = 0.0;

  // Vectorized-scan actuals (zero on row-at-a-time nodes): chunks emitted,
  // rows gathered into them, and rows surviving the chunked filter.
  uint64_t batches = 0;
  uint64_t batch_rows_in = 0;
  uint64_t batch_rows_out = 0;
};

/// Side table of actual runtime stats keyed by plan-node identity: a
/// SelectStmt* for select nodes (top-level or EXISTS subquery), a
/// (SelectStmt*, FROM slot) pair for scan nodes. The AST nodes themselves
/// stay immutable during execution, so one bound statement can be profiled
/// without perturbing concurrent readers of the tree.
class PlanProfile {
 public:
  PlanNodeStats* Select(const SelectStmt* stmt) { return &selects_[stmt]; }
  PlanNodeStats* Scan(const SelectStmt* stmt, size_t slot) {
    return &scans_[{stmt, slot}];
  }
  /// Hash-join nodes are keyed by expression identity; `loops` counts
  /// probes, `rows` counts probe hits. Build-side actuals live on the build
  /// SelectStmt's own node.
  PlanNodeStats* HashJoin(const Expr* join) { return &hash_joins_[join]; }

  /// nullptr when the node never executed (e.g. short-circuited subquery).
  const PlanNodeStats* FindSelect(const SelectStmt* stmt) const;
  const PlanNodeStats* FindScan(const SelectStmt* stmt, size_t slot) const;
  const PlanNodeStats* FindHashJoin(const Expr* join) const;

 private:
  std::map<const SelectStmt*, PlanNodeStats> selects_;
  std::map<std::pair<const SelectStmt*, size_t>, PlanNodeStats> scans_;
  std::map<const Expr*, PlanNodeStats> hash_joins_;
};

/// Execution-mode knobs, passed down from Database::Options. `vectorized`
/// turns on the batch scan/filter path for annotated statements (see
/// vectorized.cc); the scalar path is untouched when it is off.
struct ExecConfig {
  bool vectorized = false;
  uint32_t chunk_size = 1024;
};

struct VecScratch;  // chunk evaluation arenas, defined in vectorized.cc

/// Non-owning view of a `Result<bool>()` callable. The per-row callbacks of
/// EnumerateRows are constructed once per scan setup, and the match path
/// sets up several scans per query — a std::function would heap-allocate
/// its captures every time. The viewed callable must outlive the view; every
/// use here passes a lambda that lives for the whole enumeration call.
class RowCallback {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, RowCallback>>>
  RowCallback(const F& f)  // NOLINT(google-explicit-constructor)
      : obj_(&f), call_([](const void* o) {
          return (*static_cast<const F*>(o))();
        }) {}

  Result<bool> operator()() const { return call_(obj_); }

 private:
  const void* obj_;
  Result<bool> (*call_)(const void*);
};

/// Executes bound SELECT statements. Stateless apart from the stats sink,
/// the optional bind-parameter values, and the optional plan profile; one
/// instance can run many queries. `stats` is a per-execution object owned
/// by the caller, so concurrent executors never share mutable state.
class Executor {
 public:
  explicit Executor(ExecStats* stats, const std::vector<Value>* params = nullptr,
                    PlanProfile* profile = nullptr, ExecConfig config = {})
      : stats_(stats), params_(params), profile_(profile), config_(config) {}

  /// Runs a bound SELECT and materializes the full result.
  Result<QueryResult> RunSelect(const SelectStmt& stmt);

  /// Evaluates an expression with no row context (INSERT VALUES lists).
  /// Column references fail.
  Result<Value> EvalConstant(const Expr& expr);

  /// Evaluates the WHERE clause of a bound single-table SELECT against one
  /// candidate row (DELETE uses this to collect victims by row id). A null
  /// WHERE accepts every row.
  Result<bool> EvalRowPredicate(const SelectStmt& stmt, const Row& row);

  /// Evaluates an arbitrary expression bound within `stmt`'s scope against
  /// one row of its single FROM table (UPDATE assignment values).
  Result<Value> EvalRowExpression(const SelectStmt& stmt, const Row& row,
                                  const Expr& expr);

 private:
  struct Scope {
    const SelectStmt* stmt = nullptr;
    const Row** rows = nullptr;  // one slot per FROM entry

    /// Points `rows` at cleared storage for `n` slots: inline for the
    /// common narrow FROM lists (a heap vector per scope showed up in the
    /// per-match profile), spilling to the heap only for very wide ones.
    void Reset(size_t n) {
      if (n > kInlineSlots) {
        spill_.assign(n, nullptr);
        rows = spill_.data();
        return;
      }
      rows = inline_rows_;
      for (size_t i = 0; i < n; ++i) rows[i] = nullptr;
    }

   private:
    static constexpr size_t kInlineSlots = 8;
    const Row* inline_rows_[kInlineSlots];
    std::vector<const Row*> spill_;
  };

  /// Stack of enclosing scopes, innermost last. Depth is bounded by the
  /// binder's subquery budget, so the inline buffer covers every statement
  /// the stock servers accept; a heap vector per RunSelect was measurable
  /// on the per-match profile. Deeper stacks (custom budgets) spill.
  class ScopeStack {
   public:
    void push_back(Scope* s) {
      if (size_ < kInline) {
        inline_[size_++] = s;
        return;
      }
      spill_.push_back(s);
      ++size_;
    }
    void pop_back() {
      if (size_ > kInline) spill_.pop_back();
      --size_;
    }
    size_t size() const { return size_; }
    Scope* operator[](size_t i) const {
      return i < kInline ? inline_[i] : spill_[i - kInline];
    }
    Scope* back() const { return (*this)[size_ - 1]; }

   private:
    static constexpr size_t kInline = 40;
    size_t size_ = 0;
    Scope* inline_[kInline];
    std::vector<Scope*> spill_;
  };

  Result<Value> Eval(const Expr& expr, ScopeStack& stack);
  /// Evaluates a predicate; the row passes only when the result is TRUE
  /// (NULL and FALSE both reject — SQL three-valued filter semantics).
  Result<bool> EvalFilter(const Expr& expr, ScopeStack& stack);
  Result<bool> ExistsAnyRow(const SelectStmt& sub, ScopeStack& stack);

  /// Semi/anti-join probe: evaluates the probe keys in the current scope
  /// and answers from the (possibly cached) build-side key set.
  Result<Value> EvalHashJoin(const HashJoinExpr& join, ScopeStack& stack);
  /// Returns the current key set for `join`, building (and caching) it if
  /// the cache is empty or stale.
  Result<std::shared_ptr<const HashJoinRuntime::KeySet>> HashJoinKeySet(
      const HashJoinExpr& join);
  /// Per-execution memo over HashJoinKeySet: one mutex acquisition and
  /// version check per (execution, join) instead of per probe row. The
  /// memo's shared_ptr keeps the snapshot alive for the whole execution —
  /// the same lock-free-probe guarantee the per-row fetch gave one probe,
  /// extended to the execution. The pointer is valid until the Executor is
  /// destroyed.
  Result<const HashJoinRuntime::KeySet*> MemoKeySet(const HashJoinExpr& join);

  /// Depth-first enumeration of FROM-row combinations that satisfy WHERE.
  /// `on_row` returns true to stop early (EXISTS).
  Status EnumerateRows(const SelectStmt& stmt, ScopeStack& stack, Scope& scope,
                       size_t slot, const RowCallback& on_row,
                       bool* stopped);
  /// The per-slot body of EnumerateRows (access-path choice and row loop);
  /// `node` collects actuals when profiling, else nullptr.
  Status ScanSlot(const SelectStmt& stmt, ScopeStack& stack, Scope& scope,
                  size_t slot, const RowCallback& on_row,
                  bool* stopped, PlanNodeStats* node);

  // --- Vectorized path (vectorized.cc) -------------------------------------
  // ScanSlot dispatches here when config_.vectorized is set and the
  // statement carries slot_plans. The annotated access path replaces the
  // per-scan equality collection; the innermost filtered slot additionally
  // gathers rows into chunks and evaluates the WHERE clause with the chunk
  // kernels in EvalPredicateChunk. Semantics are identical to the scalar
  // path (three-valued logic, NULL join verdicts, error messages).
  Status ScanSlotVectorized(const SelectStmt& stmt, ScopeStack& stack,
                            Scope& scope, size_t slot,
                            const RowCallback& on_row,
                            bool* stopped, PlanNodeStats* node);
  /// Evaluates `expr` as a predicate over the active rows of the current
  /// chunk, writing tri-state verdicts (false/true/null) into `out` at the
  /// active positions. `active`/`n_active` is a selection vector of chunk
  /// row indices. `nonbool_error` is the message prefix used when a non-kNot
  /// context receives a non-boolean operand.
  Status EvalPredicateChunk(const Expr& expr, size_t slot, ScopeStack& stack,
                            Scope& scope, const uint32_t* active,
                            size_t n_active, uint8_t* out,
                            const char* nonbool_error, VecScratch& scratch);

  Result<QueryResult> RunPlainSelect(const SelectStmt& stmt,
                                     ScopeStack& stack);
  Result<QueryResult> RunAggregateSelect(const SelectStmt& stmt,
                                         ScopeStack& stack);

  Status ApplyDistinctOrderLimit(const SelectStmt& stmt, ScopeStack& stack,
                                 QueryResult* result,
                                 const std::vector<Row>& order_keys);
  Status SortAndLimit(const SelectStmt& stmt, QueryResult* result,
                      const std::vector<Row>& order_keys);

  ExecStats* stats_;
  const std::vector<Value>* params_;  // null = statement takes no parameters
  PlanProfile* profile_;  // null = no per-node actuals collected
  ExecConfig config_;

  // MemoKeySet state: a small direct-scan cache (statements carry at most a
  // handful of distinct joins; round-robin eviction covers the rest).
  struct KeySetMemoEntry {
    const HashJoinExpr* join = nullptr;
    std::shared_ptr<const HashJoinRuntime::KeySet> keys;
  };
  static constexpr size_t kKeySetMemoSlots = 4;
  KeySetMemoEntry keyset_memo_[kKeySetMemoSlots];
  size_t keyset_memo_next_ = 0;
};

/// SQL LIKE with % (any run) and _ (any single char). `escape_char` ('\0'
/// for none) makes the following pattern character literal. NULL operands
/// yield NULL at the caller; this is the non-null core.
bool SqlLikeMatch(std::string_view text, std::string_view pattern,
                  char escape_char = '\0');

/// An equality conjunct usable for an index lookup when positioning FROM
/// slot `slot`: a column of that slot equated with an expression whose
/// inputs are already available. Shared between the executor's access-path
/// choice and EXPLAIN.
struct IndexableEquality {
  size_t column_ordinal;
  const Expr* key_expr;
};

/// Extracts the indexable equalities for `slot` from a bound WHERE clause.
std::vector<IndexableEquality> CollectIndexableEqualities(const Expr* where,
                                                          size_t slot);

/// Fills the bound statement's execution hints (column headers, aggregate
/// mode) so the per-query hot path does not re-derive them. Called from
/// Database::BindAndPlan after planning; the hints describe the final tree.
void PrecomputeExecHints(SelectStmt* stmt);

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_EXECUTOR_H_
