#include "sqldb/explain.h"

#include "common/string_util.h"
#include "sqldb/executor.h"
#include "sqldb/table.h"

namespace p3pdb::sqldb {

namespace {

void Indent(int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

void ExplainSelect(const SelectStmt& stmt, int depth, std::string* out);

/// Walks an expression for EXISTS subqueries and explains each.
void ExplainSubqueries(const Expr& expr, int depth, std::string* out) {
  switch (expr.kind) {
    case ExprKind::kExists: {
      const auto& e = static_cast<const ExistsExpr&>(expr);
      Indent(depth, out);
      out->append(e.negated ? "not-exists-subquery\n" : "exists-subquery\n");
      ExplainSelect(*e.subquery, depth + 1, out);
      return;
    }
    case ExprKind::kLogical:
      for (const ExprPtr& op :
           static_cast<const LogicalExpr&>(expr).operands) {
        ExplainSubqueries(*op, depth, out);
      }
      return;
    case ExprKind::kNot:
      ExplainSubqueries(*static_cast<const NotExpr&>(expr).operand, depth,
                        out);
      return;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(expr);
      ExplainSubqueries(*c.left, depth, out);
      ExplainSubqueries(*c.right, depth, out);
      return;
    }
    default:
      return;
  }
}

void ExplainSelect(const SelectStmt& stmt, int depth, std::string* out) {
  Indent(depth, out);
  out->append("select");
  if (stmt.distinct) out->append(" distinct");
  if (!stmt.group_by.empty()) out->append(" (hash aggregate)");
  if (!stmt.order_by.empty()) out->append(" (sort)");
  if (stmt.limit.has_value()) {
    out->append(" (limit " + std::to_string(*stmt.limit) + ")");
  }
  out->push_back('\n');

  for (size_t slot = 0; slot < stmt.from.size(); ++slot) {
    const TableRef& ref = stmt.from[slot];
    Indent(depth + 1, out);
    out->append("scan " + ref.alias);
    if (ref.table == nullptr) {
      out->append(" (unbound)\n");
      continue;
    }
    std::vector<IndexableEquality> equalities =
        CollectIndexableEqualities(stmt.where.get(), slot);
    const Index* index = nullptr;
    if (!equalities.empty()) {
      std::vector<size_t> ordinals;
      ordinals.reserve(equalities.size());
      for (const IndexableEquality& eq : equalities) {
        ordinals.push_back(eq.column_ordinal);
      }
      index = ref.table->FindIndexCovering(ordinals);
    }
    if (index != nullptr) {
      std::vector<std::string> cols;
      for (size_t ord : index->column_ordinals()) {
        cols.push_back(ref.table->schema().columns()[ord].name);
      }
      out->append(" (index " + index->name() + " on " + Join(cols, ", ") +
                  ")");
    } else {
      out->append(" (seq scan)");
    }
    out->push_back('\n');
  }
  if (stmt.where != nullptr) {
    ExplainSubqueries(*stmt.where, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const SelectStmt& stmt) {
  std::string out;
  ExplainSelect(stmt, 0, &out);
  return out;
}

}  // namespace p3pdb::sqldb
