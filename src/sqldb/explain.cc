#include "sqldb/explain.h"

#include <cmath>

#include "common/string_util.h"
#include "sqldb/table.h"

namespace p3pdb::sqldb {

namespace {

void Indent(int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

/// Renders a cost-model row estimate. Estimates are only stamped when a
/// StatsCatalog was supplied at plan time; negative means "not costed" and
/// prints nothing, so rule-only plans render exactly as before.
void AppendEstimate(double est_rows, bool seq_forced, std::string* out) {
  if (est_rows < 0.0) return;
  out->append(" (est rows=" + std::to_string(std::llround(est_rows)));
  if (seq_forced) out->append(", seq-forced");
  out->push_back(')');
}

/// Renders an index-key expression, substituting bound parameter values
/// when available: `?[=3]` reads "placeholder, currently bound to 3".
std::string RenderKeyExpr(const Expr& expr, const ExplainOptions& options) {
  if (expr.kind == ExprKind::kParam) {
    const auto& param = static_cast<const ParamExpr&>(expr);
    if (options.params != nullptr && param.index < options.params->size()) {
      return "?[=" + (*options.params)[param.index].ToString() + "]";
    }
    return "?";
  }
  return expr.ToSql();
}

/// Appends the EXPLAIN ANALYZE actuals for one plan node.
void AppendActuals(const PlanNodeStats* node, const ExplainOptions& options,
                   std::string* out) {
  if (options.profile == nullptr) return;
  if (node == nullptr) {
    out->append(" (never executed)");
    return;
  }
  out->append(" (actual rows=" + std::to_string(node->rows) +
              " loops=" + std::to_string(node->loops) +
              " time=" + FormatDouble(node->elapsed_us, 1) + "us");
  // Batch actuals live inside the actuals parens (no nesting: the explain
  // test's StripActuals cuts from " (actual" to the first ')').
  if (node->batches > 0) {
    const double rows_per_batch =
        static_cast<double>(node->batch_rows_in) /
        static_cast<double>(node->batches);
    const double selectivity =
        node->batch_rows_in == 0
            ? 0.0
            : 100.0 * static_cast<double>(node->batch_rows_out) /
                  static_cast<double>(node->batch_rows_in);
    out->append(" batches=" + std::to_string(node->batches) +
                " rows/batch=" + FormatDouble(rows_per_batch, 1) +
                " selectivity=" + FormatDouble(selectivity, 1) + "%");
  }
  out->push_back(')');
}

void ExplainSelect(const SelectStmt& stmt, int depth,
                   const ExplainOptions& options, std::string* out);

/// Walks an expression for EXISTS subqueries and explains each.
void ExplainSubqueries(const Expr& expr, int depth,
                       const ExplainOptions& options, std::string* out) {
  switch (expr.kind) {
    case ExprKind::kExists: {
      const auto& e = static_cast<const ExistsExpr&>(expr);
      Indent(depth, out);
      out->append(e.negated ? "not-exists-subquery\n" : "exists-subquery\n");
      ExplainSelect(*e.subquery, depth + 1, options, out);
      return;
    }
    case ExprKind::kHashJoin: {
      const auto& j = static_cast<const HashJoinExpr&>(expr);
      Indent(depth, out);
      out->append(j.anti ? "hash-anti-join" : "hash-semi-join");
      std::vector<std::string> conds;
      for (size_t i = 0; i < j.build_keys.size(); ++i) {
        conds.push_back(j.build_keys[i]->ToSql() + " = " +
                        RenderKeyExpr(*j.probe_keys[i], options));
      }
      out->append(" on " + Join(conds, ", "));
      AppendEstimate(j.est_build_rows, /*seq_forced=*/false, out);
      if (options.profile != nullptr) {
        AppendActuals(options.profile->FindHashJoin(&j), options, out);
      }
      out->push_back('\n');
      ExplainSelect(*j.build, depth + 1, options, out);
      return;
    }
    case ExprKind::kLogical:
      for (const ExprPtr& op :
           static_cast<const LogicalExpr&>(expr).operands) {
        ExplainSubqueries(*op, depth, options, out);
      }
      return;
    case ExprKind::kNot:
      ExplainSubqueries(*static_cast<const NotExpr&>(expr).operand, depth,
                        options, out);
      return;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(expr);
      ExplainSubqueries(*c.left, depth, options, out);
      ExplainSubqueries(*c.right, depth, options, out);
      return;
    }
    default:
      return;
  }
}

void ExplainSelect(const SelectStmt& stmt, int depth,
                   const ExplainOptions& options, std::string* out) {
  Indent(depth, out);
  out->append("select");
  if (stmt.distinct) out->append(" distinct");
  if (!stmt.group_by.empty()) out->append(" (hash aggregate)");
  if (!stmt.order_by.empty()) out->append(" (sort)");
  if (stmt.limit.has_value()) {
    out->append(" (limit " + std::to_string(*stmt.limit) + ")");
  }
  if (options.profile != nullptr) {
    AppendActuals(options.profile->FindSelect(&stmt), options, out);
  }
  out->push_back('\n');

  for (size_t slot = 0; slot < stmt.from.size(); ++slot) {
    const TableRef& ref = stmt.from[slot];
    Indent(depth + 1, out);
    out->append("scan " + ref.alias);
    if (ref.table == nullptr) {
      out->append(" (unbound)\n");
      continue;
    }
    // Annotated statements carry the planner's final access path (the cost
    // model may have overridden the syntactic index choice); un-annotated
    // ones re-derive the syntactic choice, matching the scalar executor.
    const Index* index = nullptr;
    std::vector<const Expr*> key_exprs;
    double est_rows = -1.0;
    bool seq_forced = false;
    if (!stmt.slot_plans.empty()) {
      const SlotPlan& sp = stmt.slot_plans[slot];
      index = sp.index;
      key_exprs = sp.key_exprs;
      est_rows = sp.est_rows;
      seq_forced = sp.seq_forced;
    } else {
      std::vector<IndexableEquality> equalities =
          CollectIndexableEqualities(stmt.where.get(), slot);
      if (!equalities.empty()) {
        std::vector<size_t> ordinals;
        ordinals.reserve(equalities.size());
        for (const IndexableEquality& eq : equalities) {
          ordinals.push_back(eq.column_ordinal);
        }
        index = ref.table->FindIndexCovering(ordinals);
      }
      if (index != nullptr) {
        for (size_t ord : index->column_ordinals()) {
          const Expr* key_expr = nullptr;
          for (const IndexableEquality& eq : equalities) {
            if (eq.column_ordinal == ord) {
              key_expr = eq.key_expr;
              break;
            }
          }
          key_exprs.push_back(key_expr);
        }
      }
    }
    if (index != nullptr) {
      std::vector<std::string> cols;
      const std::vector<size_t>& ordinals = index->column_ordinals();
      for (size_t i = 0; i < ordinals.size(); ++i) {
        std::string col = ref.table->schema().columns()[ordinals[i]].name;
        if (i < key_exprs.size() && key_exprs[i] != nullptr) {
          col += " = " + RenderKeyExpr(*key_exprs[i], options);
        }
        cols.push_back(std::move(col));
      }
      out->append(" (index " + index->name() + " on " + Join(cols, ", ") +
                  ")");
    } else {
      out->append(" (seq scan)");
    }
    AppendEstimate(est_rows, seq_forced, out);
    if (options.profile != nullptr) {
      AppendActuals(options.profile->FindScan(&stmt, slot), options, out);
    }
    out->push_back('\n');
  }
  if (stmt.where != nullptr) {
    ExplainSubqueries(*stmt.where, depth + 1, options, out);
  }
}

}  // namespace

std::string ExplainPlan(const SelectStmt& stmt) {
  return ExplainPlan(stmt, ExplainOptions{});
}

std::string ExplainPlan(const SelectStmt& stmt,
                        const ExplainOptions& options) {
  std::string out;
  ExplainSelect(stmt, 0, options, &out);
  return out;
}

}  // namespace p3pdb::sqldb
