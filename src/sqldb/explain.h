// EXPLAIN: renders the access-path decisions the executor will make for a
// bound SELECT — which tables are probed through which hash index and which
// fall back to sequential scans, with subqueries indented. This is how the
// schema-ablation experiments show *why* the Figure 15 queries beat the
// Figure 13 ones.

#ifndef P3PDB_SQLDB_EXPLAIN_H_
#define P3PDB_SQLDB_EXPLAIN_H_

#include <string>

#include "sqldb/ast.h"

namespace p3pdb::sqldb {

/// Produces the plan text for a *bound* SELECT (Database::Execute binds
/// before calling this for EXPLAIN statements). One line per plan node:
///
///   select
///     scan ApplicablePolicy (seq scan)
///     exists-subquery
///       scan Policy (index pk_Policy on policy_id)
///       ...
std::string ExplainPlan(const SelectStmt& stmt);

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_EXPLAIN_H_
