// EXPLAIN: renders the access-path decisions the executor will make for a
// bound SELECT — which tables are probed through which hash index and which
// fall back to sequential scans, with subqueries indented. This is how the
// schema-ablation experiments show *why* the Figure 15 queries beat the
// Figure 13 ones.

#ifndef P3PDB_SQLDB_EXPLAIN_H_
#define P3PDB_SQLDB_EXPLAIN_H_

#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/executor.h"
#include "sqldb/value.h"

namespace p3pdb::sqldb {

/// Optional decorations for the plan text.
struct ExplainOptions {
  /// When set, `?` placeholders in index-key expressions render with their
  /// bound value — `?[=3]` — so parameterized-mode plans are readable.
  const std::vector<Value>* params = nullptr;
  /// When set (EXPLAIN ANALYZE), each node line gains its actual row count,
  /// loop count, and inclusive elapsed time; nodes the execution never
  /// reached render as "(never executed)".
  const PlanProfile* profile = nullptr;
};

/// Produces the plan text for a *bound* SELECT (Database::Execute binds
/// before calling this for EXPLAIN statements). One line per plan node:
///
///   select
///     scan ApplicablePolicy (seq scan)
///     exists-subquery
///       scan Policy (index pk_Policy on policy_id = ?[=3])
///       ...
///
/// With `options.profile`, nodes carry actuals:
///
///   select (actual rows=1 loops=1 time=12.4us)
std::string ExplainPlan(const SelectStmt& stmt);
std::string ExplainPlan(const SelectStmt& stmt, const ExplainOptions& options);

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_EXPLAIN_H_
