#include "sqldb/file_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace p3pdb::sqldb {

namespace {

class PosixFileBackend : public FileBackend {
 public:
  explicit PosixFileBackend(int fd) : fd_(fd) {}
  ~PosixFileBackend() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadAt(uint64_t offset, void* buf, size_t len,
                size_t* bytes_read) override {
    size_t done = 0;
    auto* out = static_cast<uint8_t*>(buf);
    while (done < len) {
      ssize_t n = ::pread(fd_, out + done, len - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("pread: ") + std::strerror(errno));
      }
      if (n == 0) break;  // EOF
      done += static_cast<size_t>(n);
    }
    *bytes_read = done;
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t len) override {
    size_t done = 0;
    const auto* in = static_cast<const uint8_t*>(buf);
    while (done < len) {
      ssize_t n = ::pwrite(fd_, in + done, len - done,
                           static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("pwrite: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal(std::string("fsync: ") + std::strerror(errno));
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::Internal(std::string("ftruncate: ") +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      return Status::Internal(std::string("lseek: ") + std::strerror(errno));
    }
    return static_cast<uint64_t>(end);
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<FileBackend>> OpenPosixFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("open '" + path + "': " + std::strerror(errno));
  }
  return std::unique_ptr<FileBackend>(std::make_unique<PosixFileBackend>(fd));
}

Status FaultInjectingFileBackend::WriteAt(uint64_t offset, const void* buf,
                                          size_t len) {
  const uint64_t op =
      plan_->op_counter->fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_->crash_at_op != 0 && op >= plan_->crash_at_op) {
    double frac = plan_->partial_fraction;
    if (frac < 0.0) frac = 0.0;
    if (frac > 1.0) frac = 1.0;
    const auto prefix = static_cast<size_t>(static_cast<double>(len) * frac);
    if (prefix > 0) {
      (void)inner_->WriteAt(offset, buf, prefix);
    }
    (void)inner_->Sync();  // the torn prefix is what recovery will see
    if (plan_->on_crash) {
      plan_->on_crash();
    } else {
      ::_exit(kCrashExitCode);
    }
    return Status::Internal("injected crash at write op " +
                            std::to_string(op));
  }
  return inner_->WriteAt(offset, buf, len);
}

FileBackendFactory MakeFaultInjectingFactory(std::shared_ptr<FaultPlan> plan) {
  return [plan](const std::string& path) -> Result<std::unique_ptr<FileBackend>> {
    P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<FileBackend> inner,
                           OpenPosixFile(path));
    return std::unique_ptr<FileBackend>(
        std::make_unique<FaultInjectingFileBackend>(std::move(inner), plan));
  };
}

}  // namespace p3pdb::sqldb
