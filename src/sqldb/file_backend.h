// FileBackend: the byte-level I/O seam under the disk-backed storage engine.
//
// Everything the storage engine writes to disk — data-file pages, WAL
// records, meta blocks — goes through this interface, so a test can swap in
// a FaultInjectingFileBackend that kills the process at the Nth write
// (optionally after flushing only a prefix of that write, modelling a torn
// mid-page or mid-WAL-record write). This is what makes the kill-and-recover
// harness deterministic: a (seed, crash-op) pair names an exact byte
// position at which the "machine died".

#ifndef P3PDB_SQLDB_FILE_BACKEND_H_
#define P3PDB_SQLDB_FILE_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"

namespace p3pdb::sqldb {

/// Positioned I/O over one file. Implementations need not be thread-safe;
/// the storage engine serializes all mutations (the server's install lock
/// already guarantees single-writer).
class FileBackend {
 public:
  virtual ~FileBackend() = default;

  /// Reads up to `len` bytes at `offset`. `*bytes_read` < len means EOF was
  /// reached; that is not an error.
  virtual Status ReadAt(uint64_t offset, void* buf, size_t len,
                        size_t* bytes_read) = 0;
  /// Writes exactly `len` bytes at `offset`, extending the file if needed.
  virtual Status WriteAt(uint64_t offset, const void* buf, size_t len) = 0;
  /// Flushes written data to stable storage (fsync).
  virtual Status Sync() = 0;
  /// Truncates (or extends with zeros) the file to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;
  virtual Result<uint64_t> Size() = 0;
};

/// Opens (creating if absent) a POSIX file for read/write positioned I/O.
Result<std::unique_ptr<FileBackend>> OpenPosixFile(const std::string& path);

/// Produces the backend for each file the storage engine opens (data file,
/// WAL). The default factory is OpenPosixFile; tests install one that wraps
/// the result in a FaultInjectingFileBackend.
using FileBackendFactory =
    std::function<Result<std::unique_ptr<FileBackend>>(const std::string&)>;

/// Shared crash schedule for a set of fault-injecting backends. The write-op
/// counter is shared across every file of one database, so "crash at op N"
/// addresses the Nth write the engine performs anywhere (page, WAL, meta).
struct FaultPlan {
  /// Monotonic count of WriteAt calls across all wrapped backends.
  std::shared_ptr<std::atomic<uint64_t>> op_counter =
      std::make_shared<std::atomic<uint64_t>>(0);
  /// 1-based op index at which to crash; 0 = never crash.
  uint64_t crash_at_op = 0;
  /// Fraction of the fatal write's bytes flushed before the crash — 0.0
  /// drops the write entirely, 0.5 leaves a torn half-record/half-page,
  /// 1.0 completes the write and crashes just after it.
  double partial_fraction = 0.0;
  /// Invoked at the crash point. Defaults to _exit(kCrashExitCode) so the
  /// child of a fork-based harness dies without running destructors (no
  /// clean close, no checkpoint — exactly a process kill). If the hook
  /// returns, the write reports Status::Internal instead.
  std::function<void()> on_crash;
};

/// Exit code used by the default FaultPlan crash hook, so a harness parent
/// can distinguish an injected crash from an ordinary child failure.
inline constexpr int kCrashExitCode = 87;

/// Wraps another backend and executes the FaultPlan: every WriteAt bumps the
/// shared op counter; the fatal op writes only its configured prefix, syncs
/// the inner file (the prefix is what a reopen will observe) and crashes.
class FaultInjectingFileBackend : public FileBackend {
 public:
  FaultInjectingFileBackend(std::unique_ptr<FileBackend> inner,
                            std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  Status ReadAt(uint64_t offset, void* buf, size_t len,
                size_t* bytes_read) override {
    return inner_->ReadAt(offset, buf, len, bytes_read);
  }
  Status WriteAt(uint64_t offset, const void* buf, size_t len) override;
  Status Sync() override { return inner_->Sync(); }
  Status Truncate(uint64_t size) override { return inner_->Truncate(size); }
  Result<uint64_t> Size() override { return inner_->Size(); }

 private:
  std::unique_ptr<FileBackend> inner_;
  std::shared_ptr<FaultPlan> plan_;
};

/// Factory wrapping OpenPosixFile results with the given plan. The plan is
/// shared: all files opened through one factory count against the same
/// crash_at_op schedule.
FileBackendFactory MakeFaultInjectingFactory(std::shared_ptr<FaultPlan> plan);

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_FILE_BACKEND_H_
