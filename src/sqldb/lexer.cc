#include "sqldb/lexer.h"

#include "common/string_util.h"

namespace p3pdb::sqldb {

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto push = [&](TokenType type, std::string text, size_t offset) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = sql[i];
    if (IsAsciiSpace(c)) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsAsciiAlpha(c) || c == '_') {
      while (i < n && (IsAsciiAlpha(sql[i]) || IsAsciiDigit(sql[i]) ||
                       sql[i] == '_')) {
        ++i;
      }
      push(TokenType::kIdentifier, std::string(sql.substr(start, i - start)),
           start);
      continue;
    }
    if (IsAsciiDigit(c)) {
      int64_t value = 0;
      while (i < n && IsAsciiDigit(sql[i])) {
        value = value * 10 + (sql[i] - '0');
        ++i;
      }
      Token t;
      t.type = TokenType::kInteger;
      t.text = std::string(sql.substr(start, i - start));
      t.int_value = value;
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kString, std::move(text), start);
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLeftParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenType::kRightParen, ")", start);
        ++i;
        continue;
      case ',':
        push(TokenType::kComma, ",", start);
        ++i;
        continue;
      case '.':
        push(TokenType::kDot, ".", start);
        ++i;
        continue;
      case '*':
        push(TokenType::kStar, "*", start);
        ++i;
        continue;
      case ';':
        push(TokenType::kSemicolon, ";", start);
        ++i;
        continue;
      case '?':
        push(TokenType::kQuestion, "?", start);
        ++i;
        continue;
      case '=':
        push(TokenType::kOperator, "=", start);
        ++i;
        continue;
      case '<':
        if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kOperator, "<>", start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kOperator, "<=", start);
          i += 2;
        } else {
          push(TokenType::kOperator, "<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kOperator, ">=", start);
          i += 2;
        } else {
          push(TokenType::kOperator, ">", start);
          ++i;
        }
        continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kOperator, "<>", start);
          i += 2;
          continue;
        }
        return Status::ParseError("unexpected '!' at offset " +
                                  std::to_string(start));
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenType::kEnd, "", n);
  return tokens;
}

}  // namespace p3pdb::sqldb
