// SQL tokenizer.

#ifndef P3PDB_SQLDB_LEXER_H_
#define P3PDB_SQLDB_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace p3pdb::sqldb {

enum class TokenType {
  kIdentifier,  // unquoted word that is not punctuation (keywords included)
  kString,      // 'text' with '' escaping
  kInteger,     // [0-9]+
  kOperator,    // = <> != < <= > >=
  kLeftParen,
  kRightParen,
  kComma,
  kDot,
  kStar,
  kSemicolon,
  kQuestion,    // ? bind-parameter placeholder
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier spelling / operator / decoded string
  int64_t int_value = 0;
  size_t offset = 0;    // byte offset in the input, for error messages

  /// Case-insensitive keyword check, valid for identifier tokens.
  bool IsKeyword(std::string_view kw) const;
};

/// Tokenizes `sql`. Comments (`-- ...` to end of line) are skipped. The
/// returned vector always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_LEXER_H_
