#include "sqldb/parser.h"

#include "common/string_util.h"
#include "sqldb/lexer.h"

namespace p3pdb::sqldb {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> ParseSingle() {
    P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, ParseStatement());
    Consume(TokenType::kSemicolon);
    if (Current().type != TokenType::kEnd) {
      return ErrorHere("unexpected input after statement");
    }
    return stmt;
  }

  Result<std::vector<std::unique_ptr<Statement>>> ParseAll() {
    std::vector<std::unique_ptr<Statement>> out;
    for (;;) {
      while (Consume(TokenType::kSemicolon)) {
      }
      if (Current().type == TokenType::kEnd) break;
      P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                             ParseStatement());
      out.push_back(std::move(stmt));
      if (Current().type != TokenType::kEnd &&
          !Consume(TokenType::kSemicolon)) {
        return ErrorHere("expected ';' between statements");
      }
    }
    return out;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool Consume(TokenType type) {
    if (Current().type == type) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (Current().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return ErrorHere("expected " + std::string(kw));
    }
    return Status::OK();
  }

  Status Expect(TokenType type, std::string_view what) {
    if (!Consume(type)) return ErrorHere("expected " + std::string(what));
    return Status::OK();
  }

  Status ErrorHere(std::string msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Current().offset) +
                              (Current().text.empty()
                                   ? std::string(" (end of input)")
                                   : " ('" + Current().text + "')"));
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Current().type != TokenType::kIdentifier) {
      return ErrorHere("expected " + std::string(what));
    }
    std::string name = Current().text;
    Advance();
    return name;
  }

  // ---- statements ----

  Result<std::unique_ptr<Statement>> ParseStatement() {
    param_count_ = 0;
    if (Current().IsKeyword("SELECT")) {
      P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect());
      sel->param_count = param_count_;
      return std::unique_ptr<Statement>(std::move(sel));
    }
    if (ConsumeKeyword("EXPLAIN")) {
      auto explain = std::make_unique<ExplainStmt>();
      explain->analyze = ConsumeKeyword("ANALYZE");
      P3PDB_ASSIGN_OR_RETURN(explain->select, ParseSelect());
      explain->select->param_count = param_count_;
      return std::unique_ptr<Statement>(std::move(explain));
    }
    if (ConsumeKeyword("INSERT")) return ParseInsert();
    if (ConsumeKeyword("UPDATE")) return ParseUpdate();
    if (ConsumeKeyword("DELETE")) return ParseDelete();
    if (ConsumeKeyword("CREATE")) return ParseCreate();
    if (ConsumeKeyword("DROP")) return ParseDrop();
    return ErrorHere("expected a SQL statement");
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    P3PDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto select = std::make_unique<SelectStmt>();
    if (ConsumeKeyword("DISTINCT")) select->distinct = true;

    // Select list.
    for (;;) {
      SelectItem item;
      if (Consume(TokenType::kStar)) {
        item.is_star = true;
      } else {
        P3PDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          P3PDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        }
      }
      select->items.push_back(std::move(item));
      if (!Consume(TokenType::kComma)) break;
    }

    if (ConsumeKeyword("FROM")) {
      for (;;) {
        TableRef ref;
        P3PDB_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier("table name"));
        // Optional alias: a bare identifier that is not a clause keyword.
        if (Current().type == TokenType::kIdentifier && !IsClauseKeyword()) {
          ref.alias = Current().text;
          Advance();
        } else {
          ref.alias = ref.table_name;
        }
        select->from.push_back(std::move(ref));
        if (!Consume(TokenType::kComma)) break;
      }
    }

    if (ConsumeKeyword("WHERE")) {
      P3PDB_ASSIGN_OR_RETURN(select->where, ParseExpr());
    }
    if (Current().IsKeyword("GROUP")) {
      Advance();
      P3PDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        P3PDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        select->group_by.push_back(std::move(e));
        if (!Consume(TokenType::kComma)) break;
      }
    }
    if (Current().IsKeyword("ORDER")) {
      Advance();
      P3PDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        OrderByItem item;
        P3PDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        select->order_by.push_back(std::move(item));
        if (!Consume(TokenType::kComma)) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Current().type != TokenType::kInteger) {
        return ErrorHere("expected LIMIT count");
      }
      select->limit = Current().int_value;
      Advance();
    }
    return select;
  }

  bool IsClauseKeyword() const {
    static constexpr std::string_view kClauses[] = {
        "WHERE", "GROUP", "ORDER", "LIMIT", "ON",     "SET",
        "AND",   "OR",    "AS",    "FROM",  "VALUES", "UNION"};
    for (std::string_view kw : kClauses) {
      if (Current().IsKeyword(kw)) return true;
    }
    return false;
  }

  Result<std::unique_ptr<Statement>> ParseInsert() {
    P3PDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto insert = std::make_unique<InsertStmt>();
    P3PDB_ASSIGN_OR_RETURN(insert->table_name,
                           ExpectIdentifier("table name"));
    if (Consume(TokenType::kLeftParen)) {
      for (;;) {
        P3PDB_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("column name"));
        insert->columns.push_back(std::move(col));
        if (!Consume(TokenType::kComma)) break;
      }
      P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
    }
    P3PDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    for (;;) {
      P3PDB_RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'('"));
      std::vector<ExprPtr> row;
      for (;;) {
        P3PDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!Consume(TokenType::kComma)) break;
      }
      P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
      insert->rows.push_back(std::move(row));
      if (!Consume(TokenType::kComma)) break;
    }
    return std::unique_ptr<Statement>(std::move(insert));
  }

  Result<std::unique_ptr<Statement>> ParseUpdate() {
    auto update = std::make_unique<UpdateStmt>();
    P3PDB_ASSIGN_OR_RETURN(update->table_name,
                           ExpectIdentifier("table name"));
    P3PDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
    for (;;) {
      UpdateStmt::Assignment assignment;
      P3PDB_ASSIGN_OR_RETURN(assignment.column,
                             ExpectIdentifier("column name"));
      if (Current().type != TokenType::kOperator || Current().text != "=") {
        return ErrorHere("expected '=' in SET");
      }
      Advance();
      P3PDB_ASSIGN_OR_RETURN(assignment.value, ParseExpr());
      update->assignments.push_back(std::move(assignment));
      if (!Consume(TokenType::kComma)) break;
    }
    if (ConsumeKeyword("WHERE")) {
      P3PDB_ASSIGN_OR_RETURN(update->where, ParseExpr());
    }
    return std::unique_ptr<Statement>(std::move(update));
  }

  Result<std::unique_ptr<Statement>> ParseDelete() {
    P3PDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto del = std::make_unique<DeleteStmt>();
    P3PDB_ASSIGN_OR_RETURN(del->table_name, ExpectIdentifier("table name"));
    if (ConsumeKeyword("WHERE")) {
      P3PDB_ASSIGN_OR_RETURN(del->where, ParseExpr());
    }
    return std::unique_ptr<Statement>(std::move(del));
  }

  Result<std::unique_ptr<Statement>> ParseCreate() {
    bool unique = ConsumeKeyword("UNIQUE");
    if (ConsumeKeyword("INDEX")) {
      auto ci = std::make_unique<CreateIndexStmt>();
      ci->unique = unique;
      P3PDB_ASSIGN_OR_RETURN(ci->index_name, ExpectIdentifier("index name"));
      P3PDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
      P3PDB_ASSIGN_OR_RETURN(ci->table_name, ExpectIdentifier("table name"));
      P3PDB_RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'('"));
      for (;;) {
        P3PDB_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("column name"));
        ci->columns.push_back(std::move(col));
        if (!Consume(TokenType::kComma)) break;
      }
      P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
      return std::unique_ptr<Statement>(std::move(ci));
    }
    if (unique) return ErrorHere("expected INDEX after UNIQUE");
    P3PDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto ct = std::make_unique<CreateTableStmt>();
    if (Current().IsKeyword("IF")) {
      Advance();
      P3PDB_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      P3PDB_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      ct->if_not_exists = true;
    }
    P3PDB_ASSIGN_OR_RETURN(std::string table_name,
                           ExpectIdentifier("table name"));
    P3PDB_RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'('"));
    std::vector<ColumnDef> columns;
    std::vector<std::string> primary_key;
    std::vector<ForeignKeyDef> fks;
    for (;;) {
      if (Current().IsKeyword("PRIMARY")) {
        Advance();
        P3PDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        P3PDB_RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'('"));
        for (;;) {
          P3PDB_ASSIGN_OR_RETURN(std::string col,
                                 ExpectIdentifier("column name"));
          primary_key.push_back(std::move(col));
          if (!Consume(TokenType::kComma)) break;
        }
        P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
      } else if (Current().IsKeyword("FOREIGN")) {
        Advance();
        P3PDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        ForeignKeyDef fk;
        P3PDB_RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'('"));
        for (;;) {
          P3PDB_ASSIGN_OR_RETURN(std::string col,
                                 ExpectIdentifier("column name"));
          fk.columns.push_back(std::move(col));
          if (!Consume(TokenType::kComma)) break;
        }
        P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
        P3PDB_RETURN_IF_ERROR(ExpectKeyword("REFERENCES"));
        P3PDB_ASSIGN_OR_RETURN(fk.referenced_table,
                               ExpectIdentifier("table name"));
        P3PDB_RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'('"));
        for (;;) {
          P3PDB_ASSIGN_OR_RETURN(std::string col,
                                 ExpectIdentifier("column name"));
          fk.referenced_columns.push_back(std::move(col));
          if (!Consume(TokenType::kComma)) break;
        }
        P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
        fks.push_back(std::move(fk));
      } else {
        ColumnDef col;
        P3PDB_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
        if (ConsumeKeyword("INTEGER") || ConsumeKeyword("INT") ||
            ConsumeKeyword("BIGINT")) {
          col.type = ColumnType::kInteger;
        } else if (ConsumeKeyword("VARCHAR") || ConsumeKeyword("CHAR")) {
          col.type = ColumnType::kText;
          if (Consume(TokenType::kLeftParen)) {
            if (Current().type != TokenType::kInteger) {
              return ErrorHere("expected length");
            }
            Advance();
            P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
          }
        } else if (ConsumeKeyword("TEXT") || ConsumeKeyword("CLOB")) {
          col.type = ColumnType::kText;
        } else {
          return ErrorHere("expected column type");
        }
        if (Current().IsKeyword("NOT")) {
          Advance();
          P3PDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
          col.nullable = false;
        } else {
          ConsumeKeyword("NULL");
        }
        columns.push_back(std::move(col));
      }
      if (!Consume(TokenType::kComma)) break;
    }
    P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
    ct->schema = TableSchema(std::move(table_name), std::move(columns));
    ct->schema.set_primary_key(std::move(primary_key));
    for (ForeignKeyDef& fk : fks) ct->schema.AddForeignKey(std::move(fk));
    return std::unique_ptr<Statement>(std::move(ct));
  }

  Result<std::unique_ptr<Statement>> ParseDrop() {
    P3PDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto drop = std::make_unique<DropTableStmt>();
    if (Current().IsKeyword("IF")) {
      Advance();
      P3PDB_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      drop->if_exists = true;
    }
    P3PDB_ASSIGN_OR_RETURN(drop->table_name, ExpectIdentifier("table name"));
    return std::unique_ptr<Statement>(std::move(drop));
  }

  // ---- expressions ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    P3PDB_ASSIGN_OR_RETURN(ExprPtr first, ParseAnd());
    if (!Current().IsKeyword("OR")) return first;
    std::vector<ExprPtr> operands;
    operands.push_back(std::move(first));
    while (ConsumeKeyword("OR")) {
      P3PDB_ASSIGN_OR_RETURN(ExprPtr next, ParseAnd());
      operands.push_back(std::move(next));
    }
    return ExprPtr(new LogicalExpr(/*and_op=*/false, std::move(operands)));
  }

  Result<ExprPtr> ParseAnd() {
    P3PDB_ASSIGN_OR_RETURN(ExprPtr first, ParseNot());
    if (!Current().IsKeyword("AND")) return first;
    std::vector<ExprPtr> operands;
    operands.push_back(std::move(first));
    while (ConsumeKeyword("AND")) {
      P3PDB_ASSIGN_OR_RETURN(ExprPtr next, ParseNot());
      operands.push_back(std::move(next));
    }
    return ExprPtr(new LogicalExpr(/*and_op=*/true, std::move(operands)));
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      // NOT EXISTS folds into the ExistsExpr.
      if (Current().IsKeyword("EXISTS")) {
        Advance();
        return ParseExistsBody(/*negated=*/true);
      }
      P3PDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return ExprPtr(new NotExpr(std::move(inner)));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParseExistsBody(bool negated) {
    P3PDB_RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'(' after EXISTS"));
    P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
    P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
    return ExprPtr(new ExistsExpr(negated, std::move(sub)));
  }

  Result<ExprPtr> ParsePredicate() {
    if (ConsumeKeyword("EXISTS")) return ParseExistsBody(/*negated=*/false);
    P3PDB_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());

    if (Current().type == TokenType::kOperator) {
      CompareOp op;
      const std::string& sym = Current().text;
      if (sym == "=") {
        op = CompareOp::kEq;
      } else if (sym == "<>") {
        op = CompareOp::kNe;
      } else if (sym == "<") {
        op = CompareOp::kLt;
      } else if (sym == "<=") {
        op = CompareOp::kLe;
      } else if (sym == ">") {
        op = CompareOp::kGt;
      } else {
        op = CompareOp::kGe;
      }
      Advance();
      P3PDB_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      return ExprPtr(new ComparisonExpr(op, std::move(left), std::move(right)));
    }
    if (Current().IsKeyword("IS")) {
      Advance();
      bool negated = ConsumeKeyword("NOT");
      P3PDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return ExprPtr(new IsNullExpr(std::move(left), negated));
    }
    bool negated = false;
    if (Current().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }
    if (ConsumeKeyword("IN")) {
      P3PDB_RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'(' after IN"));
      std::vector<ExprPtr> items;
      for (;;) {
        P3PDB_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        items.push_back(std::move(e));
        if (!Consume(TokenType::kComma)) break;
      }
      P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
      return ExprPtr(new InListExpr(std::move(left), std::move(items), negated));
    }
    if (ConsumeKeyword("LIKE")) {
      P3PDB_ASSIGN_OR_RETURN(ExprPtr pattern, ParsePrimary());
      char escape = '\0';
      if (ConsumeKeyword("ESCAPE")) {
        if (Current().type != TokenType::kString ||
            Current().text.size() != 1) {
          return ErrorHere("ESCAPE requires a single-character string");
        }
        escape = Current().text[0];
        Advance();
      }
      return ExprPtr(
          new LikeExpr(std::move(left), std::move(pattern), negated, escape));
    }
    return left;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Current();
    switch (tok.type) {
      case TokenType::kQuestion: {
        ExprPtr e(new ParamExpr(param_count_++));
        Advance();
        return e;
      }
      case TokenType::kString: {
        ExprPtr e(new LiteralExpr(Value::Text(tok.text)));
        Advance();
        return e;
      }
      case TokenType::kInteger: {
        ExprPtr e(new LiteralExpr(Value::Integer(tok.int_value)));
        Advance();
        return e;
      }
      case TokenType::kOperator:
        if (tok.text == "<" || tok.text == ">") break;
        break;
      case TokenType::kLeftParen: {
        Advance();
        P3PDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
        return inner;
      }
      case TokenType::kIdentifier: {
        if (tok.IsKeyword("NULL")) {
          Advance();
          return ExprPtr(new LiteralExpr(Value::Null()));
        }
        if (tok.IsKeyword("TRUE")) {
          Advance();
          return ExprPtr(new LiteralExpr(Value::Boolean(true)));
        }
        if (tok.IsKeyword("FALSE")) {
          Advance();
          return ExprPtr(new LiteralExpr(Value::Boolean(false)));
        }
        // Aggregate function?
        if (Peek(1).type == TokenType::kLeftParen) {
          if (tok.IsKeyword("COUNT")) {
            Advance();
            Advance();  // '('
            if (Consume(TokenType::kStar)) {
              P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
              return ExprPtr(new AggregateExpr(AggFunc::kCountStar, nullptr));
            }
            P3PDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
            return ExprPtr(new AggregateExpr(AggFunc::kCount, std::move(arg)));
          }
          AggFunc func;
          bool is_agg = true;
          if (tok.IsKeyword("MIN")) {
            func = AggFunc::kMin;
          } else if (tok.IsKeyword("MAX")) {
            func = AggFunc::kMax;
          } else if (tok.IsKeyword("SUM")) {
            func = AggFunc::kSum;
          } else {
            is_agg = false;
            func = AggFunc::kCount;
          }
          if (is_agg) {
            Advance();
            Advance();  // '('
            P3PDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            P3PDB_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
            return ExprPtr(new AggregateExpr(func, std::move(arg)));
          }
        }
        // Column reference: ident or ident.ident.
        std::string first = tok.text;
        Advance();
        if (Consume(TokenType::kDot)) {
          P3PDB_ASSIGN_OR_RETURN(std::string col,
                                 ExpectIdentifier("column name"));
          return ExprPtr(new ColumnRefExpr(std::move(first), std::move(col)));
        }
        return ExprPtr(new ColumnRefExpr("", std::move(first)));
      }
      default:
        break;
    }
    return ErrorHere("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  // `?` placeholders seen so far in the current statement; becomes the root
  // SELECT's param_count.
  size_t param_count_ = 0;
};

}  // namespace

Result<std::unique_ptr<Statement>> ParseStatement(std::string_view sql) {
  P3PDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSingle();
}

Result<std::vector<std::unique_ptr<Statement>>> ParseScript(
    std::string_view sql) {
  P3PDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

}  // namespace p3pdb::sqldb
