// Recursive-descent SQL parser producing the AST of ast.h.

#ifndef P3PDB_SQLDB_PARSER_H_
#define P3PDB_SQLDB_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sqldb/ast.h"

namespace p3pdb::sqldb {

/// Parses a single SQL statement (a trailing semicolon is allowed).
Result<std::unique_ptr<Statement>> ParseStatement(std::string_view sql);

/// Parses a semicolon-separated script. Empty statements are skipped.
Result<std::vector<std::unique_ptr<Statement>>> ParseScript(
    std::string_view sql);

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_PARSER_H_
