#include "sqldb/planner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "sqldb/executor.h"
#include "sqldb/stats.h"
#include "sqldb/table.h"

namespace p3pdb::sqldb {
namespace {

bool RefsEscape(const Expr& e, int depth);

/// True when any part of `s` references a scope more than `depth` SELECTs
/// above it.
bool SelectRefsEscape(const SelectStmt& s, int depth) {
  for (const SelectItem& item : s.items) {
    if (!item.is_star && RefsEscape(*item.expr, depth)) return true;
  }
  if (s.where != nullptr && RefsEscape(*s.where, depth)) return true;
  for (const ExprPtr& g : s.group_by) {
    if (RefsEscape(*g, depth)) return true;
  }
  for (const OrderByItem& ob : s.order_by) {
    if (RefsEscape(*ob.expr, depth)) return true;
  }
  return false;
}

/// True when `e` contains a column reference that resolves more than
/// `depth` SELECT levels above where `e` sits.
bool RefsEscape(const Expr& e, int depth) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParam:
      return false;
    case ExprKind::kColumnRef:
      return static_cast<const ColumnRefExpr&>(e).level > depth;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      return RefsEscape(*c.left, depth) || RefsEscape(*c.right, depth);
    }
    case ExprKind::kLogical: {
      for (const ExprPtr& op : static_cast<const LogicalExpr&>(e).operands) {
        if (RefsEscape(*op, depth)) return true;
      }
      return false;
    }
    case ExprKind::kNot:
      return RefsEscape(*static_cast<const NotExpr&>(e).operand, depth);
    case ExprKind::kExists:
      return SelectRefsEscape(*static_cast<const ExistsExpr&>(e).subquery,
                              depth + 1);
    case ExprKind::kHashJoin: {
      const auto& hj = static_cast<const HashJoinExpr&>(e);
      for (const ExprPtr& pk : hj.probe_keys) {
        if (RefsEscape(*pk, depth)) return true;
      }
      return SelectRefsEscape(*hj.build, depth + 1);
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      if (RefsEscape(*in.operand, depth)) return true;
      for (const ExprPtr& item : in.items) {
        if (RefsEscape(*item, depth)) return true;
      }
      return false;
    }
    case ExprKind::kIsNull:
      return RefsEscape(*static_cast<const IsNullExpr&>(e).operand, depth);
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(e);
      return RefsEscape(*lk.operand, depth) || RefsEscape(*lk.pattern, depth);
    }
    case ExprKind::kAggregate: {
      const auto& agg = static_cast<const AggregateExpr&>(e);
      return agg.arg != nullptr && RefsEscape(*agg.arg, depth);
    }
  }
  return true;  // unknown kind: assume the worst
}

bool SelectContainsParam(const SelectStmt& s);

bool ContainsParam(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return false;
    case ExprKind::kParam:
      return true;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      return ContainsParam(*c.left) || ContainsParam(*c.right);
    }
    case ExprKind::kLogical: {
      for (const ExprPtr& op : static_cast<const LogicalExpr&>(e).operands) {
        if (ContainsParam(*op)) return true;
      }
      return false;
    }
    case ExprKind::kNot:
      return ContainsParam(*static_cast<const NotExpr&>(e).operand);
    case ExprKind::kExists:
      return SelectContainsParam(*static_cast<const ExistsExpr&>(e).subquery);
    case ExprKind::kHashJoin: {
      const auto& hj = static_cast<const HashJoinExpr&>(e);
      for (const ExprPtr& pk : hj.probe_keys) {
        if (ContainsParam(*pk)) return true;
      }
      return SelectContainsParam(*hj.build);
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      if (ContainsParam(*in.operand)) return true;
      for (const ExprPtr& item : in.items) {
        if (ContainsParam(*item)) return true;
      }
      return false;
    }
    case ExprKind::kIsNull:
      return ContainsParam(*static_cast<const IsNullExpr&>(e).operand);
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(e);
      return ContainsParam(*lk.operand) || ContainsParam(*lk.pattern);
    }
    case ExprKind::kAggregate: {
      const auto& agg = static_cast<const AggregateExpr&>(e);
      return agg.arg != nullptr && ContainsParam(*agg.arg);
    }
  }
  return true;
}

bool SelectContainsParam(const SelectStmt& s) {
  for (const SelectItem& item : s.items) {
    if (!item.is_star && ContainsParam(*item.expr)) return true;
  }
  if (s.where != nullptr && ContainsParam(*s.where)) return true;
  for (const ExprPtr& g : s.group_by) {
    if (ContainsParam(*g)) return true;
  }
  for (const OrderByItem& ob : s.order_by) {
    if (ContainsParam(*ob.expr)) return true;
  }
  return false;
}

void CollectTablesExpr(const Expr& e, std::vector<const Table*>* out);

/// Every table the select reads, FROM lists of nested subqueries included.
void CollectTables(const SelectStmt& s, std::vector<const Table*>* out) {
  for (const TableRef& tr : s.from) {
    if (tr.table != nullptr) out->push_back(tr.table);
  }
  if (s.where != nullptr) CollectTablesExpr(*s.where, out);
}

void CollectTablesExpr(const Expr& e, std::vector<const Table*>* out) {
  switch (e.kind) {
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      CollectTablesExpr(*c.left, out);
      CollectTablesExpr(*c.right, out);
      return;
    }
    case ExprKind::kLogical:
      for (const ExprPtr& op : static_cast<const LogicalExpr&>(e).operands) {
        CollectTablesExpr(*op, out);
      }
      return;
    case ExprKind::kNot:
      CollectTablesExpr(*static_cast<const NotExpr&>(e).operand, out);
      return;
    case ExprKind::kExists:
      CollectTables(*static_cast<const ExistsExpr&>(e).subquery, out);
      return;
    case ExprKind::kHashJoin:
      CollectTables(*static_cast<const HashJoinExpr&>(e).build, out);
      return;
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      CollectTablesExpr(*in.operand, out);
      for (const ExprPtr& item : in.items) CollectTablesExpr(*item, out);
      return;
    }
    case ExprKind::kIsNull:
      CollectTablesExpr(*static_cast<const IsNullExpr&>(e).operand, out);
      return;
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(e);
      CollectTablesExpr(*lk.operand, out);
      CollectTablesExpr(*lk.pattern, out);
      return;
    }
    default:
      return;
  }
}

/// Owning counterpart of the executor's FlattenAnd: dismantles a tree of
/// nested ANDs into its conjuncts, preserving left-to-right order.
void FlattenAndOwned(ExprPtr e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kLogical) {
    auto* l = static_cast<LogicalExpr*>(e.get());
    if (l->is_and) {
      for (ExprPtr& op : l->operands) FlattenAndOwned(std::move(op), out);
      return;
    }
  }
  out->push_back(std::move(e));
}

/// Read-only view of the same flattening, for the eligibility check.
void FlattenAndView(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kLogical) {
    const auto* l = static_cast<const LogicalExpr*>(e);
    if (l->is_and) {
      for (const ExprPtr& op : l->operands) FlattenAndView(op.get(), out);
      return;
    }
  }
  out->push_back(e);
}

// ---------------------------------------------------------------------------
// Cardinality estimation (cost model; see stats.h)
// ---------------------------------------------------------------------------
//
// Textbook selectivity formulas over the statistics catalog:
//   col = x        ->  1 / NDV(col)        (uniformity assumption)
//   col <> x       ->  1 - 1/NDV
//   range compare  ->  1/3
//   col IS NULL    ->  null_fraction(col)
//   col IN (n...)  ->  min(1, n / NDV)
//   LIKE           ->  1/4
//   AND            ->  product (independence assumption)
//   OR             ->  1 - prod(1 - s_i)
// Conjuncts containing subqueries, or level-0 references to other FROM
// slots (join predicates), contribute selectivity 1 — estimates stay
// conservative rather than guessing at correlations.

/// A level-0 column reference belonging to FROM slot `slot`, else nullptr.
const ColumnRefExpr* SlotColumn(const Expr& e, size_t slot) {
  if (e.kind != ExprKind::kColumnRef) return nullptr;
  const auto& ref = static_cast<const ColumnRefExpr&>(e);
  if (ref.level != 0 || ref.table_slot != slot) return nullptr;
  return &ref;
}

/// True when `e` can be folded into a selectivity estimate for `slot`: no
/// subqueries anywhere, and every level-0 column reference belongs to the
/// slot (outer references and bind params act as opaque constants).
bool EstimableForSlot(const Expr& e, size_t slot) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParam:
      return true;
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      return ref.level != 0 || ref.table_slot == slot;
    }
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      return EstimableForSlot(*c.left, slot) &&
             EstimableForSlot(*c.right, slot);
    }
    case ExprKind::kLogical: {
      for (const ExprPtr& op : static_cast<const LogicalExpr&>(e).operands) {
        if (!EstimableForSlot(*op, slot)) return false;
      }
      return true;
    }
    case ExprKind::kNot:
      return EstimableForSlot(*static_cast<const NotExpr&>(e).operand, slot);
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      if (!EstimableForSlot(*in.operand, slot)) return false;
      for (const ExprPtr& item : in.items) {
        if (!EstimableForSlot(*item, slot)) return false;
      }
      return true;
    }
    case ExprKind::kIsNull:
      return EstimableForSlot(*static_cast<const IsNullExpr&>(e).operand,
                              slot);
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(e);
      return EstimableForSlot(*lk.operand, slot) &&
             EstimableForSlot(*lk.pattern, slot);
    }
    default:
      return false;  // EXISTS, hash joins, aggregates
  }
}

double EqSelectivity(const Table& table, size_t ordinal,
                     const StatsCatalog& catalog) {
  const double ndv = catalog.EstimatedNdv(&table, ordinal);
  if (ndv < 1.0) return 1.0;  // no data observed: assume nothing
  return std::min(1.0, 1.0 / ndv);
}

/// Range selectivity for `col <op> literal` by interpolating the literal
/// against the column's observed [min, max] span under the uniform
/// assumption — (v - lo) / (hi - lo) of the rows fall below v. Clamped to
/// [0.001, 1] so a literal outside the span never zeroes a cardinality
/// product outright. Falls back to the System R 1/3 guess when the literal
/// or the extrema are not integers (or no data has been observed).
double RangeSelectivity(CompareOp op, const Table& table, size_t ordinal,
                        const Value* literal, const StatsCatalog& catalog) {
  constexpr double kDefault = 1.0 / 3.0;
  if (literal == nullptr || literal->type() != ValueType::kInteger) {
    return kDefault;
  }
  const auto minmax = catalog.MinMax(&table, ordinal);
  if (!minmax.has_value() ||
      minmax->first.type() != ValueType::kInteger ||
      minmax->second.type() != ValueType::kInteger) {
    return kDefault;
  }
  const double lo = static_cast<double>(minmax->first.AsInteger());
  const double hi = static_cast<double>(minmax->second.AsInteger());
  const double v = static_cast<double>(literal->AsInteger());
  const double span = hi - lo;
  double below;  // fraction of rows strictly below v (uniform assumption)
  if (span <= 0.0) {
    below = v > lo ? 1.0 : 0.0;  // single-valued column: all or nothing
  } else {
    below = (v - lo) / span;
  }
  double sel;
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      sel = below;
      break;
    case CompareOp::kGt:
    case CompareOp::kGe:
      sel = 1.0 - below;
      break;
    default:
      return kDefault;
  }
  return std::clamp(sel, 0.001, 1.0);
}

/// `5 < col` is `col > 5`: the op as seen from the column side.
CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

double ConjSelectivity(const Expr& e, size_t slot, const Table& table,
                       const StatsCatalog& catalog) {
  switch (e.kind) {
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      const ColumnRefExpr* col = SlotColumn(*c.left, slot);
      const bool col_on_left = col != nullptr;
      if (col == nullptr) col = SlotColumn(*c.right, slot);
      if (col == nullptr) return 1.0;
      switch (c.op) {
        case CompareOp::kEq:
          return EqSelectivity(table, col->column_ordinal, catalog);
        case CompareOp::kNe:
          return 1.0 - EqSelectivity(table, col->column_ordinal, catalog);
        default: {
          const Expr& other = col_on_left ? *c.right : *c.left;
          const Value* literal =
              other.kind == ExprKind::kLiteral
                  ? &static_cast<const LiteralExpr&>(other).value
                  : nullptr;
          const CompareOp op = col_on_left ? c.op : FlipCompare(c.op);
          return RangeSelectivity(op, table, col->column_ordinal, literal,
                                  catalog);
        }
      }
    }
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(e);
      if (l.is_and) {
        double sel = 1.0;
        for (const ExprPtr& op : l.operands) {
          sel *= ConjSelectivity(*op, slot, table, catalog);
        }
        return sel;
      }
      double pass_none = 1.0;
      for (const ExprPtr& op : l.operands) {
        pass_none *= 1.0 - ConjSelectivity(*op, slot, table, catalog);
      }
      return 1.0 - pass_none;
    }
    case ExprKind::kNot:
      return 1.0 - ConjSelectivity(*static_cast<const NotExpr&>(e).operand,
                                   slot, table, catalog);
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      const ColumnRefExpr* col = SlotColumn(*in.operand, slot);
      if (col == nullptr) return 1.0;
      const double sel = std::min(
          1.0, static_cast<double>(in.items.size()) *
                   EqSelectivity(table, col->column_ordinal, catalog));
      return in.negated ? 1.0 - sel : sel;
    }
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(e);
      const ColumnRefExpr* col = SlotColumn(*isn.operand, slot);
      if (col == nullptr) return 1.0;
      const double nf = catalog.NullFraction(&table, col->column_ordinal);
      return isn.negated ? 1.0 - nf : nf;
    }
    case ExprKind::kLike:
      return static_cast<const LikeExpr&>(e).negated ? 0.75 : 0.25;
    default:
      return 1.0;
  }
}

/// Estimated rows surviving the WHERE conjuncts local to FROM slot `slot`.
/// `skip_escaping` additionally drops conjuncts referencing enclosing
/// scopes — the build-side estimate, where correlation equalities are
/// stripped before the build executes.
double EstimateSlotRows(const SelectStmt& s, size_t slot,
                        const StatsCatalog& catalog, bool skip_escaping) {
  const Table* table = s.from[slot].table;
  if (table == nullptr) return 0.0;
  double rows = catalog.EstimatedRows(table);
  if (s.where == nullptr) return rows;
  std::vector<const Expr*> conjuncts;
  FlattenAndView(s.where.get(), &conjuncts);
  double sel = 1.0;
  for (const Expr* c : conjuncts) {
    if (!EstimableForSlot(*c, slot)) continue;
    if (skip_escaping && RefsEscape(*c, 0)) continue;
    sel *= ConjSelectivity(*c, slot, *table, catalog);
  }
  return rows * sel;
}

/// Estimated row combinations a select enumerates (product over FROM).
double EstimateSelectRows(const SelectStmt& s, const StatsCatalog& catalog,
                          bool skip_escaping) {
  if (s.from.empty()) return 0.0;
  double rows = 1.0;
  for (size_t slot = 0; slot < s.from.size(); ++slot) {
    rows *= EstimateSlotRows(s, slot, catalog, skip_escaping);
  }
  return rows;
}

/// An eligible EXISTS stays correlated when the decorrelated build would
/// enumerate this many times more rows than the outer loop probes it.
constexpr double kCorrelatedBuildFactor = 8.0;

class Planner {
 public:
  Planner(PlannerStats* stats, const StatsCatalog* catalog)
      : stats_(stats), catalog_(catalog) {}

  void Plan(SelectStmt* stmt) {
    path_.push_back(stmt);
    if (stmt->where != nullptr) {
      PlanExpr(&stmt->where);
      if (catalog_ != nullptr) CostWhere(stmt);
    }
    path_.pop_back();
  }

 private:
  /// How one top-level conjunct of a candidate subquery classifies.
  struct Conjunct {
    bool is_correlation = false;
    bool left_is_inner = false;  // for correlations: which side is level 0
  };

  void PlanExpr(ExprPtr* slot) {
    switch ((*slot)->kind) {
      case ExprKind::kLogical: {
        auto* l = static_cast<LogicalExpr*>(slot->get());
        for (ExprPtr& op : l->operands) PlanExpr(&op);
        return;
      }
      case ExprKind::kNot:
        PlanExpr(&static_cast<NotExpr*>(slot->get())->operand);
        return;
      case ExprKind::kExists: {
        auto* exists = static_cast<ExistsExpr*>(slot->get());
        if (std::unique_ptr<HashJoinExpr> join = TryRewrite(exists)) {
          *slot = std::move(join);
          // Nested EXISTS travelled into the build as local conjuncts;
          // give them their own rewrite pass.
          Plan(static_cast<HashJoinExpr*>(slot->get())->build.get());
        } else {
          // Not eligible here; deeper levels may still be.
          Plan(exists->subquery.get());
        }
        return;
      }
      default:
        return;  // no subqueries below other kinds in this dialect
    }
  }

  /// Resolves the schema column type of a bound reference, or nullopt when
  /// the scope chain cannot be resolved (bail out rather than guess).
  std::optional<ColumnType> RefType(const ColumnRefExpr& ref,
                                    const SelectStmt* sub) const {
    const SelectStmt* scope = nullptr;
    if (ref.level == 0) {
      scope = sub;
    } else {
      // level 1 = innermost enclosing select = path_.back().
      if (static_cast<size_t>(ref.level) > path_.size()) return std::nullopt;
      scope = path_[path_.size() - static_cast<size_t>(ref.level)];
    }
    if (ref.table_slot >= scope->from.size()) return std::nullopt;
    const Table* table = scope->from[ref.table_slot].table;
    if (table == nullptr) return std::nullopt;
    const auto& columns = table->schema().columns();
    if (ref.column_ordinal >= columns.size()) return std::nullopt;
    return columns[ref.column_ordinal].type;
  }

  std::unique_ptr<HashJoinExpr> TryRewrite(ExistsExpr* exists) {
    SelectStmt* sub = exists->subquery.get();
    if (sub->from.empty() || sub->where == nullptr) return nullptr;
    if (SelectContainsParam(*sub)) return nullptr;

    // Phase 1: classify every top-level conjunct without touching the tree.
    std::vector<const Expr*> view;
    FlattenAndView(sub->where.get(), &view);
    std::vector<Conjunct> classes(view.size());
    size_t correlations = 0;
    for (size_t i = 0; i < view.size(); ++i) {
      const Expr* c = view[i];
      if (!RefsEscape(*c, 0)) continue;  // local conjunct
      // Escaping conjuncts must be `inner_col = outer_col` exactly.
      if (c->kind != ExprKind::kComparison) return nullptr;
      const auto* cmp = static_cast<const ComparisonExpr*>(c);
      if (cmp->op != CompareOp::kEq) return nullptr;
      if (cmp->left->kind != ExprKind::kColumnRef ||
          cmp->right->kind != ExprKind::kColumnRef) {
        return nullptr;
      }
      const auto* l = static_cast<const ColumnRefExpr*>(cmp->left.get());
      const auto* r = static_cast<const ColumnRefExpr*>(cmp->right.get());
      const ColumnRefExpr* inner = nullptr;
      const ColumnRefExpr* outer = nullptr;
      if (l->level == 0 && r->level >= 1) {
        inner = l;
        outer = r;
        classes[i].left_is_inner = true;
      } else if (r->level == 0 && l->level >= 1) {
        inner = r;
        outer = l;
      } else {
        return nullptr;  // e.g. outer_a = outer_b, or deeper-level pairs
      }
      std::optional<ColumnType> inner_type = RefType(*inner, sub);
      std::optional<ColumnType> outer_type = RefType(*outer, sub);
      if (!inner_type.has_value() || !outer_type.has_value() ||
          *inner_type != *outer_type) {
        return nullptr;
      }
      classes[i].is_correlation = true;
      ++correlations;
    }
    if (correlations == 0) return nullptr;

    // Cost gate: an eligible rewrite can still lose. When the build side
    // would enumerate far more rows than the outer loop will ever probe,
    // and the correlated path is an index point-lookup per outer row, the
    // rule rewrite is vetoed and the EXISTS stays correlated.
    if (catalog_ != nullptr && KeepCorrelated(*sub, view, classes)) {
      if (stats_ != nullptr) ++stats_->cost_exists_kept;
      return nullptr;
    }

    // Phase 2: eligible — dismantle the WHERE and assemble the join node.
    std::vector<ExprPtr> conjuncts;
    FlattenAndOwned(std::move(sub->where), &conjuncts);
    auto join = std::make_unique<HashJoinExpr>(exists->negated,
                                               std::move(exists->subquery));
    std::vector<ExprPtr> locals;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (!classes[i].is_correlation) {
        locals.push_back(std::move(conjuncts[i]));
        continue;
      }
      auto* cmp = static_cast<ComparisonExpr*>(conjuncts[i].get());
      ExprPtr inner_side = classes[i].left_is_inner ? std::move(cmp->left)
                                                    : std::move(cmp->right);
      ExprPtr outer_side = classes[i].left_is_inner ? std::move(cmp->right)
                                                    : std::move(cmp->left);
      join->build_keys.emplace_back(
          static_cast<ColumnRefExpr*>(inner_side.release()));
      // The probe expression now evaluates one scope closer to its target.
      static_cast<ColumnRefExpr*>(outer_side.get())->level -= 1;
      join->probe_keys.push_back(std::move(outer_side));
    }
    SelectStmt* build = join->build.get();
    if (locals.size() == 1) {
      build->where = std::move(locals[0]);
    } else if (!locals.empty()) {
      build->where =
          std::make_unique<LogicalExpr>(/*and_op=*/true, std::move(locals));
    }  // else: no residual predicate; build enumerates the whole table

    std::vector<const Table*> deps;
    CollectTables(*build, &deps);
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    join->dep_tables = std::move(deps);
    join->runtime = std::make_shared<HashJoinRuntime>();

    if (stats_ != nullptr) {
      if (join->anti) {
        ++stats_->anti_join_rewrites;
      } else {
        ++stats_->semi_join_rewrites;
      }
    }
    return join;
  }

  /// The cost model's rewrite veto (see planner.h). `view`/`classes` are
  /// the phase-1 classification of the subquery's conjuncts.
  bool KeepCorrelated(const SelectStmt& sub,
                      const std::vector<const Expr*>& view,
                      const std::vector<Conjunct>& classes) const {
    // The correlated plan is only competitive as a point lookup: every
    // correlation column must sit on one build slot with a covering index.
    std::vector<size_t> ordinals;
    size_t inner_slot = 0;
    bool have_slot = false;
    for (size_t i = 0; i < view.size(); ++i) {
      if (!classes[i].is_correlation) continue;
      const auto* cmp = static_cast<const ComparisonExpr*>(view[i]);
      const auto* inner = static_cast<const ColumnRefExpr*>(
          classes[i].left_is_inner ? cmp->left.get() : cmp->right.get());
      if (!have_slot) {
        inner_slot = inner->table_slot;
        have_slot = true;
      } else if (inner->table_slot != inner_slot) {
        return false;
      }
      ordinals.push_back(inner->column_ordinal);
    }
    if (!have_slot || inner_slot >= sub.from.size()) return false;
    const Table* table = sub.from[inner_slot].table;
    if (table == nullptr || table->FindIndexCovering(ordinals) == nullptr) {
      return false;
    }
    const double build_rows =
        EstimateSelectRows(sub, *catalog_, /*skip_escaping=*/true);
    const double outer_rows =
        path_.empty() ? 1.0
                      : EstimateSelectRows(*path_.back(), *catalog_,
                                           /*skip_escaping=*/false);
    return build_rows > kCorrelatedBuildFactor * std::max(1.0, outer_rows);
  }

  /// Post-rewrite cost pass over one select's WHERE: stamp every hash join
  /// with its estimated build cardinality, then reorder sibling joins under
  /// the top-level AND cheapest-build-first (scalar conjuncts keep their
  /// positions; the joins' three-valued AND verdict is order-independent).
  void CostWhere(SelectStmt* stmt) {
    StampJoinEstimates(stmt->where.get());
    if (stmt->where->kind != ExprKind::kLogical) return;
    auto* l = static_cast<LogicalExpr*>(stmt->where.get());
    if (!l->is_and) return;
    std::vector<size_t> join_slots;
    for (size_t i = 0; i < l->operands.size(); ++i) {
      if (l->operands[i]->kind == ExprKind::kHashJoin) join_slots.push_back(i);
    }
    if (join_slots.size() < 2) return;
    std::vector<ExprPtr> joins;
    joins.reserve(join_slots.size());
    for (size_t i : join_slots) joins.push_back(std::move(l->operands[i]));
    const auto build_rows = [](const ExprPtr& e) {
      return static_cast<const HashJoinExpr*>(e.get())->est_build_rows;
    };
    bool reordered = false;
    for (size_t i = 1; i < joins.size(); ++i) {
      if (build_rows(joins[i]) < build_rows(joins[i - 1])) reordered = true;
    }
    std::stable_sort(joins.begin(), joins.end(),
                     [&](const ExprPtr& a, const ExprPtr& b) {
                       return build_rows(a) < build_rows(b);
                     });
    for (size_t i = 0; i < join_slots.size(); ++i) {
      l->operands[join_slots[i]] = std::move(joins[i]);
    }
    if (reordered && stats_ != nullptr) ++stats_->cost_join_reorders;
  }

  void StampJoinEstimates(Expr* e) {
    switch (e->kind) {
      case ExprKind::kLogical:
        for (ExprPtr& op : static_cast<LogicalExpr*>(e)->operands) {
          StampJoinEstimates(op.get());
        }
        return;
      case ExprKind::kNot:
        StampJoinEstimates(static_cast<NotExpr*>(e)->operand.get());
        return;
      case ExprKind::kHashJoin: {
        auto* j = static_cast<HashJoinExpr*>(e);
        // Correlations were stripped into the keys, so no escaping
        // conjuncts remain in the build's WHERE.
        j->est_build_rows =
            EstimateSelectRows(*j->build, *catalog_, /*skip_escaping=*/false);
        return;
      }
      default:
        return;
    }
  }

  PlannerStats* stats_;
  const StatsCatalog* catalog_;  // null = pure rule-based planning
  std::vector<const SelectStmt*> path_;  // enclosing selects, innermost last
};

}  // namespace

void PlanSelect(SelectStmt* stmt, PlannerStats* stats,
                const StatsCatalog* catalog) {
  Planner planner(stats, catalog);
  planner.Plan(stmt);
}

namespace {

void AnnotateExpr(const Expr& e, const StatsCatalog* catalog,
                  PlannerStats* stats);

/// Resolves the access path of every FROM slot of `stmt`, mirroring the
/// executor's per-scan derivation exactly (same equality collection, same
/// FindIndexCovering tie-break) so plans and actuals match either way.
/// With a catalog, each slot is additionally costed: estimated rows are
/// stamped for EXPLAIN, and a syntactically chosen index whose key is so
/// unselective that the lookup would return most of the table (low-NDV
/// column) is overridden back to a sequential scan.
void AnnotateOne(SelectStmt* stmt, const StatsCatalog* catalog,
                 PlannerStats* stats) {
  stmt->slot_plans.assign(stmt->from.size(), SlotPlan{});
  for (size_t slot = 0; slot < stmt->from.size(); ++slot) {
    SlotPlan& sp = stmt->slot_plans[slot];
    const Table* table = stmt->from[slot].table;
    if (table == nullptr) continue;  // unbound (defensive); scalar would fail
    std::vector<IndexableEquality> equalities =
        CollectIndexableEqualities(stmt->where.get(), slot);
    if (!equalities.empty()) {
      std::vector<size_t> available;
      available.reserve(equalities.size());
      for (const IndexableEquality& eq : equalities) {
        available.push_back(eq.column_ordinal);
      }
      sp.index = table->FindIndexCovering(available);
    }
    if (sp.index != nullptr) {
      sp.key_exprs.reserve(sp.index->column_ordinals().size());
      for (size_t ord : sp.index->column_ordinals()) {
        const Expr* key_expr = nullptr;
        for (const IndexableEquality& eq : equalities) {
          if (eq.column_ordinal == ord) {
            key_expr = eq.key_expr;
            break;
          }
        }
        sp.key_exprs.push_back(key_expr);
      }
    }
    if (catalog != nullptr) {
      const double table_rows = catalog->EstimatedRows(table);
      if (sp.index == nullptr) {
        sp.est_rows = table_rows;
      } else {
        double key_sel = 1.0;
        for (size_t ord : sp.index->column_ordinals()) {
          key_sel *= EqSelectivity(*table, ord, *catalog);
        }
        // Index vs seq: a lookup expected to return around half the table
        // buys nothing over scanning it (and pays key evaluation plus
        // id-list chasing per loop). The threshold sits below the nominal
        // 1/2 so the HLL's estimate of a two-value column (NDV slightly
        // above 2 => selectivity slightly below 0.5) still trips it. Tiny
        // tables are left alone — either plan touches a handful of rows.
        if (key_sel >= 0.45 && table_rows >= 4.0) {
          sp.index = nullptr;
          sp.key_exprs.clear();
          sp.seq_forced = true;
          sp.est_rows = table_rows;
          if (stats != nullptr) ++stats->cost_seq_forced;
        } else {
          sp.est_rows = table_rows * key_sel;
        }
      }
    }
  }
  // Only the innermost slot may filter in chunks: outer slots must stay
  // row-at-a-time so EXISTS early-out never scans rows the scalar path
  // would not have touched.
  if (!stmt->from.empty() && stmt->where != nullptr) {
    stmt->slot_plans.back().vector_filter = true;
  }

  if (stmt->where != nullptr) AnnotateExpr(*stmt->where, catalog, stats);
  for (const SelectItem& item : stmt->items) {
    if (!item.is_star) AnnotateExpr(*item.expr, catalog, stats);
  }
  for (const ExprPtr& g : stmt->group_by) AnnotateExpr(*g, catalog, stats);
  for (const OrderByItem& ob : stmt->order_by) {
    AnnotateExpr(*ob.expr, catalog, stats);
  }
}

void AnnotateExpr(const Expr& e, const StatsCatalog* catalog,
                  PlannerStats* stats) {
  switch (e.kind) {
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      AnnotateExpr(*c.left, catalog, stats);
      AnnotateExpr(*c.right, catalog, stats);
      return;
    }
    case ExprKind::kLogical:
      for (const ExprPtr& op : static_cast<const LogicalExpr&>(e).operands) {
        AnnotateExpr(*op, catalog, stats);
      }
      return;
    case ExprKind::kNot:
      AnnotateExpr(*static_cast<const NotExpr&>(e).operand, catalog, stats);
      return;
    case ExprKind::kExists:
      AnnotateOne(static_cast<const ExistsExpr&>(e).subquery.get(), catalog,
                  stats);
      return;
    case ExprKind::kHashJoin:
      AnnotateOne(static_cast<const HashJoinExpr&>(e).build.get(), catalog,
                  stats);
      return;
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      AnnotateExpr(*in.operand, catalog, stats);
      for (const ExprPtr& item : in.items) {
        AnnotateExpr(*item, catalog, stats);
      }
      return;
    }
    case ExprKind::kIsNull:
      AnnotateExpr(*static_cast<const IsNullExpr&>(e).operand, catalog,
                   stats);
      return;
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(e);
      AnnotateExpr(*lk.operand, catalog, stats);
      AnnotateExpr(*lk.pattern, catalog, stats);
      return;
    }
    default:
      return;
  }
}

}  // namespace

void AnnotateSelect(SelectStmt* stmt, const StatsCatalog* catalog,
                    PlannerStats* stats) {
  AnnotateOne(stmt, catalog, stats);
}

}  // namespace p3pdb::sqldb
