#include "sqldb/planner.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sqldb/executor.h"
#include "sqldb/table.h"

namespace p3pdb::sqldb {
namespace {

bool RefsEscape(const Expr& e, int depth);

/// True when any part of `s` references a scope more than `depth` SELECTs
/// above it.
bool SelectRefsEscape(const SelectStmt& s, int depth) {
  for (const SelectItem& item : s.items) {
    if (!item.is_star && RefsEscape(*item.expr, depth)) return true;
  }
  if (s.where != nullptr && RefsEscape(*s.where, depth)) return true;
  for (const ExprPtr& g : s.group_by) {
    if (RefsEscape(*g, depth)) return true;
  }
  for (const OrderByItem& ob : s.order_by) {
    if (RefsEscape(*ob.expr, depth)) return true;
  }
  return false;
}

/// True when `e` contains a column reference that resolves more than
/// `depth` SELECT levels above where `e` sits.
bool RefsEscape(const Expr& e, int depth) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParam:
      return false;
    case ExprKind::kColumnRef:
      return static_cast<const ColumnRefExpr&>(e).level > depth;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      return RefsEscape(*c.left, depth) || RefsEscape(*c.right, depth);
    }
    case ExprKind::kLogical: {
      for (const ExprPtr& op : static_cast<const LogicalExpr&>(e).operands) {
        if (RefsEscape(*op, depth)) return true;
      }
      return false;
    }
    case ExprKind::kNot:
      return RefsEscape(*static_cast<const NotExpr&>(e).operand, depth);
    case ExprKind::kExists:
      return SelectRefsEscape(*static_cast<const ExistsExpr&>(e).subquery,
                              depth + 1);
    case ExprKind::kHashJoin: {
      const auto& hj = static_cast<const HashJoinExpr&>(e);
      for (const ExprPtr& pk : hj.probe_keys) {
        if (RefsEscape(*pk, depth)) return true;
      }
      return SelectRefsEscape(*hj.build, depth + 1);
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      if (RefsEscape(*in.operand, depth)) return true;
      for (const ExprPtr& item : in.items) {
        if (RefsEscape(*item, depth)) return true;
      }
      return false;
    }
    case ExprKind::kIsNull:
      return RefsEscape(*static_cast<const IsNullExpr&>(e).operand, depth);
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(e);
      return RefsEscape(*lk.operand, depth) || RefsEscape(*lk.pattern, depth);
    }
    case ExprKind::kAggregate: {
      const auto& agg = static_cast<const AggregateExpr&>(e);
      return agg.arg != nullptr && RefsEscape(*agg.arg, depth);
    }
  }
  return true;  // unknown kind: assume the worst
}

bool SelectContainsParam(const SelectStmt& s);

bool ContainsParam(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return false;
    case ExprKind::kParam:
      return true;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      return ContainsParam(*c.left) || ContainsParam(*c.right);
    }
    case ExprKind::kLogical: {
      for (const ExprPtr& op : static_cast<const LogicalExpr&>(e).operands) {
        if (ContainsParam(*op)) return true;
      }
      return false;
    }
    case ExprKind::kNot:
      return ContainsParam(*static_cast<const NotExpr&>(e).operand);
    case ExprKind::kExists:
      return SelectContainsParam(*static_cast<const ExistsExpr&>(e).subquery);
    case ExprKind::kHashJoin: {
      const auto& hj = static_cast<const HashJoinExpr&>(e);
      for (const ExprPtr& pk : hj.probe_keys) {
        if (ContainsParam(*pk)) return true;
      }
      return SelectContainsParam(*hj.build);
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      if (ContainsParam(*in.operand)) return true;
      for (const ExprPtr& item : in.items) {
        if (ContainsParam(*item)) return true;
      }
      return false;
    }
    case ExprKind::kIsNull:
      return ContainsParam(*static_cast<const IsNullExpr&>(e).operand);
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(e);
      return ContainsParam(*lk.operand) || ContainsParam(*lk.pattern);
    }
    case ExprKind::kAggregate: {
      const auto& agg = static_cast<const AggregateExpr&>(e);
      return agg.arg != nullptr && ContainsParam(*agg.arg);
    }
  }
  return true;
}

bool SelectContainsParam(const SelectStmt& s) {
  for (const SelectItem& item : s.items) {
    if (!item.is_star && ContainsParam(*item.expr)) return true;
  }
  if (s.where != nullptr && ContainsParam(*s.where)) return true;
  for (const ExprPtr& g : s.group_by) {
    if (ContainsParam(*g)) return true;
  }
  for (const OrderByItem& ob : s.order_by) {
    if (ContainsParam(*ob.expr)) return true;
  }
  return false;
}

void CollectTablesExpr(const Expr& e, std::vector<const Table*>* out);

/// Every table the select reads, FROM lists of nested subqueries included.
void CollectTables(const SelectStmt& s, std::vector<const Table*>* out) {
  for (const TableRef& tr : s.from) {
    if (tr.table != nullptr) out->push_back(tr.table);
  }
  if (s.where != nullptr) CollectTablesExpr(*s.where, out);
}

void CollectTablesExpr(const Expr& e, std::vector<const Table*>* out) {
  switch (e.kind) {
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      CollectTablesExpr(*c.left, out);
      CollectTablesExpr(*c.right, out);
      return;
    }
    case ExprKind::kLogical:
      for (const ExprPtr& op : static_cast<const LogicalExpr&>(e).operands) {
        CollectTablesExpr(*op, out);
      }
      return;
    case ExprKind::kNot:
      CollectTablesExpr(*static_cast<const NotExpr&>(e).operand, out);
      return;
    case ExprKind::kExists:
      CollectTables(*static_cast<const ExistsExpr&>(e).subquery, out);
      return;
    case ExprKind::kHashJoin:
      CollectTables(*static_cast<const HashJoinExpr&>(e).build, out);
      return;
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      CollectTablesExpr(*in.operand, out);
      for (const ExprPtr& item : in.items) CollectTablesExpr(*item, out);
      return;
    }
    case ExprKind::kIsNull:
      CollectTablesExpr(*static_cast<const IsNullExpr&>(e).operand, out);
      return;
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(e);
      CollectTablesExpr(*lk.operand, out);
      CollectTablesExpr(*lk.pattern, out);
      return;
    }
    default:
      return;
  }
}

/// Owning counterpart of the executor's FlattenAnd: dismantles a tree of
/// nested ANDs into its conjuncts, preserving left-to-right order.
void FlattenAndOwned(ExprPtr e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kLogical) {
    auto* l = static_cast<LogicalExpr*>(e.get());
    if (l->is_and) {
      for (ExprPtr& op : l->operands) FlattenAndOwned(std::move(op), out);
      return;
    }
  }
  out->push_back(std::move(e));
}

/// Read-only view of the same flattening, for the eligibility check.
void FlattenAndView(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kLogical) {
    const auto* l = static_cast<const LogicalExpr*>(e);
    if (l->is_and) {
      for (const ExprPtr& op : l->operands) FlattenAndView(op.get(), out);
      return;
    }
  }
  out->push_back(e);
}

class Planner {
 public:
  explicit Planner(PlannerStats* stats) : stats_(stats) {}

  void Plan(SelectStmt* stmt) {
    path_.push_back(stmt);
    if (stmt->where != nullptr) PlanExpr(&stmt->where);
    path_.pop_back();
  }

 private:
  /// How one top-level conjunct of a candidate subquery classifies.
  struct Conjunct {
    bool is_correlation = false;
    bool left_is_inner = false;  // for correlations: which side is level 0
  };

  void PlanExpr(ExprPtr* slot) {
    switch ((*slot)->kind) {
      case ExprKind::kLogical: {
        auto* l = static_cast<LogicalExpr*>(slot->get());
        for (ExprPtr& op : l->operands) PlanExpr(&op);
        return;
      }
      case ExprKind::kNot:
        PlanExpr(&static_cast<NotExpr*>(slot->get())->operand);
        return;
      case ExprKind::kExists: {
        auto* exists = static_cast<ExistsExpr*>(slot->get());
        if (std::unique_ptr<HashJoinExpr> join = TryRewrite(exists)) {
          *slot = std::move(join);
          // Nested EXISTS travelled into the build as local conjuncts;
          // give them their own rewrite pass.
          Plan(static_cast<HashJoinExpr*>(slot->get())->build.get());
        } else {
          // Not eligible here; deeper levels may still be.
          Plan(exists->subquery.get());
        }
        return;
      }
      default:
        return;  // no subqueries below other kinds in this dialect
    }
  }

  /// Resolves the schema column type of a bound reference, or nullopt when
  /// the scope chain cannot be resolved (bail out rather than guess).
  std::optional<ColumnType> RefType(const ColumnRefExpr& ref,
                                    const SelectStmt* sub) const {
    const SelectStmt* scope = nullptr;
    if (ref.level == 0) {
      scope = sub;
    } else {
      // level 1 = innermost enclosing select = path_.back().
      if (static_cast<size_t>(ref.level) > path_.size()) return std::nullopt;
      scope = path_[path_.size() - static_cast<size_t>(ref.level)];
    }
    if (ref.table_slot >= scope->from.size()) return std::nullopt;
    const Table* table = scope->from[ref.table_slot].table;
    if (table == nullptr) return std::nullopt;
    const auto& columns = table->schema().columns();
    if (ref.column_ordinal >= columns.size()) return std::nullopt;
    return columns[ref.column_ordinal].type;
  }

  std::unique_ptr<HashJoinExpr> TryRewrite(ExistsExpr* exists) {
    SelectStmt* sub = exists->subquery.get();
    if (sub->from.empty() || sub->where == nullptr) return nullptr;
    if (SelectContainsParam(*sub)) return nullptr;

    // Phase 1: classify every top-level conjunct without touching the tree.
    std::vector<const Expr*> view;
    FlattenAndView(sub->where.get(), &view);
    std::vector<Conjunct> classes(view.size());
    size_t correlations = 0;
    for (size_t i = 0; i < view.size(); ++i) {
      const Expr* c = view[i];
      if (!RefsEscape(*c, 0)) continue;  // local conjunct
      // Escaping conjuncts must be `inner_col = outer_col` exactly.
      if (c->kind != ExprKind::kComparison) return nullptr;
      const auto* cmp = static_cast<const ComparisonExpr*>(c);
      if (cmp->op != CompareOp::kEq) return nullptr;
      if (cmp->left->kind != ExprKind::kColumnRef ||
          cmp->right->kind != ExprKind::kColumnRef) {
        return nullptr;
      }
      const auto* l = static_cast<const ColumnRefExpr*>(cmp->left.get());
      const auto* r = static_cast<const ColumnRefExpr*>(cmp->right.get());
      const ColumnRefExpr* inner = nullptr;
      const ColumnRefExpr* outer = nullptr;
      if (l->level == 0 && r->level >= 1) {
        inner = l;
        outer = r;
        classes[i].left_is_inner = true;
      } else if (r->level == 0 && l->level >= 1) {
        inner = r;
        outer = l;
      } else {
        return nullptr;  // e.g. outer_a = outer_b, or deeper-level pairs
      }
      std::optional<ColumnType> inner_type = RefType(*inner, sub);
      std::optional<ColumnType> outer_type = RefType(*outer, sub);
      if (!inner_type.has_value() || !outer_type.has_value() ||
          *inner_type != *outer_type) {
        return nullptr;
      }
      classes[i].is_correlation = true;
      ++correlations;
    }
    if (correlations == 0) return nullptr;

    // Phase 2: eligible — dismantle the WHERE and assemble the join node.
    std::vector<ExprPtr> conjuncts;
    FlattenAndOwned(std::move(sub->where), &conjuncts);
    auto join = std::make_unique<HashJoinExpr>(exists->negated,
                                               std::move(exists->subquery));
    std::vector<ExprPtr> locals;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (!classes[i].is_correlation) {
        locals.push_back(std::move(conjuncts[i]));
        continue;
      }
      auto* cmp = static_cast<ComparisonExpr*>(conjuncts[i].get());
      ExprPtr inner_side = classes[i].left_is_inner ? std::move(cmp->left)
                                                    : std::move(cmp->right);
      ExprPtr outer_side = classes[i].left_is_inner ? std::move(cmp->right)
                                                    : std::move(cmp->left);
      join->build_keys.emplace_back(
          static_cast<ColumnRefExpr*>(inner_side.release()));
      // The probe expression now evaluates one scope closer to its target.
      static_cast<ColumnRefExpr*>(outer_side.get())->level -= 1;
      join->probe_keys.push_back(std::move(outer_side));
    }
    SelectStmt* build = join->build.get();
    if (locals.size() == 1) {
      build->where = std::move(locals[0]);
    } else if (!locals.empty()) {
      build->where =
          std::make_unique<LogicalExpr>(/*and_op=*/true, std::move(locals));
    }  // else: no residual predicate; build enumerates the whole table

    std::vector<const Table*> deps;
    CollectTables(*build, &deps);
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    join->dep_tables = std::move(deps);
    join->runtime = std::make_shared<HashJoinRuntime>();

    if (stats_ != nullptr) {
      if (join->anti) {
        ++stats_->anti_join_rewrites;
      } else {
        ++stats_->semi_join_rewrites;
      }
    }
    return join;
  }

  PlannerStats* stats_;
  std::vector<const SelectStmt*> path_;  // enclosing selects, innermost last
};

}  // namespace

void PlanSelect(SelectStmt* stmt, PlannerStats* stats) {
  Planner planner(stats);
  planner.Plan(stmt);
}

namespace {

void AnnotateExpr(const Expr& e);

/// Resolves the access path of every FROM slot of `stmt`, mirroring the
/// executor's per-scan derivation exactly (same equality collection, same
/// FindIndexCovering tie-break) so plans and actuals match either way.
void AnnotateOne(SelectStmt* stmt) {
  stmt->slot_plans.assign(stmt->from.size(), SlotPlan{});
  for (size_t slot = 0; slot < stmt->from.size(); ++slot) {
    SlotPlan& sp = stmt->slot_plans[slot];
    const Table* table = stmt->from[slot].table;
    if (table == nullptr) continue;  // unbound (defensive); scalar would fail
    std::vector<IndexableEquality> equalities =
        CollectIndexableEqualities(stmt->where.get(), slot);
    if (!equalities.empty()) {
      std::vector<size_t> available;
      available.reserve(equalities.size());
      for (const IndexableEquality& eq : equalities) {
        available.push_back(eq.column_ordinal);
      }
      sp.index = table->FindIndexCovering(available);
    }
    if (sp.index != nullptr) {
      sp.key_exprs.reserve(sp.index->column_ordinals().size());
      for (size_t ord : sp.index->column_ordinals()) {
        const Expr* key_expr = nullptr;
        for (const IndexableEquality& eq : equalities) {
          if (eq.column_ordinal == ord) {
            key_expr = eq.key_expr;
            break;
          }
        }
        sp.key_exprs.push_back(key_expr);
      }
    }
  }
  // Only the innermost slot may filter in chunks: outer slots must stay
  // row-at-a-time so EXISTS early-out never scans rows the scalar path
  // would not have touched.
  if (!stmt->from.empty() && stmt->where != nullptr) {
    stmt->slot_plans.back().vector_filter = true;
  }

  if (stmt->where != nullptr) AnnotateExpr(*stmt->where);
  for (const SelectItem& item : stmt->items) {
    if (!item.is_star) AnnotateExpr(*item.expr);
  }
  for (const ExprPtr& g : stmt->group_by) AnnotateExpr(*g);
  for (const OrderByItem& ob : stmt->order_by) AnnotateExpr(*ob.expr);
}

void AnnotateExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(e);
      AnnotateExpr(*c.left);
      AnnotateExpr(*c.right);
      return;
    }
    case ExprKind::kLogical:
      for (const ExprPtr& op : static_cast<const LogicalExpr&>(e).operands) {
        AnnotateExpr(*op);
      }
      return;
    case ExprKind::kNot:
      AnnotateExpr(*static_cast<const NotExpr&>(e).operand);
      return;
    case ExprKind::kExists:
      AnnotateOne(static_cast<const ExistsExpr&>(e).subquery.get());
      return;
    case ExprKind::kHashJoin:
      AnnotateOne(static_cast<const HashJoinExpr&>(e).build.get());
      return;
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      AnnotateExpr(*in.operand);
      for (const ExprPtr& item : in.items) AnnotateExpr(*item);
      return;
    }
    case ExprKind::kIsNull:
      AnnotateExpr(*static_cast<const IsNullExpr&>(e).operand);
      return;
    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(e);
      AnnotateExpr(*lk.operand);
      AnnotateExpr(*lk.pattern);
      return;
    }
    default:
      return;
  }
}

}  // namespace

void AnnotateSelect(SelectStmt* stmt) { AnnotateOne(stmt); }

}  // namespace p3pdb::sqldb
