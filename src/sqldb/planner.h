// Rule-based query planner: EXISTS decorrelation.
//
// The translators emit one predicate shape for nesting — `[NOT] EXISTS
// (SELECT * FROM child WHERE child.fk = outer.pk AND <locals>)` — which the
// executor evaluates as a correlated nested loop (re-run per outer row).
// This is exactly the shape a cost-based optimizer like DB2's (the engine
// the paper measured against) decorrelates: the planner rewrites it into a
// hash semi-join (EXISTS) or anti-join (NOT EXISTS) that builds the
// subquery's key set once and answers every outer row with one O(1) probe,
// with the remaining local predicates pushed below the build.
//
// Rewrite preconditions (anything else falls back to the correlated path):
//   - every top-level AND conjunct of the subquery's WHERE is either
//       (a) a correlation equality `inner_col = outer_col` — one side a
//           column of the subquery's own FROM (level 0), the other a plain
//           column reference from an enclosing scope (level >= 1) of the
//           same column type (the executor's `=` errors on mixed types
//           while hash equality would not, so mixed types are not
//           rewritten), or
//       (b) a local conjunct referencing nothing outside the subquery at
//           any nesting depth;
//   - at least one correlation equality exists;
//   - the subquery contains no `?` bind parameters (a cached key set must
//     not depend on per-execution values).
//
// NULL join keys (the classic decorrelation bug) keep their three-valued
// semantics: a NULL build key never enters the set and a NULL probe key
// matches nothing, so EXISTS yields false and NOT EXISTS yields true —
// identical to the correlated path, where `col = NULL` rejects every row.
//
// The rewrite recurses into the build side, so the translators' EXISTS
// chains (Policy -> Statement -> Purpose/Recipient/Retention/Data) become
// nested hash joins whose builds amortize across outer rows, and into
// non-rewritten subqueries, so deeper eligible levels are still planned.

#ifndef P3PDB_SQLDB_PLANNER_H_
#define P3PDB_SQLDB_PLANNER_H_

#include <cstdint>

#include "sqldb/ast.h"

namespace p3pdb::sqldb {

class StatsCatalog;

/// Rewrite tallies, merged into the database's ExecStats by the caller.
struct PlannerStats {
  uint64_t semi_join_rewrites = 0;  // EXISTS -> hash semi-join
  uint64_t anti_join_rewrites = 0;  // NOT EXISTS -> hash anti-join
  // Cost-model decisions (only tick when a StatsCatalog was supplied).
  uint64_t cost_exists_kept = 0;    // rewrite vetoed: correlated path cheaper
  uint64_t cost_join_reorders = 0;  // AND chains reordered cheapest-first
  uint64_t cost_seq_forced = 0;     // index access overridden to seq scan
};

/// Rewrites eligible [NOT] EXISTS predicates of a *bound* SELECT into
/// HashJoinExpr nodes, in place. Idempotent-safe to skip: an unplanned
/// statement executes identically (modulo speed) on the correlated path.
///
/// With a non-null `catalog`, the rule rewrites are moderated by the cost
/// model (see stats.h):
///   - an eligible EXISTS stays correlated when its estimated build
///     cardinality dwarfs the estimated outer loop count AND the build
///     table indexes the correlation columns — the point-lookup-per-outer-
///     row plan beats materializing a huge key set for a handful of probes;
///   - sibling hash joins under one AND are reordered cheapest-build-first
///     (scalar conjuncts keep their positions), so when a cheap join
///     rejects an outer row the expensive builds are never forced. Result-
///     identical: AND over the joins' three-valued verdicts is order-
///     independent.
/// Every surviving HashJoinExpr is stamped with its estimated build rows
/// for EXPLAIN.
void PlanSelect(SelectStmt* stmt, PlannerStats* stats = nullptr,
                const StatsCatalog* catalog = nullptr);

/// Fills `slot_plans` on `stmt` and every nested SELECT (EXISTS subqueries,
/// hash-join build sides): the access path the executor would otherwise
/// re-derive on every scan (index choice + probe key expressions), plus the
/// vectorized-filter eligibility of the innermost FROM slot. Must run after
/// PlanSelect (rewrites change the tree) and only on bound statements.
/// Statements left un-annotated always execute on the scalar path.
///
/// With a non-null `catalog` each slot plan additionally carries estimated
/// rows, and the cost model may override the syntactic index choice with a
/// sequential scan when the index's estimated selectivity is so poor (low
/// NDV key) that the lookup would return most of the table anyway.
void AnnotateSelect(SelectStmt* stmt, const StatsCatalog* catalog = nullptr,
                    PlannerStats* stats = nullptr);

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_PLANNER_H_
