#include "sqldb/query_result.h"

#include <algorithm>

namespace p3pdb::sqldb {

std::string QueryResult::ToString() const {
  if (columns.empty()) {
    std::string out = "(";
    out += std::to_string(rows_affected);
    out += " rows affected)\n";
    return out;
  }
  // Column widths.
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToDisplayString());
      if (i < widths.size()) widths[i] = std::max(widths[i], line[i].size());
    }
    cells.push_back(std::move(line));
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& line) {
    out += "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      out += " ";
      const std::string& cell = i < line.size() ? line[i] : std::string();
      out += cell;
      out.append(widths[i] - cell.size(), ' ');
      out += " |";
    }
    out += "\n";
  };
  auto separator = [&] {
    out += "+";
    for (size_t w : widths) {
      out.append(w + 2, '-');
      out += "+";
    }
    out += "\n";
  };

  separator();
  append_row({columns.begin(), columns.end()});
  separator();
  for (const auto& line : cells) append_row(line);
  separator();
  out += "(";
  out += std::to_string(rows.size());
  out += " rows)\n";
  return out;
}

}  // namespace p3pdb::sqldb
