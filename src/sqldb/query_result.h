// The result of executing a SQL statement.

#ifndef P3PDB_SQLDB_QUERY_RESULT_H_
#define P3PDB_SQLDB_QUERY_RESULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sqldb/schema.h"

namespace p3pdb::sqldb {

/// Rows and column names for queries; rows_affected for DML/DDL.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t rows_affected = 0;

  bool empty() const { return rows.empty(); }

  /// Renders an ASCII table (for examples and debugging).
  std::string ToString() const;
};

/// Counters accumulated by the executor; reset via Database::ResetStats().
/// The ablation benchmarks report these to explain *why* one plan shape is
/// faster than another (index lookups vs. full scans). Each execution fills
/// a private ExecStats, which the Database merges into its AtomicExecStats
/// aggregate — so concurrent read-only executions never race on counters.
struct ExecStats {
  uint64_t statements_executed = 0;
  uint64_t rows_scanned = 0;      // rows visited by any access path
  uint64_t index_lookups = 0;     // point lookups served by a hash index
  uint64_t full_scans = 0;        // table scans (no usable index)
  uint64_t subquery_evals = 0;    // EXISTS subquery evaluations
  uint64_t comparisons = 0;       // predicate comparisons evaluated

  // Planner counters (see planner.h). Rewrite counters tick at plan time;
  // the hash-join counters tick at execution time.
  uint64_t plans_built = 0;           // SELECTs bound + planned
  uint64_t plan_cache_hits = 0;       // plan-cache hits (parse/bind skipped)
  uint64_t semi_join_rewrites = 0;    // EXISTS -> hash semi-join
  uint64_t anti_join_rewrites = 0;    // NOT EXISTS -> hash anti-join
  uint64_t hash_join_builds = 0;      // key-set builds (cache misses)
  uint64_t hash_join_build_rows = 0;  // rows enumerated by builds
  uint64_t hash_join_probes = 0;      // O(1) probes answered from a key set
};

/// Database-level stats aggregate safe under concurrent executions.
/// Relaxed ordering suffices: the counters are monotonic tallies, not
/// synchronization points.
struct AtomicExecStats {
  std::atomic<uint64_t> statements_executed{0};
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> index_lookups{0};
  std::atomic<uint64_t> full_scans{0};
  std::atomic<uint64_t> subquery_evals{0};
  std::atomic<uint64_t> comparisons{0};
  std::atomic<uint64_t> plans_built{0};
  std::atomic<uint64_t> plan_cache_hits{0};
  std::atomic<uint64_t> semi_join_rewrites{0};
  std::atomic<uint64_t> anti_join_rewrites{0};
  std::atomic<uint64_t> hash_join_builds{0};
  std::atomic<uint64_t> hash_join_build_rows{0};
  std::atomic<uint64_t> hash_join_probes{0};

  void Merge(const ExecStats& s) {
    statements_executed.fetch_add(s.statements_executed,
                                  std::memory_order_relaxed);
    rows_scanned.fetch_add(s.rows_scanned, std::memory_order_relaxed);
    index_lookups.fetch_add(s.index_lookups, std::memory_order_relaxed);
    full_scans.fetch_add(s.full_scans, std::memory_order_relaxed);
    subquery_evals.fetch_add(s.subquery_evals, std::memory_order_relaxed);
    comparisons.fetch_add(s.comparisons, std::memory_order_relaxed);
    plans_built.fetch_add(s.plans_built, std::memory_order_relaxed);
    plan_cache_hits.fetch_add(s.plan_cache_hits, std::memory_order_relaxed);
    semi_join_rewrites.fetch_add(s.semi_join_rewrites,
                                 std::memory_order_relaxed);
    anti_join_rewrites.fetch_add(s.anti_join_rewrites,
                                 std::memory_order_relaxed);
    hash_join_builds.fetch_add(s.hash_join_builds, std::memory_order_relaxed);
    hash_join_build_rows.fetch_add(s.hash_join_build_rows,
                                   std::memory_order_relaxed);
    hash_join_probes.fetch_add(s.hash_join_probes, std::memory_order_relaxed);
  }

  ExecStats Snapshot() const {
    ExecStats s;
    s.statements_executed = statements_executed.load(std::memory_order_relaxed);
    s.rows_scanned = rows_scanned.load(std::memory_order_relaxed);
    s.index_lookups = index_lookups.load(std::memory_order_relaxed);
    s.full_scans = full_scans.load(std::memory_order_relaxed);
    s.subquery_evals = subquery_evals.load(std::memory_order_relaxed);
    s.comparisons = comparisons.load(std::memory_order_relaxed);
    s.plans_built = plans_built.load(std::memory_order_relaxed);
    s.plan_cache_hits = plan_cache_hits.load(std::memory_order_relaxed);
    s.semi_join_rewrites = semi_join_rewrites.load(std::memory_order_relaxed);
    s.anti_join_rewrites = anti_join_rewrites.load(std::memory_order_relaxed);
    s.hash_join_builds = hash_join_builds.load(std::memory_order_relaxed);
    s.hash_join_build_rows =
        hash_join_build_rows.load(std::memory_order_relaxed);
    s.hash_join_probes = hash_join_probes.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    statements_executed.store(0, std::memory_order_relaxed);
    rows_scanned.store(0, std::memory_order_relaxed);
    index_lookups.store(0, std::memory_order_relaxed);
    full_scans.store(0, std::memory_order_relaxed);
    subquery_evals.store(0, std::memory_order_relaxed);
    comparisons.store(0, std::memory_order_relaxed);
    plans_built.store(0, std::memory_order_relaxed);
    plan_cache_hits.store(0, std::memory_order_relaxed);
    semi_join_rewrites.store(0, std::memory_order_relaxed);
    anti_join_rewrites.store(0, std::memory_order_relaxed);
    hash_join_builds.store(0, std::memory_order_relaxed);
    hash_join_build_rows.store(0, std::memory_order_relaxed);
    hash_join_probes.store(0, std::memory_order_relaxed);
  }
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_QUERY_RESULT_H_
