// The result of executing a SQL statement.

#ifndef P3PDB_SQLDB_QUERY_RESULT_H_
#define P3PDB_SQLDB_QUERY_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sqldb/schema.h"

namespace p3pdb::sqldb {

/// Rows and column names for queries; rows_affected for DML/DDL.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t rows_affected = 0;

  bool empty() const { return rows.empty(); }

  /// Renders an ASCII table (for examples and debugging).
  std::string ToString() const;
};

/// Counters accumulated by the executor; reset via Database::ResetStats().
/// The ablation benchmarks report these to explain *why* one plan shape is
/// faster than another (index lookups vs. full scans).
struct ExecStats {
  uint64_t statements_executed = 0;
  uint64_t rows_scanned = 0;      // rows visited by any access path
  uint64_t index_lookups = 0;     // point lookups served by a hash index
  uint64_t full_scans = 0;        // table scans (no usable index)
  uint64_t subquery_evals = 0;    // EXISTS subquery evaluations
  uint64_t comparisons = 0;       // predicate comparisons evaluated
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_QUERY_RESULT_H_
