// The result of executing a SQL statement.

#ifndef P3PDB_SQLDB_QUERY_RESULT_H_
#define P3PDB_SQLDB_QUERY_RESULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sqldb/schema.h"

namespace p3pdb::sqldb {

/// Result column headers. The hot execute path borrows the header list
/// precomputed on the bound statement (one shared_ptr copy per execution
/// instead of a heap vector of string copies); EXPLAIN, the aggregate path,
/// and statements bound outside BindAndPlan still build their own list
/// incrementally. Copy-on-write: the first mutation of a borrowed list
/// detaches it.
class ResultColumns {
 public:
  void push_back(std::string name) { Own().push_back(std::move(name)); }
  void Borrow(std::shared_ptr<const std::vector<std::string>> cols) {
    shared_ = std::move(cols);
    owned_.clear();
  }

  size_t size() const { return Get().size(); }
  bool empty() const { return Get().empty(); }
  const std::string& operator[](size_t i) const { return Get()[i]; }
  std::vector<std::string>::const_iterator begin() const {
    return Get().begin();
  }
  std::vector<std::string>::const_iterator end() const { return Get().end(); }

 private:
  const std::vector<std::string>& Get() const {
    return shared_ != nullptr ? *shared_ : owned_;
  }
  std::vector<std::string>& Own() {
    if (shared_ != nullptr) {
      owned_ = *shared_;
      shared_.reset();
    }
    return owned_;
  }

  std::shared_ptr<const std::vector<std::string>> shared_;
  std::vector<std::string> owned_;
};

/// Rows and column names for queries; rows_affected for DML/DDL.
struct QueryResult {
  ResultColumns columns;
  std::vector<Row> rows;
  int64_t rows_affected = 0;

  bool empty() const { return rows.empty(); }

  /// Renders an ASCII table (for examples and debugging).
  std::string ToString() const;
};

/// Counters accumulated by the executor; reset via Database::ResetStats().
/// The ablation benchmarks report these to explain *why* one plan shape is
/// faster than another (index lookups vs. full scans). Each execution fills
/// a private ExecStats, which the Database merges into its AtomicExecStats
/// aggregate — so concurrent read-only executions never race on counters.
struct ExecStats {
  uint64_t statements_executed = 0;
  uint64_t rows_scanned = 0;      // rows visited by any access path
  uint64_t index_lookups = 0;     // point lookups served by a hash index
  uint64_t full_scans = 0;        // table scans (no usable index)
  uint64_t subquery_evals = 0;    // EXISTS subquery evaluations
  uint64_t comparisons = 0;       // predicate comparisons evaluated

  // Planner counters (see planner.h). Rewrite counters tick at plan time;
  // the hash-join counters tick at execution time.
  uint64_t plans_built = 0;           // SELECTs bound + planned
  uint64_t plan_cache_hits = 0;       // plan-cache hits (parse/bind skipped)
  uint64_t semi_join_rewrites = 0;    // EXISTS -> hash semi-join
  uint64_t anti_join_rewrites = 0;    // NOT EXISTS -> hash anti-join
  uint64_t hash_join_builds = 0;      // key-set builds (cache misses)
  uint64_t hash_join_build_rows = 0;  // rows enumerated by builds
  uint64_t hash_join_probes = 0;      // O(1) probes answered from a key set

  // Cost-model counters (see stats.h / planner.h). Decision counters tick
  // at plan time; plan_recosts ticks when the plan cache drops an entry
  // whose stats epoch drifted.
  uint64_t cost_exists_kept = 0;    // EXISTS rewrites vetoed by cost
  uint64_t cost_join_reorders = 0;  // AND chains reordered cheapest-first
  uint64_t cost_seq_forced = 0;     // index access overridden to seq scan
  uint64_t plan_recosts = 0;        // cached plans dropped on epoch drift

  // Vectorized-executor counters (see vectorized.cc). `batches` counts the
  // columnar chunks emitted by batch scans and `batch_rows` the rows
  // gathered into them; `vectorized_filters` counts WHERE clauses evaluated
  // through the chunk kernels, while `vectorized_fallback_rows` counts the
  // rows a chunk had to route through the per-row scalar evaluator
  // (correlated EXISTS and other non-kernel operators).
  uint64_t batches = 0;
  uint64_t batch_rows = 0;
  uint64_t vectorized_filters = 0;
  uint64_t vectorized_fallback_rows = 0;

  void Accumulate(const ExecStats& s) {
    statements_executed += s.statements_executed;
    rows_scanned += s.rows_scanned;
    index_lookups += s.index_lookups;
    full_scans += s.full_scans;
    subquery_evals += s.subquery_evals;
    comparisons += s.comparisons;
    plans_built += s.plans_built;
    plan_cache_hits += s.plan_cache_hits;
    semi_join_rewrites += s.semi_join_rewrites;
    anti_join_rewrites += s.anti_join_rewrites;
    hash_join_builds += s.hash_join_builds;
    hash_join_build_rows += s.hash_join_build_rows;
    hash_join_probes += s.hash_join_probes;
    cost_exists_kept += s.cost_exists_kept;
    cost_join_reorders += s.cost_join_reorders;
    cost_seq_forced += s.cost_seq_forced;
    plan_recosts += s.plan_recosts;
    batches += s.batches;
    batch_rows += s.batch_rows;
    vectorized_filters += s.vectorized_filters;
    vectorized_fallback_rows += s.vectorized_fallback_rows;
  }
};

/// Database-level stats aggregate safe under concurrent executions.
/// Relaxed ordering suffices: the counters are monotonic tallies, not
/// synchronization points.
struct AtomicExecStats {
  std::atomic<uint64_t> statements_executed{0};
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> index_lookups{0};
  std::atomic<uint64_t> full_scans{0};
  std::atomic<uint64_t> subquery_evals{0};
  std::atomic<uint64_t> comparisons{0};
  std::atomic<uint64_t> plans_built{0};
  std::atomic<uint64_t> plan_cache_hits{0};
  std::atomic<uint64_t> semi_join_rewrites{0};
  std::atomic<uint64_t> anti_join_rewrites{0};
  std::atomic<uint64_t> hash_join_builds{0};
  std::atomic<uint64_t> hash_join_build_rows{0};
  std::atomic<uint64_t> hash_join_probes{0};
  std::atomic<uint64_t> cost_exists_kept{0};
  std::atomic<uint64_t> cost_join_reorders{0};
  std::atomic<uint64_t> cost_seq_forced{0};
  std::atomic<uint64_t> plan_recosts{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batch_rows{0};
  std::atomic<uint64_t> vectorized_filters{0};
  std::atomic<uint64_t> vectorized_fallback_rows{0};

  void Merge(const ExecStats& s) {
    // Skip zero counters: a typical statement touches a handful of the
    // fields, and an uncontended atomic RMW still costs a locked cycle the
    // per-match path pays per execution. A load+branch is ~free.
    auto add = [](std::atomic<uint64_t>& dst, uint64_t v) {
      if (v != 0) dst.fetch_add(v, std::memory_order_relaxed);
    };
    add(statements_executed, s.statements_executed);
    add(rows_scanned, s.rows_scanned);
    add(index_lookups, s.index_lookups);
    add(full_scans, s.full_scans);
    add(subquery_evals, s.subquery_evals);
    add(comparisons, s.comparisons);
    add(plans_built, s.plans_built);
    add(plan_cache_hits, s.plan_cache_hits);
    add(semi_join_rewrites, s.semi_join_rewrites);
    add(anti_join_rewrites, s.anti_join_rewrites);
    add(hash_join_builds, s.hash_join_builds);
    add(hash_join_build_rows, s.hash_join_build_rows);
    add(hash_join_probes, s.hash_join_probes);
    add(cost_exists_kept, s.cost_exists_kept);
    add(cost_join_reorders, s.cost_join_reorders);
    add(cost_seq_forced, s.cost_seq_forced);
    add(plan_recosts, s.plan_recosts);
    add(batches, s.batches);
    add(batch_rows, s.batch_rows);
    add(vectorized_filters, s.vectorized_filters);
    add(vectorized_fallback_rows, s.vectorized_fallback_rows);
  }

  /// Merge for a single-writer shard (see Database::LocalStats): only the
  /// owning thread ever writes the shard, so a relaxed load+store — a plain
  /// add, no locked read-modify-write — replaces fetch_add. Concurrent
  /// readers (stats snapshots) still see whole atomic field values.
  void MergeSingleWriter(const ExecStats& s) {
    auto add = [](std::atomic<uint64_t>& dst, uint64_t v) {
      if (v != 0) {
        dst.store(dst.load(std::memory_order_relaxed) + v,
                  std::memory_order_relaxed);
      }
    };
    add(statements_executed, s.statements_executed);
    add(rows_scanned, s.rows_scanned);
    add(index_lookups, s.index_lookups);
    add(full_scans, s.full_scans);
    add(subquery_evals, s.subquery_evals);
    add(comparisons, s.comparisons);
    add(plans_built, s.plans_built);
    add(plan_cache_hits, s.plan_cache_hits);
    add(semi_join_rewrites, s.semi_join_rewrites);
    add(anti_join_rewrites, s.anti_join_rewrites);
    add(hash_join_builds, s.hash_join_builds);
    add(hash_join_build_rows, s.hash_join_build_rows);
    add(hash_join_probes, s.hash_join_probes);
    add(cost_exists_kept, s.cost_exists_kept);
    add(cost_join_reorders, s.cost_join_reorders);
    add(cost_seq_forced, s.cost_seq_forced);
    add(plan_recosts, s.plan_recosts);
    add(batches, s.batches);
    add(batch_rows, s.batch_rows);
    add(vectorized_filters, s.vectorized_filters);
    add(vectorized_fallback_rows, s.vectorized_fallback_rows);
  }

  ExecStats Snapshot() const {
    ExecStats s;
    s.statements_executed = statements_executed.load(std::memory_order_relaxed);
    s.rows_scanned = rows_scanned.load(std::memory_order_relaxed);
    s.index_lookups = index_lookups.load(std::memory_order_relaxed);
    s.full_scans = full_scans.load(std::memory_order_relaxed);
    s.subquery_evals = subquery_evals.load(std::memory_order_relaxed);
    s.comparisons = comparisons.load(std::memory_order_relaxed);
    s.plans_built = plans_built.load(std::memory_order_relaxed);
    s.plan_cache_hits = plan_cache_hits.load(std::memory_order_relaxed);
    s.semi_join_rewrites = semi_join_rewrites.load(std::memory_order_relaxed);
    s.anti_join_rewrites = anti_join_rewrites.load(std::memory_order_relaxed);
    s.hash_join_builds = hash_join_builds.load(std::memory_order_relaxed);
    s.hash_join_build_rows =
        hash_join_build_rows.load(std::memory_order_relaxed);
    s.hash_join_probes = hash_join_probes.load(std::memory_order_relaxed);
    s.cost_exists_kept = cost_exists_kept.load(std::memory_order_relaxed);
    s.cost_join_reorders = cost_join_reorders.load(std::memory_order_relaxed);
    s.cost_seq_forced = cost_seq_forced.load(std::memory_order_relaxed);
    s.plan_recosts = plan_recosts.load(std::memory_order_relaxed);
    s.batches = batches.load(std::memory_order_relaxed);
    s.batch_rows = batch_rows.load(std::memory_order_relaxed);
    s.vectorized_filters = vectorized_filters.load(std::memory_order_relaxed);
    s.vectorized_fallback_rows =
        vectorized_fallback_rows.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    statements_executed.store(0, std::memory_order_relaxed);
    rows_scanned.store(0, std::memory_order_relaxed);
    index_lookups.store(0, std::memory_order_relaxed);
    full_scans.store(0, std::memory_order_relaxed);
    subquery_evals.store(0, std::memory_order_relaxed);
    comparisons.store(0, std::memory_order_relaxed);
    plans_built.store(0, std::memory_order_relaxed);
    plan_cache_hits.store(0, std::memory_order_relaxed);
    semi_join_rewrites.store(0, std::memory_order_relaxed);
    anti_join_rewrites.store(0, std::memory_order_relaxed);
    hash_join_builds.store(0, std::memory_order_relaxed);
    hash_join_build_rows.store(0, std::memory_order_relaxed);
    hash_join_probes.store(0, std::memory_order_relaxed);
    cost_exists_kept.store(0, std::memory_order_relaxed);
    cost_join_reorders.store(0, std::memory_order_relaxed);
    cost_seq_forced.store(0, std::memory_order_relaxed);
    plan_recosts.store(0, std::memory_order_relaxed);
    batches.store(0, std::memory_order_relaxed);
    batch_rows.store(0, std::memory_order_relaxed);
    vectorized_filters.store(0, std::memory_order_relaxed);
    vectorized_fallback_rows.store(0, std::memory_order_relaxed);
  }
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_QUERY_RESULT_H_
