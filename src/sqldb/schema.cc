#include "sqldb/schema.h"

#include "common/string_util.h"

namespace p3pdb::sqldb {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInteger:
      return "INTEGER";
    case ColumnType::kText:
      return "VARCHAR";
  }
  return "?";
}

std::optional<size_t> TableSchema::ColumnIndex(
    std::string_view column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, column_name)) return i;
  }
  return std::nullopt;
}

Status TableSchema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table '" + name_ +
        "' has " + std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in non-nullable column '" +
                                       col.name + "' of table '" + name_ +
                                       "'");
      }
      continue;
    }
    const bool type_ok =
        (col.type == ColumnType::kInteger &&
         v.type() == ValueType::kInteger) ||
        (col.type == ColumnType::kText && v.type() == ValueType::kText);
    if (!type_ok) {
      return Status::InvalidArgument(
          std::string("type mismatch in column '") + col.name + "': expected " +
          ColumnTypeName(col.type) + ", got " + ValueTypeName(v.type()));
    }
  }
  return Status::OK();
}

std::string TableSchema::ToCreateTableSql() const {
  std::string sql = "CREATE TABLE " + name_ + " (";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += columns_[i].name;
    sql += ' ';
    sql += ColumnTypeName(columns_[i].type);
    if (!columns_[i].nullable) sql += " NOT NULL";
  }
  if (!primary_key_.empty()) {
    sql += ", PRIMARY KEY (" + Join(primary_key_, ", ") + ")";
  }
  for (const ForeignKeyDef& fk : foreign_keys_) {
    sql += ", FOREIGN KEY (" + Join(fk.columns, ", ") + ") REFERENCES " +
           fk.referenced_table + " (" + Join(fk.referenced_columns, ", ") + ")";
  }
  sql += ")";
  return sql;
}

}  // namespace p3pdb::sqldb
