// Table schemas: column definitions, primary keys, and foreign keys.

#ifndef P3PDB_SQLDB_SCHEMA_H_
#define P3PDB_SQLDB_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sqldb/value.h"

namespace p3pdb::sqldb {

/// Declared column type. kText covers both VARCHAR(n) and TEXT; length
/// limits are parsed but not enforced (matching common engines' permissive
/// TEXT behaviour and keeping shredded values intact).
enum class ColumnType { kInteger, kText };

const char* ColumnTypeName(ColumnType t);

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool nullable = true;
};

/// A FOREIGN KEY (cols) REFERENCES table (cols) declaration.
struct ForeignKeyDef {
  std::vector<std::string> columns;
  std::string referenced_table;
  std::vector<std::string> referenced_columns;
};

/// The logical definition of a table.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t ColumnCount() const { return columns_.size(); }

  /// Case-insensitive column lookup; returns the ordinal or nullopt.
  std::optional<size_t> ColumnIndex(std::string_view column_name) const;

  const std::vector<std::string>& primary_key() const { return primary_key_; }
  void set_primary_key(std::vector<std::string> cols) {
    primary_key_ = std::move(cols);
  }

  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }
  void AddForeignKey(ForeignKeyDef fk) {
    foreign_keys_.push_back(std::move(fk));
  }

  /// Verifies a row matches this schema: arity, types (NULL allowed per
  /// column nullability), booleans rejected as storage types.
  Status ValidateRow(const std::vector<Value>& row) const;

  /// Renders a CREATE TABLE statement for this schema.
  std::string ToCreateTableSql() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<std::string> primary_key_;
  std::vector<ForeignKeyDef> foreign_keys_;
};

/// A row is a flat vector of values aligned with the schema's columns.
using Row = std::vector<Value>;

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_SCHEMA_H_
