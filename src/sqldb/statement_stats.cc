#include "sqldb/statement_stats.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "sqldb/lexer.h"

namespace p3pdb::sqldb {

namespace {

/// Relaxed atomic min/max: tallies, not synchronization points, so a lost
/// race only costs one sample's worth of precision for that instant.
void AtomicMin(std::atomic<uint64_t>& dst, uint64_t v) {
  uint64_t cur = dst.load(std::memory_order_relaxed);
  while (v < cur &&
         !dst.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& dst, uint64_t v) {
  uint64_t cur = dst.load(std::memory_order_relaxed);
  while (v > cur &&
         !dst.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string HexFingerprint(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buf);
}

/// Whitespace-collapsing fallback for text the lexer rejects (never the
/// engine's own statements, but Intern must not fail).
std::string CollapseWhitespace(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  for (char c : sql) {
    if (IsAsciiSpace(c)) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  return out;
}

}  // namespace

std::string NormalizeStatementText(std::string_view sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return CollapseWhitespace(sql);
  std::string out;
  out.reserve(sql.size());
  auto append = [&out](std::string_view piece, bool space_before) {
    if (space_before && !out.empty()) out += ' ';
    out += piece;
  };
  for (const Token& token : tokens.value()) {
    switch (token.type) {
      case TokenType::kEnd:
        break;
      case TokenType::kString:
      case TokenType::kInteger:
      case TokenType::kQuestion:
        // The normalization that makes literal-carrying and parameterized
        // submissions of the same query one fingerprint.
        append("?", true);
        break;
      case TokenType::kIdentifier:
        // Keywords and identifiers are case-insensitive in this dialect;
        // fold so `SELECT` and `select` agree.
        append(ToLower(token.text), true);
        break;
      case TokenType::kOperator:
        append(token.text, true);
        break;
      case TokenType::kLeftParen:
        append("(", true);
        break;
      case TokenType::kRightParen:
        append(")", false);
        break;
      case TokenType::kComma:
        append(",", false);
        break;
      case TokenType::kDot:
        append(".", false);
        break;
      case TokenType::kStar:
        append("*", true);
        break;
      case TokenType::kSemicolon:
        append(";", false);
        break;
    }
  }
  // `.` glues its neighbours together (t.col), and parens hug their
  // contents (`count (*)`). The loop cannot suppress the space an upcoming
  // token adds without lookahead, so a post-pass strips spaces before a
  // dot/closing paren and after a dot/opening paren.
  std::string tidy;
  tidy.reserve(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] == ' ' && i + 1 < out.size() &&
        (out[i + 1] == '.' || out[i + 1] == ')')) {
      continue;
    }
    if (out[i] == ' ' && !tidy.empty() &&
        (tidy.back() == '.' || tidy.back() == '(')) {
      continue;
    }
    tidy += out[i];
  }
  return tidy;
}

uint64_t FingerprintStatementText(std::string_view normalized) {
  // FNV-1a 64-bit.
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : normalized) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

void StatementStatsEntry::RecordExecution(const ExecStats& local,
                                          uint64_t rows, double elapsed_us,
                                          bool ok) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) errors_.fetch_add(1, std::memory_order_relaxed);
  if (rows != 0) rows_returned_.fetch_add(rows, std::memory_order_relaxed);
  if (local.batches != 0) {
    batches_.fetch_add(local.batches, std::memory_order_relaxed);
  }
  if (local.batch_rows != 0) {
    batch_rows_.fetch_add(local.batch_rows, std::memory_order_relaxed);
  }
  if (local.vectorized_fallback_rows != 0) {
    fallback_rows_.fetch_add(local.vectorized_fallback_rows,
                             std::memory_order_relaxed);
  }
  const uint64_t us = static_cast<uint64_t>(elapsed_us);
  total_us_.fetch_add(us, std::memory_order_relaxed);
  AtomicMin(min_us_, us);
  AtomicMax(max_us_, us);
  latency_us_.Record(us);
}

StatementStatsEntry* StatementStatsRegistry::Intern(std::string_view sql) {
  std::string normalized = NormalizeStatementText(sql);
  const uint64_t fp = FingerprintStatementText(normalized);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) {
    it = entries_
             .emplace(fp, std::make_unique<StatementStatsEntry>(
                              fp, std::move(normalized)))
             .first;
  }
  return it->second.get();
}

std::vector<StatementStatsSnapshot> StatementStatsRegistry::Snapshot(
    size_t top) const {
  std::vector<StatementStatsSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [fp, entry] : entries_) {
      StatementStatsSnapshot s;
      s.fingerprint = fp;
      s.normalized_sql = entry->normalized_sql_;
      s.calls = entry->calls_.load(std::memory_order_relaxed);
      s.errors = entry->errors_.load(std::memory_order_relaxed);
      s.rows_returned = entry->rows_returned_.load(std::memory_order_relaxed);
      s.plans_built = entry->plans_built_.load(std::memory_order_relaxed);
      s.plan_cache_hits =
          entry->plan_cache_hits_.load(std::memory_order_relaxed);
      s.semi_join_rewrites =
          entry->semi_join_rewrites_.load(std::memory_order_relaxed);
      s.anti_join_rewrites =
          entry->anti_join_rewrites_.load(std::memory_order_relaxed);
      s.batches = entry->batches_.load(std::memory_order_relaxed);
      s.batch_rows = entry->batch_rows_.load(std::memory_order_relaxed);
      s.fallback_rows = entry->fallback_rows_.load(std::memory_order_relaxed);
      s.total_us = entry->total_us_.load(std::memory_order_relaxed);
      const uint64_t min = entry->min_us_.load(std::memory_order_relaxed);
      s.min_us = min == UINT64_MAX ? 0 : min;
      s.max_us = entry->max_us_.load(std::memory_order_relaxed);
      const obs::HistogramSnapshot h = entry->latency_us_.Snapshot();
      s.p50_us = h.Percentile(50.0);
      s.p99_us = h.Percentile(99.0);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StatementStatsSnapshot& a,
               const StatementStatsSnapshot& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              if (a.calls != b.calls) return a.calls > b.calls;
              return a.fingerprint < b.fingerprint;
            });
  if (top != 0 && out.size() > top) out.resize(top);
  return out;
}

std::string StatementStatsRegistry::RenderJson(size_t top) const {
  std::vector<StatementStatsSnapshot> snaps = Snapshot(top);
  std::string out = "[\n";
  for (size_t i = 0; i < snaps.size(); ++i) {
    const StatementStatsSnapshot& s = snaps[i];
    out += "  {\"fingerprint\": \"" + HexFingerprint(s.fingerprint) + "\", ";
    out += "\"sql\": \"" + JsonEscape(s.normalized_sql) + "\", ";
    out += "\"calls\": " + std::to_string(s.calls) + ", ";
    out += "\"errors\": " + std::to_string(s.errors) + ", ";
    out += "\"rows\": " + std::to_string(s.rows_returned) + ", ";
    out += "\"plans_built\": " + std::to_string(s.plans_built) + ", ";
    out += "\"plan_cache_hits\": " + std::to_string(s.plan_cache_hits) + ", ";
    out += "\"semi_join_rewrites\": " + std::to_string(s.semi_join_rewrites) +
           ", ";
    out += "\"anti_join_rewrites\": " + std::to_string(s.anti_join_rewrites) +
           ", ";
    out += "\"batches\": " + std::to_string(s.batches) + ", ";
    out += "\"batch_rows\": " + std::to_string(s.batch_rows) + ", ";
    out += "\"fallback_rows\": " + std::to_string(s.fallback_rows) + ", ";
    out += "\"total_us\": " + std::to_string(s.total_us) + ", ";
    out += "\"min_us\": " + std::to_string(s.min_us) + ", ";
    out += "\"max_us\": " + std::to_string(s.max_us) + ", ";
    out += "\"p50_us\": " + FormatDouble(s.p50_us, 1) + ", ";
    out += "\"p99_us\": " + FormatDouble(s.p99_us, 1) + "}";
    if (i + 1 < snaps.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string StatementStatsRegistry::RenderText(size_t top) const {
  std::vector<StatementStatsSnapshot> snaps = Snapshot(top);
  std::string out =
      "fingerprint      | calls | rows | cache-hits | total-us | p99-us | "
      "sql\n";
  for (const StatementStatsSnapshot& s : snaps) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s | %5llu | %4llu | %10llu | %8llu | %6.0f | ",
                  HexFingerprint(s.fingerprint).c_str(),
                  static_cast<unsigned long long>(s.calls),
                  static_cast<unsigned long long>(s.rows_returned),
                  static_cast<unsigned long long>(s.plan_cache_hits),
                  static_cast<unsigned long long>(s.total_us), s.p99_us);
    out += line;
    out += s.normalized_sql;
    out += '\n';
  }
  return out;
}

size_t StatementStatsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void StatementStatsRegistry::Reset() {
  // Entries are only zeroed, never erased: bound statements (the plan
  // cache, live PreparedStatements) hold raw entry pointers, so pointer
  // stability must survive a reset.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [fp, entry] : entries_) {
    entry->calls_.store(0, std::memory_order_relaxed);
    entry->errors_.store(0, std::memory_order_relaxed);
    entry->rows_returned_.store(0, std::memory_order_relaxed);
    entry->plans_built_.store(0, std::memory_order_relaxed);
    entry->plan_cache_hits_.store(0, std::memory_order_relaxed);
    entry->semi_join_rewrites_.store(0, std::memory_order_relaxed);
    entry->anti_join_rewrites_.store(0, std::memory_order_relaxed);
    entry->batches_.store(0, std::memory_order_relaxed);
    entry->batch_rows_.store(0, std::memory_order_relaxed);
    entry->fallback_rows_.store(0, std::memory_order_relaxed);
    entry->total_us_.store(0, std::memory_order_relaxed);
    entry->min_us_.store(UINT64_MAX, std::memory_order_relaxed);
    entry->max_us_.store(0, std::memory_order_relaxed);
    entry->latency_us_.Reset();
  }
}

}  // namespace p3pdb::sqldb
