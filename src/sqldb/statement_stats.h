// Statement-level telemetry: per-fingerprint execution aggregates, in the
// spirit of pg_stat_statements.
//
// Every SELECT the database prepares is normalized (string and integer
// literals collapse to `?`, exactly like bind-parameter placeholders, and
// whitespace/keyword case is canonicalized) and fingerprinted with FNV-1a
// over the normalized text. Statements that differ only in their literal
// values — the translated rule queries re-submitted per match with a
// different policy id — therefore share one StatementStatsEntry, which
// accumulates calls, rows, plan-cache hits, planner rewrites, vectorized
// batch activity, and a latency distribution.
//
// Concurrency follows the PR-6 stats discipline: the registry mutex is
// taken only at prepare time (Intern) and snapshot time; the per-execution
// tallies on an entry are relaxed atomic operations (entries are shared by
// every thread executing the same statement shape, so the tallies are
// fetch_adds like the MetricsRegistry instruments, not the single-writer
// shard stores — either way the hot loop never blocks).

#ifndef P3PDB_SQLDB_STATEMENT_STATS_H_
#define P3PDB_SQLDB_STATEMENT_STATS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "sqldb/query_result.h"

namespace p3pdb::sqldb {

/// Collapses literals to `?` and canonicalizes spacing and keyword case so
/// that textually different statements with the same shape normalize to the
/// same text. `SELECT x FROM t WHERE id = 3` and `select x from t where
/// id=?` produce identical output. Falls back to a whitespace-collapsed
/// copy of the input when the text does not tokenize.
std::string NormalizeStatementText(std::string_view sql);

/// FNV-1a 64-bit over the normalized text: the statement's fingerprint.
uint64_t FingerprintStatementText(std::string_view normalized);

/// One statement shape's live aggregates. All tallies are relaxed atomics;
/// Record() is safe from any number of concurrent executions.
class StatementStatsEntry {
 public:
  StatementStatsEntry(uint64_t fingerprint, std::string normalized_sql)
      : fingerprint_(fingerprint), normalized_sql_(std::move(normalized_sql)) {}

  /// Tallies one finished execution. `rows` is the result row count (0 on
  /// error), `elapsed_us` the wall time of the execute step, and `local`
  /// the execution's private counters (batch/fallback activity).
  void RecordExecution(const ExecStats& local, uint64_t rows,
                       double elapsed_us, bool ok);

  /// Tallies a plan-cache hit for this shape (parse/bind/plan skipped).
  void RecordPlanCacheHit() {
    plan_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Tallies the planner's rewrite decisions, once per plan build.
  void RecordPlanned(uint64_t semi_rewrites, uint64_t anti_rewrites) {
    plans_built_.fetch_add(1, std::memory_order_relaxed);
    semi_join_rewrites_.fetch_add(semi_rewrites, std::memory_order_relaxed);
    anti_join_rewrites_.fetch_add(anti_rewrites, std::memory_order_relaxed);
  }

  uint64_t fingerprint() const { return fingerprint_; }
  const std::string& normalized_sql() const { return normalized_sql_; }
  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  friend class StatementStatsRegistry;

  const uint64_t fingerprint_;
  const std::string normalized_sql_;

  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> rows_returned_{0};
  std::atomic<uint64_t> plans_built_{0};
  std::atomic<uint64_t> plan_cache_hits_{0};
  std::atomic<uint64_t> semi_join_rewrites_{0};
  std::atomic<uint64_t> anti_join_rewrites_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_rows_{0};
  std::atomic<uint64_t> fallback_rows_{0};
  // Latency: total in integer microseconds plus a log-bucketed histogram
  // for percentiles; min/max maintained with relaxed CAS loops.
  std::atomic<uint64_t> total_us_{0};
  std::atomic<uint64_t> min_us_{UINT64_MAX};
  std::atomic<uint64_t> max_us_{0};
  obs::Histogram latency_us_;
};

/// Frozen copy of one entry, for reports and tests.
struct StatementStatsSnapshot {
  uint64_t fingerprint = 0;
  std::string normalized_sql;
  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t rows_returned = 0;
  uint64_t plans_built = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t semi_join_rewrites = 0;
  uint64_t anti_join_rewrites = 0;
  uint64_t batches = 0;
  uint64_t batch_rows = 0;
  uint64_t fallback_rows = 0;
  uint64_t total_us = 0;
  uint64_t min_us = 0;
  uint64_t max_us = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Owns the per-fingerprint entries. Intern() is called at prepare time
/// (never per execution: the entry pointer rides on the bound statement),
/// so the registry mutex is off the hot path.
class StatementStatsRegistry {
 public:
  StatementStatsRegistry() = default;
  StatementStatsRegistry(const StatementStatsRegistry&) = delete;
  StatementStatsRegistry& operator=(const StatementStatsRegistry&) = delete;

  /// Normalizes and fingerprints `sql`, returning the (possibly new) entry
  /// for its shape. The pointer is stable for the registry's lifetime.
  StatementStatsEntry* Intern(std::string_view sql);

  /// Snapshots every entry, ordered by total time descending (the
  /// `/statements?top=N` order). `top` = 0 means all entries.
  std::vector<StatementStatsSnapshot> Snapshot(size_t top = 0) const;

  /// JSON array of the top-N snapshots (ordered by total time).
  std::string RenderJson(size_t top) const;

  /// Fixed-width text table of the top-N snapshots — the human rendering
  /// shipped next to differential_failure.txt in CI artifacts.
  std::string RenderText(size_t top) const;

  size_t size() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<StatementStatsEntry>> entries_;
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_STATEMENT_STATS_H_
