#include "sqldb/stats.h"

#include <algorithm>
#include <cmath>

namespace p3pdb::sqldb {
namespace {

/// SplitMix64 finalizer over the container hash. Value::Hash() for integers
/// is near-identity, which would leave the HLL's leading-zero counter
/// starved; this mix spreads every input across the full 64 bits.
uint64_t MixHash(const Value& v) {
  uint64_t z = static_cast<uint64_t>(v.Hash()) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Delete churn past this bound marks the NDV sketch stale (a sketch cannot
/// un-see values, so enough deletes force a rebuild from live rows).
uint64_t StaleDeleteThreshold(uint64_t live_rows) {
  return std::max<uint64_t>(16, live_rows / 4);
}

}  // namespace

void HllSketch::Insert(const Value& v) {
  const uint64_t h = MixHash(v);
  const size_t bucket = h >> (64 - kPrecision);
  // Rank of the first set bit in the remaining 64-p bits, 1-based; an
  // all-zero remainder gets the maximum rank.
  const uint64_t rest = h << kPrecision;
  const uint8_t rank =
      rest == 0 ? static_cast<uint8_t>(64 - kPrecision + 1)
                : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  registers_[bucket] = std::max(registers_[bucket], rank);
}

double HllSketch::Estimate() const {
  const double m = static_cast<double>(kRegisters);
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  // alpha_m for m >= 128.
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros != 0) {
    // Linear counting: far more accurate in the small-cardinality regime.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void StatsCatalog::OnInsert(const Table& table, size_t row_id,
                            const Row& row) {
  TableEntry* entry = Find(&table);
  if (entry == nullptr) return;
  std::lock_guard<std::mutex> lock(entry->mu);
  ++entry->row_count;
  for (size_t c = 0; c < entry->columns.size() && c < row.size(); ++c) {
    ColumnEntry& col = entry->columns[c];
    const Value& v = row[c];
    if (v.is_null()) {
      ++col.null_count;
      continue;
    }
    col.sketch.Insert(v);
    if (!col.min.has_value() || Value::OrderCompare(v, *col.min) < 0) {
      col.min = v;
    }
    if (!col.max.has_value() || Value::OrderCompare(v, *col.max) > 0) {
      col.max = v;
    }
  }
  updates_.fetch_add(1, std::memory_order_relaxed);
  MaybeBumpEpochLocked(entry);
}

void StatsCatalog::OnDelete(const Table& table, size_t row_id) {
  TableEntry* entry = Find(&table);
  if (entry == nullptr) return;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->row_count > 0) --entry->row_count;
  ++entry->deletes_since_rebuild;
  // The observer fires after the slot is tombstoned but before the row data
  // is reclaimed (it never is; slots are append-only), so the deleted
  // values are still readable here.
  const Row& row = table.RowAt(row_id);
  for (size_t c = 0; c < entry->columns.size() && c < row.size(); ++c) {
    ColumnEntry& col = entry->columns[c];
    const Value& v = row[c];
    if (v.is_null()) {
      if (col.null_count > 0) --col.null_count;
      continue;
    }
    // Min/max can only shrink inward on delete; invalidate when the
    // tracked extremum just left.
    if (col.min.has_value() && Value::OrderCompare(v, *col.min) == 0) {
      col.minmax_stale = true;
    }
    if (col.max.has_value() && Value::OrderCompare(v, *col.max) == 0) {
      col.minmax_stale = true;
    }
  }
  if (entry->deletes_since_rebuild > StaleDeleteThreshold(entry->row_count)) {
    entry->ndv_stale = true;
  }
  updates_.fetch_add(1, std::memory_order_relaxed);
  MaybeBumpEpochLocked(entry);
}

void StatsCatalog::Register(const Table* table) {
  auto entry = std::make_unique<TableEntry>();
  entry->columns.resize(table->schema().ColumnCount());
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    RebuildLocked(*table, entry.get());
    entry->epoch_anchor_rows = entry->row_count;
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_[table] = std::move(entry);
}

void StatsCatalog::Forget(const Table* table) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(table);
}

void StatsCatalog::AnalyzeAll() {
  std::vector<const Table*> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tables.reserve(entries_.size());
    for (const auto& [table, entry] : entries_) tables.push_back(table);
  }
  for (const Table* table : tables) Analyze(table);
}

void StatsCatalog::Analyze(const Table* table) {
  TableEntry* entry = Find(table);
  if (entry == nullptr) return;
  std::lock_guard<std::mutex> lock(entry->mu);
  RebuildLocked(*table, entry);
  entry->epoch_anchor_rows = entry->row_count;
}

double StatsCatalog::EstimatedRows(const Table* table) const {
  TableEntry* entry = Find(table);
  if (entry == nullptr) return static_cast<double>(table->RowCount());
  std::lock_guard<std::mutex> lock(entry->mu);
  return static_cast<double>(entry->row_count);
}

double StatsCatalog::EstimatedNdv(const Table* table,
                                  size_t column_ordinal) const {
  TableEntry* entry = Find(table);
  if (entry == nullptr) return 0.0;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (column_ordinal >= entry->columns.size()) return 0.0;
  RebuildIfStaleLocked(*table, entry);
  return entry->columns[column_ordinal].sketch.Estimate();
}

double StatsCatalog::NullFraction(const Table* table,
                                  size_t column_ordinal) const {
  TableEntry* entry = Find(table);
  if (entry == nullptr) return 0.0;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (column_ordinal >= entry->columns.size() || entry->row_count == 0) {
    return 0.0;
  }
  const double f = static_cast<double>(
                       entry->columns[column_ordinal].null_count) /
                   static_cast<double>(entry->row_count);
  return std::clamp(f, 0.0, 1.0);
}

std::optional<std::pair<Value, Value>> StatsCatalog::MinMax(
    const Table* table, size_t column_ordinal) const {
  TableEntry* entry = Find(table);
  if (entry == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (column_ordinal >= entry->columns.size()) return std::nullopt;
  if (entry->columns[column_ordinal].minmax_stale) {
    RebuildLocked(*table, entry);
  }
  const ColumnEntry& col = entry->columns[column_ordinal];
  if (!col.min.has_value() || !col.max.has_value()) return std::nullopt;
  return std::make_pair(*col.min, *col.max);
}

std::optional<TableStatsSnapshot> StatsCatalog::Snapshot(
    const Table* table) const {
  TableEntry* entry = Find(table);
  if (entry == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(entry->mu);
  RebuildIfStaleLocked(*table, entry);
  // Min/max staleness is per-column lazy: resolve it here by rescanning
  // only when an extremum was deleted since the last rebuild.
  bool any_minmax_stale = false;
  for (const ColumnEntry& col : entry->columns) {
    if (col.minmax_stale) any_minmax_stale = true;
  }
  if (any_minmax_stale) RebuildLocked(*table, entry);
  TableStatsSnapshot snap;
  snap.row_count = entry->row_count;
  snap.columns.reserve(entry->columns.size());
  for (const ColumnEntry& col : entry->columns) {
    ColumnStatsSnapshot cs;
    cs.ndv = col.sketch.Estimate();
    cs.null_count = col.null_count;
    cs.min = col.min;
    cs.max = col.max;
    snap.columns.push_back(std::move(cs));
  }
  return snap;
}

StatsCounters StatsCatalog::counters() const {
  StatsCounters c;
  c.updates = updates_.load(std::memory_order_relaxed);
  c.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  c.epoch_bumps = epoch_bumps_.load(std::memory_order_relaxed);
  return c;
}

StatsCatalog::TableEntry* StatsCatalog::Find(const Table* table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(table);
  return it == entries_.end() ? nullptr : it->second.get();
}

void StatsCatalog::RebuildLocked(const Table& table,
                                 TableEntry* entry) const {
  entry->row_count = table.RowCount();
  entry->deletes_since_rebuild = 0;
  entry->ndv_stale = false;
  for (ColumnEntry& col : entry->columns) {
    col.sketch.Reset();
    col.null_count = 0;
    col.min.reset();
    col.max.reset();
    col.minmax_stale = false;
  }
  for (size_t row_id = 0; row_id < table.SlotCount(); ++row_id) {
    if (!table.IsLive(row_id)) continue;
    const Row& row = table.RowAt(row_id);
    for (size_t c = 0; c < entry->columns.size() && c < row.size(); ++c) {
      ColumnEntry& col = entry->columns[c];
      const Value& v = row[c];
      if (v.is_null()) {
        ++col.null_count;
        continue;
      }
      col.sketch.Insert(v);
      if (!col.min.has_value() || Value::OrderCompare(v, *col.min) < 0) {
        col.min = v;
      }
      if (!col.max.has_value() || Value::OrderCompare(v, *col.max) > 0) {
        col.max = v;
      }
    }
  }
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
}

void StatsCatalog::RebuildIfStaleLocked(const Table& table,
                                        TableEntry* entry) const {
  if (entry->ndv_stale) RebuildLocked(table, entry);
}

void StatsCatalog::MaybeBumpEpochLocked(TableEntry* entry) {
  // Drift test: the live row count moved past 2x (or under 0.5x) of the
  // anchor stamped at the last bump. Small tables are exempt below 16 rows
  // so a cold-start trickle of inserts does not thrash the plan cache.
  const uint64_t anchor = entry->epoch_anchor_rows;
  const uint64_t now = entry->row_count;
  const bool grew = now >= 16 && now > anchor * 2;
  const bool shrank = anchor >= 16 && now * 2 < anchor;
  if (!grew && !shrank) return;
  entry->epoch_anchor_rows = now;
  epoch_.fetch_add(1, std::memory_order_relaxed);
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace p3pdb::sqldb
