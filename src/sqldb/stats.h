// Table and column statistics for the cost-based planner.
//
// The paper measured its translated rule queries against DB2, whose
// optimizer picks plans from catalog statistics; our PR-4 planner is purely
// syntactic, so build-side choice and access paths are fixed regardless of
// data shape. This catalog closes that gap: per-table row counts and
// per-column NDV (a HyperLogLog sketch), min/max, and null counts,
// maintained incrementally through the TableObserver hook so every DML path
// (SQL INSERT/UPDATE/DELETE, programmatic InsertRow, shredder writes) is
// covered by construction, in-memory and disk-backed alike.
//
// Maintenance strategy per mutation kind:
//   - Insert: exact row/null counts, exact min/max widening, one HLL
//     register update per column. O(columns), no allocation.
//   - Delete: exact row/null counts (the tombstoned row's data is still
//     readable when OnDelete fires). Min/max are only *invalidated* when
//     the deleted value equals the tracked extremum (a sketch cannot
//     un-see a value), and the NDV sketch accrues `deletes_since_rebuild`;
//     once deletes pass a threshold the column is marked stale and the
//     next reader rebuilds it from the live rows.
//   - Recovery: storage replay restores rows via RestoreSlot, which
//     bypasses observers; Database::OpenStorage calls AnalyzeAll once
//     afterwards. The HLL registers are max-based (order- and
//     duplicate-insensitive), so a rebuild from live rows lands on the
//     same sketch state an incremental history would have — which is what
//     makes "stats identical after reopen" testable, and why the sketch is
//     rebuilt rather than serialized into the checkpoint format.
//
// Thread-safety: mutations run under the server's exclusive install lock;
// reads (planning, snapshots) run under its shared lock and may be
// concurrent with each other. Each table's stats carry their own mutex so
// a lazy rebuild triggered by one reader is invisible to the rest.

#ifndef P3PDB_SQLDB_STATS_H_
#define P3PDB_SQLDB_STATS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sqldb/table.h"
#include "sqldb/value.h"

namespace p3pdb::sqldb {

/// HyperLogLog distinct-count sketch. p=9 (512 registers) keeps the
/// standard error around 1.04/sqrt(512) = 4.6% while costing 512 bytes per
/// column. Values are hashed through Value::Hash() and finalized with a
/// SplitMix64 mix — the raw integer hash is close to identity, which would
/// starve the leading-zero estimator.
class HllSketch {
 public:
  static constexpr int kPrecision = 9;
  static constexpr size_t kRegisters = size_t{1} << kPrecision;

  void Insert(const Value& v);
  /// Cardinality estimate with linear-counting correction for the small
  /// range (the classic HLL bias region).
  double Estimate() const;
  void Reset() { registers_.assign(kRegisters, 0); }
  bool operator==(const HllSketch& other) const {
    return registers_ == other.registers_;
  }

 private:
  std::vector<uint8_t> registers_ = std::vector<uint8_t>(kRegisters, 0);
};

/// Point-in-time view of one column's statistics (tests, admin endpoint).
struct ColumnStatsSnapshot {
  double ndv = 0.0;           // HLL estimate over non-null values
  uint64_t null_count = 0;    // exact
  std::optional<Value> min;   // exact; nullopt when no non-null values
  std::optional<Value> max;
};

struct TableStatsSnapshot {
  uint64_t row_count = 0;
  std::vector<ColumnStatsSnapshot> columns;
};

/// Monotonic maintenance tallies, delta-synced into server metrics.
struct StatsCounters {
  uint64_t updates = 0;      // incremental insert/delete observations
  uint64_t rebuilds = 0;     // full per-table recomputes (lazy or Analyze)
  uint64_t epoch_bumps = 0;  // row-count drift crossings (plan re-cost)
};

/// The statistics catalog: one entry per registered table, maintained
/// through TableObserver callbacks. Also the keeper of the *stats epoch*:
/// a counter bumped whenever any table's live row count drifts past 2x (or
/// below 0.5x) of the count it had when its plans were last costed. Cached
/// plans stamp the epoch they were costed under; a mismatch tells the plan
/// cache the cardinality landscape moved enough that the cost choices may
/// no longer hold, so the entry is dropped and re-costed.
class StatsCatalog : public TableObserver {
 public:
  StatsCatalog() = default;
  StatsCatalog(const StatsCatalog&) = delete;
  StatsCatalog& operator=(const StatsCatalog&) = delete;

  // TableObserver. Fires after the mutation succeeded; OnDelete can still
  // read the tombstoned row's data.
  void OnInsert(const Table& table, size_t row_id, const Row& row) override;
  void OnDelete(const Table& table, size_t row_id) override;
  void OnCreateIndex(const Table& /*table*/, const Index& /*index*/) override {
  }

  /// Starts tracking `table`, analyzing its current contents (usually
  /// empty at CreateTable time; full after recovery).
  void Register(const Table* table);
  /// Stops tracking (DROP TABLE). Safe on unregistered tables.
  void Forget(const Table* table);
  /// Recomputes every registered table from its live rows (post-recovery:
  /// replay bypassed the observers).
  void AnalyzeAll();
  /// Forces a full recompute of one table (tests; also the lazy-rebuild
  /// entry point).
  void Analyze(const Table* table);

  /// Estimated live rows; falls back to the table's own count when the
  /// table is untracked.
  double EstimatedRows(const Table* table) const;
  /// Estimated distinct non-null values in a column; 0 when unknown.
  double EstimatedNdv(const Table* table, size_t column_ordinal) const;
  /// Fraction of rows where the column is NULL, in [0, 1].
  double NullFraction(const Table* table, size_t column_ordinal) const;

  /// Exact (min, max) over the column's non-null values, rescanning lazily
  /// when a deleted extremum left them stale. nullopt when the table is
  /// untracked or the column has no non-null values. The planner's range
  /// selectivity interpolates literals against this span.
  std::optional<std::pair<Value, Value>> MinMax(const Table* table,
                                                size_t column_ordinal) const;

  /// Full snapshot for tests and the admin endpoint; nullopt if untracked.
  std::optional<TableStatsSnapshot> Snapshot(const Table* table) const;

  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  StatsCounters counters() const;

 private:
  struct ColumnEntry {
    HllSketch sketch;
    uint64_t null_count = 0;
    std::optional<Value> min;
    std::optional<Value> max;
    bool minmax_stale = false;  // extremum deleted; rescan before reading
  };

  struct TableEntry {
    mutable std::mutex mu;
    uint64_t row_count = 0;
    uint64_t deletes_since_rebuild = 0;
    bool ndv_stale = false;  // delete churn passed threshold
    /// Live row count when the epoch last moved on this table's account —
    /// the anchor the 2x/0.5x drift test compares against.
    uint64_t epoch_anchor_rows = 0;
    std::vector<ColumnEntry> columns;
  };

  TableEntry* Find(const Table* table) const;
  /// Recomputes `entry` from `table`'s live rows. Caller holds entry->mu.
  /// Const: lazy rebuilds fire from read paths (planning, snapshots).
  void RebuildLocked(const Table& table, TableEntry* entry) const;
  void RebuildIfStaleLocked(const Table& table, TableEntry* entry) const;
  /// Bumps the global epoch when `entry`'s row count drifted past the
  /// 2x/0.5x boundary of its anchor. Caller holds entry->mu.
  void MaybeBumpEpochLocked(TableEntry* entry);

  mutable std::mutex mu_;  // guards the map only; entries have their own
  std::unordered_map<const Table*, std::unique_ptr<TableEntry>> entries_;
  std::atomic<uint64_t> epoch_{0};
  mutable std::atomic<uint64_t> updates_{0};
  mutable std::atomic<uint64_t> rebuilds_{0};
  std::atomic<uint64_t> epoch_bumps_{0};
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_STATS_H_
