#include "sqldb/storage.h"

#include <chrono>
#include <cstring>
#include <filesystem>

#include "sqldb/database.h"
#include "sqldb/storage_serde.h"

namespace p3pdb::sqldb {

namespace {

constexpr uint32_t kMetaMagic = 0x50334442;  // "P3DB"
constexpr uint32_t kMetaVersion = 1;
constexpr size_t kMetaSlotSize = 64;
constexpr uint32_t kCheckpointMagic = 0x5033434B;  // "P3CK"

// ---- WAL payload encodings -------------------------------------------------

std::vector<uint8_t> EncodeCreateTable(const TableSchema& schema) {
  ByteWriter w;
  w.PutSchema(schema);
  return std::move(w.bytes);
}

std::vector<uint8_t> EncodeDropTable(const std::string& name) {
  ByteWriter w;
  w.PutString(name);
  return std::move(w.bytes);
}

std::vector<uint8_t> EncodeCreateIndex(const Table& table,
                                       const Index& index) {
  ByteWriter w;
  w.PutString(table.schema().name());
  w.PutString(index.name());
  w.PutU32(static_cast<uint32_t>(index.column_ordinals().size()));
  for (size_t ord : index.column_ordinals()) {
    w.PutString(table.schema().columns()[ord].name);
  }
  w.PutU8(index.unique() ? 1 : 0);
  return std::move(w.bytes);
}

std::vector<uint8_t> EncodeInsert(const Table& table, size_t row_id,
                                  const Row& row) {
  ByteWriter w;
  w.PutString(table.schema().name());
  w.PutU64(row_id);
  w.PutRow(row);
  return std::move(w.bytes);
}

std::vector<uint8_t> EncodeDelete(const Table& table, size_t row_id) {
  ByteWriter w;
  w.PutString(table.schema().name());
  w.PutU64(row_id);
  return std::move(w.bytes);
}

// ---- Paged checkpoint streams ----------------------------------------------

// Writes a byte stream across kPageSize pages through the buffer pool, so
// checkpointing exercises the same replacement/writeback machinery a paged
// heap would.
class PagedWriter {
 public:
  explicit PagedWriter(BufferPool* pool) : pool_(pool) {}

  Status Append(const uint8_t* data, size_t len) {
    while (len > 0) {
      P3PDB_ASSIGN_OR_RETURN(uint8_t* page, pool_->FetchPage(page_));
      const size_t in_page = kPageSize - page_offset_;
      const size_t n = len < in_page ? len : in_page;
      std::memcpy(page + page_offset_, data, n);
      pool_->UnpinPage(page_, /*dirty=*/true);
      page_offset_ += n;
      data += n;
      len -= n;
      total_ += n;
      if (page_offset_ == kPageSize) {
        ++page_;
        page_offset_ = 0;
      }
    }
    return Status::OK();
  }

  Status Append(const ByteWriter& w) {
    return Append(w.bytes.data(), w.bytes.size());
  }

  uint64_t total_bytes() const { return total_; }

 private:
  BufferPool* pool_;
  PageId page_ = 0;
  size_t page_offset_ = 0;
  uint64_t total_ = 0;
};

// Pulls `len`-byte chunks of a checkpoint image back out through the pool.
class PagedReader {
 public:
  PagedReader(BufferPool* pool, uint64_t total_bytes)
      : pool_(pool), remaining_(total_bytes) {}

  Status Read(uint8_t* out, size_t len) {
    if (len > remaining_) {
      return Status::ParseError("checkpoint image: read past end");
    }
    while (len > 0) {
      P3PDB_ASSIGN_OR_RETURN(uint8_t* page, pool_->FetchPage(page_));
      const size_t in_page = kPageSize - page_offset_;
      const size_t n = len < in_page ? len : in_page;
      std::memcpy(out, page + page_offset_, n);
      pool_->UnpinPage(page_, /*dirty=*/false);
      page_offset_ += n;
      out += n;
      len -= n;
      remaining_ -= n;
      if (page_offset_ == kPageSize) {
        ++page_;
        page_offset_ = 0;
      }
    }
    return Status::OK();
  }

  Result<std::vector<uint8_t>> ReadChunk(size_t len) {
    std::vector<uint8_t> buf(len);
    P3PDB_RETURN_IF_ERROR(Read(buf.data(), len));
    return buf;
  }

  Result<uint32_t> ReadU32() {
    uint8_t raw[4];
    P3PDB_RETURN_IF_ERROR(Read(raw, 4));
    return ByteReader(raw, 4).GetU32();
  }

  Result<uint64_t> ReadU64() {
    uint8_t raw[8];
    P3PDB_RETURN_IF_ERROR(Read(raw, 8));
    return ByteReader(raw, 8).GetU64();
  }

 private:
  BufferPool* pool_;
  PageId page_ = 0;
  size_t page_offset_ = 0;
  uint64_t remaining_;
};

bool IsImplicitPkIndex(const Table& table, const Index& index) {
  return index.name() == "pk_" + table.schema().name();
}

}  // namespace

// ---- Open / meta -----------------------------------------------------------

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(Options options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("storage path is empty");
  }
  if (!options.backend_factory) {
    options.backend_factory = [](const std::string& path) {
      return OpenPosixFile(path);
    };
  }
  std::error_code ec;
  std::filesystem::create_directories(options.path, ec);
  if (ec) {
    return Status::Internal("storage mkdir '" + options.path +
                            "': " + ec.message());
  }
  std::unique_ptr<StorageEngine> engine(new StorageEngine(std::move(options)));
  P3PDB_ASSIGN_OR_RETURN(engine->meta_file_, engine->OpenFile("meta"));
  P3PDB_RETURN_IF_ERROR(engine->ReadMeta());
  return engine;
}

std::string StorageEngine::FilePath(const std::string& name) const {
  return options_.path + "/" + name;
}

Result<std::unique_ptr<FileBackend>> StorageEngine::OpenFile(
    const std::string& name) {
  return options_.backend_factory(FilePath(name));
}

namespace {

// One meta slot: magic, version, generation, checkpoint byte length, and a
// checksum over the lot. 64 bytes, zero-padded.
std::vector<uint8_t> EncodeMetaSlot(uint64_t generation,
                                    uint64_t checkpoint_bytes) {
  ByteWriter w;
  w.PutU32(kMetaMagic);
  w.PutU32(kMetaVersion);
  w.PutU64(generation);
  w.PutU64(checkpoint_bytes);
  w.PutU64(StorageChecksum(w.bytes.data(), w.bytes.size()));
  w.bytes.resize(kMetaSlotSize, 0);
  return std::move(w.bytes);
}

// Returns true and fills the outputs when the slot decodes and checksums.
bool DecodeMetaSlot(const uint8_t* data, uint64_t* generation,
                    uint64_t* checkpoint_bytes) {
  ByteReader r(data, kMetaSlotSize);
  auto magic = r.GetU32();
  auto version = r.GetU32();
  auto gen = r.GetU64();
  auto bytes = r.GetU64();
  auto sum = r.GetU64();
  if (!magic.ok() || !version.ok() || !gen.ok() || !bytes.ok() || !sum.ok()) {
    return false;
  }
  if (magic.value() != kMetaMagic || version.value() != kMetaVersion) {
    return false;
  }
  if (StorageChecksum(data, 4 + 4 + 8 + 8) != sum.value()) return false;
  *generation = gen.value();
  *checkpoint_bytes = bytes.value();
  return true;
}

}  // namespace

Status StorageEngine::ReadMeta() {
  uint8_t slots[2 * kMetaSlotSize];
  size_t got = 0;
  P3PDB_RETURN_IF_ERROR(
      meta_file_->ReadAt(0, slots, sizeof(slots), &got));
  std::memset(slots + got, 0, sizeof(slots) - got);

  uint64_t best_gen = 0, best_bytes = 0;
  bool found = false;
  for (int slot = 0; slot < 2; ++slot) {
    uint64_t gen = 0, bytes = 0;
    if (DecodeMetaSlot(slots + slot * kMetaSlotSize, &gen, &bytes) &&
        (!found || gen > best_gen)) {
      best_gen = gen;
      best_bytes = bytes;
      found = true;
    }
  }
  if (!found) {
    // No valid slot. Either the directory is fresh (empty meta file) or the
    // very first meta write was torn by a crash — the initial write is the
    // creation commit point, and a checkpoint flip always leaves the
    // previous generation's slot intact, so "no valid slot" can only mean
    // the database was never successfully created. Reinitialize, clearing
    // any torn bytes first so they can never decode as a slot later.
    if (got != 0) {
      P3PDB_RETURN_IF_ERROR(meta_file_->Truncate(0));
    }
    generation_ = 1;
    checkpoint_bytes_ = 0;
    P3PDB_RETURN_IF_ERROR(WriteMeta());
    P3PDB_RETURN_IF_ERROR(meta_file_->Sync());
  } else {
    generation_ = best_gen;
    checkpoint_bytes_ = best_bytes;
  }
  P3PDB_ASSIGN_OR_RETURN(
      wal_file_, OpenFile("wal." + std::to_string(generation_) + ".log"));
  return Status::OK();
}

Status StorageEngine::WriteMeta() {
  std::vector<uint8_t> slot = EncodeMetaSlot(generation_, checkpoint_bytes_);
  const uint64_t offset = (generation_ % 2) * kMetaSlotSize;
  return meta_file_->WriteAt(offset, slot.data(), slot.size());
}

// ---- Recovery --------------------------------------------------------------

Status StorageEngine::LoadCheckpoint(Database* db) {
  if (checkpoint_bytes_ == 0) return Status::OK();
  P3PDB_ASSIGN_OR_RETURN(
      std::unique_ptr<FileBackend> file,
      OpenFile("checkpoint." + std::to_string(generation_) + ".db"));
  BufferPool pool(file.get(), options_.buffer_pool_pages);
  PagedReader reader(&pool, checkpoint_bytes_);

  P3PDB_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kCheckpointMagic) {
    return Status::ParseError("checkpoint image: bad magic");
  }
  P3PDB_ASSIGN_OR_RETURN(uint32_t table_count, reader.ReadU32());
  for (uint32_t t = 0; t < table_count; ++t) {
    // Each table section is a length-prefixed header blob (schema + index
    // defs) followed by length-prefixed slot blobs.
    P3PDB_ASSIGN_OR_RETURN(uint32_t header_len, reader.ReadU32());
    P3PDB_ASSIGN_OR_RETURN(std::vector<uint8_t> header,
                           reader.ReadChunk(header_len));
    ByteReader hr(header.data(), header.size());
    P3PDB_ASSIGN_OR_RETURN(TableSchema schema, hr.GetSchema());
    Table* table = db->RestoreTable(std::move(schema));
    if (table == nullptr) {
      return Status::Internal("checkpoint image: duplicate table");
    }
    P3PDB_ASSIGN_OR_RETURN(uint32_t index_count, hr.GetU32());
    for (uint32_t i = 0; i < index_count; ++i) {
      P3PDB_ASSIGN_OR_RETURN(std::string index_name, hr.GetString());
      P3PDB_ASSIGN_OR_RETURN(uint32_t ncols, hr.GetU32());
      std::vector<std::string> cols;
      cols.reserve(ncols);
      for (uint32_t c = 0; c < ncols; ++c) {
        P3PDB_ASSIGN_OR_RETURN(std::string col, hr.GetString());
        cols.push_back(std::move(col));
      }
      P3PDB_ASSIGN_OR_RETURN(uint8_t unique, hr.GetU8());
      Status st = table->CreateIndex(index_name, cols, unique != 0);
      // The implicit PK index already exists; a name collision with it is
      // not corruption.
      if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
    }
    P3PDB_ASSIGN_OR_RETURN(uint64_t slot_count, reader.ReadU64());
    for (uint64_t s = 0; s < slot_count; ++s) {
      P3PDB_ASSIGN_OR_RETURN(uint32_t slot_len, reader.ReadU32());
      P3PDB_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                             reader.ReadChunk(slot_len));
      ByteReader sr(blob.data(), blob.size());
      P3PDB_ASSIGN_OR_RETURN(uint8_t live, sr.GetU8());
      if (live != 0) {
        P3PDB_ASSIGN_OR_RETURN(Row row, sr.GetRow());
        P3PDB_RETURN_IF_ERROR(table->RestoreSlot(std::move(row), true));
      } else {
        // Tombstone: a placeholder row keeps the slot array aligned so
        // WAL row ids land where they did in the original run.
        P3PDB_RETURN_IF_ERROR(
            table->RestoreSlot(Row(table->schema().ColumnCount()), false));
      }
    }
  }
  AccumulatePoolStats(pool.stats());
  return Status::OK();
}

Status StorageEngine::ApplyRecord(Database* db, const WalRecord& record) {
  ByteReader r(record.payload.data(), record.payload.size());
  switch (record.type) {
    case WalRecordType::kCommit:
      return Status::OK();
    case WalRecordType::kCreateTable: {
      P3PDB_ASSIGN_OR_RETURN(TableSchema schema, r.GetSchema());
      if (db->RestoreTable(std::move(schema)) == nullptr) {
        return Status::Internal("WAL replay: duplicate CREATE TABLE");
      }
      return Status::OK();
    }
    case WalRecordType::kDropTable: {
      P3PDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
      return db->DropTable(name, /*if_exists=*/false);
    }
    case WalRecordType::kCreateIndex: {
      P3PDB_ASSIGN_OR_RETURN(std::string table_name, r.GetString());
      P3PDB_ASSIGN_OR_RETURN(std::string index_name, r.GetString());
      P3PDB_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
      std::vector<std::string> cols;
      cols.reserve(ncols);
      for (uint32_t i = 0; i < ncols; ++i) {
        P3PDB_ASSIGN_OR_RETURN(std::string col, r.GetString());
        cols.push_back(std::move(col));
      }
      P3PDB_ASSIGN_OR_RETURN(uint8_t unique, r.GetU8());
      Table* table = db->GetMutableTable(table_name);
      if (table == nullptr) {
        return Status::Internal("WAL replay: CREATE INDEX on missing table '" +
                                table_name + "'");
      }
      return table->CreateIndex(index_name, cols, unique != 0);
    }
    case WalRecordType::kInsert: {
      P3PDB_ASSIGN_OR_RETURN(std::string table_name, r.GetString());
      P3PDB_ASSIGN_OR_RETURN(uint64_t row_id, r.GetU64());
      P3PDB_ASSIGN_OR_RETURN(Row row, r.GetRow());
      Table* table = db->GetMutableTable(table_name);
      if (table == nullptr) {
        return Status::Internal("WAL replay: INSERT into missing table '" +
                                table_name + "'");
      }
      if (table->SlotCount() != row_id) {
        // Replay must reproduce the original row ids exactly; drift means
        // the log and checkpoint disagree about slot layout.
        return Status::Internal(
            "WAL replay: row id drift in '" + table_name + "' (expected " +
            std::to_string(row_id) + ", next slot is " +
            std::to_string(table->SlotCount()) + ")");
      }
      return table->Insert(std::move(row));
    }
    case WalRecordType::kDelete: {
      P3PDB_ASSIGN_OR_RETURN(std::string table_name, r.GetString());
      P3PDB_ASSIGN_OR_RETURN(uint64_t row_id, r.GetU64());
      Table* table = db->GetMutableTable(table_name);
      if (table == nullptr) {
        return Status::Internal("WAL replay: DELETE from missing table '" +
                                table_name + "'");
      }
      table->Delete(row_id);
      return Status::OK();
    }
  }
  return Status::Internal("WAL replay: unknown record type");
}

Status StorageEngine::RecoverInto(Database* db) {
  replaying_ = true;
  Status st = [&]() -> Status {
    P3PDB_RETURN_IF_ERROR(LoadCheckpoint(db));
    P3PDB_ASSIGN_OR_RETURN(WalScan scan, ScanWal(wal_file_.get()));
    stats_.recovered_torn_tail = scan.truncated_tail;

    // Pass 1: which transactions reached their commit record?
    std::vector<uint64_t> committed;
    for (const WalRecord& record : scan.records) {
      if (record.type == WalRecordType::kCommit) {
        committed.push_back(record.txn_id);
      }
      if (record.txn_id >= next_txn_id_) next_txn_id_ = record.txn_id + 1;
    }
    auto is_committed = [&committed](uint64_t txn_id) {
      for (uint64_t id : committed) {
        if (id == txn_id) return true;
      }
      return false;
    };

    // Pass 2: redo the committed records in log order.
    for (const WalRecord& record : scan.records) {
      if (record.type == WalRecordType::kCommit) continue;
      if (!is_committed(record.txn_id)) continue;
      P3PDB_RETURN_IF_ERROR(ApplyRecord(db, record));
      ++stats_.recovered_records;
    }
    stats_.recovered_txns = committed.size();

    // Appends resume over the torn/uncommitted tail.
    wal_writer_ =
        std::make_unique<WalWriter>(wal_file_.get(), scan.valid_end_offset);
    wal_bytes_since_checkpoint_ = scan.valid_end_offset;
    return Status::OK();
  }();
  replaying_ = false;
  return st;
}

// ---- Logging hooks ---------------------------------------------------------

Status StorageEngine::FirstError() const {
  std::lock_guard<std::mutex> lock(err_mu_);
  return io_error_;
}

void StorageEngine::RecordError(const Status& st) {
  std::lock_guard<std::mutex> lock(err_mu_);
  if (io_error_.ok()) io_error_ = st;
}

Status StorageEngine::EnsureTxn() {
  P3PDB_RETURN_IF_ERROR(FirstError());
  if (current_txn_id_ == 0) {
    current_txn_id_ = next_txn_id_++;
    pending_ops_ = 0;
  }
  return Status::OK();
}

Status StorageEngine::AppendRecord(WalRecordType type,
                                   std::vector<uint8_t> payload) {
  P3PDB_RETURN_IF_ERROR(EnsureTxn());
  WalRecord record;
  record.txn_id = current_txn_id_;
  record.type = type;
  record.payload = std::move(payload);
  Status st = wal_writer_->Append(record);
  if (!st.ok()) {
    RecordError(st);
    return st;
  }
  ++pending_ops_;
  ++stats_.wal_records;
  return Status::OK();
}

void StorageEngine::OnInsert(const Table& table, size_t row_id,
                             const Row& row) {
  if (replaying_) return;
  (void)AppendRecord(WalRecordType::kInsert, EncodeInsert(table, row_id, row));
}

void StorageEngine::OnDelete(const Table& table, size_t row_id) {
  if (replaying_) return;
  (void)AppendRecord(WalRecordType::kDelete, EncodeDelete(table, row_id));
}

void StorageEngine::OnCreateIndex(const Table& table, const Index& index) {
  if (replaying_) return;
  (void)AppendRecord(WalRecordType::kCreateIndex,
                     EncodeCreateIndex(table, index));
}

void StorageEngine::LogCreateTable(const TableSchema& schema) {
  if (replaying_) return;
  (void)AppendRecord(WalRecordType::kCreateTable, EncodeCreateTable(schema));
}

void StorageEngine::LogDropTable(const std::string& name) {
  if (replaying_) return;
  (void)AppendRecord(WalRecordType::kDropTable, EncodeDropTable(name));
}

// ---- Commit ----------------------------------------------------------------

Status StorageEngine::Begin() {
  P3PDB_RETURN_IF_ERROR(FirstError());
  if (explicit_txn_) {
    return Status::Internal("nested explicit transaction");
  }
  explicit_txn_ = true;
  return Status::OK();
}

Status StorageEngine::Commit() {
  if (!explicit_txn_) {
    return Status::Internal("COMMIT without an open transaction");
  }
  explicit_txn_ = false;
  return CommitCurrentTxn();
}

Status StorageEngine::CommitIfImplicit() {
  if (explicit_txn_) return Status::OK();
  return CommitCurrentTxn();
}

Status StorageEngine::CommitCurrentTxn() {
  if (options_.group_commit) {
    // Even a lone committer goes through the queue, so a commit racing a
    // leader's in-flight fsync piggybacks on it instead of issuing its own.
    P3PDB_ASSIGN_OR_RETURN(uint64_t ticket, StageCurrentTxn());
    return WaitDurable(ticket);
  }
  P3PDB_RETURN_IF_ERROR(FirstError());
  if (current_txn_id_ == 0 || pending_ops_ == 0) {
    current_txn_id_ = 0;  // an empty transaction writes nothing
    return Status::OK();
  }
  WalRecord commit;
  commit.txn_id = current_txn_id_;
  commit.type = WalRecordType::kCommit;
  Status st = wal_writer_->Append(commit);
  if (!st.ok()) {
    RecordError(st);
    return st;
  }
  if (options_.sync_on_commit) {
    st = wal_writer_->Sync();
    if (!st.ok()) {
      RecordError(st);
      return st;
    }
  }
  ++stats_.wal_records;
  ++stats_.wal_commits;
  current_txn_id_ = 0;
  pending_ops_ = 0;
  return Status::OK();
}

Result<uint64_t> StorageEngine::StageCurrentTxn() {
  P3PDB_RETURN_IF_ERROR(FirstError());
  if (current_txn_id_ == 0 || pending_ops_ == 0) {
    current_txn_id_ = 0;  // an empty transaction writes nothing
    return 0;
  }
  WalRecord commit;
  commit.txn_id = current_txn_id_;
  commit.type = WalRecordType::kCommit;
  Status st = wal_writer_->Append(commit);
  if (!st.ok()) {
    RecordError(st);
    return st;
  }
  ++stats_.wal_records;
  ++stats_.wal_commits;
  current_txn_id_ = 0;
  pending_ops_ = 0;
  if (!options_.sync_on_commit) return 0;  // durability off: nothing to wait on
  // The ticket is issued after the append (still under the caller's append
  // serialization), so every ticket <= commit_seq_ has its commit record
  // fully written — a leader that fsyncs up to commit_seq_ covers them all.
  std::lock_guard<std::mutex> lock(gc_mu_);
  return ++commit_seq_;
}

Result<uint64_t> StorageEngine::CommitStaged() {
  if (!explicit_txn_) {
    return Status::Internal("COMMIT without an open transaction");
  }
  explicit_txn_ = false;
  return StageCurrentTxn();
}

Status StorageEngine::WaitDurable(uint64_t ticket) {
  if (ticket == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(gc_mu_);
  for (;;) {
    if (synced_seq_ >= ticket) return Status::OK();
    {
      std::lock_guard<std::mutex> err_lock(err_mu_);
      if (!io_error_.ok()) return io_error_;
    }
    if (!sync_in_progress_) break;  // no leader active: become one
    gc_cv_.wait(lock);
  }
  sync_in_progress_ = true;
  if (options_.group_commit_window_us > 0) {
    // Hold the leader role (but not the lock) briefly so more committers
    // can stage behind this fsync. Spurious wakeups only shorten the wait.
    gc_cv_.wait_for(
        lock, std::chrono::microseconds(options_.group_commit_window_us));
  }
  const uint64_t target = commit_seq_;
  // Checkpoint swaps wal_writer_ only after waiting for !sync_in_progress_,
  // so the pointer captured here stays valid for the unlocked fsync below.
  WalWriter* writer = wal_writer_.get();
  lock.unlock();
  Status st = writer->Sync();
  lock.lock();
  sync_in_progress_ = false;
  group_syncs_.fetch_add(1, std::memory_order_relaxed);
  if (!st.ok()) {
    RecordError(st);
    gc_cv_.notify_all();
    return st;
  }
  if (target > synced_seq_) synced_seq_ = target;
  gc_cv_.notify_all();
  return Status::OK();
}

// ---- Checkpoint ------------------------------------------------------------

Status StorageEngine::Checkpoint(const Database& db) {
  P3PDB_RETURN_IF_ERROR(FirstError());
  if (explicit_txn_ || current_txn_id_ != 0) {
    // A checkpoint mid-transaction would make uncommitted rows durable.
    return Status::OK();
  }
  const uint64_t next_gen = generation_ + 1;
  const std::string ckpt_name = "checkpoint." + std::to_string(next_gen) +
                                ".db";
  const std::string wal_name = "wal." + std::to_string(next_gen) + ".log";

  // 1. Write the full catalog image to the next-generation checkpoint file.
  P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<FileBackend> ckpt_file,
                         OpenFile(ckpt_name));
  P3PDB_RETURN_IF_ERROR(ckpt_file->Truncate(0));  // a stale attempt may exist
  BufferPool pool(ckpt_file.get(), options_.buffer_pool_pages);
  PagedWriter writer(&pool);
  {
    ByteWriter head;
    head.PutU32(kCheckpointMagic);
    head.PutU32(static_cast<uint32_t>(db.TableNames().size()));
    P3PDB_RETURN_IF_ERROR(writer.Append(head));
  }
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.LookupTable(name);
    ByteWriter header;
    header.PutSchema(table->schema());
    std::vector<const Index*> secondary;
    for (const auto& index : table->indexes()) {
      if (!IsImplicitPkIndex(*table, *index)) secondary.push_back(index.get());
    }
    header.PutU32(static_cast<uint32_t>(secondary.size()));
    for (const Index* index : secondary) {
      header.PutString(index->name());
      header.PutU32(static_cast<uint32_t>(index->column_ordinals().size()));
      for (size_t ord : index->column_ordinals()) {
        header.PutString(table->schema().columns()[ord].name);
      }
      header.PutU8(index->unique() ? 1 : 0);
    }
    ByteWriter framed;
    framed.PutU32(static_cast<uint32_t>(header.bytes.size()));
    framed.bytes.insert(framed.bytes.end(), header.bytes.begin(),
                        header.bytes.end());
    framed.PutU64(table->SlotCount());
    P3PDB_RETURN_IF_ERROR(writer.Append(framed));
    for (size_t slot = 0; slot < table->SlotCount(); ++slot) {
      ByteWriter blob;
      if (table->IsLive(slot)) {
        blob.PutU8(1);
        blob.PutRow(table->RowAt(slot));
      } else {
        blob.PutU8(0);
      }
      ByteWriter framed_slot;
      framed_slot.PutU32(static_cast<uint32_t>(blob.bytes.size()));
      framed_slot.bytes.insert(framed_slot.bytes.end(), blob.bytes.begin(),
                               blob.bytes.end());
      P3PDB_RETURN_IF_ERROR(writer.Append(framed_slot));
    }
  }
  P3PDB_RETURN_IF_ERROR(pool.FlushAll());
  P3PDB_RETURN_IF_ERROR(ckpt_file->Sync());
  AccumulatePoolStats(pool.stats());

  // 2. Create the empty next-generation WAL (truncating a stale attempt).
  P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<FileBackend> new_wal,
                         OpenFile(wal_name));
  P3PDB_RETURN_IF_ERROR(new_wal->Truncate(0));
  P3PDB_RETURN_IF_ERROR(new_wal->Sync());

  // 3. Flip the meta slot — this is the atomic commit point of the
  //    checkpoint. A crash before this line recovers at the old
  //    generation; after it, at the new one.
  const uint64_t old_gen = generation_;
  generation_ = next_gen;
  checkpoint_bytes_ = writer.total_bytes();
  Status st = WriteMeta();
  if (st.ok()) st = meta_file_->Sync();
  if (!st.ok()) {
    generation_ = old_gen;
    RecordError(st);
    return st;
  }

  // 4. Retire the old generation's files (best-effort; stale files are
  //    ignored by recovery). A group-commit leader may still be fsyncing
  //    the retired WAL — wait it out under gc_mu_ before freeing the file,
  //    then mark every staged commit durable: the image just made durable
  //    (fsync before the meta flip) contains all of them, so waiters can
  //    stop waiting for a WAL fsync that will never cover them.
  {
    std::unique_lock<std::mutex> lock(gc_mu_);
    gc_cv_.wait(lock, [this] { return !sync_in_progress_; });
    if (wal_writer_ != nullptr) {
      // Fold the retired writer's tallies in so stats stay monotonic across
      // the swap (the server's delta-sync metrics depend on that).
      stats_.wal_bytes += wal_writer_->bytes_written();
      stats_.wal_syncs += wal_writer_->syncs();
    }
    wal_file_ = std::move(new_wal);
    wal_writer_ = std::make_unique<WalWriter>(wal_file_.get(), 0);
    synced_seq_ = commit_seq_;
    gc_cv_.notify_all();
  }
  wal_bytes_since_checkpoint_ = 0;
  std::error_code ec;
  std::filesystem::remove(FilePath("wal." + std::to_string(old_gen) + ".log"),
                          ec);
  std::filesystem::remove(
      FilePath("checkpoint." + std::to_string(old_gen) + ".db"), ec);
  ++stats_.checkpoints;
  return Status::OK();
}

Status StorageEngine::MaybeCheckpoint(const Database& db) {
  if (options_.checkpoint_wal_bytes == 0) return Status::OK();
  if (wal_writer_ == nullptr) return Status::OK();
  if (wal_bytes_since_checkpoint_ + wal_writer_->bytes_written() <
      options_.checkpoint_wal_bytes) {
    return Status::OK();
  }
  return Checkpoint(db);
}

void StorageEngine::AccumulatePoolStats(const BufferPool::Stats& s) {
  stats_.pool.fetches += s.fetches;
  stats_.pool.hits += s.hits;
  stats_.pool.misses += s.misses;
  stats_.pool.evictions += s.evictions;
  stats_.pool.writebacks += s.writebacks;
}

StorageStats StorageEngine::stats() const {
  StorageStats s = stats_;
  if (wal_writer_ != nullptr) {
    s.wal_bytes += wal_writer_->bytes_written();
    s.wal_syncs += wal_writer_->syncs();
  }
  s.wal_group_syncs = group_syncs_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace p3pdb::sqldb
