// StorageEngine: the disk-backed persistence layer under Database.
//
// Layout of the storage directory (Options::path):
//   meta                   two 64-byte slots, written alternately; the valid
//                          slot with the highest generation is authoritative
//   checkpoint.<gen>.db    paged image of the full catalog at generation
//                          <gen> (absent while no checkpoint has been taken)
//   wal.<gen>.log          redo log of everything since checkpoint <gen>
//
// Runtime protocol: every table mutation appends a redo record to the WAL
// (via Table::TableObserver, so programmatic inserts, SQL DML, and index
// DDL all funnel through one hook); a commit record + fsync makes the
// transaction durable. Statements outside an explicit transaction commit
// implicitly. A checkpoint serializes the whole catalog — including
// tombstoned slots, which is what keeps replayed row ids aligned with the
// log — into checkpoint.<gen+1>.db through the buffer pool, creates an
// empty wal.<gen+1>.log, and then flips the meta slot; a crash anywhere in
// that sequence recovers from whichever (checkpoint, wal) pair the meta
// slot still names. Reopen = load checkpoint + replay the committed prefix
// of the WAL; an uncommitted or torn tail is cut off.
//
// Durability model: process-crash consistency. Writes are fsynced on
// commit, but directory entries are not separately synced, so the
// guarantees are exact for a killed process (what the fault harness
// exercises) and fsync-grade for media loss.

#ifndef P3PDB_SQLDB_STORAGE_H_
#define P3PDB_SQLDB_STORAGE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "sqldb/buffer_pool.h"
#include "sqldb/file_backend.h"
#include "sqldb/table.h"
#include "sqldb/wal.h"

namespace p3pdb::sqldb {

class Database;

struct StorageStats {
  uint64_t wal_records = 0;
  uint64_t wal_commits = 0;
  uint64_t wal_syncs = 0;
  uint64_t wal_bytes = 0;
  /// fsyncs issued by group-commit leaders (each may cover many commits;
  /// wal_commits - wal_group_syncs is the number of fsyncs amortized away
  /// when every commit goes through the group path).
  uint64_t wal_group_syncs = 0;
  uint64_t checkpoints = 0;
  uint64_t recovered_txns = 0;
  uint64_t recovered_records = 0;
  bool recovered_torn_tail = false;
  BufferPool::Stats pool;
};

class StorageEngine : public TableObserver {
 public:
  struct Options {
    /// Directory holding meta/checkpoint/WAL files (created if absent).
    std::string path;
    /// Buffer pool capacity (frames of kPageSize) for checkpoint I/O.
    size_t buffer_pool_pages = 64;
    /// fsync the WAL on every commit. Off trades durability of the last
    /// few transactions for speed (bench use).
    bool sync_on_commit = true;
    /// Auto-checkpoint once this many WAL bytes accumulate; 0 disables.
    uint64_t checkpoint_wal_bytes = 4ull << 20;
    /// Group commit: route commit fsyncs through a leader/follower queue so
    /// concurrent committers share one fsync instead of paying one each.
    /// Durability is unchanged — Commit (or WaitDurable on a staged ticket)
    /// still returns only after the commit record is on disk.
    bool group_commit = false;
    /// Extra microseconds a group-commit leader waits before fsyncing, to
    /// let more committers stage behind it. 0 adds no latency; coalescing
    /// then comes only from commits staged while a previous fsync runs.
    uint64_t group_commit_window_us = 0;
    /// Backend factory; defaults to OpenPosixFile. The fault harness
    /// installs MakeFaultInjectingFactory here.
    FileBackendFactory backend_factory;
  };

  /// Opens (or creates) the storage directory and reads the meta block.
  /// Does not touch the Database yet — call RecoverInto next.
  static Result<std::unique_ptr<StorageEngine>> Open(Options options);

  ~StorageEngine() override = default;

  /// Loads the checkpoint image and replays the committed WAL prefix into
  /// `db` (which must be empty). Leaves the WAL positioned after the last
  /// valid record, ready for appends.
  Status RecoverInto(Database* db);

  /// True while RecoverInto is applying records; Database suppresses its
  /// own logging during replay and this engine ignores observer callbacks.
  bool replaying() const { return replaying_; }

  // TableObserver — row/index mutations arrive here from every path
  // (SQL DML, programmatic InsertRow, CREATE INDEX, shredder installs).
  void OnInsert(const Table& table, size_t row_id, const Row& row) override;
  void OnDelete(const Table& table, size_t row_id) override;
  void OnCreateIndex(const Table& table, const Index& index) override;

  // Catalog mutations, called by Database (not observable at Table level).
  void LogCreateTable(const TableSchema& schema);
  void LogDropTable(const std::string& name);

  /// Opens an explicit transaction: statement-level implicit commits are
  /// suspended until Commit.
  Status Begin();
  /// Commits the explicit transaction (appends the commit record, fsyncs).
  Status Commit();
  /// Statement-boundary hook: commits the implicit transaction unless an
  /// explicit one is open. Empty transactions write nothing.
  Status CommitIfImplicit();

  /// Two-phase commit surface for callers that want to release their own
  /// locks before blocking on the disk: CommitStaged appends the commit
  /// record (no fsync) and returns a durability ticket; WaitDurable blocks
  /// until that ticket's commit record is on disk, joining the group-commit
  /// fsync queue. Ticket 0 means "already durable" (empty transaction, or
  /// sync_on_commit off) — WaitDurable(0) returns immediately.
  ///
  /// Staging (like every append) must be serialized by the caller; WaitDurable
  /// is safe from any number of threads concurrently.
  Result<uint64_t> CommitStaged();
  Status WaitDurable(uint64_t ticket);

  /// Serializes the catalog into a new checkpoint generation and truncates
  /// the WAL (by switching to a fresh one). No-op while a transaction is
  /// open.
  Status Checkpoint(const Database& db);
  /// Checkpoint when the WAL has outgrown Options::checkpoint_wal_bytes.
  Status MaybeCheckpoint(const Database& db);

  StorageStats stats() const;

 private:
  explicit StorageEngine(Options options) : options_(std::move(options)) {}

  std::string FilePath(const std::string& name) const;
  Result<std::unique_ptr<FileBackend>> OpenFile(const std::string& name);
  Status ReadMeta();
  Status WriteMeta();
  Status EnsureTxn();
  Status CommitCurrentTxn();
  /// Appends the commit record and issues a durability ticket (0 when there
  /// is nothing to sync). Shared by CommitStaged and the group-commit path
  /// of CommitCurrentTxn.
  Result<uint64_t> StageCurrentTxn();
  Status FirstError() const;
  void RecordError(const Status& st);
  Status AppendRecord(WalRecordType type, std::vector<uint8_t> payload);
  Status ApplyRecord(Database* db, const WalRecord& record);
  Status LoadCheckpoint(Database* db);
  void AccumulatePoolStats(const BufferPool::Stats& s);

  Options options_;
  std::unique_ptr<FileBackend> meta_file_;
  std::unique_ptr<FileBackend> wal_file_;
  std::unique_ptr<WalWriter> wal_writer_;

  uint64_t generation_ = 0;        // live checkpoint/WAL generation
  uint64_t checkpoint_bytes_ = 0;  // byte length of the live checkpoint image
  uint64_t next_txn_id_ = 1;
  uint64_t current_txn_id_ = 0;    // 0 = no transaction open
  uint64_t pending_ops_ = 0;       // records appended in the current txn
  bool explicit_txn_ = false;
  bool replaying_ = false;

  /// First WAL append/fsync failure, sticky. Guarded by err_mu_ because a
  /// group-commit leader can record an fsync failure while the (externally
  /// serialized) append path checks for one.
  mutable std::mutex err_mu_;
  Status io_error_ = Status::OK();

  /// Group-commit state (guarded by gc_mu_). Tickets are a monotonic count
  /// of staged commit records — deliberately not byte offsets, so they stay
  /// valid across the WAL generation switch at checkpoint. A checkpoint
  /// implicitly makes every staged commit durable (the image is fsynced
  /// before the meta flip), so it advances synced_seq_ to commit_seq_.
  mutable std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  uint64_t commit_seq_ = 0;   // tickets issued
  uint64_t synced_seq_ = 0;   // tickets durable
  bool sync_in_progress_ = false;
  std::atomic<uint64_t> group_syncs_{0};

  StorageStats stats_;
  uint64_t wal_bytes_since_checkpoint_ = 0;
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_STORAGE_H_
