#include "sqldb/storage_serde.h"

#include <cstring>

namespace p3pdb::sqldb {

namespace {

// Value tags in the on-disk encoding.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInteger = 1;
constexpr uint8_t kTagText = 2;

}  // namespace

uint64_t StorageChecksum(const uint8_t* data, size_t len) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ data[i]) * 0x100000001B3ULL;
  }
  return h;
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes.insert(bytes.end(), s.begin(), s.end());
}

void ByteWriter::PutValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      PutU8(kTagNull);
      return;
    case ValueType::kInteger:
      PutU8(kTagInteger);
      PutU64(static_cast<uint64_t>(v.AsInteger()));
      return;
    case ValueType::kText:
      PutU8(kTagText);
      PutString(v.AsText());
      return;
    case ValueType::kBoolean:
      // Booleans are expression-only; ValidateRow rejects them as storage,
      // so a boolean can never reach the WAL or a checkpoint.
      PutU8(kTagNull);
      return;
  }
}

void ByteWriter::PutRow(const Row& row) {
  PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(v);
}

void ByteWriter::PutSchema(const TableSchema& schema) {
  PutString(schema.name());
  PutU32(static_cast<uint32_t>(schema.columns().size()));
  for (const ColumnDef& col : schema.columns()) {
    PutString(col.name);
    PutU8(col.type == ColumnType::kInteger ? 0 : 1);
    PutU8(col.nullable ? 1 : 0);
  }
  PutU32(static_cast<uint32_t>(schema.primary_key().size()));
  for (const std::string& col : schema.primary_key()) PutString(col);
  PutU32(static_cast<uint32_t>(schema.foreign_keys().size()));
  for (const ForeignKeyDef& fk : schema.foreign_keys()) {
    PutU32(static_cast<uint32_t>(fk.columns.size()));
    for (const std::string& col : fk.columns) PutString(col);
    PutString(fk.referenced_table);
    PutU32(static_cast<uint32_t>(fk.referenced_columns.size()));
    for (const std::string& col : fk.referenced_columns) PutString(col);
  }
}

Result<uint8_t> ByteReader::GetU8() {
  if (pos_ + 1 > len_) return Status::ParseError("storage decode: short u8");
  return data_[pos_++];
}

Result<uint32_t> ByteReader::GetU32() {
  if (pos_ + 4 > len_) return Status::ParseError("storage decode: short u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  if (pos_ + 8 > len_) return Status::ParseError("storage decode: short u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::string> ByteReader::GetString() {
  P3PDB_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (pos_ + len > len_) {
    return Status::ParseError("storage decode: short string");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Value> ByteReader::GetValue() {
  P3PDB_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagInteger: {
      P3PDB_ASSIGN_OR_RETURN(uint64_t raw, GetU64());
      return Value::Integer(static_cast<int64_t>(raw));
    }
    case kTagText: {
      P3PDB_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::Text(std::move(s));
    }
    default:
      return Status::ParseError("storage decode: bad value tag " +
                                std::to_string(tag));
  }
}

Result<Row> ByteReader::GetRow() {
  P3PDB_ASSIGN_OR_RETURN(uint32_t count, GetU32());
  if (count > remaining()) {
    // Each value costs at least one tag byte; a count beyond the remaining
    // bytes is corruption, not a huge row.
    return Status::ParseError("storage decode: row count exceeds payload");
  }
  Row row;
  row.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    P3PDB_ASSIGN_OR_RETURN(Value v, GetValue());
    row.push_back(std::move(v));
  }
  return row;
}

Result<TableSchema> ByteReader::GetSchema() {
  P3PDB_ASSIGN_OR_RETURN(std::string name, GetString());
  P3PDB_ASSIGN_OR_RETURN(uint32_t ncols, GetU32());
  std::vector<ColumnDef> columns;
  columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnDef col;
    P3PDB_ASSIGN_OR_RETURN(col.name, GetString());
    P3PDB_ASSIGN_OR_RETURN(uint8_t type, GetU8());
    col.type = type == 0 ? ColumnType::kInteger : ColumnType::kText;
    P3PDB_ASSIGN_OR_RETURN(uint8_t nullable, GetU8());
    col.nullable = nullable != 0;
    columns.push_back(std::move(col));
  }
  TableSchema schema(std::move(name), std::move(columns));
  P3PDB_ASSIGN_OR_RETURN(uint32_t npk, GetU32());
  std::vector<std::string> pk;
  pk.reserve(npk);
  for (uint32_t i = 0; i < npk; ++i) {
    P3PDB_ASSIGN_OR_RETURN(std::string col, GetString());
    pk.push_back(std::move(col));
  }
  schema.set_primary_key(std::move(pk));
  P3PDB_ASSIGN_OR_RETURN(uint32_t nfk, GetU32());
  for (uint32_t i = 0; i < nfk; ++i) {
    ForeignKeyDef fk;
    P3PDB_ASSIGN_OR_RETURN(uint32_t nc, GetU32());
    for (uint32_t j = 0; j < nc; ++j) {
      P3PDB_ASSIGN_OR_RETURN(std::string col, GetString());
      fk.columns.push_back(std::move(col));
    }
    P3PDB_ASSIGN_OR_RETURN(fk.referenced_table, GetString());
    P3PDB_ASSIGN_OR_RETURN(uint32_t nrc, GetU32());
    for (uint32_t j = 0; j < nrc; ++j) {
      P3PDB_ASSIGN_OR_RETURN(std::string col, GetString());
      fk.referenced_columns.push_back(std::move(col));
    }
    schema.AddForeignKey(std::move(fk));
  }
  return schema;
}

}  // namespace p3pdb::sqldb
