// Byte-level encoding shared by the WAL and the checkpoint writer.
//
// Everything is little-endian and length-prefixed; decoding is bounds-checked
// against the slice so a torn or corrupt record fails cleanly instead of
// reading past the buffer. The format stores only what the in-memory engine
// supports as column storage: NULL, INTEGER, TEXT (BOOLEAN is an expression
// type, never a stored one — ValidateRow rejects it).

#ifndef P3PDB_SQLDB_STORAGE_SERDE_H_
#define P3PDB_SQLDB_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sqldb/schema.h"
#include "sqldb/value.h"

namespace p3pdb::sqldb {

/// FNV-1a over a byte range; the WAL record and meta-block checksum.
uint64_t StorageChecksum(const uint8_t* data, size_t len);

/// Append-only encoder.
struct ByteWriter {
  std::vector<uint8_t> bytes;

  void PutU8(uint8_t v) { bytes.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutString(const std::string& s);
  void PutValue(const Value& v);
  void PutRow(const Row& row);
  void PutSchema(const TableSchema& schema);
};

/// Bounds-checked decoder over a borrowed byte range.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<std::string> GetString();
  Result<Value> GetValue();
  Result<Row> GetRow();
  Result<TableSchema> GetSchema();

  size_t remaining() const { return len_ - pos_; }
  bool exhausted() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_STORAGE_SERDE_H_
