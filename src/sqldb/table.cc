#include "sqldb/table.h"

#include <algorithm>

namespace p3pdb::sqldb {

Status Index::Insert(const Row& row, size_t row_id) {
  IndexKey key = ExtractKey(row);
  for (const Value& v : key.values) {
    if (v.is_null()) return Status::OK();  // NULL keys are not indexed
  }
  // Find-then-emplace so the key vector is moved into the map instead of
  // copied (map_[key] would deep-copy every Value).
  auto it = map_.find(key);
  if (it == map_.end()) it = map_.try_emplace(std::move(key)).first;
  std::vector<size_t>& ids = it->second;
  if (unique_ && !ids.empty()) {
    return Status::AlreadyExists("unique index '" + name_ +
                                 "' violation for key " +
                                 [&] {
                                   std::string s;
                                   for (const Value& v : it->first.values) {
                                     if (!s.empty()) s += ", ";
                                     s += v.ToString();
                                   }
                                   return s;
                                 }());
  }
  ids.push_back(row_id);
  return Status::OK();
}

void Index::Erase(const Row& row, size_t row_id) {
  IndexKey key = ExtractKey(row);
  for (const Value& v : key.values) {
    if (v.is_null()) return;
  }
  auto it = map_.find(key);
  if (it == map_.end()) return;
  auto& ids = it->second;
  ids.erase(std::remove(ids.begin(), ids.end(), row_id), ids.end());
  if (ids.empty()) map_.erase(it);
}

const std::vector<size_t>* Index::Lookup(const IndexKey& key) const {
  for (const Value& v : key.values) {
    if (v.is_null()) return nullptr;
  }
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

const std::vector<size_t>* Index::Lookup(const IndexKeyView& key) const {
  for (size_t i = 0; i < key.size; ++i) {
    if (key.values[i]->is_null()) return nullptr;
  }
  auto it = map_.find(key);  // heterogeneous lookup, no IndexKey built
  return it == map_.end() ? nullptr : &it->second;
}

IndexKey Index::ExtractKey(const Row& row) const {
  IndexKey key;
  key.values.reserve(column_ordinals_.size());
  for (size_t ord : column_ordinals_) key.values.push_back(row[ord]);
  return key;
}

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  if (!schema_.primary_key().empty()) {
    // The implicit PK index; CreateIndex validates the column names.
    Status st = CreateIndex("pk_" + schema_.name(), schema_.primary_key(),
                            /*unique=*/true);
    (void)st;  // schema construction validated PK columns upstream
  }
}

Status Table::Insert(Row row) {
  P3PDB_RETURN_IF_ERROR(schema_.ValidateRow(row));
  size_t row_id = rows_.size();
  for (auto& index : indexes_) {
    Status st = index->Insert(row, row_id);
    if (!st.ok()) {
      // Roll back entries added to earlier indexes.
      for (auto& prior : indexes_) {
        if (prior.get() == index.get()) break;
        prior->Erase(row, row_id);
      }
      return st;
    }
  }
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  version_.fetch_add(1, std::memory_order_relaxed);
  for (TableObserver* obs : observers_) {
    obs->OnInsert(*this, row_id, rows_[row_id]);
  }
  return Status::OK();
}

void Table::AddObserver(TableObserver* observer) {
  if (observer == nullptr) return;
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    return;
  }
  observers_.push_back(observer);
}

void Table::RemoveObserver(TableObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

void Table::Delete(size_t row_id) {
  if (row_id >= rows_.size() || !live_[row_id]) return;
  for (auto& index : indexes_) index->Erase(rows_[row_id], row_id);
  live_[row_id] = false;
  --live_count_;
  version_.fetch_add(1, std::memory_order_relaxed);
  for (TableObserver* obs : observers_) obs->OnDelete(*this, row_id);
}

Status Table::RestoreSlot(Row row, bool live) {
  const size_t row_id = rows_.size();
  if (live) {
    P3PDB_RETURN_IF_ERROR(schema_.ValidateRow(row));
    for (auto& index : indexes_) {
      Status st = index->Insert(row, row_id);
      if (!st.ok()) {
        for (auto& prior : indexes_) {
          if (prior.get() == index.get()) break;
          prior->Erase(row, row_id);
        }
        return st;
      }
    }
  }
  rows_.push_back(std::move(row));
  live_.push_back(live);
  if (live) ++live_count_;
  version_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::vector<std::string>& column_names,
                          bool unique) {
  std::vector<size_t> ordinals;
  ordinals.reserve(column_names.size());
  for (const std::string& name : column_names) {
    std::optional<size_t> ord = schema_.ColumnIndex(name);
    if (!ord.has_value()) {
      return Status::NotFound("index column '" + name +
                              "' not in table '" + schema_.name() + "'");
    }
    ordinals.push_back(*ord);
  }
  for (const auto& existing : indexes_) {
    if (existing->name() == index_name) {
      return Status::AlreadyExists("index '" + index_name + "' exists");
    }
  }
  auto index = std::make_unique<Index>(index_name, std::move(ordinals), unique);
  for (size_t row_id = 0; row_id < rows_.size(); ++row_id) {
    if (!live_[row_id]) continue;
    P3PDB_RETURN_IF_ERROR(index->Insert(rows_[row_id], row_id));
  }
  indexes_.push_back(std::move(index));
  for (TableObserver* obs : observers_) {
    obs->OnCreateIndex(*this, *indexes_.back());
  }
  return Status::OK();
}

size_t Table::FetchChunk(size_t* cursor, size_t max,
                         const Row** out) const {
  size_t n = 0;
  size_t slot = *cursor;
  const size_t end = rows_.size();
  while (slot < end && n < max) {
    if (live_[slot]) out[n++] = &rows_[slot];
    ++slot;
  }
  *cursor = slot;
  return n;
}

const Index* Table::FindIndexCovering(
    const std::vector<size_t>& column_ordinals) const {
  // An index is usable if every one of its columns appears in the available
  // equality set; prefer the index binding the most columns.
  const Index* best = nullptr;
  for (const auto& index : indexes_) {
    const auto& cols = index->column_ordinals();
    bool all_available = true;
    for (size_t c : cols) {
      if (std::find(column_ordinals.begin(), column_ordinals.end(), c) ==
          column_ordinals.end()) {
        all_available = false;
        break;
      }
    }
    if (!all_available) continue;
    if (best == nullptr ||
        cols.size() > best->column_ordinals().size()) {
      best = index.get();
    }
  }
  return best;
}

}  // namespace p3pdb::sqldb
