// In-memory row-store table with hash indexes.
//
// Rows live in an append-only vector; deletion marks a tombstone so row ids
// stay stable for the indexes. Hash indexes map a composite key (one or more
// column values) to row ids; the primary key is backed by an automatically
// created unique index, which is what makes the shredded policy-id joins in
// the generated APPEL queries fast.

#ifndef P3PDB_SQLDB_TABLE_H_
#define P3PDB_SQLDB_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sqldb/schema.h"
#include "sqldb/value.h"

namespace p3pdb::sqldb {

/// Composite key wrapper with hashing/equality consistent with
/// Value::OrderCompare.
struct IndexKey {
  std::vector<Value> values;

  bool operator==(const IndexKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (Value::OrderCompare(values[i], other.values[i]) != 0) return false;
    }
    return true;
  }
};

/// Non-owning view of a composite key: an array of pointers to Values that
/// live elsewhere (a chunk scratch arena, an expression result). Lets the
/// vectorized executor probe indexes and hash-join key sets without
/// materializing a std::vector<Value> per probe. Hash/equality are kept
/// consistent with IndexKey via the transparent functors below.
struct IndexKeyView {
  const Value* const* values = nullptr;
  size_t size = 0;
};

struct IndexKeyHash {
  using is_transparent = void;

  size_t operator()(const IndexKey& k) const {
    size_t h = 0x811C9DC5;
    for (const Value& v : k.values) {
      h = (h ^ v.Hash()) * 0x01000193;
    }
    return h;
  }
  size_t operator()(const IndexKeyView& k) const {
    size_t h = 0x811C9DC5;
    for (size_t i = 0; i < k.size; ++i) {
      h = (h ^ k.values[i]->Hash()) * 0x01000193;
    }
    return h;
  }
};

struct IndexKeyEqual {
  using is_transparent = void;

  bool operator()(const IndexKey& a, const IndexKey& b) const {
    return a == b;
  }
  bool operator()(const IndexKey& a, const IndexKeyView& b) const {
    if (a.values.size() != b.size) return false;
    for (size_t i = 0; i < b.size; ++i) {
      if (Value::OrderCompare(a.values[i], *b.values[i]) != 0) return false;
    }
    return true;
  }
  bool operator()(const IndexKeyView& a, const IndexKey& b) const {
    return operator()(b, a);
  }
  bool operator()(const IndexKeyView& a, const IndexKeyView& b) const {
    if (a.size != b.size) return false;
    for (size_t i = 0; i < a.size; ++i) {
      if (Value::OrderCompare(*a.values[i], *b.values[i]) != 0) return false;
    }
    return true;
  }
};

/// A secondary (or primary) hash index over one or more columns.
class Index {
 public:
  Index(std::string name, std::vector<size_t> column_ordinals, bool unique)
      : name_(std::move(name)),
        column_ordinals_(std::move(column_ordinals)),
        unique_(unique) {}

  const std::string& name() const { return name_; }
  const std::vector<size_t>& column_ordinals() const {
    return column_ordinals_;
  }
  bool unique() const { return unique_; }

  /// Adds a row id for the key extracted from `row`. Fails on unique
  /// violation.
  Status Insert(const Row& row, size_t row_id);
  void Erase(const Row& row, size_t row_id);

  /// Row ids matching the key (empty if none). Keys containing NULL never
  /// match (SQL semantics: NULL = NULL is not true).
  const std::vector<size_t>* Lookup(const IndexKey& key) const;

  /// Same, but from a non-owning key view — no per-probe allocation.
  const std::vector<size_t>* Lookup(const IndexKeyView& key) const;

  IndexKey ExtractKey(const Row& row) const;

 private:
  std::string name_;
  std::vector<size_t> column_ordinals_;
  bool unique_;
  std::unordered_map<IndexKey, std::vector<size_t>, IndexKeyHash,
                     IndexKeyEqual>
      map_;
};

class Table;

/// Observes physical mutations of a table. The disk-backed storage engine
/// registers itself here so every row insert/delete and index creation —
/// whether it came from SQL DML, programmatic InsertRow, or a shredder
/// writing through the table directly — lands in the write-ahead log.
/// Callbacks fire after the mutation succeeded, under the same external
/// serialization as the mutation itself.
class TableObserver {
 public:
  virtual ~TableObserver() = default;
  virtual void OnInsert(const Table& table, size_t row_id, const Row& row) = 0;
  virtual void OnDelete(const Table& table, size_t row_id) = 0;
  virtual void OnCreateIndex(const Table& table, const Index& index) = 0;
};

/// A table: schema, rows, and indexes.
class Table {
 public:
  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }

  /// Validates and inserts a row, maintaining all indexes (including the
  /// implicit primary-key index, so duplicate PKs are rejected).
  Status Insert(Row row);

  /// Deletes the row with the given id (must be live).
  void Delete(size_t row_id);

  /// Number of live rows.
  size_t RowCount() const { return live_count_; }

  /// Total slots including tombstones (scan bound).
  size_t SlotCount() const { return rows_.size(); }

  bool IsLive(size_t row_id) const { return live_[row_id]; }
  const Row& RowAt(size_t row_id) const { return rows_[row_id]; }

  /// Gathers up to `max` live rows starting at `*cursor` into `out` (row
  /// pointers; rows are stable while the table holds its shared lock).
  /// Advances `*cursor` past the slots visited and returns the number of
  /// rows gathered — 0 means the scan is exhausted.
  size_t FetchChunk(size_t* cursor, size_t max, const Row** out) const;

  /// Creates a named index over the given columns. Existing rows are
  /// indexed immediately.
  Status CreateIndex(const std::string& index_name,
                     const std::vector<std::string>& column_names,
                     bool unique);

  /// Finds an index whose columns are exactly a permutation-free prefix
  /// match of `column_ordinals` (same set). Returns nullptr if none.
  const Index* FindIndexCovering(
      const std::vector<size_t>& column_ordinals) const;

  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

  /// Monotonic modification counter, bumped on every Insert/Delete. The
  /// planner's cached hash-join key sets stamp the versions of the tables
  /// they read and rebuild when any of them move. Relaxed ordering suffices:
  /// writes happen under the server's exclusive install lock, reads under
  /// its shared lock, so the counter is a staleness tally, not a
  /// synchronization point.
  uint64_t version() const { return version_.load(std::memory_order_relaxed); }

  /// Registers a mutation observer (the storage engine, the statistics
  /// catalog). Observers fire in registration order. Not retroactive: the
  /// implicit PK index built by the constructor predates any observer,
  /// which is exactly right — it is part of the schema, not a logged
  /// mutation. Duplicate registration is a no-op.
  void AddObserver(TableObserver* observer);
  void RemoveObserver(TableObserver* observer);
  void ClearObservers() { observers_.clear(); }

  /// Re-creates one physical slot from a storage checkpoint: appends the
  /// row at the next id, dead slots as tombstones (placeholder rows,
  /// never validated or indexed). Bypasses the observer — a restore is not
  /// a new mutation. Used only by storage recovery; regular writers use
  /// Insert/Delete.
  Status RestoreSlot(Row row, bool live);

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;
  std::atomic<uint64_t> version_{0};
  std::vector<TableObserver*> observers_;
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_TABLE_H_
