#include "sqldb/value.h"

#include <functional>

#include "common/string_util.h"

namespace p3pdb::sqldb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInteger:
      return "INTEGER";
    case ValueType::kText:
      return "TEXT";
    case ValueType::kBoolean:
      return "BOOLEAN";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInteger:
      return std::to_string(AsInteger());
    case ValueType::kText:
      return SqlQuote(AsText());
    case ValueType::kBoolean:
      return AsBoolean() ? "TRUE" : "FALSE";
  }
  return "?";
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInteger:
      return std::to_string(AsInteger());
    case ValueType::kText:
      return AsText();
    case ValueType::kBoolean:
      return AsBoolean() ? "TRUE" : "FALSE";
  }
  return "?";
}

namespace {

Status IncompatibleTypes(const Value& a, const Value& b) {
  return Status::InvalidArgument(
      std::string("cannot compare ") + ValueTypeName(a.type()) + " with " +
      ValueTypeName(b.type()));
}

}  // namespace

Result<Value> Value::CompareEq(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() != b.type()) return IncompatibleTypes(a, b);
  switch (a.type()) {
    case ValueType::kInteger:
      return Value::Boolean(a.AsInteger() == b.AsInteger());
    case ValueType::kText:
      return Value::Boolean(a.AsText() == b.AsText());
    case ValueType::kBoolean:
      return Value::Boolean(a.AsBoolean() == b.AsBoolean());
    default:
      return IncompatibleTypes(a, b);
  }
}

Result<Value> Value::CompareLt(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() != b.type()) return IncompatibleTypes(a, b);
  switch (a.type()) {
    case ValueType::kInteger:
      return Value::Boolean(a.AsInteger() < b.AsInteger());
    case ValueType::kText:
      return Value::Boolean(a.AsText() < b.AsText());
    default:
      return IncompatibleTypes(a, b);
  }
}

int Value::OrderCompare(const Value& a, const Value& b) {
  int ta = static_cast<int>(a.type());
  int tb = static_cast<int>(b.type());
  if (ta != tb) return ta < tb ? -1 : 1;
  switch (a.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInteger: {
      int64_t x = a.AsInteger(), y = b.AsInteger();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kText:
      return a.AsText().compare(b.AsText());
    case ValueType::kBoolean:
      return static_cast<int>(a.AsBoolean()) - static_cast<int>(b.AsBoolean());
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9;
    case ValueType::kInteger:
      return std::hash<int64_t>()(AsInteger());
    case ValueType::kText:
      return std::hash<std::string>()(AsText());
    case ValueType::kBoolean:
      return AsBoolean() ? 1u : 2u;
  }
  return 0;
}

}  // namespace p3pdb::sqldb
