// Value: the runtime datum of the sqldb engine.
//
// The engine supports the types the P3P shredding needs — NULL, 64-bit
// integers, and text — plus booleans as the result type of predicates.
// Comparisons follow SQL three-valued logic: any comparison involving NULL
// yields NULL, and the executor's filters only keep rows whose predicate is
// exactly TRUE.

#ifndef P3PDB_SQLDB_VALUE_H_
#define P3PDB_SQLDB_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace p3pdb::sqldb {

enum class ValueType { kNull, kInteger, kText, kBoolean };

const char* ValueTypeName(ValueType t);

/// A single SQL value. Copyable; text values own their bytes.
class Value {
 public:
  /// NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Integer(int64_t v) { return Value(v); }
  static Value Text(std::string v) { return Value(std::move(v)); }
  static Value Boolean(bool v) { return Value(v); }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInteger;
      case 2:
        return ValueType::kText;
      default:
        return ValueType::kBoolean;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInteger() const { return std::get<int64_t>(data_); }
  const std::string& AsText() const { return std::get<std::string>(data_); }
  bool AsBoolean() const { return std::get<bool>(data_); }

  /// SQL-literal-ish rendering: NULL, 42, 'text', TRUE.
  std::string ToString() const;

  /// Raw rendering without quotes, used for result tables.
  std::string ToDisplayString() const;

  /// Strict equality of type and content (NULL == NULL here; this is the
  /// C++-level identity used by containers, not SQL equality).
  bool operator==(const Value& other) const { return data_ == other.data_; }

  /// Three-valued SQL comparison. Returns Boolean or Null. Comparing values
  /// of incompatible non-null types is an error (the binder should have
  /// rejected it; kept as a runtime check for robustness).
  static Result<Value> CompareEq(const Value& a, const Value& b);
  static Result<Value> CompareLt(const Value& a, const Value& b);

  /// Total order used for ORDER BY and index keys: NULL first, then by type,
  /// then by content. Returns <0, 0, >0.
  static int OrderCompare(const Value& a, const Value& b);

  /// Hash compatible with OrderCompare equality, for hash indexes.
  size_t Hash() const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(bool v) : data_(v) {}

  std::variant<std::monostate, int64_t, std::string, bool> data_;
};

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_VALUE_H_
