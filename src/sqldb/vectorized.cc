// Vectorized batch executor: the chunked scan/filter path of Executor.
//
// Scans of annotated statements (SelectStmt::slot_plans, see
// planner.cc:AnnotateSelect) run here instead of the scalar ScanSlot body.
// Outer FROM slots still position one row at a time — that preserves the
// EXISTS early-out contract exactly — but they take their access path from
// the plan annotation instead of re-deriving it per scan. The innermost
// slot with a WHERE clause gathers live rows into chunks of row pointers
// and evaluates the predicate with per-operator kernels over a selection
// vector, so the interpreter recursion, Result<Value> plumbing, and Value
// copies of the scalar path are amortized over whole chunks:
//
//   - comparisons, IN lists, LIKE, and IS NULL run as tight loops over
//     operand "slices" (a broadcast scalar, a column of the chunk, or a
//     per-row fallback arena);
//   - AND/OR narrow the selection vector instead of short-circuiting per
//     row, evaluating exactly the operand set the scalar path would have
//     (rows drop out on FALSE for AND / TRUE for OR; NULL taints the
//     verdict but keeps the row active);
//   - hash semi/anti-join probes fetch the shared key set once per chunk
//     and probe with non-owning IndexKeyView keys (no per-probe allocation
//     or lock);
//   - anything else (correlated EXISTS, bare column predicates) falls back
//     to the scalar evaluator row by row, tallied in
//     vectorized_fallback_rows.
//
// Three-valued logic is tracked as a tri-state verdict per chunk row; only
// kTriTrue emits the row, matching EvalFilter. Chunks ramp from a small
// size up to ExecConfig::chunk_size so an early-stopping consumer (EXISTS
// over a filtered subquery) wastes little gather work.
//
// Scratch memory comes from a thread-local pool of cap-sized blocks handed
// out LIFO, so steady-state execution allocates nothing per chunk.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sqldb/executor.h"

namespace p3pdb::sqldb {

namespace {

// Tri-state predicate verdict for one chunk row.
constexpr uint8_t kTriFalse = 0;
constexpr uint8_t kTriTrue = 1;
constexpr uint8_t kTriNull = 2;

// First-chunk gather size; quadruples per chunk up to ExecConfig::chunk_size
// to bound wasted gathering when the consumer stops early.
constexpr size_t kRampStart = 32;

Status IncompatibleTypes(const Value& a, const Value& b) {
  return Status::InvalidArgument(std::string("cannot compare ") +
                                 ValueTypeName(a.type()) + " with " +
                                 ValueTypeName(b.type()));
}

}  // namespace

/// Reusable chunk-evaluation arenas. All blocks are `cap` elements long and
/// handed out LIFO via Save/Restore marks, so nested kernel evaluations
/// (AND of IN of comparisons) stack their temporaries without allocating
/// after warm-up.
struct VecScratch {
  size_t cap = 0;
  std::vector<const Row*> rows;  // the current chunk, indexed by chunk row

  std::vector<std::unique_ptr<uint32_t[]>> u32_blocks;
  std::vector<std::unique_ptr<uint8_t[]>> u8_blocks;
  std::vector<std::unique_ptr<Value[]>> value_blocks;
  size_t u32_used = 0;
  size_t u8_used = 0;
  size_t value_used = 0;

  void Reset(size_t capacity) {
    if (capacity > cap) {
      u32_blocks.clear();
      u8_blocks.clear();
      value_blocks.clear();
      cap = capacity;
    }
    if (rows.size() < cap) rows.resize(cap);
    FreeAll();
  }

  void FreeAll() { u32_used = u8_used = value_used = 0; }

  uint32_t* AllocU32() {
    if (u32_used == u32_blocks.size()) {
      u32_blocks.push_back(std::make_unique<uint32_t[]>(cap));
    }
    return u32_blocks[u32_used++].get();
  }
  uint8_t* AllocU8() {
    if (u8_used == u8_blocks.size()) {
      u8_blocks.push_back(std::make_unique<uint8_t[]>(cap));
    }
    return u8_blocks[u8_used++].get();
  }
  Value* AllocValues() {
    if (value_used == value_blocks.size()) {
      value_blocks.push_back(std::make_unique<Value[]>(cap));
    }
    return value_blocks[value_used++].get();
  }

  struct Mark {
    size_t u32;
    size_t u8;
    size_t value;
  };
  Mark Save() const { return {u32_used, u8_used, value_used}; }
  void Restore(const Mark& m) {
    u32_used = m.u32;
    u8_used = m.u8;
    value_used = m.value;
  }
};

namespace {

// Thread-local LIFO pool of scratch arenas. Nested vectorized scans (a
// correlated-EXISTS fallback re-entering the batch path) each lease their
// own arena; depth is bounded by the subquery-depth limit.
thread_local std::vector<std::unique_ptr<VecScratch>> tls_scratch_pool;

class VecScratchLease {
 public:
  explicit VecScratchLease(size_t cap) {
    if (tls_scratch_pool.empty()) {
      scratch_ = std::make_unique<VecScratch>();
    } else {
      scratch_ = std::move(tls_scratch_pool.back());
      tls_scratch_pool.pop_back();
    }
    scratch_->Reset(cap);
  }
  ~VecScratchLease() { tls_scratch_pool.push_back(std::move(scratch_)); }
  VecScratchLease(const VecScratchLease&) = delete;
  VecScratchLease& operator=(const VecScratchLease&) = delete;

  VecScratch& operator*() { return *scratch_; }

 private:
  std::unique_ptr<VecScratch> scratch_;
};

/// One operand of a chunk kernel. Either a single Value broadcast across
/// the chunk (literal, bind parameter, or a column of an already-positioned
/// outer slot), a column ordinal of the chunk's own table (read zero-copy
/// from the row pointers), or a per-row arena filled by the scalar
/// evaluator (arbitrary nested expressions).
struct OperandSlice {
  enum class Kind { kBroadcast, kColumn, kRowValues };

  Kind kind = Kind::kBroadcast;
  const Value* broadcast = nullptr;
  size_t ordinal = 0;
  const Value* arena = nullptr;  // indexed by chunk row

  const Value& At(const VecScratch& s, uint32_t row) const {
    switch (kind) {
      case Kind::kColumn:
        return (*s.rows[row])[ordinal];
      case Kind::kRowValues:
        return arena[row];
      default:
        return *broadcast;
    }
  }
};

}  // namespace

Status Executor::EvalPredicateChunk(const Expr& expr, size_t slot,
                                    ScopeStack& stack, Scope& scope,
                                    const uint32_t* active, size_t n_active,
                                    uint8_t* out, const char* nonbool_error,
                                    VecScratch& scratch) {
  // Binds one operand expression as a slice over `rows`/`n` (a subset of
  // this call's active set). Error cases reproduce the scalar evaluator's
  // messages exactly.
  auto bind = [&](const Expr& e, const uint32_t* rows, size_t n,
                  OperandSlice* s) -> Status {
    switch (e.kind) {
      case ExprKind::kLiteral:
        s->kind = OperandSlice::Kind::kBroadcast;
        s->broadcast = &static_cast<const LiteralExpr&>(e).value;
        return Status::OK();
      case ExprKind::kParam: {
        const auto& param = static_cast<const ParamExpr&>(e);
        if (params_ == nullptr || param.index >= params_->size()) {
          return Status::InvalidArgument(
              "unbound parameter: statement uses '?' placeholder " +
              std::to_string(param.index + 1) + " but " +
              std::to_string(params_ == nullptr ? 0 : params_->size()) +
              " value(s) were supplied");
        }
        s->kind = OperandSlice::Kind::kBroadcast;
        s->broadcast = &(*params_)[param.index];
        return Status::OK();
      }
      case ExprKind::kColumnRef: {
        const auto& ref = static_cast<const ColumnRefExpr&>(e);
        if (ref.level == 0 && ref.table_slot == slot) {
          s->kind = OperandSlice::Kind::kColumn;
          s->ordinal = ref.column_ordinal;
          return Status::OK();
        }
        if (ref.level < 0 || static_cast<size_t>(ref.level) >= stack.size()) {
          return Status::Internal("unbound column reference '" + ref.ToSql() +
                                  "'");
        }
        const Scope* sc = stack[stack.size() - 1 - ref.level];
        const Row* row = sc->rows[ref.table_slot];
        if (row == nullptr) {
          return Status::Internal("column '" + ref.ToSql() +
                                  "' read before its table was positioned");
        }
        s->kind = OperandSlice::Kind::kBroadcast;
        s->broadcast = &(*row)[ref.column_ordinal];
        return Status::OK();
      }
      default: {
        // Arbitrary nested expression: evaluate per row with the scalar
        // evaluator into an arena indexed by chunk row.
        s->kind = OperandSlice::Kind::kRowValues;
        Value* arena = scratch.AllocValues();
        stats_->vectorized_fallback_rows += n;
        for (size_t p = 0; p < n; ++p) {
          uint32_t r = rows[p];
          scope.rows[slot] = scratch.rows[r];
          P3PDB_ASSIGN_OR_RETURN(Value v, Eval(e, stack));
          arena[r] = std::move(v);
        }
        s->arena = arena;
        return Status::OK();
      }
    }
  };

  switch (expr.kind) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      VecScratch::Mark m = scratch.Save();
      OperandSlice ls, rs;
      P3PDB_RETURN_IF_ERROR(bind(*cmp.left, active, n_active, &ls));
      P3PDB_RETURN_IF_ERROR(bind(*cmp.right, active, n_active, &rs));
      stats_->comparisons += n_active;
      const CompareOp op = cmp.op;
      if (op == CompareOp::kEq || op == CompareOp::kNe) {
        const bool want = op == CompareOp::kEq;
        for (size_t p = 0; p < n_active; ++p) {
          uint32_t r = active[p];
          const Value& a = ls.At(scratch, r);
          const Value& b = rs.At(scratch, r);
          if (a.is_null() || b.is_null()) {
            out[r] = kTriNull;
            continue;
          }
          if (a.type() != b.type()) return IncompatibleTypes(a, b);
          bool eq;
          switch (a.type()) {
            case ValueType::kInteger:
              eq = a.AsInteger() == b.AsInteger();
              break;
            case ValueType::kText:
              eq = a.AsText() == b.AsText();
              break;
            case ValueType::kBoolean:
              eq = a.AsBoolean() == b.AsBoolean();
              break;
            default:
              return IncompatibleTypes(a, b);
          }
          out[r] = (eq == want) ? kTriTrue : kTriFalse;
        }
      } else {
        // kLt/kGe order the pair (left, right); kGt/kLe probe (right, left),
        // mirroring the scalar path so mixed-type errors name the same
        // operand first.
        const bool left_first = op == CompareOp::kLt || op == CompareOp::kGe;
        const bool want_lt = op == CompareOp::kLt || op == CompareOp::kGt;
        for (size_t p = 0; p < n_active; ++p) {
          uint32_t r = active[p];
          const Value& a = ls.At(scratch, r);
          const Value& b = rs.At(scratch, r);
          if (a.is_null() || b.is_null()) {
            out[r] = kTriNull;
            continue;
          }
          const Value& x = left_first ? a : b;
          const Value& y = left_first ? b : a;
          if (x.type() != y.type()) return IncompatibleTypes(x, y);
          bool lt;
          switch (x.type()) {
            case ValueType::kInteger:
              lt = x.AsInteger() < y.AsInteger();
              break;
            case ValueType::kText:
              lt = x.AsText() < y.AsText();
              break;
            default:
              return IncompatibleTypes(x, y);
          }
          out[r] = (lt == want_lt) ? kTriTrue : kTriFalse;
        }
      }
      scratch.Restore(m);
      return Status::OK();
    }

    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(expr);
      VecScratch::Mark m = scratch.Save();
      uint32_t* cur = scratch.AllocU32();
      std::copy(active, active + n_active, cur);
      size_t n_cur = n_active;
      const uint8_t identity = l.is_and ? kTriTrue : kTriFalse;
      for (size_t p = 0; p < n_active; ++p) out[active[p]] = identity;
      uint8_t* tmp = scratch.AllocU8();
      for (const ExprPtr& op : l.operands) {
        if (n_cur == 0) break;
        P3PDB_RETURN_IF_ERROR(EvalPredicateChunk(
            *op, slot, stack, scope, cur, n_cur, tmp, nullptr, scratch));
        // Narrow: a decided row (FALSE under AND, TRUE under OR) leaves the
        // selection — the scalar path would have short-circuited it — and
        // NULL taints the verdict but keeps the row active, exactly like
        // the scalar saw_null flag.
        size_t w = 0;
        if (l.is_and) {
          for (size_t p = 0; p < n_cur; ++p) {
            uint32_t r = cur[p];
            uint8_t v = tmp[r];
            if (v == kTriFalse) {
              out[r] = kTriFalse;
              continue;
            }
            if (v == kTriNull) out[r] = kTriNull;
            cur[w++] = r;
          }
        } else {
          for (size_t p = 0; p < n_cur; ++p) {
            uint32_t r = cur[p];
            uint8_t v = tmp[r];
            if (v == kTriTrue) {
              out[r] = kTriTrue;
              continue;
            }
            if (v == kTriNull) out[r] = kTriNull;
            cur[w++] = r;
          }
        }
        n_cur = w;
      }
      scratch.Restore(m);
      return Status::OK();
    }

    case ExprKind::kNot: {
      const auto& n = static_cast<const NotExpr&>(expr);
      VecScratch::Mark m = scratch.Save();
      uint8_t* tmp = scratch.AllocU8();
      P3PDB_RETURN_IF_ERROR(EvalPredicateChunk(*n.operand, slot, stack, scope,
                                               active, n_active, tmp,
                                               "NOT applied to non-boolean",
                                               scratch));
      for (size_t p = 0; p < n_active; ++p) {
        uint32_t r = active[p];
        uint8_t v = tmp[r];
        out[r] = v == kTriNull ? kTriNull
                               : (v == kTriTrue ? kTriFalse : kTriTrue);
      }
      scratch.Restore(m);
      return Status::OK();
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      VecScratch::Mark m = scratch.Save();
      OperandSlice needle;
      P3PDB_RETURN_IF_ERROR(bind(*in.operand, active, n_active, &needle));
      uint8_t* saw_null = scratch.AllocU8();
      uint32_t* cur = scratch.AllocU32();
      std::copy(active, active + n_active, cur);
      size_t n_cur = n_active;
      for (size_t p = 0; p < n_active; ++p) {
        out[active[p]] = kTriFalse;
        saw_null[active[p]] = 0;
      }
      // Item-major search: rows leave the selection once matched (the
      // scalar path breaks out of the item loop), NULL-compare rows stay
      // in with their flag set (the scalar path keeps scanning items).
      for (const ExprPtr& item : in.items) {
        if (n_cur == 0) break;
        VecScratch::Mark mi = scratch.Save();
        OperandSlice is;
        P3PDB_RETURN_IF_ERROR(bind(*item, cur, n_cur, &is));
        stats_->comparisons += n_cur;
        size_t w = 0;
        for (size_t p = 0; p < n_cur; ++p) {
          uint32_t r = cur[p];
          const Value& nv = needle.At(scratch, r);
          const Value& iv = is.At(scratch, r);
          if (nv.is_null() || iv.is_null()) {
            saw_null[r] = 1;
            cur[w++] = r;
            continue;
          }
          if (nv.type() != iv.type()) return IncompatibleTypes(nv, iv);
          bool eq;
          switch (nv.type()) {
            case ValueType::kInteger:
              eq = nv.AsInteger() == iv.AsInteger();
              break;
            case ValueType::kText:
              eq = nv.AsText() == iv.AsText();
              break;
            case ValueType::kBoolean:
              eq = nv.AsBoolean() == iv.AsBoolean();
              break;
            default:
              return IncompatibleTypes(nv, iv);
          }
          if (eq) {
            out[r] = kTriTrue;
          } else {
            cur[w++] = r;
          }
        }
        n_cur = w;
        scratch.Restore(mi);
      }
      for (size_t p = 0; p < n_cur; ++p) {
        uint32_t r = cur[p];
        if (saw_null[r]) out[r] = kTriNull;
      }
      if (in.negated) {
        for (size_t p = 0; p < n_active; ++p) {
          uint32_t r = active[p];
          uint8_t v = out[r];
          out[r] = v == kTriNull ? kTriNull
                                 : (v == kTriTrue ? kTriFalse : kTriTrue);
        }
      }
      scratch.Restore(m);
      return Status::OK();
    }

    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(expr);
      VecScratch::Mark m = scratch.Save();
      OperandSlice s;
      P3PDB_RETURN_IF_ERROR(bind(*isn.operand, active, n_active, &s));
      for (size_t p = 0; p < n_active; ++p) {
        uint32_t r = active[p];
        bool is_null = s.At(scratch, r).is_null();
        out[r] = (isn.negated ? !is_null : is_null) ? kTriTrue : kTriFalse;
      }
      scratch.Restore(m);
      return Status::OK();
    }

    case ExprKind::kLike: {
      const auto& lk = static_cast<const LikeExpr&>(expr);
      VecScratch::Mark m = scratch.Save();
      OperandSlice text, pattern;
      P3PDB_RETURN_IF_ERROR(bind(*lk.operand, active, n_active, &text));
      P3PDB_RETURN_IF_ERROR(bind(*lk.pattern, active, n_active, &pattern));
      for (size_t p = 0; p < n_active; ++p) {
        uint32_t r = active[p];
        const Value& t = text.At(scratch, r);
        const Value& pat = pattern.At(scratch, r);
        if (t.is_null() || pat.is_null()) {
          out[r] = kTriNull;
          continue;
        }
        if (t.type() != ValueType::kText || pat.type() != ValueType::kText) {
          return Status::InvalidArgument("LIKE requires text operands");
        }
        ++stats_->comparisons;
        bool matched = SqlLikeMatch(t.AsText(), pat.AsText(), lk.escape_char);
        out[r] = (lk.negated ? !matched : matched) ? kTriTrue : kTriFalse;
      }
      scratch.Restore(m);
      return Status::OK();
    }

    case ExprKind::kHashJoin: {
      const auto& join = static_cast<const HashJoinExpr&>(expr);
      PlanNodeStats* node = nullptr;
      std::chrono::steady_clock::time_point profile_start{};
      if (profile_ != nullptr) {
        node = profile_->HashJoin(&join);
        node->loops += n_active;  // loops = probes
        profile_start = std::chrono::steady_clock::now();
      }
      VecScratch::Mark m = scratch.Save();
      const size_t nk = join.probe_keys.size();
      std::vector<OperandSlice> key_slices(nk);
      for (size_t k = 0; k < nk; ++k) {
        P3PDB_RETURN_IF_ERROR(
            bind(*join.probe_keys[k], active, n_active, &key_slices[k]));
      }
      // One key-set fetch (one memo hit, no mutex after the first) per chunk
      // instead of per probe; lazy so an all-NULL-key chunk never builds the
      // set, like the scalar path.
      const HashJoinRuntime::KeySet* keys = nullptr;
      std::vector<const Value*> kv(nk);
      for (size_t p = 0; p < n_active; ++p) {
        uint32_t r = active[p];
        bool null_key = false;
        for (size_t k = 0; k < nk; ++k) {
          const Value& v = key_slices[k].At(scratch, r);
          if (v.is_null()) {
            null_key = true;
            break;
          }
          kv[k] = &v;
        }
        bool found = false;
        if (!null_key) {
          if (keys == nullptr) {
            P3PDB_ASSIGN_OR_RETURN(keys, MemoKeySet(join));
          }
          found = keys->find(IndexKeyView{kv.data(), nk}) != keys->end();
        }
        ++stats_->hash_join_probes;
        if (node != nullptr && found) ++node->rows;  // rows = probe hits
        out[r] = (join.anti ? !found : found) ? kTriTrue : kTriFalse;
      }
      if (node != nullptr) {
        node->elapsed_us +=
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - profile_start)
                .count();
      }
      scratch.Restore(m);
      return Status::OK();
    }

    default: {
      // Correlated EXISTS and non-predicate kinds: scalar evaluation per
      // active row, with the boolean conversion of the enclosing context.
      stats_->vectorized_fallback_rows += n_active;
      for (size_t p = 0; p < n_active; ++p) {
        uint32_t r = active[p];
        scope.rows[slot] = scratch.rows[r];
        P3PDB_ASSIGN_OR_RETURN(Value v, Eval(expr, stack));
        if (v.is_null()) {
          out[r] = kTriNull;
          continue;
        }
        if (v.type() != ValueType::kBoolean) {
          if (nonbool_error != nullptr) {
            return Status::InvalidArgument(nonbool_error);
          }
          return Status::InvalidArgument("logical operand is not a boolean: " +
                                         expr.ToSql());
        }
        out[r] = v.AsBoolean() ? kTriTrue : kTriFalse;
      }
      return Status::OK();
    }
  }
}

Status Executor::ScanSlotVectorized(
    const SelectStmt& stmt, ScopeStack& stack, Scope& scope, size_t slot,
    const RowCallback& on_row, bool* stopped,
    PlanNodeStats* node) {
  const Table* table = stmt.from[slot].table;
  const SlotPlan& sp = stmt.slot_plans[slot];

  // Access path from the plan annotation (no per-scan equality collection).
  const std::vector<size_t>* row_ids = nullptr;
  if (sp.index != nullptr) {
    ++stats_->index_lookups;
    // Probe with a non-owning view over stack values: the per-match rule
    // queries do one of these per execution, and the owned-IndexKey vector
    // allocation was visible in their profile.
    constexpr size_t kInlineKeyCols = 8;
    Value key_vals[kInlineKeyCols];
    const Value* key_ptrs[kInlineKeyCols];
    if (sp.key_exprs.size() <= kInlineKeyCols) {
      for (size_t i = 0; i < sp.key_exprs.size(); ++i) {
        P3PDB_ASSIGN_OR_RETURN(key_vals[i], Eval(*sp.key_exprs[i], stack));
        key_ptrs[i] = &key_vals[i];
      }
      row_ids = sp.index->Lookup(IndexKeyView{key_ptrs, sp.key_exprs.size()});
    } else {
      IndexKey key;
      key.values.reserve(sp.key_exprs.size());
      for (const Expr* key_expr : sp.key_exprs) {
        P3PDB_ASSIGN_OR_RETURN(Value v, Eval(*key_expr, stack));
        key.values.push_back(std::move(v));
      }
      row_ids = sp.index->Lookup(key);
    }
    if (row_ids == nullptr) return Status::OK();
  } else {
    ++stats_->full_scans;
  }

  if (!sp.vector_filter) {
    // Outer slot or no WHERE: identical row-at-a-time loop to the scalar
    // path (per-row early-out stays exact), annotation-driven access path.
    if (row_ids != nullptr) {
      for (size_t row_id : *row_ids) {
        if (!table->IsLive(row_id)) continue;
        ++stats_->rows_scanned;
        if (node != nullptr) ++node->rows;
        scope.rows[slot] = &table->RowAt(row_id);
        P3PDB_RETURN_IF_ERROR(
            EnumerateRows(stmt, stack, scope, slot + 1, on_row, stopped));
        if (*stopped) break;
      }
    } else {
      for (size_t row_id = 0; row_id < table->SlotCount(); ++row_id) {
        if (!table->IsLive(row_id)) continue;
        ++stats_->rows_scanned;
        if (node != nullptr) ++node->rows;
        scope.rows[slot] = &table->RowAt(row_id);
        P3PDB_RETURN_IF_ERROR(
            EnumerateRows(stmt, stack, scope, slot + 1, on_row, stopped));
        if (*stopped) break;
      }
    }
    scope.rows[slot] = nullptr;
    return Status::OK();
  }

  // Tiny row sources skip the chunk machinery entirely: the match path's
  // per-policy point lookups position one or two rows, where scratch
  // leasing and kernel dispatch cost more than they amortize. The row loop
  // is the scalar innermost loop (filter then emit), which also keeps the
  // per-row early-out exact for EXISTS consumers of small scans.
  constexpr size_t kSmallScan = 16;
  const size_t candidates =
      row_ids != nullptr ? row_ids->size() : table->SlotCount();
  if (candidates <= kSmallScan) {
    for (size_t i = 0; i < candidates && !*stopped; ++i) {
      const size_t row_id = row_ids != nullptr ? (*row_ids)[i] : i;
      if (!table->IsLive(row_id)) continue;
      ++stats_->rows_scanned;
      if (node != nullptr) ++node->rows;
      scope.rows[slot] = &table->RowAt(row_id);
      P3PDB_ASSIGN_OR_RETURN(bool pass, EvalFilter(*stmt.where, stack));
      if (!pass) continue;
      P3PDB_ASSIGN_OR_RETURN(bool stop, on_row());
      if (stop) *stopped = true;
    }
    scope.rows[slot] = nullptr;
    return Status::OK();
  }

  // Innermost filtered slot: gather → chunk-filter → emit. The WHERE has
  // not been applied yet for these rows (this slot bypasses the filter in
  // EnumerateRows' terminal case by emitting directly), so the chunk
  // verdict is the only filter — exactly EvalFilter's TRUE-only rule.
  const size_t cap = std::max<uint32_t>(1, config_.chunk_size);
  VecScratchLease lease(cap);
  VecScratch& scratch = *lease;
  const Expr& where = *stmt.where;
  size_t cursor = 0;  // next table slot (seq scan) or id-list position
  size_t target = std::min<size_t>(kRampStart, cap);
  Status st = Status::OK();
  while (!*stopped) {
    size_t n = 0;
    if (row_ids != nullptr) {
      const std::vector<size_t>& ids = *row_ids;
      while (cursor < ids.size() && n < target) {
        size_t id = ids[cursor++];
        if (table->IsLive(id)) scratch.rows[n++] = &table->RowAt(id);
      }
    } else {
      n = table->FetchChunk(&cursor, target, scratch.rows.data());
    }
    if (n == 0) break;
    stats_->rows_scanned += n;
    if (node != nullptr) node->rows += n;

    // Candidate lists can be dominated by dead row slots (version churn in
    // the policy tables), so the candidate-count cutoff above may still let
    // a ~1-live-row scan through. When the gathered chunk is itself tiny
    // and the source is exhausted, the kernel setup costs more than it
    // saves — filter the gathered rows one at a time instead.
    const bool exhausted = row_ids != nullptr ? cursor >= row_ids->size()
                                              : cursor >= table->SlotCount();
    if (n <= kSmallScan && exhausted) {
      for (size_t i = 0; i < n; ++i) {
        scope.rows[slot] = scratch.rows[i];
        Result<bool> pass_or = EvalFilter(where, stack);
        if (!pass_or.ok()) {
          st = pass_or.status();
          break;
        }
        if (!pass_or.value()) continue;
        Result<bool> stop_or = on_row();
        if (!stop_or.ok()) {
          st = stop_or.status();
          break;
        }
        if (stop_or.value()) {
          *stopped = true;
          break;
        }
      }
      break;
    }

    ++stats_->batches;
    stats_->batch_rows += n;
    ++stats_->vectorized_filters;
    if (node != nullptr) {
      ++node->batches;
      node->batch_rows_in += n;
    }

    scratch.FreeAll();
    uint32_t* active = scratch.AllocU32();
    for (size_t i = 0; i < n; ++i) active[i] = static_cast<uint32_t>(i);
    uint8_t* verdict = scratch.AllocU8();
    st = EvalPredicateChunk(where, slot, stack, scope, active, n, verdict,
                            "WHERE clause is not a boolean", scratch);
    if (!st.ok()) break;

    size_t passed = 0;
    for (size_t i = 0; i < n; ++i) {
      if (verdict[i] == kTriTrue) ++passed;
    }
    if (node != nullptr) node->batch_rows_out += passed;

    for (size_t i = 0; i < n; ++i) {
      if (verdict[i] != kTriTrue) continue;
      scope.rows[slot] = scratch.rows[i];
      Result<bool> stop_or = on_row();
      if (!stop_or.ok()) {
        st = stop_or.status();
        break;
      }
      if (stop_or.value()) {
        *stopped = true;
        break;
      }
    }
    if (!st.ok() || *stopped) break;
    target = std::min<size_t>(target * 4, cap);
  }
  scope.rows[slot] = nullptr;
  return st;
}

}  // namespace p3pdb::sqldb
