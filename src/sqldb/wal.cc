#include "sqldb/wal.h"

#include <cstring>

#include "sqldb/storage_serde.h"

namespace p3pdb::sqldb {

namespace {

constexpr size_t kHeaderSize = 4 + 8 + 8 + 1;  // len, checksum, txn_id, type

// Checksum covers txn_id + type + payload (not the length prefix; a torn
// length is caught by the payload falling short of it).
uint64_t RecordChecksum(uint64_t txn_id, uint8_t type,
                        const std::vector<uint8_t>& payload) {
  ByteWriter w;
  w.PutU64(txn_id);
  w.PutU8(type);
  uint64_t h = StorageChecksum(w.bytes.data(), w.bytes.size());
  // Chain the payload through the same FNV stream.
  for (uint8_t b : payload) {
    h = (h ^ b) * 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Status WalWriter::Append(const WalRecord& record) {
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(record.payload.size()));
  frame.PutU64(RecordChecksum(record.txn_id,
                              static_cast<uint8_t>(record.type),
                              record.payload));
  frame.PutU64(record.txn_id);
  frame.PutU8(static_cast<uint8_t>(record.type));
  frame.bytes.insert(frame.bytes.end(), record.payload.begin(),
                     record.payload.end());
  P3PDB_RETURN_IF_ERROR(
      file_->WriteAt(offset_.load(std::memory_order_relaxed),
                     frame.bytes.data(), frame.bytes.size()));
  offset_.fetch_add(frame.bytes.size(), std::memory_order_relaxed);
  bytes_written_.fetch_add(frame.bytes.size(), std::memory_order_relaxed);
  records_written_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status WalWriter::Sync() {
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return file_->Sync();
}

Result<WalScan> ScanWal(FileBackend* file) {
  P3PDB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  WalScan scan;
  uint64_t offset = 0;
  std::vector<uint8_t> buf;
  while (offset + kHeaderSize <= size) {
    uint8_t header[kHeaderSize];
    size_t got = 0;
    P3PDB_RETURN_IF_ERROR(file->ReadAt(offset, header, kHeaderSize, &got));
    if (got < kHeaderSize) {
      scan.truncated_tail = true;
      break;
    }
    ByteReader hr(header, kHeaderSize);
    const uint32_t payload_len = std::move(hr.GetU32()).value();
    const uint64_t checksum = std::move(hr.GetU64()).value();
    const uint64_t txn_id = std::move(hr.GetU64()).value();
    const uint8_t type = std::move(hr.GetU8()).value();
    if (type > static_cast<uint8_t>(WalRecordType::kDelete) ||
        offset + kHeaderSize + payload_len > size) {
      scan.truncated_tail = true;
      break;
    }
    buf.resize(payload_len);
    if (payload_len > 0) {
      P3PDB_RETURN_IF_ERROR(
          file->ReadAt(offset + kHeaderSize, buf.data(), payload_len, &got));
      if (got < payload_len) {
        scan.truncated_tail = true;
        break;
      }
    }
    if (RecordChecksum(txn_id, type, buf) != checksum) {
      scan.truncated_tail = true;
      break;
    }
    WalRecord record;
    record.txn_id = txn_id;
    record.type = static_cast<WalRecordType>(type);
    record.payload = buf;
    scan.records.push_back(std::move(record));
    offset += kHeaderSize + payload_len;
  }
  if (offset + kHeaderSize > size && offset < size && !scan.truncated_tail) {
    // A few stray bytes after the last record: torn header.
    scan.truncated_tail = true;
  }
  scan.valid_end_offset = offset;
  return scan;
}

}  // namespace p3pdb::sqldb
