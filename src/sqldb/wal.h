// Write-ahead log: redo-only, append + fsync on commit, replay on reopen.
//
// Record framing on disk:
//   [u32 payload_len][u64 checksum][u64 txn_id][u8 type][payload bytes]
// The checksum covers txn_id, type, and payload, so a torn append (partial
// record at the tail, the fault harness's favourite crash point) is detected
// and the log is cut cleanly at the last complete record. Recovery is two
// passes over the same bytes: collect the txn ids that reached a kCommit
// record, then re-apply every record of those txns in log order — log order
// plus the table's append-only row-id assignment makes replayed row ids
// byte-identical to the original run, which is what lets kDelete address
// rows by id.

#ifndef P3PDB_SQLDB_WAL_H_
#define P3PDB_SQLDB_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "sqldb/file_backend.h"

namespace p3pdb::sqldb {

enum class WalRecordType : uint8_t {
  kCommit = 0,
  kCreateTable = 1,
  kDropTable = 2,
  kCreateIndex = 3,
  kInsert = 4,
  kDelete = 5,
};

struct WalRecord {
  uint64_t txn_id = 0;
  WalRecordType type = WalRecordType::kCommit;
  std::vector<uint8_t> payload;
};

/// Appends framed records to a WAL file. Append buffers nothing: each record
/// is written immediately (so a crash tears at most the record being
/// written); Sync makes everything appended so far durable.
///
/// Thread-safety: Append calls must be externally serialized (StorageEngine
/// holds its WAL mutex across them). Sync may run concurrently with Append
/// — the group-commit leader fsyncs while later transactions keep appending
/// (pwrite and fsync on one fd are independently safe) — so the tallies are
/// relaxed atomics readable from any thread without tearing.
class WalWriter {
 public:
  /// `start_offset` is where appends begin — recovery passes the end of the
  /// last valid record so a torn tail is overwritten, not appended after.
  WalWriter(FileBackend* file, uint64_t start_offset)
      : file_(file), offset_(start_offset) {}

  Status Append(const WalRecord& record);
  Status Sync();

  uint64_t offset() const { return offset_.load(std::memory_order_relaxed); }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t records_written() const {
    return records_written_.load(std::memory_order_relaxed);
  }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

 private:
  FileBackend* file_;
  std::atomic<uint64_t> offset_;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> records_written_{0};
  std::atomic<uint64_t> syncs_{0};
};

/// The result of scanning a WAL file: every complete, checksum-valid record
/// up to the first torn or corrupt one, plus the byte offset where a writer
/// should resume appending.
struct WalScan {
  std::vector<WalRecord> records;
  uint64_t valid_end_offset = 0;
  /// True when the scan stopped early at a torn/corrupt tail (informational;
  /// an uncommitted tail is expected after a crash, never an error).
  bool truncated_tail = false;
};

/// Reads the whole WAL file through `file`. Never fails on a bad tail —
/// that is the normal post-crash state — only on I/O errors.
Result<WalScan> ScanWal(FileBackend* file);

}  // namespace p3pdb::sqldb

#endif  // P3PDB_SQLDB_WAL_H_
