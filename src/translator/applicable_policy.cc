#include "translator/applicable_policy.h"

#include "common/string_util.h"

namespace p3pdb::translator {

std::string ApplicablePolicyQuery(std::string_view local_path,
                                  bool for_cookie) {
  const char* include_table = for_cookie ? "CookieInclude" : "Include";
  const char* include_id = for_cookie ? "cookieinclude_id" : "include_id";
  const char* exclude_table = for_cookie ? "CookieExclude" : "Exclude";
  const char* exclude_id = for_cookie ? "cookieexclude_id" : "exclude_id";
  (void)include_id;
  (void)exclude_id;
  std::string path_literal = SqlQuote(local_path);
  std::string sql = "SELECT Policyref.policy_id FROM Policyref WHERE ";
  sql += "Policyref.policy_id IS NOT NULL AND EXISTS (SELECT * FROM ";
  sql += include_table;
  sql += " WHERE ";
  sql += include_table;
  sql += ".policyref_id = Policyref.policyref_id AND ";
  sql += path_literal;
  sql += " LIKE ";
  sql += include_table;
  sql += ".pattern ESCAPE '\\') AND NOT EXISTS (SELECT * FROM ";
  sql += exclude_table;
  sql += " WHERE ";
  sql += exclude_table;
  sql += ".policyref_id = Policyref.policyref_id AND ";
  sql += path_literal;
  sql += " LIKE ";
  sql += exclude_table;
  sql += ".pattern ESCAPE '\\') ORDER BY Policyref.policyref_id LIMIT 1";
  return sql;
}

std::string ApplicablePolicyDdl() {
  return std::string("CREATE TABLE ") + kApplicablePolicyTable +
         " (policy_id INTEGER NOT NULL)";
}

}  // namespace p3pdb::translator
