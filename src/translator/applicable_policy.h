// The applicablePolicy() function of the paper's Figure 11: a query over
// the reference-file tables (Figure 16) returning the id of the policy
// governing a requested URI.
//
// The paper materializes its result as the one-row temporary table
// "ApplicablePolicy" that the generated rule queries select FROM; the
// server module does the same (translator/…; server/policy_server.cc).

#ifndef P3PDB_TRANSLATOR_APPLICABLE_POLICY_H_
#define P3PDB_TRANSLATOR_APPLICABLE_POLICY_H_

#include <string>
#include <string_view>

namespace p3pdb::translator {

/// Name of the materialized one-row table the rule queries reference.
inline constexpr const char* kApplicablePolicyTable = "ApplicablePolicy";

/// Builds the SQL locating the applicable policy for `local_path` per spec
/// §2.4.1: the first POLICY-REF (document order) with a matching INCLUDE
/// and no matching EXCLUDE. Patterns were converted to LIKE at shred time.
std::string ApplicablePolicyQuery(std::string_view local_path,
                                  bool for_cookie = false);

/// DDL for the materialized table.
std::string ApplicablePolicyDdl();

}  // namespace p3pdb::translator

#endif  // P3PDB_TRANSLATOR_APPLICABLE_POLICY_H_
