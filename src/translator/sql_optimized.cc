#include "translator/sql_optimized.h"

#include "common/string_util.h"
#include "p3p/data_schema.h"
#include "translator/applicable_policy.h"

namespace p3pdb::translator {

using appel::AppelAttribute;
using appel::AppelExpr;
using appel::AppelRule;
using appel::AppelRuleset;
using appel::Connective;

namespace {

/// Per-value predicate for a vocabulary child expression, e.g.
/// <contact required="always"/> over table alias T with value column `col`:
/// (T.col = 'contact' AND T.required = 'always').
Result<std::string> ValuePredicate(const AppelExpr& child,
                                   const std::string& table,
                                   const std::string& value_column,
                                   bool allow_required) {
  if (!child.children.empty()) {
    return Status::Unsupported("vocabulary element '" + child.name +
                               "' cannot have subexpressions");
  }
  std::string pred = table + "." + value_column + " = " + SqlQuote(child.name);
  for (const AppelAttribute& attr : child.attributes) {
    if (allow_required && attr.name == "required") {
      pred += " AND " + table + ".required = " + SqlQuote(attr.value);
    } else {
      return Status::Unsupported("attribute '" + attr.name +
                                 "' not stored for '" + child.name + "'");
    }
  }
  return "(" + pred + ")";
}

std::string JoinWith(const std::vector<std::string>& terms, const char* op) {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += op;
    out += terms[i];
  }
  return out;
}

/// Builds the condition for a value-folded table (Purpose, Recipient,
/// Categories): the Figure 15 merge. `fk` ties the table to the enclosing
/// scope.
Result<std::string> ValueTableCondition(const AppelExpr& expr,
                                        const std::string& table,
                                        const std::string& value_column,
                                        const std::string& fk,
                                        bool allow_required) {
  auto exists_with = [&](const std::string& pred) {
    return "EXISTS (SELECT * FROM " + table + " WHERE " + fk +
           (pred.empty() ? "" : " AND " + pred) + ")";
  };

  if (expr.children.empty()) {
    // Bare <PURPOSE/>: the element exists, i.e. some value row exists.
    return exists_with("");
  }

  std::vector<std::string> preds;
  for (const AppelExpr& child : expr.children) {
    P3PDB_ASSIGN_OR_RETURN(
        std::string pred,
        ValuePredicate(child, table, value_column, allow_required));
    preds.push_back(std::move(pred));
  }
  const std::string any_pred = "(" + JoinWith(preds, " OR ") + ")";

  auto and_form = [&] {
    std::vector<std::string> terms;
    for (const std::string& p : preds) terms.push_back(exists_with(p));
    return JoinWith(terms, " AND ");
  };
  auto closure = [&] {
    // "the policy contains only elements listed in the rule"
    return "NOT EXISTS (SELECT * FROM " + table + " WHERE " + fk +
           " AND NOT " + any_pred + ")";
  };

  switch (expr.connective) {
    case Connective::kOr:
      return exists_with(any_pred);
    case Connective::kAnd:
      return "(" + and_form() + ")";
    case Connective::kNonOr:
      return "NOT " + exists_with(any_pred);
    case Connective::kNonAnd:
      return "NOT (" + and_form() + ")";
    case Connective::kAndExact:
      return "(" + and_form() + " AND " + closure() + ")";
    case Connective::kOrExact:
      return "(" + exists_with(any_pred) + " AND " + closure() + ")";
  }
  return Status::Internal("unhandled connective");
}

/// Single-valued column condition (RETENTION over Statement.retention, or
/// ACCESS over Policy.access): the evidence element holds exactly one value
/// element, so existence is column IS NOT NULL and the exact forms coincide
/// with the plain ones (a single value is "only elements listed" iff it is
/// listed).
Result<std::string> SingleValueCondition(const AppelExpr& expr,
                                         const std::string& column) {
  if (expr.children.empty()) {
    return column + " IS NOT NULL";
  }
  std::vector<std::string> preds;
  for (const AppelExpr& child : expr.children) {
    if (!child.children.empty() || !child.attributes.empty()) {
      return Status::Unsupported("value element '" + child.name +
                                 "' must be empty under single-valued '" +
                                 expr.name + "'");
    }
    preds.push_back(column + " = " + SqlQuote(child.name));
  }
  switch (expr.connective) {
    case Connective::kOr:
    case Connective::kOrExact:
      return "(" + JoinWith(preds, " OR ") + ")";
    case Connective::kAnd:
    case Connective::kAndExact:
      // A single-valued element can satisfy a conjunction only when it has
      // one conjunct.
      if (preds.size() == 1) return preds[0];
      return std::string("(1 = 0)");
    case Connective::kNonOr:
      return "(" + column + " IS NOT NULL AND NOT (" +
             JoinWith(preds, " OR ") + "))";
    case Connective::kNonAnd:
      if (preds.size() == 1) {
        return "(" + column + " IS NOT NULL AND NOT " + preds[0] + ")";
      }
      return column + " IS NOT NULL";  // can't hold all of >=2 values
  }
  return Status::Internal("unhandled connective");
}

constexpr const char* kStatementFk =
    "Statement.policy_id = Policy.policy_id";
constexpr const char* kPurposeFk =
    "Purpose.policy_id = Statement.policy_id AND "
    "Purpose.statement_id = Statement.statement_id";
constexpr const char* kRecipientFk =
    "Recipient.policy_id = Statement.policy_id AND "
    "Recipient.statement_id = Statement.statement_id";
constexpr const char* kDataFk =
    "Data.policy_id = Statement.policy_id AND "
    "Data.statement_id = Statement.statement_id";
constexpr const char* kCategoriesFk =
    "Categories.policy_id = Data.policy_id AND "
    "Categories.statement_id = Data.statement_id AND "
    "Categories.data_id = Data.data_id";

Result<std::string> MatchDataExpr(const AppelExpr& data);

/// DATA-GROUP condition in Statement scope. The optimized schema folds
/// groups into Data, so group-level connectives range over the statement's
/// Data rows (policies are canonicalized to one group per statement before
/// shredding — see server/policy_server.h).
Result<std::string> MatchDataGroup(const AppelExpr& group) {
  std::string base_pred;
  for (const AppelAttribute& attr : group.attributes) {
    if (attr.name == "base") {
      base_pred = " AND Data.base = " + SqlQuote(attr.value);
    } else {
      return Status::Unsupported("attribute '" + attr.name +
                                 "' not stored for DATA-GROUP");
    }
  }
  auto exists_with = [&](const std::string& pred) {
    return "EXISTS (SELECT * FROM Data WHERE " + std::string(kDataFk) +
           base_pred + (pred.empty() ? "" : " AND " + pred) + ")";
  };
  if (group.children.empty()) return exists_with("");

  std::vector<std::string> preds;
  for (const AppelExpr& child : group.children) {
    if (child.name != "DATA") {
      return Status::Unsupported("unexpected element '" + child.name +
                                 "' in DATA-GROUP");
    }
    P3PDB_ASSIGN_OR_RETURN(std::string pred, MatchDataExpr(child));
    preds.push_back(std::move(pred));
  }
  const std::string any_pred = "(" + JoinWith(preds, " OR ") + ")";
  auto and_form = [&] {
    std::vector<std::string> terms;
    for (const std::string& p : preds) terms.push_back(exists_with(p));
    return JoinWith(terms, " AND ");
  };
  auto closure = [&] {
    return "NOT EXISTS (SELECT * FROM Data WHERE " + std::string(kDataFk) +
           base_pred + " AND NOT " + any_pred + ")";
  };
  switch (group.connective) {
    case Connective::kOr:
      return exists_with(any_pred);
    case Connective::kAnd:
      return "(" + and_form() + ")";
    case Connective::kNonOr:
      return "NOT " + exists_with(any_pred);
    case Connective::kNonAnd:
      return "NOT (" + and_form() + ")";
    case Connective::kAndExact:
      return "(" + and_form() + " AND " + closure() + ")";
    case Connective::kOrExact:
      return "(" + exists_with(any_pred) + " AND " + closure() + ")";
  }
  return Status::Internal("unhandled connective");
}

/// Predicate over one Data row for a DATA expression (ref/optional
/// attributes plus an optional CATEGORIES subcondition).
Result<std::string> MatchDataExpr(const AppelExpr& data) {
  std::vector<std::string> terms;
  for (const AppelAttribute& attr : data.attributes) {
    if (attr.name == "ref") {
      terms.push_back("Data.ref = " +
                      SqlQuote(p3p::NormalizeDataRef(attr.value)));
    } else if (attr.name == "optional") {
      terms.push_back("Data.optional = " + SqlQuote(attr.value));
    } else {
      return Status::Unsupported("attribute '" + attr.name +
                                 "' not stored for DATA");
    }
  }
  std::vector<std::string> child_terms;
  for (const AppelExpr& child : data.children) {
    if (child.name != "CATEGORIES") {
      return Status::Unsupported("unexpected element '" + child.name +
                                 "' in DATA");
    }
    P3PDB_ASSIGN_OR_RETURN(
        std::string cond,
        ValueTableCondition(child, "Categories", "category", kCategoriesFk,
                            /*allow_required=*/false));
    child_terms.push_back(std::move(cond));
  }
  if (!child_terms.empty()) {
    P3PDB_ASSIGN_OR_RETURN(std::string combined,
                           CombineConditions(child_terms, data.connective));
    terms.push_back("(" + combined + ")");
  }
  if (terms.empty()) return std::string("(1 = 1)");
  return "(" + JoinWith(terms, " AND ") + ")";
}

/// STATEMENT condition in Policy scope.
Result<std::string> MatchStatement(const AppelExpr& stmt) {
  if (!stmt.attributes.empty()) {
    return Status::Unsupported("STATEMENT attributes are not stored");
  }
  std::vector<std::string> terms;
  for (const AppelExpr& child : stmt.children) {
    if (child.name == "PURPOSE") {
      P3PDB_ASSIGN_OR_RETURN(
          std::string cond,
          ValueTableCondition(child, "Purpose", "purpose", kPurposeFk,
                              /*allow_required=*/true));
      terms.push_back(std::move(cond));
    } else if (child.name == "RECIPIENT") {
      P3PDB_ASSIGN_OR_RETURN(
          std::string cond,
          ValueTableCondition(child, "Recipient", "recipient", kRecipientFk,
                              /*allow_required=*/true));
      terms.push_back(std::move(cond));
    } else if (child.name == "RETENTION") {
      P3PDB_ASSIGN_OR_RETURN(
          std::string cond,
          SingleValueCondition(child, "Statement.retention"));
      terms.push_back(std::move(cond));
    } else if (child.name == "CONSEQUENCE") {
      terms.push_back("Statement.consequence IS NOT NULL");
    } else if (child.name == "NON-IDENTIFIABLE") {
      terms.push_back("Statement.non_identifiable = 1");
    } else if (child.name == "DATA-GROUP") {
      P3PDB_ASSIGN_OR_RETURN(std::string cond, MatchDataGroup(child));
      terms.push_back(std::move(cond));
    } else {
      return Status::Unsupported("unexpected element '" + child.name +
                                 "' in STATEMENT");
    }
  }
  std::string sql = "SELECT * FROM Statement WHERE " +
                    std::string(kStatementFk);
  if (!terms.empty()) {
    P3PDB_ASSIGN_OR_RETURN(std::string combined,
                           CombineConditions(terms, stmt.connective));
    sql += " AND (" + combined + ")";
  }
  return "EXISTS (" + sql + ")";
}

/// POLICY condition in ApplicablePolicy scope. `parameterized` swaps the
/// join to the materialized ApplicablePolicy row for a `?` placeholder.
Result<std::string> MatchPolicy(const AppelExpr& policy, bool parameterized) {
  std::vector<std::string> terms;
  for (const AppelAttribute& attr : policy.attributes) {
    if (attr.name == "name" || attr.name == "discuri" ||
        attr.name == "opturi") {
      terms.push_back("Policy." + attr.name + " = " + SqlQuote(attr.value));
    } else {
      return Status::Unsupported("attribute '" + attr.name +
                                 "' not stored for POLICY");
    }
  }
  std::vector<std::string> child_terms;
  for (const AppelExpr& child : policy.children) {
    if (child.name == "STATEMENT") {
      P3PDB_ASSIGN_OR_RETURN(std::string cond, MatchStatement(child));
      child_terms.push_back(std::move(cond));
    } else if (child.name == "ACCESS") {
      P3PDB_ASSIGN_OR_RETURN(std::string cond,
                             SingleValueCondition(child, "Policy.access"));
      child_terms.push_back(std::move(cond));
    } else {
      return Status::Unsupported("unexpected element '" + child.name +
                                 "' in POLICY");
    }
  }
  if (!child_terms.empty()) {
    P3PDB_ASSIGN_OR_RETURN(std::string combined,
                           CombineConditions(child_terms, policy.connective));
    terms.push_back("(" + combined + ")");
  }

  std::string sql =
      std::string("SELECT * FROM Policy WHERE Policy.policy_id = ") +
      (parameterized ? std::string("?")
                     : std::string(kApplicablePolicyTable) + ".policy_id");
  for (const std::string& term : terms) sql += " AND " + term;
  return "EXISTS (" + sql + ")";
}

}  // namespace

Result<std::string> OptimizedSqlTranslator::TranslateRule(
    const AppelRule& rule) const {
  std::string sql = "SELECT " + SqlQuote(rule.behavior) + " FROM " +
                    kApplicablePolicyTable;
  if (rule.IsCatchAll()) return sql;

  std::vector<std::string> terms;
  for (const AppelExpr& expr : rule.expressions) {
    if (expr.name != "POLICY") {
      return Status::Unsupported(
          "top-level APPEL expressions must match POLICY, got '" + expr.name +
          "'");
    }
    P3PDB_ASSIGN_OR_RETURN(std::string cond,
                           MatchPolicy(expr, parameterized_));
    terms.push_back(std::move(cond));
  }
  P3PDB_ASSIGN_OR_RETURN(std::string combined,
                         CombineConditions(terms, rule.connective));
  sql += " WHERE " + combined;
  return sql;
}

Result<SqlRuleset> OptimizedSqlTranslator::TranslateRuleset(
    const AppelRuleset& rs) const {
  return TranslateRuleset(rs, nullptr);
}

Result<SqlRuleset> OptimizedSqlTranslator::TranslateRuleset(
    const AppelRuleset& rs, obs::TraceContext* trace) const {
  SqlRuleset out;
  for (const AppelRule& rule : rs.rules) {
    obs::ScopedSpan span(trace, "translate-rule");
    span.SetAttr("behavior", rule.behavior);
    P3PDB_ASSIGN_OR_RETURN(std::string sql, TranslateRule(rule));
    size_t param_count = RuleParamCount(rule, parameterized_);
    span.AddCount("sql-chars", sql.size());
    span.AddCount("params", param_count);
    out.rule_queries.push_back(std::move(sql));
    out.behaviors.push_back(rule.behavior);
    out.param_counts.push_back(param_count);
  }
  return out;
}

}  // namespace p3pdb::translator
