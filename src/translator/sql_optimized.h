// APPEL -> SQL translation for the optimized (Figure 14) schema — the
// production translator of the paper's §5.4 / Figure 15.
//
// Compared with the Figure 11 translator, this one is structure-aware: it
// knows PURPOSE/RECIPIENT/RETENTION/CATEGORIES values were folded into
// value columns, so the per-value subqueries of Figure 13 merge into single
// subqueries with disjunctive value predicates (Figure 15), and RETENTION /
// CONSEQUENCE / NON-IDENTIFIABLE become plain column predicates on the
// enclosing Statement row.
//
// All six APPEL connectives are supported. The *-exact connectives compile
// to an existence part plus a closure part — NOT EXISTS of a row matching
// none of the listed patterns — which is precisely APPEL's "the policy
// contains only elements listed in the rule".

#ifndef P3PDB_TRANSLATOR_SQL_OPTIMIZED_H_
#define P3PDB_TRANSLATOR_SQL_OPTIMIZED_H_

#include <string>
#include <vector>

#include "appel/model.h"
#include "common/result.h"
#include "translator/sql_simple.h"  // SqlRuleset

namespace p3pdb::translator {

class OptimizedSqlTranslator {
 public:
  /// `parameterized` emits `Policy.policy_id = ?` instead of a join to the
  /// materialized ApplicablePolicy row — the read-only query shape that
  /// matches can execute concurrently. The default stays the paper's
  /// Figure 15 text (pinned by the goldens).
  explicit OptimizedSqlTranslator(bool parameterized = false)
      : parameterized_(parameterized) {}

  /// Translates one rule into a query against the Figure 14 tables (plus
  /// the ApplicablePolicy anchor row).
  Result<std::string> TranslateRule(const appel::AppelRule& rule) const;

  Result<SqlRuleset> TranslateRuleset(const appel::AppelRuleset& rs) const;

  /// Traced variant: one `translate-rule` span per rule (behavior
  /// attribute; generated-SQL size and placeholder count as counters).
  Result<SqlRuleset> TranslateRuleset(const appel::AppelRuleset& rs,
                                      obs::TraceContext* trace) const;

 private:
  bool parameterized_;
};

}  // namespace p3pdb::translator

#endif  // P3PDB_TRANSLATOR_SQL_OPTIMIZED_H_
