#include "translator/sql_simple.h"

#include "common/string_util.h"
#include "p3p/data_schema.h"
#include "shredder/element_spec.h"
#include "translator/applicable_policy.h"

namespace p3pdb::translator {

using appel::AppelExpr;
using appel::AppelRule;
using appel::AppelRuleset;
using appel::Connective;
using shredder::AttributeSpec;
using shredder::ElementSpec;

Result<std::string> CombineConditions(const std::vector<std::string>& terms,
                                      Connective connective) {
  if (terms.empty()) return std::string();
  auto join = [&](const char* op) {
    std::string out;
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) out += op;
      out += terms[i];
    }
    return out;
  };
  switch (connective) {
    case Connective::kAnd:
      return join(" AND ");
    case Connective::kOr:
      return join(" OR ");
    case Connective::kNonAnd:
      return "NOT (" + join(" AND ") + ")";
    case Connective::kNonOr:
      return "NOT (" + join(" OR ") + ")";
    case Connective::kAndExact:
    case Connective::kOrExact:
      return Status::Unsupported(
          "exact connectives require the value-merged (optimized) schema");
  }
  return Status::Internal("unhandled connective");
}

namespace {

/// Resolves an expression attribute to its column and normalized value.
Result<std::string> AttributePredicate(const ElementSpec& spec,
                                       const std::string& table,
                                       const appel::AppelAttribute& attr) {
  for (const AttributeSpec& a : spec.attributes()) {
    if (a.name == attr.name) {
      std::string value = attr.value;
      if (a.name == "ref") {
        value = std::string(p3p::NormalizeDataRef(value));
      }
      return table + "." + a.column + " = " + SqlQuote(value);
    }
  }
  return Status::Unsupported("attribute '" + attr.name +
                             "' is not stored for element '" +
                             spec.element_name() + "'");
}

/// Figure 11's match(): SELECT * FROM <table> WHERE <parent join> AND
/// <attribute predicates> AND (<subexpressions>).
///
/// `join_condition` ties this table to the enclosing subquery (line 15 of
/// Figure 11); `own_pk` is this table's primary-key column list, which
/// children join against.
Result<std::string> Match(const AppelExpr& expr, const ElementSpec& spec,
                          const std::string& join_condition,
                          const std::vector<std::string>& own_pk) {
  std::string sql =
      "SELECT * FROM " + spec.table_name() + " WHERE " + join_condition;

  // Attribute predicates (lines 16-17).
  for (const appel::AppelAttribute& attr : expr.attributes) {
    P3PDB_ASSIGN_OR_RETURN(std::string pred,
                           AttributePredicate(spec, spec.table_name(), attr));
    sql += " AND " + pred;
  }

  // Recursive subexpressions (lines 18-22).
  if (!expr.children.empty()) {
    std::vector<std::string> child_terms;
    for (const AppelExpr& child : expr.children) {
      const ElementSpec* child_spec = spec.FindChild(child.name);
      if (child_spec == nullptr) {
        return Status::Unsupported("no table for element '" + child.name +
                                   "' under '" + spec.element_name() + "'");
      }
      std::vector<std::string> child_pk;
      child_pk.push_back(child_spec->id_column());
      child_pk.insert(child_pk.end(), own_pk.begin(), own_pk.end());
      std::vector<std::string> join_terms;
      for (const std::string& col : own_pk) {
        join_terms.push_back(child_spec->table_name() + "." + col + " = " +
                             spec.table_name() + "." + col);
      }
      P3PDB_ASSIGN_OR_RETURN(
          std::string sub,
          Match(child, *child_spec, Join(join_terms, " AND "), child_pk));
      child_terms.push_back("EXISTS (" + sub + ")");
    }
    P3PDB_ASSIGN_OR_RETURN(std::string combined,
                           CombineConditions(child_terms, expr.connective));
    sql += " AND (" + combined + ")";
  }
  return sql;
}

}  // namespace

size_t RuleParamCount(const AppelRule& rule, bool parameterized) {
  if (!parameterized || rule.IsCatchAll()) return 0;
  return rule.expressions.size();
}

Result<std::string> SimpleSqlTranslator::TranslateRule(
    const AppelRule& rule) const {
  // main() of Figure 11.
  std::string sql = "SELECT " + SqlQuote(rule.behavior) + " FROM " +
                    kApplicablePolicyTable;
  if (rule.IsCatchAll()) return sql;

  // Parameterized mode replaces the join against the materialized
  // ApplicablePolicy row with a bind parameter, making the query read-only;
  // ApplicablePolicy then serves as a static one-row FROM anchor.
  const std::string join_condition =
      parameterized_ ? std::string("Policy.policy_id = ?")
                     : std::string("Policy.policy_id = ") +
                           kApplicablePolicyTable + ".policy_id";

  std::vector<std::string> terms;
  for (const AppelExpr& expr : rule.expressions) {
    if (expr.name != "POLICY") {
      return Status::Unsupported(
          "top-level APPEL expressions must match POLICY, got '" + expr.name +
          "'");
    }
    P3PDB_ASSIGN_OR_RETURN(
        std::string sub,
        Match(expr, shredder::PolicyElementSpec(), join_condition,
              {"policy_id"}));
    terms.push_back("EXISTS (" + sub + ")");
  }
  P3PDB_ASSIGN_OR_RETURN(std::string combined,
                         CombineConditions(terms, rule.connective));
  sql += " WHERE " + combined;
  return sql;
}

Result<SqlRuleset> SimpleSqlTranslator::TranslateRuleset(
    const AppelRuleset& rs) const {
  return TranslateRuleset(rs, nullptr);
}

Result<SqlRuleset> SimpleSqlTranslator::TranslateRuleset(
    const AppelRuleset& rs, obs::TraceContext* trace) const {
  SqlRuleset out;
  for (const AppelRule& rule : rs.rules) {
    obs::ScopedSpan span(trace, "translate-rule");
    span.SetAttr("behavior", rule.behavior);
    P3PDB_ASSIGN_OR_RETURN(std::string sql, TranslateRule(rule));
    size_t param_count = RuleParamCount(rule, parameterized_);
    span.AddCount("sql-chars", sql.size());
    span.AddCount("params", param_count);
    out.rule_queries.push_back(std::move(sql));
    out.behaviors.push_back(rule.behavior);
    out.param_counts.push_back(param_count);
  }
  return out;
}

}  // namespace p3pdb::translator
