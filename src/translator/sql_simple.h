// APPEL -> SQL translation for the simple (Figure 8) schema — the
// algorithm of the paper's Figure 11.
//
// main() emits `SELECT '<behavior>' FROM ApplicablePolicy WHERE ...`; every
// expression becomes an EXISTS subquery over the table named after its
// element, joined to the parent subquery's table on the parent's primary
// key, with attribute equality predicates and recursively translated
// subexpressions. Beyond the paper's pseudocode (which shows only "and" and
// "or"), the negated connectives non-and / non-or are supported via NOT(...)
// — the full tech-report algorithm the paper cites as [2]. The *-exact
// connectives are not expressible over this schema without value merging
// and report Unsupported; the optimized translator handles them.

#ifndef P3PDB_TRANSLATOR_SQL_SIMPLE_H_
#define P3PDB_TRANSLATOR_SQL_SIMPLE_H_

#include <string>
#include <vector>

#include "appel/model.h"
#include "common/result.h"
#include "obs/trace.h"

namespace p3pdb::translator {

/// A ruleset compiled to SQL: one query per rule, to be executed in order
/// against a database holding the shredded policies; the first query that
/// returns a row decides the behavior.
struct SqlRuleset {
  std::vector<std::string> rule_queries;   // aligned with behaviors
  std::vector<std::string> behaviors;
  /// `?` placeholders per rule query (all bound to the applicable
  /// policy_id). All zeros when translated in the legacy materialized
  /// mode.
  std::vector<size_t> param_counts;
};

class SimpleSqlTranslator {
 public:
  /// `parameterized` selects the read-only query shape: the policy-id join
  /// against the materialized ApplicablePolicy row becomes a `?` bind
  /// parameter, so matching needs no per-match table write. The default
  /// stays the paper's Figure 11/13 text (pinned by the goldens).
  explicit SimpleSqlTranslator(bool parameterized = false)
      : parameterized_(parameterized) {}

  /// Translates one rule (Figure 11's main()). A catch-all rule (empty
  /// body) becomes `SELECT '<behavior>' FROM ApplicablePolicy`.
  Result<std::string> TranslateRule(const appel::AppelRule& rule) const;

  /// Translates every rule of the preference.
  Result<SqlRuleset> TranslateRuleset(const appel::AppelRuleset& rs) const;

  /// Traced variant: one `translate-rule` span per rule (behavior
  /// attribute; generated-SQL size and placeholder count as counters).
  Result<SqlRuleset> TranslateRuleset(const appel::AppelRuleset& rs,
                                      obs::TraceContext* trace) const;

 private:
  bool parameterized_;
};

/// Placeholders a rule's translation takes: one per top-level POLICY
/// expression in parameterized mode, zero otherwise (catch-alls included).
size_t RuleParamCount(const appel::AppelRule& rule, bool parameterized);

/// Combines per-expression SQL conditions under an APPEL connective:
/// and -> conjunction, or -> disjunction, non-and/non-or -> NOT(...).
/// *-exact are rejected here (callers with value-merged tables handle them).
Result<std::string> CombineConditions(const std::vector<std::string>& terms,
                                      appel::Connective connective);

}  // namespace p3pdb::translator

#endif  // P3PDB_TRANSLATOR_SQL_SIMPLE_H_
